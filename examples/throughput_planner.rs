//! Throughput/interference planner — a system-designer tool built on
//! the paper's Section 7.3 analysis: sweep bank counts and channel
//! counts, and estimate D-RaNGe throughput, 64-bit latency, and the
//! throughput available without slowing a given workload mix.
//!
//! ```sh
//! cargo run --release --example throughput_planner
//! ```

use d_range::dram_sim::{DeviceConfig, Manufacturer, TimingParams};
use d_range::drange::latency::{latency_64bit_ns, LatencyScenario};
use d_range::drange::throughput::{catalog_throughput_bps, scale_to_channels};
use d_range::drange::{IdentifySpec, ProfileSpec, Profiler, RngCellCatalog};
use d_range::memctrl::workloads::spec2006_suite;
use d_range::memctrl::MemoryController;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ctrl =
        MemoryController::from_config(DeviceConfig::new(Manufacturer::A).with_seed(0x9147));
    let timing = TimingParams::lpddr4_3200();
    let profile = Profiler::new(&mut ctrl).run(
        ProfileSpec {
            banks: (0..8).collect(),
            rows: 0..256,
            cols: 0..16,
            ..ProfileSpec::default()
        }
        .with_iterations(30),
    )?;
    let catalog = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())?;
    println!("catalog: {} RNG cells\n", catalog.len());

    println!("throughput by (banks x channels), Mb/s:");
    print!("{:>8}", "banks");
    for ch in [1usize, 2, 4] {
        print!("{:>10}", format!("{ch} ch"));
    }
    println!();
    for banks in [1usize, 2, 4, 8] {
        let per_channel = catalog_throughput_bps(&catalog, timing, 10.0, 8, banks);
        print!("{banks:>8}");
        for ch in [1usize, 2, 4] {
            print!("{:>10.1}", scale_to_channels(per_channel, ch) / 1e6);
        }
        println!();
    }

    println!("\n64-bit latency by scenario:");
    for (name, s) in [
        ("1 bank / 1 ch / 1 cell-word", LatencyScenario::worst_case()),
        (
            "8 banks / 1 ch / 2 cells-word",
            LatencyScenario {
                banks: 8,
                channels: 1,
                bits_per_word: 2,
            },
        ),
        (
            "8 banks / 4 ch / 4 cells-word",
            LatencyScenario::best_case(),
        ),
    ] {
        println!("  {name:<30} {:>8.0} ns", latency_64bit_ns(timing, 10.0, s));
    }

    println!("\nthroughput without slowing each workload (8 banks, 1 channel):");
    let base = catalog_throughput_bps(&catalog, timing, 10.0, 8, 8);
    for w in spec2006_suite() {
        println!(
            "  {:<12} {:>8.1} Mb/s (idle fraction {:.2})",
            w.name,
            base * w.idle_fraction() / 1e6,
            w.idle_fraction()
        );
    }
    Ok(())
}
