//! Temperature-aware operation — Section 6.1 of the paper: identify
//! RNG-cell catalogs at several operating temperatures, store them in
//! the controller, and select the right catalog for the current DRAM
//! temperature before sampling.
//!
//! ```sh
//! cargo run --release --example temperature_aware
//! ```

use d_range::dram_sim::{Celsius, DeviceConfig, Manufacturer};
use d_range::drange::{
    CatalogSet, DRange, DRangeConfig, IdentifySpec, ProfileSpec, Profiler, RngCellCatalog,
};
use d_range::memctrl::MemoryController;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let config = DeviceConfig::new(Manufacturer::B).with_seed(0x7E3B);
    let mut ctrl = MemoryController::from_config(config.clone());

    // Enroll a catalog at each temperature of the reliable range.
    let mut set = CatalogSet::new();
    for t in Celsius::SWEEP {
        ctrl.device_mut().set_temperature(t);
        let profile = Profiler::new(&mut ctrl).run(
            ProfileSpec {
                banks: (0..8).collect(),
                rows: 0..192,
                cols: 0..16,
                ..ProfileSpec::default()
            }
            .with_iterations(25),
        )?;
        let catalog = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())?;
        println!("enrolled catalog at {t}: {} RNG cells", catalog.len());
        set.insert(catalog);
    }

    // Runtime: the DRAM is at 58 degC; pick the nearest catalog and sample.
    let operating = Celsius(58.0);
    ctrl.device_mut().set_temperature(operating);
    let catalog = set.select(operating).ok_or("no catalogs enrolled")?.clone();
    println!(
        "\noperating at {operating}: selected the {} catalog ({} cells)",
        catalog.temperature(),
        catalog.len()
    );

    let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default())?;
    let sample = trng.next_word()?;
    println!("64-bit sample at {operating}: {sample:016x}");

    // Verify the output stays balanced at the off-enrollment temperature.
    let bits = trng.bits(20_000)?;
    let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
    println!("ones fraction over 20 kb at {operating}: {ones:.4}");
    Ok(())
}
