//! Cryptographic key generation — the paper's motivating workload
//! (Section 3): TLS-style key material sourced from DRAM activation
//! failures, consumed through the standard `rand::RngCore` interface.
//!
//! ```sh
//! cargo run --release --example key_generation
//! ```

use d_range::dram_sim::{DeviceConfig, Manufacturer};
use d_range::drange::{DRange, DRangeConfig, IdentifySpec, ProfileSpec, Profiler, RngCellCatalog};
use d_range::memctrl::MemoryController;
use rand::{Rng, RngCore};

fn hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ctrl =
        MemoryController::from_config(DeviceConfig::new(Manufacturer::B).with_seed(0x5EC0_0001));
    let profile = Profiler::new(&mut ctrl).run(
        ProfileSpec {
            banks: (0..8).collect(),
            rows: 0..256,
            cols: 0..16,
            ..ProfileSpec::default()
        }
        .with_iterations(30),
    )?;
    let catalog = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())?;
    let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default())?;

    // DRange implements rand::RngCore, so any rand-based consumer works.
    let mut aes_key = [0u8; 32];
    trng.fill_bytes(&mut aes_key);
    let mut iv = [0u8; 12];
    trng.fill_bytes(&mut iv);
    let session_id: u128 = trng.gen();
    let tcp_seq: u32 = trng.gen();
    let padding_len: u8 = trng.gen_range(1..=255);

    println!("AES-256 key : {}", hex(&aes_key));
    println!("GCM IV      : {}", hex(&iv));
    println!("session id  : {session_id:032x}");
    println!("TCP seq     : {tcp_seq}");
    println!("pad length  : {padding_len}");

    let stats = trng.stats();
    println!(
        "\nharvested {} bits in {:.1} us of device time ({:.1} Mb/s)",
        stats.bits,
        stats.device_time_ps as f64 / 1e6,
        stats.throughput_bps() / 1e6
    );
    println!(
        "entropy source: sense-amplifier metastability on {} RNG cells",
        catalog.len()
    );
    Ok(())
}
