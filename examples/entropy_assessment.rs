//! Entropy assessment — what a certification lab would do to D-RaNGe:
//! calibrate the sampling tRCD for the specific chip, harvest a stream,
//! credit min-entropy with SP 800-90B-style estimators, and validate
//! with both the NIST SP 800-22 quick tests and a DIEHARD-style battery.
//!
//! ```sh
//! cargo run --release --example entropy_assessment
//! ```

use d_range::dram_sim::{DeviceConfig, Manufacturer};
use d_range::drange::calibrate::{default_grid, sweep};
use d_range::drange::estimators::{collision, credited_min_entropy, markov, most_common_value};
use d_range::drange::{DRange, DRangeConfig, IdentifySpec, ProfileSpec, Profiler, RngCellCatalog};
use d_range::memctrl::MemoryController;
use d_range::nist_sts::{self, Bits};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ctrl =
        MemoryController::from_config(DeviceConfig::new(Manufacturer::C).with_seed(0xA55E55));

    // 1. Calibrate: find the tRCD that maximizes the 40-60% band.
    let region = ProfileSpec {
        rows: 0..192,
        ..ProfileSpec::default()
    }
    .with_iterations(20);
    let calibration = sweep(&mut ctrl, &region, &default_grid())?;
    println!("tRCD calibration (failures / 40-60% band cells):");
    for p in &calibration.points {
        println!(
            "  {:>5.1} ns: {:>6} failing, {:>5} in band",
            p.trcd_ns, p.failing_cells, p.band_cells
        );
    }
    let trcd = calibration
        .best_trcd_ns()
        .ok_or("calibration produced no usable sampling tRCD")?;
    println!("selected sampling tRCD: {trcd} ns\n");

    // 2. Identify and sample at the calibrated timing.
    let profile = Profiler::new(&mut ctrl).run(
        ProfileSpec {
            banks: (0..8).collect(),
            rows: 0..192,
            cols: 0..16,
            ..ProfileSpec::default()
        }
        .with_trcd_ns(trcd)
        .with_iterations(30),
    )?;
    let catalog = RngCellCatalog::identify(
        &mut ctrl,
        &profile,
        IdentifySpec {
            trcd_ns: trcd,
            ..IdentifySpec::default()
        },
    )?;
    let mut trng = DRange::new(
        ctrl,
        &catalog,
        DRangeConfig {
            trcd_ns: trcd,
            ..DRangeConfig::default()
        },
    )?;
    let raw = trng.bits(4_200_000)?;
    println!(
        "harvested {} bits from {} RNG cells",
        raw.len(),
        catalog.len()
    );

    // 3. Credit min-entropy.
    println!("\nSP 800-90B-style estimators (bits/bit):");
    println!("  most common value : {:.4}", most_common_value(&raw));
    println!("  Markov            : {:.4}", markov(&raw));
    println!("  collision         : {:.4}", collision(&raw));
    println!("  credited          : {:.4}", credited_min_entropy(&raw));

    // 4. Statistical validation.
    let bits = Bits::from_bools(raw.into_iter());
    println!("\nNIST quick tests:");
    for (name, result) in [
        ("monobit", nist_sts::monobit::test(&bits)?),
        ("runs", nist_sts::runs::test(&bits)?),
        ("serial", nist_sts::serial::test(&bits)?),
        (
            "approximate_entropy",
            nist_sts::approximate_entropy::test(&bits)?,
        ),
    ] {
        println!(
            "  {:<22} p = {:.4} {}",
            name,
            result.mean_p(),
            if result.passed(1e-4) { "PASS" } else { "FAIL" }
        );
    }

    println!("\nDIEHARD-style battery:");
    for result in nist_sts::diehard::battery(&bits)? {
        println!(
            "  {:<28} p = {:.4} {}",
            result.name(),
            result.min_p(),
            if result.passed(1e-4) { "PASS" } else { "FAIL" }
        );
    }
    Ok(())
}
