//! Randomness audit — generate a megabit stream from the DRAM TRNG and
//! validate it with the full NIST SP 800-22 suite (the paper's Table 1
//! flow, as a user would run it).
//!
//! ```sh
//! cargo run --release --example randomness_audit
//! ```

use d_range::dram_sim::{DeviceConfig, Manufacturer};
use d_range::drange::entropy::binary_entropy;
use d_range::drange::{DRange, DRangeConfig, IdentifySpec, ProfileSpec, Profiler, RngCellCatalog};
use d_range::memctrl::MemoryController;
use d_range::nist_sts::{Bits, NistSuite};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ctrl =
        MemoryController::from_config(DeviceConfig::new(Manufacturer::C).with_seed(0xA0D17));
    let profile = Profiler::new(&mut ctrl).run(
        ProfileSpec {
            banks: (0..8).collect(),
            rows: 0..256,
            cols: 0..16,
            ..ProfileSpec::default()
        }
        .with_iterations(30),
    )?;
    let catalog = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())?;
    println!("RNG cells: {}", catalog.len());

    let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default())?;
    println!("generating 1.1 Mb bitstream from DRAM activation failures...");
    let raw = trng.bits(1_100_000)?;
    let ones = raw.iter().filter(|&&b| b).count() as f64 / raw.len() as f64;
    println!(
        "stream: ones fraction {:.4}, binary entropy {:.4} bits/bit",
        ones,
        binary_entropy(ones)
    );

    let bits = Bits::from_bools(raw.into_iter());
    // The paper's significance level.
    let report = NistSuite::paper().run(&bits);
    println!("\n{report}");
    println!(
        "verdict: {}",
        if report.all_passed() {
            "stream passes the full NIST suite"
        } else {
            "FAILURES DETECTED"
        }
    );
    Ok(())
}
