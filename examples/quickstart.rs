//! Quickstart: profile a simulated DRAM device, identify RNG cells, and
//! generate random bytes.
//!
//! ```sh
//! cargo run --release --example quickstart
//! ```

use d_range::dram_sim::{DeviceConfig, Manufacturer};
use d_range::drange::{DRange, DRangeConfig, IdentifySpec, ProfileSpec, Profiler, RngCellCatalog};
use d_range::memctrl::MemoryController;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // 1. A commodity LPDDR4 device (simulated; seed = which chip you got)
    //    behind a memory controller with programmable timing registers.
    let mut ctrl =
        MemoryController::from_config(DeviceConfig::new(Manufacturer::A).with_seed(0xC0FFEE));
    println!(
        "device: {} {}",
        ctrl.device().standard(),
        ctrl.device().manufacturer()
    );
    println!("datasheet tRCD: {} ns", ctrl.trcd_ns());

    // 2. Profile: scan part of the device with tRCD = 10 ns (Algorithm 1).
    let profile = Profiler::new(&mut ctrl).run(
        ProfileSpec {
            banks: (0..8).collect(),
            rows: 0..256,
            cols: 0..16,
            ..ProfileSpec::default()
        }
        .with_iterations(30),
    )?;
    println!(
        "profiling: {} cells fail at 10 ns ({} in the 40-60% band)",
        profile.unique_failures(),
        profile.cells_in_band(0.4, 0.6).len()
    );

    // 3. Identify RNG cells: 1000 reads each, 3-bit-symbol uniformity.
    let catalog = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())?;
    println!(
        "identified {} RNG cells in {} words",
        catalog.len(),
        catalog.words().len()
    );

    // 4. Sample: Algorithm 2 across all banks.
    let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default())?;
    let mut key = [0u8; 32];
    trng.try_fill(&mut key)?;
    print!("32 random bytes: ");
    for b in key {
        print!("{b:02x}");
    }
    println!();
    let stats = trng.stats();
    println!(
        "throughput: {:.1} Mb/s of device time ({} bits over {} iterations)",
        stats.throughput_bps() / 1e6,
        stats.bits,
        stats.iterations
    );
    Ok(())
}
