//! Multi-channel harvesting engine — the paper's channel-level
//! parallelism (Section 6.2) running as a service: one worker thread
//! per simulated DRAM channel keeps a shared, health-screened bit pool
//! topped up between watermarks, while several application threads file
//! and collect randomness requests concurrently.
//!
//! The engine runs with a flight recorder attached, so alongside the
//! aggregate metrics every request leaves a trace: client-side spans
//! nest over the service's internal ones, and the run ends by printing
//! the recorder's slowest-trace table.
//!
//! ```sh
//! cargo run --release --example engine_service
//! ```

use std::time::Duration;

use d_range::dram_sim::{DeviceConfig, Manufacturer};
use d_range::drange::{
    channel_sources_with_telemetry, DRangeConfig, IdentifySpec, ProfileSpec, Profiler,
    RandomnessService, RngCellCatalog, ServiceConfig,
};
use d_range::memctrl::MemoryController;
use d_range::telemetry::{FlightRecorder, MetricsRegistry, Reporter};

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One profiling + identification pass; the catalog is valid for
    // every channel because channels share the manufacturing process
    // (only their runtime noise differs).
    let base = DeviceConfig::new(Manufacturer::A)
        .with_seed(0xC4A7)
        .with_noise_seed(0x11);
    let mut ctrl = MemoryController::from_config(base.clone());
    let profile = Profiler::new(&mut ctrl).run(
        ProfileSpec {
            banks: (0..8).collect(),
            rows: 0..192,
            cols: 0..16,
            ..ProfileSpec::default()
        }
        .with_iterations(25),
    )?;
    let catalog = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())?;
    println!("catalog: {} RNG cells", catalog.len());

    // Two simulated channels, each harvested by its own worker thread.
    // Everything registers into one metrics registry: the controllers'
    // command counters, the engine's stage histograms, and the
    // service's request counters.
    let registry = MetricsRegistry::new();
    let sources = channel_sources_with_telemetry(
        &base,
        &catalog,
        &DRangeConfig::default(),
        2,
        Some(&registry),
    )?;
    // The flight recorder turns the span instrumentation live: worker
    // batches and client requests land in its ring buffer, and the
    // drop/sampling counters surface as drange_trace_* series.
    let recorder = FlightRecorder::new();
    recorder.attach_metrics(&registry);
    let service = RandomnessService::with_sources_traced(
        sources,
        ServiceConfig::default(),
        Some(&registry),
        recorder.tracer(),
    )?;

    // A background reporter logs a one-line summary while clients run.
    let reporter = Reporter::spawn(registry.clone(), Duration::from_millis(250), |line| {
        eprintln!("[metrics] {line}");
    });

    // Four application threads file and collect requests concurrently.
    // Each round opens a client-side root span; the service's own
    // service.request / service.wait spans nest under it, giving each
    // round a complete client-to-engine trace.
    std::thread::scope(|scope| {
        for client in 0..4usize {
            let service = &service;
            let tracer = service.tracer().clone();
            scope.spawn(move || {
                for round in 0..3usize {
                    let mut span = tracer.span("client.round");
                    span.attr_u64("client", client as u64);
                    span.attr_u64("round", round as u64);
                    let len = 16 + 8 * client + round;
                    let id = service.request(len).expect("request");
                    let bytes = service.wait_receive(id).expect("receive");
                    let hex: String = bytes.iter().take(8).map(|b| format!("{b:02x}")).collect();
                    println!("client {client} round {round}: {len:>2} bytes  {hex}...");
                }
            });
        }
    });

    reporter.stop();
    let stats = service.shutdown();
    println!("\nengine statistics after graceful shutdown:");
    println!("  harvested : {} bits", stats.harvested_bits);
    println!("  served    : {} bits", stats.served_bits);
    println!("  queued    : {} bits", stats.queued_bits);
    println!(
        "  discarded : {} bits (health screening)",
        stats.discarded_bits
    );
    println!(
        "  health    : {} trips ({} repetition-count, {} adaptive-proportion)",
        stats.health_trips, stats.repetition_trips, stats.adaptive_trips
    );
    for w in &stats.workers {
        println!(
            "  channel {} : {} bits at {:.1} Mb/s of device time",
            w.worker,
            w.harvested_bits,
            w.throughput_bps() / 1e6
        );
    }
    println!(
        "  aggregate : {:.1} Mb/s of device time across channels",
        stats.aggregate_device_bps() / 1e6
    );

    let trace_stats = recorder.stats();
    println!(
        "\nflight recorder: {} spans kept ({} dropped); slowest traces:",
        trace_stats.recorded_spans, trace_stats.dropped_spans
    );
    print!("{}", recorder.render_slow_table());

    println!("\nPrometheus exposition of the full metric set:\n");
    print!("{}", registry.render_prometheus());
    Ok(())
}
