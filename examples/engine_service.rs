//! Multi-channel harvesting engine — the paper's channel-level
//! parallelism (Section 6.2) running as a service: one worker thread
//! per simulated DRAM channel keeps a shared, health-screened bit pool
//! topped up between watermarks, while several application threads file
//! and collect randomness requests concurrently.
//!
//! ```sh
//! cargo run --release --example engine_service
//! ```

use d_range::drange::{
    channel_sources, DRangeConfig, IdentifySpec, ProfileSpec, Profiler,
    RandomnessService, RngCellCatalog, ServiceConfig,
};
use d_range::dram_sim::{DeviceConfig, Manufacturer};
use d_range::memctrl::MemoryController;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    // One profiling + identification pass; the catalog is valid for
    // every channel because channels share the manufacturing process
    // (only their runtime noise differs).
    let base = DeviceConfig::new(Manufacturer::A).with_seed(0xC4A7).with_noise_seed(0x11);
    let mut ctrl = MemoryController::from_config(base.clone());
    let profile = Profiler::new(&mut ctrl).run(
        ProfileSpec {
            banks: (0..8).collect(),
            rows: 0..192,
            cols: 0..16,
            ..ProfileSpec::default()
        }
        .with_iterations(25),
    )?;
    let catalog = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())?;
    println!("catalog: {} RNG cells", catalog.len());

    // Two simulated channels, each harvested by its own worker thread.
    let sources = channel_sources(&base, &catalog, &DRangeConfig::default(), 2)?;
    let service = RandomnessService::with_sources(sources, ServiceConfig::default())?;

    // Four application threads file and collect requests concurrently.
    std::thread::scope(|scope| {
        for client in 0..4usize {
            let service = &service;
            scope.spawn(move || {
                for round in 0..3usize {
                    let len = 16 + 8 * client + round;
                    let id = service.request(len).expect("request");
                    let bytes = service.wait_receive(id).expect("receive");
                    let hex: String =
                        bytes.iter().take(8).map(|b| format!("{b:02x}")).collect();
                    println!("client {client} round {round}: {len:>2} bytes  {hex}...");
                }
            });
        }
    });

    let stats = service.shutdown();
    println!("\nengine statistics after graceful shutdown:");
    println!("  harvested : {} bits", stats.harvested_bits);
    println!("  served    : {} bits", stats.served_bits);
    println!("  queued    : {} bits", stats.queued_bits);
    println!("  discarded : {} bits (health screening)", stats.discarded_bits);
    for w in &stats.workers {
        println!(
            "  channel {} : {} bits at {:.1} Mb/s of device time",
            w.worker,
            w.harvested_bits,
            w.throughput_bps() / 1e6
        );
    }
    println!(
        "  aggregate : {:.1} Mb/s of device time across channels",
        stats.aggregate_device_bps() / 1e6
    );
    Ok(())
}
