//! Firmware randomness service — the paper's Section 6.3 deployment:
//! applications file REQUESTs and RECEIVE random bytes from a queue the
//! memory-controller firmware keeps topped up, with SP 800-90B-style
//! online health tests screening the stream.
//!
//! ```sh
//! cargo run --release --example secure_service
//! ```

use d_range::dram_sim::{DeviceConfig, Manufacturer};
use d_range::drange::{
    DRange, DRangeConfig, IdentifySpec, ProfileSpec, Profiler, RandomnessService, RngCellCatalog,
    ServiceConfig,
};
use d_range::memctrl::MemoryController;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut ctrl =
        MemoryController::from_config(DeviceConfig::new(Manufacturer::A).with_seed(0x5E21));
    let profile = Profiler::new(&mut ctrl).run(
        ProfileSpec {
            banks: (0..8).collect(),
            rows: 0..192,
            cols: 0..16,
            ..ProfileSpec::default()
        }
        .with_iterations(25),
    )?;
    let catalog = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())?;
    let trng = DRange::new(ctrl, &catalog, DRangeConfig::default())?;
    let service = RandomnessService::new(trng, ServiceConfig::default())?;

    // Applications file requests...
    let tls_key = service.request(32)?;
    let dh_nonce = service.request(16)?;
    let session_salt = service.request(8)?;
    println!("filed 3 requests ({} pending)", service.pending_requests());

    // ...the firmware loop runs when DRAM bandwidth is available...
    let completed = service.process()?;
    println!("firmware pass completed {completed} requests");
    println!(
        "queue holds {} ready bits; health tests discarded {} bits",
        service.queued_bits(),
        service.discarded_bits()
    );

    // ...and applications collect their bytes.
    for (name, id) in [
        ("TLS key", tls_key),
        ("DH nonce", dh_nonce),
        ("salt", session_salt),
    ] {
        let bytes = service.receive(id).expect("completed");
        let hex: String = bytes.iter().map(|b| format!("{b:02x}")).collect();
        println!("{name:<8}: {hex}");
    }

    let stats = service.shutdown();
    println!(
        "\nengine: {} bits harvested ({} discarded), {:.1} Mb/s of device time",
        stats.harvested_bits,
        stats.discarded_bits,
        stats.aggregate_device_bps() / 1e6
    );
    Ok(())
}
