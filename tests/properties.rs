//! Cross-crate property-based tests (proptest): invariants that must
//! hold for arbitrary inputs, spanning the simulator, controller, and
//! the statistical/entropy layers.

use d_range::dram_sim::commands::CommandKind;
use d_range::dram_sim::{
    CellAddr, DataPattern, DeviceConfig, DramDevice, Manufacturer, TimingParams, WordAddr,
};
use d_range::memctrl::CommandScheduler;
use d_range::nist_sts::Bits;
use proptest::prelude::*;

fn device(seed: u64, noise: u64) -> DramDevice {
    DramDevice::build(
        DeviceConfig::new(Manufacturer::A)
            .with_seed(seed)
            .with_noise_seed(noise),
    )
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Any sequence of scheduler commands (made legal by construction)
    /// produces nondecreasing issue times and clock-aligned commands.
    #[test]
    fn scheduler_time_is_monotone(ops in proptest::collection::vec(0usize..32, 1..200)) {
        let mut sched = CommandScheduler::new(8, TimingParams::lpddr4_3200());
        let mut last = 0u64;
        for op in ops {
            let bank = op % 8;
            let cmd = if sched.is_open(bank) {
                match op / 8 {
                    0 => CommandKind::Rd,
                    1 => CommandKind::Wr,
                    _ => CommandKind::Pre,
                }
            } else {
                CommandKind::Act
            };
            let c = sched.issue(cmd, bank, 0, 0).expect("legal by construction");
            prop_assert!(c.at_ps >= last, "time went backwards");
            prop_assert_eq!(c.at_ps % sched.timing().tck_ps, 0, "clock aligned");
            last = c.at_ps;
        }
    }

    /// Reads at datasheet timing always return exactly what was written,
    /// for arbitrary addresses and values.
    #[test]
    fn spec_reads_are_always_correct(
        bank in 0usize..8,
        row in 0usize..1024,
        col in 0usize..16,
        value in any::<u64>(),
        seed in 0u64..1000,
    ) {
        let mut d = device(seed, seed ^ 0x99);
        d.poke(WordAddr::new(bank, row, col), value).unwrap();
        d.activate(bank, row).unwrap();
        let got = d.read(bank, row, col, 18.0).unwrap();
        d.precharge(bank).unwrap();
        prop_assert_eq!(got, value);
    }

    /// The analytic failure probability is always a probability and is
    /// monotone (non-increasing) in tRCD for any cell.
    #[test]
    fn fprob_is_probability_and_monotone_in_trcd(
        row in 0usize..1024,
        bit in 0usize..64,
        seed in 0u64..200,
    ) {
        let mut d = device(seed, 1);
        d.fill_bank(0, DataPattern::Solid0);
        let cell = CellAddr::new(0, row, bit / 4, bit);
        let mut prev = 1.0f64;
        for trcd10 in (60..=180).step_by(5) {
            let f = d.failure_probability(cell, trcd10 as f64 / 10.0);
            prop_assert!((0.0..=1.0).contains(&f));
            prop_assert!(f <= prev + 1e-12, "fprob must not increase with tRCD");
            prev = f;
        }
        prop_assert_eq!(prev, 0.0, "no failures at datasheet timing");
    }

    /// Pattern word/bit agree for every pattern at arbitrary coordinates.
    #[test]
    fn pattern_word_matches_bits(row in 0usize..2048, col in 0usize..64) {
        for p in DataPattern::all_40() {
            let w = p.word(row, col, 64);
            for bit in [0usize, 1, 31, 63] {
                let expect = p.bit(row, col * 64 + bit);
                prop_assert_eq!((w >> bit) & 1 == 1, expect);
            }
        }
    }

    /// Bits round-trip through MSB-first byte packing (whole bytes).
    #[test]
    fn bits_byte_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..200)) {
        let bits = Bits::from_bytes_msb(&bytes);
        prop_assert_eq!(bits.to_bytes_msb(), bytes);
    }

    /// The von Neumann corrector never emits more than half its input
    /// and its output length equals the number of discordant pairs.
    #[test]
    fn von_neumann_conservation(input in proptest::collection::vec(any::<bool>(), 0..500)) {
        let mut vn = d_range::drange::VonNeumann::new();
        let out = vn.correct(&input);
        prop_assert!(out.len() <= input.len() / 2);
        let discordant = input
            .chunks_exact(2)
            .filter(|p| p[0] != p[1])
            .count();
        prop_assert_eq!(out.len(), discordant);
    }

    /// Shannon entropy estimators are bounded by log2 of the alphabet.
    #[test]
    fn entropy_bounds(counts in proptest::collection::vec(0u64..1000, 2..64)) {
        use d_range::drange::entropy::{entropy_from_counts, min_entropy_from_counts};
        let h = entropy_from_counts(&counts);
        let hmin = min_entropy_from_counts(&counts);
        let max = (counts.len() as f64).log2();
        prop_assert!(h >= -1e-12 && h <= max + 1e-9);
        prop_assert!(hmin <= h + 1e-9, "min-entropy <= Shannon entropy");
    }

    /// Retention times are positive and strictly decrease with
    /// temperature for every cell.
    #[test]
    fn retention_time_behaves(row in 0usize..1024, bit in 0usize..64, seed in 0u64..100) {
        use d_range::dram_sim::retention::retention_time_s;
        use d_range::dram_sim::Celsius;
        let mut d = device(seed, 2);
        let cell = CellAddr::new(0, row, 0, bit);
        let cold = retention_time_s(&d, cell);
        prop_assert!(cold > 0.0);
        d.set_temperature(Celsius(70.0));
        let hot = retention_time_s(&d, cell);
        prop_assert!(hot < cold);
    }
}
