//! Integration: the latency-PUF extension and the spatial-structure
//! inference, exercising the same activation-failure substrate from
//! two non-TRNG angles.

use d_range::dram_sim::{DeviceConfig, Manufacturer};
use d_range::drange::puf::{evaluate, PufSpec};
use d_range::drange::spatial::analyze;
use d_range::drange::{ProfileSpec, Profiler};
use d_range::memctrl::MemoryController;

fn ctrl(seed: u64) -> MemoryController {
    MemoryController::from_config(
        DeviceConfig::new(Manufacturer::A)
            .with_seed(seed)
            .with_noise_seed(seed ^ 0x77),
    )
}

fn quick_puf_spec() -> PufSpec {
    PufSpec {
        profile: ProfileSpec {
            rows: 0..256,
            ..ProfileSpec::default()
        }
        .with_trcd_ns(8.0)
        .with_iterations(12),
        ..PufSpec::default()
    }
}

#[test]
fn puf_distinguishes_devices_while_trng_does_not() {
    // The same substrate yields a *device-unique* fingerprint from
    // deterministic cells and *device-independent* randomness from
    // metastable cells — the PUF/TRNG duality of the related work.
    let mut c1 = ctrl(0xF00D);
    let mut c2 = ctrl(0xBEEF);
    let f1a = evaluate(&mut c1, &quick_puf_spec()).unwrap();
    let f1b = evaluate(&mut c1, &quick_puf_spec()).unwrap();
    let f2 = evaluate(&mut c2, &quick_puf_spec()).unwrap();
    assert!(
        f1a.similarity(&f1b) > 0.9,
        "same device: {}",
        f1a.similarity(&f1b)
    );
    assert!(
        f1a.similarity(&f2) < 0.1,
        "different devices: {}",
        f1a.similarity(&f2)
    );
}

#[test]
fn spatial_inference_matches_device_ground_truth() {
    let mut c = ctrl(0x5A5A);
    let profile = Profiler::new(&mut c)
        .run(ProfileSpec::default().with_iterations(20))
        .unwrap();
    let analysis = analyze(&profile, 0, 64, 32, 0.2);
    // The device has two 512-row subarrays; a boundary must be found
    // near row 512 and the row gradient must be positive.
    assert!(analysis
        .segments
        .iter()
        .any(|s| (480..=544).contains(&s.start_row)));
    assert!(analysis.row_gradient_correlation > 0.0);
    // Inferred failing columns are real weak bitlines.
    for seg in &analysis.segments {
        let sub = (seg.start_row / 512).min(1);
        let truth = c.device().variation().weak_bitlines(0, sub);
        let hits = seg.columns.iter().filter(|col| truth.contains(col)).count();
        if seg.columns.len() >= 4 {
            assert!(hits * 2 >= seg.columns.len(), "segment columns mostly real");
        }
    }
}

#[test]
fn puf_and_trng_cells_are_disjoint_populations() {
    use d_range::drange::{IdentifySpec, RngCellCatalog};
    let mut c = ctrl(0xD15C);
    // Compare the two populations at the SAME tRCD: the deterministic
    // (F_prob >= 0.95) cells and the metastable (~0.5) RNG cells are
    // disjoint bands of the same distribution. (At the PUF's default,
    // more aggressive 8 ns, the RNG cells fail deterministically too
    // and join the fingerprint — which is why the PUF runs there.)
    let same_trcd_spec = PufSpec {
        profile: ProfileSpec {
            rows: 0..256,
            ..ProfileSpec::default()
        }
        .with_trcd_ns(10.0)
        .with_iterations(12),
        ..PufSpec::default()
    };
    let fingerprint = evaluate(&mut c, &same_trcd_spec).unwrap();
    let profile = Profiler::new(&mut c)
        .run(
            ProfileSpec {
                rows: 0..256,
                ..ProfileSpec::default()
            }
            .with_iterations(30),
        )
        .unwrap();
    let catalog = RngCellCatalog::identify(&mut c, &profile, IdentifySpec::default()).unwrap();
    let puf_cells: std::collections::HashSet<_> = fingerprint.cells().copied().collect();
    let overlap = catalog
        .cells()
        .into_iter()
        .filter(|cell| puf_cells.contains(cell))
        .count();
    // Deterministic (PUF) and metastable (RNG) populations barely
    // intersect: the PUF threshold is F_prob >= 0.95, RNG cells sit
    // near 0.5.
    assert!(
        overlap * 5 <= catalog.len().max(1),
        "overlap {overlap} of {} RNG cells",
        catalog.len()
    );
}
