//! Integration: the Table 2 ordering — D-RaNGe dominates every prior
//! DRAM TRNG on device-time throughput, and the qualitative properties
//! (true randomness, streaming) hold as the paper claims.

use d_range::baselines::retention_trng::RetentionRegion;
use d_range::baselines::{CommandScheduleTrng, KellerTrng, StartupTrng, SutarTrng};
use d_range::dram_sim::{DeviceConfig, Manufacturer};
use d_range::drange::{DRange, DRangeConfig, IdentifySpec, ProfileSpec, Profiler, RngCellCatalog};
use d_range::memctrl::MemoryController;

fn config(seed: u64) -> DeviceConfig {
    DeviceConfig::new(Manufacturer::A)
        .with_seed(seed)
        .with_noise_seed(seed ^ 0x11)
}

fn drange_throughput() -> f64 {
    let mut ctrl = MemoryController::from_config(config(0x0D5A));
    let profile = Profiler::new(&mut ctrl)
        .run(
            ProfileSpec {
                banks: (0..8).collect(),
                rows: 0..256,
                cols: 0..16,
                ..ProfileSpec::default()
            }
            .with_iterations(30),
        )
        .expect("profiling succeeds");
    let catalog = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())
        .expect("identification succeeds");
    let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
    let _ = trng.bits(20_000).expect("bits");
    trng.stats().throughput_bps()
}

#[test]
fn drange_beats_every_baseline_by_an_order_of_magnitude() {
    let drange = drange_throughput();
    assert!(drange > 1e6, "D-RaNGe at least Mb/s scale: {drange}");

    // Pyo+ command schedule.
    let mut pyo = CommandScheduleTrng::new(MemoryController::from_config(config(1)));
    let _ = pyo.generate_bits(512).expect("bits");
    let pyo_bps = pyo.throughput_bps();

    // Keller+ retention.
    let mut keller = KellerTrng::enroll(
        MemoryController::from_config(config(2)),
        RetentionRegion::default(),
        40.0,
    )
    .expect("enroll");
    let _ = keller.harvest().expect("harvest");
    let keller_bps = keller.throughput_bps();

    // Sutar+ retention + SHA-256.
    let mut sutar = SutarTrng::new(
        MemoryController::from_config(config(3)),
        RetentionRegion::default(),
        40.0,
    );
    let _ = sutar.harvest().expect("harvest");
    let sutar_bps = sutar.throughput_bps();

    // Tehranipoor+ startup values (small device for quick enrollment).
    let small = DeviceConfig::new(Manufacturer::A)
        .with_seed(4)
        .with_noise_seed(5)
        .with_geometry(d_range::dram_sim::Geometry {
            banks: 2,
            rows: 128,
            cols: 8,
            word_bits: 64,
            subarray_rows: 128,
        });
    let mut startup = StartupTrng::enroll(MemoryController::from_config(small)).expect("enroll");
    let _ = startup.harvest().expect("harvest");
    let startup_bps = startup.throughput_bps();

    for (name, bps) in [
        ("pyo", pyo_bps),
        ("keller", keller_bps),
        ("sutar", sutar_bps),
        ("startup", startup_bps),
    ] {
        assert!(
            drange > 10.0 * bps,
            "D-RaNGe ({drange:.0} b/s) must be >10x {name} ({bps:.0} b/s)"
        );
    }
}

#[test]
fn command_schedule_trng_is_predictable_unlike_drange() {
    // Pyo+: identical initial state -> identical output.
    let mut p1 = CommandScheduleTrng::new(MemoryController::from_config(config(7)));
    let mut p2 = CommandScheduleTrng::new(MemoryController::from_config(config(7)));
    assert_eq!(
        p1.generate_bits(128).unwrap(),
        p2.generate_bits(128).unwrap(),
        "command-schedule output is deterministic"
    );
}

#[test]
fn retention_baselines_pay_multisecond_latency() {
    let keller = KellerTrng::enroll(
        MemoryController::from_config(config(9)),
        RetentionRegion::default(),
        40.0,
    )
    .expect("enroll");
    // 40 s pause = 4e13 ps; D-RaNGe's worst case is ~5e6 ps.
    assert!(keller.latency_64bit_ps() > 1_000_000 * 5_000_000);
}
