//! End-to-end integration: the full D-RaNGe pipeline
//! (profile → identify → sample → statistical validation) across the
//! workspace crates.

use d_range::dram_sim::{DataPattern, DeviceConfig, Manufacturer, WordAddr};
use d_range::drange::{DRange, DRangeConfig, IdentifySpec, ProfileSpec, Profiler, RngCellCatalog};
use d_range::memctrl::MemoryController;
use d_range::nist_sts::{self, Bits};

fn build_pipeline(seed: u64) -> (MemoryController, RngCellCatalog) {
    let mut ctrl = MemoryController::from_config(
        DeviceConfig::new(Manufacturer::A)
            .with_seed(seed)
            .with_noise_seed(seed ^ 0xFF),
    );
    let profile = Profiler::new(&mut ctrl)
        .run(
            ProfileSpec {
                banks: (0..8).collect(),
                rows: 0..256,
                cols: 0..16,
                ..ProfileSpec::default()
            }
            .with_iterations(30),
        )
        .expect("profiling succeeds");
    let catalog = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())
        .expect("identification succeeds");
    (ctrl, catalog)
}

#[test]
fn pipeline_produces_statistically_random_bits() {
    let (ctrl, catalog) = build_pipeline(0xE2E);
    assert!(!catalog.is_empty(), "RNG cells identified");
    let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
    let raw = trng.bits(120_000).expect("bits");
    let bits = Bits::from_bools(raw.into_iter());
    // The fast NIST subset that applies at 120 kb.
    assert!(
        nist_sts::monobit::test(&bits).unwrap().passed(1e-4),
        "monobit"
    );
    assert!(
        nist_sts::block_frequency::test(&bits).unwrap().passed(1e-4),
        "block freq"
    );
    assert!(nist_sts::runs::test(&bits).unwrap().passed(1e-4), "runs");
    assert!(
        nist_sts::longest_run::test(&bits).unwrap().passed(1e-4),
        "longest run"
    );
    assert!(
        nist_sts::serial::test(&bits).unwrap().passed(1e-4),
        "serial"
    );
    assert!(
        nist_sts::cumulative_sums::test(&bits).unwrap().passed(1e-4),
        "cusum"
    );
    assert!(
        nist_sts::matrix_rank::test(&bits).unwrap().passed(1e-4),
        "rank"
    );
    assert!(
        nist_sts::approximate_entropy::test(&bits)
            .unwrap()
            .passed(1e-4),
        "apen"
    );
}

#[test]
fn identified_cells_are_stable_across_reidentification() {
    // Section 5.4: manufacturing variation is fixed, so re-identifying
    // under identical conditions finds a strongly overlapping set.
    let (mut ctrl, first) = build_pipeline(0x51AB);
    let profile = Profiler::new(&mut ctrl)
        .run(
            ProfileSpec {
                banks: (0..8).collect(),
                rows: 0..256,
                cols: 0..16,
                ..ProfileSpec::default()
            }
            .with_iterations(30),
        )
        .expect("profiling succeeds");
    let second = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())
        .expect("identification succeeds");
    let a: std::collections::HashSet<_> = first.cells().into_iter().collect();
    let b: std::collections::HashSet<_> = second.cells().into_iter().collect();
    let overlap = a.intersection(&b).count() as f64;
    // The ±10% symbol filter is itself noisy, but the underlying cell
    // set is fixed: expect substantial overlap.
    let denom = a.len().min(b.len()).max(1) as f64;
    assert!(
        overlap / denom > 0.3,
        "overlap {overlap} of {} / {}",
        a.len(),
        b.len()
    );
}

#[test]
fn sampling_does_not_corrupt_unrelated_memory() {
    let (mut ctrl, catalog) = build_pipeline(0xDA7A);
    // Fill a bystander region with a known pattern.
    let bystander_rows = 300..320;
    for row in bystander_rows.clone() {
        for bank in 0..8 {
            ctrl.device_mut()
                .fill_row(bank, row, DataPattern::Checkered);
        }
    }
    let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
    let _ = trng.bits(10_000).expect("bits");
    let ctrl = trng.into_controller();
    for row in bystander_rows {
        for bank in 0..8 {
            for col in 0..16 {
                let got = ctrl.device().peek(WordAddr::new(bank, row, col)).unwrap();
                assert_eq!(
                    got,
                    DataPattern::Checkered.word(row, col, 64),
                    "bystander row {row} bank {bank} col {col} intact"
                );
            }
        }
    }
}

#[test]
fn two_devices_produce_independent_streams() {
    let (ctrl_a, cat_a) = build_pipeline(0xAAAA);
    let (ctrl_b, cat_b) = build_pipeline(0xBBBB);
    let mut ta = DRange::new(ctrl_a, &cat_a, DRangeConfig::default()).expect("plan a");
    let mut tb = DRange::new(ctrl_b, &cat_b, DRangeConfig::default()).expect("plan b");
    let a = ta.bits(4096).expect("bits a");
    let b = tb.bits(4096).expect("bits b");
    let agree = a.iter().zip(&b).filter(|(x, y)| x == y).count() as f64 / a.len() as f64;
    assert!((agree - 0.5).abs() < 0.06, "cross-device agreement {agree}");
}

#[test]
fn trcd_register_is_restored_after_every_stage() {
    let (ctrl, catalog) = build_pipeline(0x7E57);
    assert_eq!(ctrl.trcd_ns(), 18.0, "after profile+identify");
    let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
    let _ = trng.bits(1000).expect("bits");
    assert_eq!(
        trng.controller().registers().trcd_ns(),
        18.0,
        "after sampling"
    );
}

#[test]
fn throughput_model_and_measurement_agree() {
    use d_range::drange::throughput::catalog_throughput_bps;
    let (ctrl, catalog) = build_pipeline(0x3A3A);
    let timing = ctrl.device().timing();
    let modeled = catalog_throughput_bps(&catalog, timing, 10.0, 8, 8);
    let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
    let _ = trng.bits(50_000).expect("bits");
    let measured = trng.stats().throughput_bps();
    // The Eq.(1) model ignores restore-write variation and tRCD
    // register switching, so allow a factor-3 band.
    let ratio = modeled / measured;
    assert!(
        (0.33..3.0).contains(&ratio),
        "modeled {modeled} vs measured {measured} (ratio {ratio})"
    );
}
