//! Integration: the firmware randomness service (Section 6.3) and the
//! combined TRNG (Section 8.4) running on the full stack.

use d_range::baselines::retention_trng::RetentionRegion;
use d_range::baselines::CombinedTrng;
use d_range::dram_sim::{DeviceConfig, Manufacturer};
use d_range::drange::{
    DRange, DRangeConfig, IdentifySpec, ProfileSpec, Profiler, RandomnessService, RngCellCatalog,
    ServiceConfig,
};
use d_range::memctrl::MemoryController;
use d_range::nist_sts::second_level::SecondLevelReport;

fn pipeline(seed: u64, banks: usize) -> (MemoryController, RngCellCatalog) {
    let mut ctrl = MemoryController::from_config(
        DeviceConfig::new(Manufacturer::B)
            .with_seed(seed)
            .with_noise_seed(seed ^ 0x33),
    );
    let profile = Profiler::new(&mut ctrl)
        .run(
            ProfileSpec {
                banks: (0..banks).collect(),
                rows: 0..160,
                cols: 0..16,
                ..ProfileSpec::default()
            }
            .with_iterations(25),
        )
        .expect("profiling succeeds");
    let catalog = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())
        .expect("identification succeeds");
    (ctrl, catalog)
}

#[test]
fn service_fulfills_interleaved_requests() {
    let (ctrl, catalog) = pipeline(0x51C3, 8);
    let trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
    // A small pool bounds the background prefill, keeping the
    // zero-discard assertion over a short, seed-fixed stream stretch.
    let config = ServiceConfig {
        queue_capacity: 4096,
        low_watermark: 512,
        ..Default::default()
    };
    let service = RandomnessService::new(trng, config).expect("svc");

    let ids: Vec<_> = (1..=5)
        .map(|i| service.request(i * 8).expect("req"))
        .collect();
    service.process().expect("process");
    for (i, id) in ids.into_iter().enumerate() {
        let bytes = service.receive(id).expect("ready");
        assert_eq!(bytes.len(), (i + 1) * 8);
    }
    assert_eq!(service.pending_requests(), 0);
    assert_eq!(
        service.discarded_bits(),
        0,
        "healthy device discards nothing"
    );
}

#[test]
fn service_output_is_statistically_plausible() {
    let (ctrl, catalog) = pipeline(0xB17E, 8);
    let trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
    let service = RandomnessService::new(trng, ServiceConfig::default()).expect("svc");
    let id = service.request(4096).expect("req");
    service.process().expect("process");
    let bytes = service.receive(id).expect("ready");
    let ones: u32 = bytes.iter().map(|b| b.count_ones()).sum();
    let n = (bytes.len() * 8) as f64;
    let z = (ones as f64 - n / 2.0) / (n / 4.0).sqrt();
    assert!(z.abs() < 4.5, "service bytes balanced (z = {z})");
}

#[test]
fn service_serves_concurrent_clients() {
    // Four client threads file, drive, and collect interleaved requests
    // against one shared service: every id must resolve exactly once
    // with a buffer of the requested length, and no bytes may leak
    // between clients.
    let (ctrl, catalog) = pipeline(0x7A11, 8);
    let trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
    let service = RandomnessService::new(trng, ServiceConfig::default()).expect("svc");

    std::thread::scope(|scope| {
        let mut clients = Vec::new();
        for client in 0..4usize {
            let service = &service;
            clients.push(scope.spawn(move || {
                let mut total = 0usize;
                for round in 0..5usize {
                    let len = 8 + 4 * client + round;
                    let id = service.request(len).expect("req");
                    let bytes = service.wait_receive(id).expect("serve");
                    assert_eq!(bytes.len(), len);
                    assert!(service.receive(id).is_none(), "an id resolves exactly once");
                    total += len;
                }
                total
            }));
        }
        let total: usize = clients.into_iter().map(|c| c.join().expect("client")).sum();
        assert_eq!(service.pending_requests(), 0);
        let stats = service.stats();
        assert_eq!(stats.served_bits, (total * 8) as u64);
    });
}

#[test]
fn combined_trng_streams_and_reports() {
    let (ctrl, catalog) = pipeline(0xC0B1, 7);
    let mut combined = CombinedTrng::new(
        ctrl,
        &catalog,
        RetentionRegion {
            bank: 7,
            rows: 0..96,
        },
        40.0,
    )
    .expect("combined");
    combined.idle(41.0);
    let bits = combined.bits(8_000).expect("bits");
    assert_eq!(bits.len(), 8_000);
    let s = combined.stats();
    assert!(s.drange_bits > 0);
    // Total contributions at least cover the request.
    assert!(s.drange_bits + s.retention_bits >= 8_000);
}

#[test]
fn second_level_analysis_accepts_drange_pvalues() {
    // Run monobit over many short windows of one stream: the p-values
    // must be uniform and the passing proportion within the NIST band.
    let (ctrl, catalog) = pipeline(0x2ED, 8);
    let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).expect("plan");
    let mut p_values = Vec::new();
    for _ in 0..60 {
        let raw = trng.bits(2_000).expect("bits");
        let bits = d_range::nist_sts::Bits::from_bools(raw.into_iter());
        p_values.push(
            d_range::nist_sts::monobit::test(&bits)
                .expect("monobit")
                .p_values()[0],
        );
    }
    let report = SecondLevelReport::analyze(0.01, &p_values);
    assert!(report.acceptable(), "{report}");
}
