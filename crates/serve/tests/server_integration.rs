//! End-to-end tests for `drange-serve` over real sockets.
//!
//! Each test boots an in-process [`Server`] on a loopback port with a
//! PRNG (or scripted) source, talks plain HTTP/1.1 through
//! `std::net::TcpStream`, and asserts the response contract plus the
//! server-side invariants (no leaked request ids, correct telemetry).

use std::collections::HashSet;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpStream};
use std::sync::Arc;
use std::thread;
use std::time::{Duration, Instant};

use drange_core::telemetry::MetricsRegistry;
use drange_core::{RandomnessService, ServiceConfig};
use drange_serve::source::{PrngHarvestSource, ScriptedSource, ScriptedState};
use drange_serve::{RateLimitConfig, Server, ServerConfig, SourceMode};

/// A parsed test-side response.
#[derive(Debug)]
struct TestResponse {
    status: u16,
    headers: Vec<(String, String)>,
    body: Vec<u8>,
}

impl TestResponse {
    fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k.eq_ignore_ascii_case(name))
            .map(|(_, v)| v.as_str())
    }
}

/// Sends one request on a fresh connection and reads the response.
fn roundtrip(addr: SocketAddr, request: &str) -> TestResponse {
    let mut stream = TcpStream::connect(addr).expect("connect to test server");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("read timeout");
    stream.write_all(request.as_bytes()).expect("write request");
    read_response(&mut stream)
}

/// Reads one `Content-Length`-framed response off the stream.
fn read_response(stream: &mut TcpStream) -> TestResponse {
    let mut buf = Vec::new();
    let head_end = loop {
        if let Some(i) = buf.windows(4).position(|w| w == b"\r\n\r\n") {
            break i + 4;
        }
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).expect("read response head");
        assert!(n > 0, "eof before response head completed: {buf:?}");
        buf.extend_from_slice(&chunk[..n]);
    };
    let head = String::from_utf8(buf[..head_end].to_vec()).expect("utf-8 head");
    let mut lines = head.split("\r\n");
    let status_line = lines.next().expect("status line");
    let status: u16 = status_line
        .split_ascii_whitespace()
        .nth(1)
        .expect("status code")
        .parse()
        .expect("numeric status");
    let headers: Vec<(String, String)> = lines
        .filter_map(|l| l.split_once(':'))
        .map(|(k, v)| (k.trim().to_string(), v.trim().to_string()))
        .collect();
    let content_length: usize = headers
        .iter()
        .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
        .map(|(_, v)| v.parse().expect("numeric content-length"))
        .unwrap_or(0);
    let mut body = buf[head_end..].to_vec();
    while body.len() < content_length {
        let mut chunk = [0u8; 4096];
        let n = stream.read(&mut chunk).expect("read response body");
        assert!(n > 0, "eof before response body completed");
        body.extend_from_slice(&chunk[..n]);
    }
    body.truncate(content_length);
    TestResponse {
        status,
        headers,
        body,
    }
}

fn get(addr: SocketAddr, target: &str) -> TestResponse {
    roundtrip(
        addr,
        &format!("GET {target} HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n"),
    )
}

fn prng_service(queue_bits: usize) -> Arc<RandomnessService> {
    let sources = vec![
        PrngHarvestSource::new(0xAAAA_0001),
        PrngHarvestSource::new(0xBBBB_0002),
    ];
    Arc::new(
        RandomnessService::with_sources(
            sources,
            ServiceConfig {
                queue_capacity: queue_bits,
                low_watermark: queue_bits / 16,
                min_entropy: 0.9,
                ..ServiceConfig::default()
            },
        )
        .expect("prng service"),
    )
}

fn boot(service: Arc<RandomnessService>, config: ServerConfig) -> Server {
    Server::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        service,
        MetricsRegistry::new(),
        config,
    )
    .expect("bind test server")
}

#[test]
fn concurrent_clients_get_disjoint_bytes_and_leak_no_ids() {
    let service = prng_service(1 << 16);
    let server = boot(
        Arc::clone(&service),
        ServerConfig {
            worker_threads: 4,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let mut handles = Vec::new();
    for _ in 0..8 {
        handles.push(thread::spawn(move || {
            let mut bodies = Vec::new();
            for _ in 0..5 {
                let resp = get(addr, "/random?bytes=16");
                assert_eq!(resp.status, 200, "body: {:?}", resp.body);
                assert_eq!(resp.body.len(), 16);
                assert_eq!(resp.header("X-Drange-Degraded"), Some("false"));
                bodies.push(resp.body);
            }
            bodies
        }));
    }
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    for handle in handles {
        for body in handle.join().expect("client thread") {
            assert!(
                seen.insert(body),
                "two clients received identical 16-byte buffers — aliased split"
            );
        }
    }
    assert_eq!(
        service.outstanding_requests(),
        0,
        "served requests must not leak ids"
    );
    server.shutdown();
}

#[test]
fn keep_alive_serves_sequential_requests_on_one_connection() {
    let service = prng_service(1 << 16);
    let server = boot(Arc::clone(&service), ServerConfig::default());
    let addr = server.local_addr();

    let mut stream = TcpStream::connect(addr).expect("connect");
    stream
        .set_read_timeout(Some(Duration::from_secs(30)))
        .expect("timeout");
    for _ in 0..3 {
        stream
            .write_all(b"GET /random?bytes=8 HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write");
        let resp = read_response(&mut stream);
        assert_eq!(resp.status, 200);
        assert_eq!(resp.body.len(), 8);
    }
    drop(stream);
    server.shutdown();
    assert_eq!(service.outstanding_requests(), 0);
}

#[test]
fn zero_and_oversized_byte_counts_are_client_errors() {
    let service = prng_service(1 << 16);
    let server = boot(Arc::clone(&service), ServerConfig::default());
    let addr = server.local_addr();

    assert_eq!(get(addr, "/random?bytes=0").status, 400);
    assert_eq!(get(addr, "/random?bytes=notanumber").status, 400);
    let oversized = ServerConfig::default().max_request_bytes + 1;
    assert_eq!(get(addr, &format!("/random?bytes={oversized}")).status, 400);
    assert_eq!(service.outstanding_requests(), 0);
    server.shutdown();
}

#[test]
fn unknown_paths_and_methods_map_to_404_and_405() {
    let service = prng_service(1 << 16);
    let server = boot(service, ServerConfig::default());
    let addr = server.local_addr();

    assert_eq!(get(addr, "/nope").status, 404);
    // Debug endpoints are hidden (404, not 405) unless enabled.
    assert_eq!(get(addr, "/debug/trace").status, 404);
    assert_eq!(get(addr, "/debug/slow").status, 404);
    let resp = roundtrip(
        addr,
        "DELETE /random HTTP/1.1\r\nHost: t\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(resp.status, 405);
    assert_eq!(resp.header("Allow"), Some("GET, HEAD"));
    // /-/shutdown is 404 unless explicitly enabled.
    let resp = roundtrip(
        addr,
        "POST /-/shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\nConnection: close\r\n\r\n",
    );
    assert_eq!(resp.status, 404);
    server.shutdown();
}

#[test]
fn pool_exhaustion_returns_503_with_retry_after() {
    // A throttled source that trickles bits far slower than the
    // request drains them: the engine-side wait times out and the
    // server maps the underrun to 503 + Retry-After.
    let state = ScriptedState::new();
    state.throttle();
    let source = ScriptedSource::new(7, Arc::clone(&state), Duration::from_millis(200));
    let service = Arc::new(
        RandomnessService::with_sources(
            vec![source],
            ServiceConfig {
                queue_capacity: 1 << 15,
                low_watermark: 1 << 10,
                min_entropy: 0.9,
                ..ServiceConfig::default()
            },
        )
        .expect("scripted service"),
    );
    let server = boot(
        Arc::clone(&service),
        ServerConfig {
            fetch_timeout: Duration::from_millis(50),
            retry_after: Duration::from_secs(2),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    // 3000 bytes = 24_000 bits; the throttled source delivers 4096
    // bits per 200 ms, so a 50 ms fetch timeout always expires first.
    let resp = get(addr, "/random?bytes=3000");
    assert_eq!(resp.status, 503, "body: {:?}", resp.body);
    assert_eq!(resp.header("Retry-After"), Some("2"));
    assert!(
        resp.header("X-Drange-Request-Id").is_some(),
        "503 responses still identify the request"
    );
    assert!(
        resp.header("X-Drange-Degraded").is_some(),
        "underrun 503 reports degradation state"
    );
    assert_eq!(
        service.outstanding_requests(),
        0,
        "a timed-out fetch must cancel its request id"
    );
    server.shutdown();
}

#[test]
fn degraded_source_flips_healthz_and_the_response_header() {
    let state = ScriptedState::new();
    let source = ScriptedSource::new(11, Arc::clone(&state), Duration::from_millis(1));
    let service = Arc::new(
        RandomnessService::with_sources(
            vec![source],
            ServiceConfig {
                queue_capacity: 1 << 14,
                low_watermark: 1 << 12,
                min_entropy: 0.9,
                ..ServiceConfig::default()
            },
        )
        .expect("scripted service"),
    );
    let server = boot(Arc::clone(&service), ServerConfig::default());
    let addr = server.local_addr();

    let resp = get(addr, "/healthz");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("X-Drange-Degraded"), Some("false"));

    state.degrade();
    // The flag propagates when the worker harvests its next batch;
    // draining the pool forces harvesting.
    let deadline = Instant::now() + Duration::from_secs(10);
    loop {
        let _ = get(addr, "/random?bytes=512");
        let resp = get(addr, "/healthz");
        if resp.status == 503 {
            assert_eq!(resp.body, b"degraded\n");
            assert_eq!(resp.header("X-Drange-Degraded"), Some("true"));
            break;
        }
        assert!(
            Instant::now() < deadline,
            "degradation never reached /healthz"
        );
        thread::sleep(Duration::from_millis(10));
    }
    // The degraded flag rides /random responses too.
    let resp = get(addr, "/random?bytes=16");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("X-Drange-Degraded"), Some("true"));
    server.shutdown();
}

#[test]
fn rate_limit_returns_429_with_retry_after() {
    let service = prng_service(1 << 16);
    let server = boot(
        Arc::clone(&service),
        ServerConfig {
            rate_limit: Some(RateLimitConfig {
                rate_per_sec: 0.5,
                burst: 2.0,
            }),
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    assert_eq!(get(addr, "/random?bytes=8").status, 200);
    assert_eq!(get(addr, "/random?bytes=8").status, 200);
    let resp = get(addr, "/random?bytes=8");
    assert_eq!(resp.status, 429, "third burst request must be limited");
    let retry: u64 = resp
        .header("Retry-After")
        .expect("429 must carry Retry-After")
        .parse()
        .expect("numeric Retry-After");
    assert!(retry >= 1);
    assert!(
        resp.header("X-Drange-Request-Id").is_some(),
        "even rate-limited responses identify the request"
    );
    // Rejections spend no engine resources and leak nothing.
    assert_eq!(service.outstanding_requests(), 0);
    server.shutdown();
}

#[test]
fn metrics_render_prometheus_with_server_series() {
    let service = prng_service(1 << 16);
    let server = boot(service, ServerConfig::default());
    let addr = server.local_addr();

    let _ = get(addr, "/random?bytes=64");
    let resp = get(addr, "/metrics");
    assert_eq!(resp.status, 200);
    let text = String::from_utf8(resp.body).expect("utf-8 metrics");
    for series in [
        "drange_server_requests_total",
        "drange_server_connections_total",
        "drange_server_bytes_served_total",
        "drange_server_request_latency_ns",
    ] {
        assert!(text.contains(series), "missing series {series}:\n{text}");
    }
    server.shutdown();
}

#[test]
fn client_disconnect_mid_request_leaks_nothing() {
    let service = prng_service(1 << 16);
    let server = boot(
        Arc::clone(&service),
        ServerConfig {
            worker_threads: 2,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    // Fire a request and slam the connection shut without reading the
    // response; the server finishes the fetch, fails the write, and
    // must not leak the request id.
    for _ in 0..4 {
        let mut stream = TcpStream::connect(addr).expect("connect");
        stream
            .write_all(b"GET /random?bytes=4096 HTTP/1.1\r\nHost: t\r\n\r\n")
            .expect("write");
        drop(stream);
    }
    // A full roundtrip afterwards proves the workers survived and
    // drained the aborted work.
    let resp = get(addr, "/random?bytes=16");
    assert_eq!(resp.status, 200);
    let deadline = Instant::now() + Duration::from_secs(10);
    while service.outstanding_requests() != 0 {
        assert!(
            Instant::now() < deadline,
            "aborted connections leaked request ids: {}",
            service.outstanding_requests()
        );
        thread::sleep(Duration::from_millis(10));
    }
    server.shutdown();
}

#[test]
fn debug_endpoints_export_traces_and_request_ids() {
    use drange_core::telemetry::{FlightRecorder, RecorderConfig};
    let recorder = FlightRecorder::with_config(RecorderConfig::default());
    let sources = vec![
        PrngHarvestSource::new(0xCCCC_0003),
        PrngHarvestSource::new(0xDDDD_0004),
    ];
    let service = Arc::new(
        RandomnessService::with_sources_traced(
            sources,
            ServiceConfig {
                queue_capacity: 1 << 16,
                low_watermark: 1 << 12,
                min_entropy: 0.9,
                ..ServiceConfig::default()
            },
            None,
            recorder.tracer(),
        )
        .expect("traced service"),
    );
    let server = Server::bind_with_recorder(
        "127.0.0.1:0".parse().expect("loopback"),
        Arc::clone(&service),
        MetricsRegistry::new(),
        ServerConfig {
            debug_endpoints: true,
            ..ServerConfig::default()
        },
        Some(recorder),
    )
    .expect("bind traced server");
    let addr = server.local_addr();

    for _ in 0..4 {
        let resp = get(addr, "/random?bytes=64");
        assert_eq!(resp.status, 200);
        let id = resp
            .header("X-Drange-Request-Id")
            .expect("200 carries a request id");
        assert_eq!(id.len(), 16, "trace ids are 16 hex digits: {id}");
        assert!(id.chars().all(|c| c.is_ascii_hexdigit()), "{id}");
    }

    // The Chrome export carries the whole span tree: HTTP edge, the
    // coalesced fetch, the service wait, and the engine's pool drain
    // and harvest batches.
    let resp = get(addr, "/debug/trace");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("Content-Type"), Some("application/json"));
    let text = String::from_utf8(resp.body).expect("utf-8 trace json");
    assert!(text.contains("\"traceEvents\""), "{text}");
    for span in [
        "serve.request",
        "serve.parse",
        "serve.admission",
        "serve.fetch",
        "serve.write",
        "service.wait",
        "engine.pool_drain",
        "engine.batch",
        "engine.harvest",
    ] {
        assert!(text.contains(span), "missing span {span} in trace export");
    }

    assert_eq!(get(addr, "/debug/trace?n=5").status, 200);
    assert_eq!(get(addr, "/debug/trace?n=bogus").status, 400);

    let resp = get(addr, "/debug/slow");
    assert_eq!(resp.status, 200);
    let table = String::from_utf8(resp.body).expect("utf-8 slow table");
    assert!(table.contains("rank"), "{table}");
    assert!(table.contains("serve.request"), "{table}");
    server.shutdown();
}

#[test]
fn shutdown_endpoint_stops_the_server_when_enabled() {
    let service = prng_service(1 << 16);
    let server = boot(
        service,
        ServerConfig {
            allow_shutdown: true,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let resp = roundtrip(
        addr,
        "POST /-/shutdown HTTP/1.1\r\nHost: t\r\nContent-Length: 0\r\n\r\n",
    );
    assert_eq!(resp.status, 200);
    // The endpoint raised the stop signal; run_until_stopped must
    // return promptly rather than parking forever.
    let joiner = thread::spawn(move || server.run_until_stopped());
    let deadline = Instant::now() + Duration::from_secs(30);
    while !joiner.is_finished() {
        assert!(Instant::now() < deadline, "server never stopped");
        thread::sleep(Duration::from_millis(10));
    }
    joiner.join().expect("server joined");
}

#[test]
fn source_param_selects_the_tier_and_stamps_the_source_header() {
    let service = prng_service(1 << 16);
    let server = boot(Arc::clone(&service), ServerConfig::default());
    let addr = server.local_addr();

    // Default (no ?source=) is the raw `true` tier.
    let resp = get(addr, "/random?bytes=32");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("X-Drange-Source"), Some("true"));
    assert_eq!(resp.body.len(), 32);

    // Explicit selections stamp their tier.
    let resp = get(addr, "/random?bytes=32&source=true");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("X-Drange-Source"), Some("true"));

    let resp = get(addr, "/random?bytes=32&source=fast");
    assert_eq!(resp.status, 200, "body: {:?}", resp.body);
    assert_eq!(resp.header("X-Drange-Source"), Some("fast"));
    assert_eq!(resp.body.len(), 32);
    assert_eq!(resp.header("Cache-Control"), Some("no-store"));
    assert!(
        resp.header("X-Drange-Request-Id").is_some(),
        "fast responses carry the trace id too"
    );

    // Consecutive fast responses never repeat (fast-key-erasure
    // ratchets between generates).
    let a = get(addr, "/random?bytes=32&source=fast");
    let b = get(addr, "/random?bytes=32&source=fast");
    assert_eq!((a.status, b.status), (200, 200));
    assert_ne!(a.body, b.body, "fast tier repeated output");

    // An unknown source is a client error, not a silent default.
    let resp = get(addr, "/random?bytes=32&source=bogus");
    assert_eq!(resp.status, 400);

    // The fast tier minted DRBG generates and credited entropy.
    let stats = service.drbg_stats().expect("conditioning on by default");
    assert!(stats.generates >= 3, "fast requests mint generates");
    assert!(stats.entropy_credited_bits > 0, "instantiation credited");
    server.shutdown();
}

#[test]
fn default_source_fast_serves_unannotated_requests_from_the_drbg() {
    let service = prng_service(1 << 16);
    let server = boot(
        Arc::clone(&service),
        ServerConfig {
            default_source: SourceMode::Fast,
            ..ServerConfig::default()
        },
    );
    let addr = server.local_addr();

    let resp = get(addr, "/random?bytes=64");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("X-Drange-Source"), Some("fast"));
    assert_eq!(resp.body.len(), 64);
    // Clients can still opt back into raw harvest bits per request.
    let resp = get(addr, "/random?bytes=64&source=true");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("X-Drange-Source"), Some("true"));
    server.shutdown();
}

#[test]
fn fast_requests_against_a_disabled_tier_are_client_errors() {
    let sources = vec![PrngHarvestSource::new(0xEEEE_0005)];
    let service = Arc::new(
        RandomnessService::with_sources(
            sources,
            ServiceConfig {
                queue_capacity: 1 << 16,
                low_watermark: 1 << 12,
                min_entropy: 0.9,
                drbg: None,
            },
        )
        .expect("prng service without conditioning"),
    );
    let server = boot(Arc::clone(&service), ServerConfig::default());
    let addr = server.local_addr();

    let resp = get(addr, "/random?bytes=32&source=fast");
    assert_eq!(resp.status, 400, "body: {:?}", resp.body);
    assert_eq!(resp.header("X-Drange-Source"), Some("fast"));
    // The raw tier is unaffected by the disabled conditioning tier.
    let resp = get(addr, "/random?bytes=32");
    assert_eq!(resp.status, 200);
    assert_eq!(resp.header("X-Drange-Source"), Some("true"));
    server.shutdown();
}

#[test]
fn served_by_source_metrics_split_the_tiers() {
    let sources = vec![
        PrngHarvestSource::new(0xFFFF_0006),
        PrngHarvestSource::new(0xFFFF_0007),
    ];
    let registry = MetricsRegistry::new();
    let service = Arc::new(
        RandomnessService::with_sources_telemetry(
            sources,
            ServiceConfig::default(),
            Some(&registry),
        )
        .expect("prng service"),
    );
    let server = Server::bind(
        "127.0.0.1:0".parse().expect("loopback"),
        Arc::clone(&service),
        registry,
        ServerConfig::default(),
    )
    .expect("bind test server");
    let addr = server.local_addr();

    assert_eq!(get(addr, "/random?bytes=16&source=fast").status, 200);
    assert_eq!(get(addr, "/random?bytes=16&source=fast").status, 200);
    assert_eq!(get(addr, "/random?bytes=16&source=true").status, 200);

    let resp = get(addr, "/metrics");
    let text = String::from_utf8(resp.body).expect("utf-8 metrics");
    assert!(
        text.contains("drange_server_served_total{source=\"fast\"} 2"),
        "missing fast served counter:\n{text}"
    );
    assert!(
        text.contains("drange_server_served_total{source=\"true\"} 1"),
        "missing true served counter:\n{text}"
    );
    // The conditioning tier's own telemetry rides the same registry.
    assert!(
        text.contains("drange_drbg_generates_total"),
        "missing DRBG series:\n{text}"
    );
    server.shutdown();
}
