//! Request coalescing: batch concurrent small reads into one engine
//! request.
//!
//! With many clients asking for a few dozen bytes each, filing one
//! [`RandomnessService::request`] per HTTP request makes every client
//! pay a queue traversal and a pool wakeup for a handful of bits. The
//! [`Coalescer`] uses the classic *combining* pattern instead: callers
//! enqueue a ticket, the first caller to observe no active leader
//! elects itself, drains the ticket queue into one combined
//! `request(total)`, splits the returned buffer back across the
//! tickets, and wakes everyone. Followers never talk to the engine;
//! they park on one condvar until their ticket's result appears.
//!
//! The wait protocol deliberately mirrors the service's own (see
//! `crates/core/tests/loom_service.rs`): every transition a parked
//! thread cares about — a result landing, the leader stepping down —
//! notifies `cv`, and the park predicate re-checks for leaderlessness
//! so a caller whose leader finished before it parked elects itself
//! instead of waiting for a wakeup no thread will send. The only timed
//! wait is the leader's [`RandomnessService::wait_receive_timeout`]
//! against the engine; followers block on completion or leadership,
//! never on the clock.

use std::collections::{HashMap, VecDeque};
use std::time::Duration;

use drange_core::telemetry::{TraceId, Tracer};
use drange_core::{DrangeError, RandomnessService};
use parking_lot::{Condvar, Mutex};

/// Why a fetch did not produce bytes. The server maps these onto the
/// HTTP error contract (`400` / `503 + Retry-After` / `500`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// The request itself is unserviceable (zero/oversized); the
    /// message is the engine's rejection. Maps to `400`.
    Rejected(String),
    /// The pool could not supply the bytes within the fetch timeout —
    /// an underrun. Maps to `503 + Retry-After`.
    Underrun,
    /// The engine failed (all workers retired, hardware error). Maps
    /// to `500`.
    Engine(String),
}

/// A ticket's slot in the combining queue.
#[derive(Debug, Clone, Copy)]
struct Ticket {
    id: u64,
    bytes: usize,
}

#[derive(Debug, Default)]
struct CoalesceInner {
    queue: VecDeque<Ticket>,
    results: HashMap<u64, Result<Vec<u8>, FetchError>>,
    next_ticket: u64,
    leader_active: bool,
    /// Raw [`TraceId`] of the most recent leader's request trace
    /// (0 = none). Advisory: followers annotate their own spans with it
    /// so a trace viewer can jump to the combined fetch that actually
    /// talked to the engine on their behalf.
    leader_trace: u64,
}

/// The combining front-end over [`RandomnessService`].
#[derive(Debug)]
pub struct Coalescer {
    inner: Mutex<CoalesceInner>,
    cv: Condvar,
    /// Requests larger than this bypass coalescing (one engine request
    /// of their own): batching helps many small reads, not bulk pulls.
    max_coalesced_bytes: usize,
    /// Cap on tickets combined into one engine request.
    max_batch_tickets: usize,
    /// Cap on total bytes combined into one engine request.
    max_batch_bytes: usize,
    /// Engine-side wait bound; expiry is an underrun.
    fetch_timeout: Duration,
    /// Span source for fetch/combine instrumentation (noop by default).
    tracer: Tracer,
}

impl Coalescer {
    /// Creates a coalescer. `max_batch_bytes` must leave a combined
    /// request serviceable by the engine (at most the pool capacity in
    /// bytes) — the server's config validation enforces that.
    #[must_use]
    pub fn new(
        max_coalesced_bytes: usize,
        max_batch_tickets: usize,
        max_batch_bytes: usize,
        fetch_timeout: Duration,
    ) -> Self {
        Coalescer {
            inner: Mutex::new(CoalesceInner::default()),
            cv: Condvar::new(),
            max_coalesced_bytes,
            max_batch_tickets: max_batch_tickets.max(1),
            max_batch_bytes: max_batch_bytes.max(1),
            fetch_timeout,
            tracer: Tracer::noop(),
        }
    }

    /// Attaches a tracer: every fetch records a `serve.fetch` span
    /// (mode direct/leader/follower) and each combined engine
    /// round-trip a `serve.combine` span.
    #[must_use]
    pub fn with_tracer(mut self, tracer: Tracer) -> Self {
        self.tracer = tracer;
        self
    }

    /// Fetches `bytes` random bytes, combining with concurrent callers
    /// when the request is small. Blocks until the bytes arrive or the
    /// engine-side wait times out ([`FetchError::Underrun`]).
    pub fn fetch(&self, service: &RandomnessService, bytes: usize) -> Result<Vec<u8>, FetchError> {
        let mut span = self.tracer.span("serve.fetch");
        span.attr_u64("bytes", bytes as u64);
        if bytes > self.max_coalesced_bytes {
            span.attr_str("mode", "direct");
            return self.fetch_direct(service, bytes);
        }
        let ticket = {
            let mut inner = self.inner.lock();
            let id = inner.next_ticket;
            inner.next_ticket = inner.next_ticket.wrapping_add(1);
            inner.queue.push_back(Ticket { id, bytes });
            id
        };
        let mut led = false;
        loop {
            let mut inner = self.inner.lock();
            if let Some(result) = inner.results.remove(&ticket) {
                if span.is_recording() {
                    span.attr_str("mode", if led { "leader" } else { "follower" });
                    if !led {
                        // Advisory: the leader serving this ticket's
                        // batch stamped its trace last; a later batch
                        // may have overwritten it, so this is a hint,
                        // not a guarantee.
                        if let Some(leader) = TraceId::from_u64(inner.leader_trace) {
                            span.attr_str("leader_trace", &format!("{leader}"));
                        }
                    }
                }
                return result;
            }
            if !inner.leader_active {
                // No result and no leader: our ticket is queued with
                // nobody driving — combine and fetch ourselves.
                inner.leader_active = true;
                drop(inner);
                led = true;
                self.lead(service);
                continue;
            }
            self.cv.wait(&mut inner);
        }
    }

    /// One engine round-trip for a request too large to combine.
    fn fetch_direct(
        &self,
        service: &RandomnessService,
        bytes: usize,
    ) -> Result<Vec<u8>, FetchError> {
        let id = service.request(bytes).map_err(reject)?;
        match service.wait_receive_timeout(id, self.fetch_timeout) {
            Ok(Some(buf)) => Ok(buf),
            Ok(None) => {
                // The request would otherwise stay outstanding and an
                // eventual completion would strand bytes in `ready`.
                service.cancel(id);
                Err(FetchError::Underrun)
            }
            Err(e) => {
                service.cancel(id);
                Err(FetchError::Engine(e.to_string()))
            }
        }
    }

    /// Leader duty: drain the ticket queue in combined batches until
    /// it is empty, then step down and wake everyone.
    fn lead(&self, service: &RandomnessService) {
        loop {
            let batch = {
                let mut inner = self.inner.lock();
                let mut batch: Vec<Ticket> = Vec::new();
                let mut total = 0usize;
                while batch.len() < self.max_batch_tickets {
                    let Some(&head) = inner.queue.front() else {
                        break;
                    };
                    if !batch.is_empty() && total + head.bytes > self.max_batch_bytes {
                        break;
                    }
                    inner.queue.pop_front();
                    total += head.bytes;
                    batch.push(head);
                }
                if batch.is_empty() {
                    inner.leader_active = false;
                    drop(inner);
                    self.cv.notify_all();
                    return;
                }
                if let Some(trace) = Tracer::current_trace() {
                    inner.leader_trace = trace.as_u64();
                }
                batch
            };
            let total: usize = batch.iter().map(|t| t.bytes).sum();
            let mut combine_span = self.tracer.span("serve.combine");
            if combine_span.is_recording() {
                combine_span.attr_u64("tickets", batch.len() as u64);
                combine_span.attr_u64("bytes", total as u64);
            }
            let outcome = self.fetch_direct(service, total);
            drop(combine_span);
            {
                let mut inner = self.inner.lock();
                match outcome {
                    Ok(buf) => {
                        let mut offset = 0usize;
                        for ticket in &batch {
                            let slice = buf.get(offset..offset + ticket.bytes).map(<[u8]>::to_vec);
                            offset += ticket.bytes;
                            // The engine returns exactly `total` bytes;
                            // a short buffer would be an engine bug and
                            // is reported, not sliced past.
                            let result = slice.ok_or_else(|| {
                                FetchError::Engine("combined fetch returned short buffer".into())
                            });
                            inner.results.insert(ticket.id, result);
                        }
                    }
                    Err(e) => {
                        for ticket in &batch {
                            inner.results.insert(ticket.id, Err(e.clone()));
                        }
                    }
                }
            }
            self.cv.notify_all();
        }
    }
}

/// Classifies a `request()` error: spec rejections are client errors,
/// everything else is an engine failure.
fn reject(e: DrangeError) -> FetchError {
    match e {
        DrangeError::InvalidSpec(msg) => FetchError::Rejected(msg),
        other => FetchError::Engine(other.to_string()),
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;

    use crate::source::PrngHarvestSource;
    use drange_core::ServiceConfig;

    fn service() -> Arc<RandomnessService> {
        let sources = vec![
            PrngHarvestSource::new(0xD1CE_5EED),
            PrngHarvestSource::new(0xFEED_F00D),
        ];
        Arc::new(
            RandomnessService::with_sources(
                sources,
                ServiceConfig {
                    queue_capacity: 1 << 16,
                    low_watermark: 1 << 12,
                    min_entropy: 0.9,
                },
            )
            .expect("prng service must spawn"),
        )
    }

    #[test]
    fn single_caller_gets_exact_bytes() {
        let svc = service();
        let co = Coalescer::new(1024, 64, 4096, Duration::from_secs(5));
        let buf = co.fetch(&svc, 48).expect("fetch must complete");
        assert_eq!(buf.len(), 48);
    }

    #[test]
    fn concurrent_small_fetches_combine_and_stay_disjoint() {
        let svc = service();
        let co = Arc::new(Coalescer::new(1024, 64, 4096, Duration::from_secs(10)));
        let mut handles = Vec::new();
        for i in 0..16usize {
            let svc = Arc::clone(&svc);
            let co = Arc::clone(&co);
            handles.push(thread::spawn(move || {
                let bytes = 8 + (i % 5) * 4;
                let buf = co.fetch(&svc, bytes).expect("combined fetch");
                assert_eq!(buf.len(), bytes);
                buf
            }));
        }
        let buffers: Vec<Vec<u8>> = handles
            .into_iter()
            .map(|h| h.join().expect("fetch thread"))
            .collect();
        // Splitting one engine buffer across tickets must never hand
        // two callers the same bytes; with a uniform source, any
        // duplicate buffer is an aliasing bug, not a coincidence.
        for a in 0..buffers.len() {
            for b in (a + 1)..buffers.len() {
                if buffers[a].len() == buffers[b].len() && buffers[a].len() >= 8 {
                    assert_ne!(buffers[a], buffers[b], "tickets {a} and {b} alias");
                }
            }
        }
        assert_eq!(svc.outstanding_requests(), 0, "no request id may leak");
    }

    #[test]
    fn oversized_request_is_rejected_not_hung() {
        let svc = service();
        let co = Coalescer::new(1024, 64, 4096, Duration::from_secs(1));
        let out = co.fetch(&svc, 1 << 20);
        assert!(
            matches!(out, Err(FetchError::Rejected(_))),
            "a request beyond pool capacity must be rejected: {out:?}"
        );
        assert_eq!(svc.outstanding_requests(), 0);
    }
}
