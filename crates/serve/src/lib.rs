//! # drange-serve — the network-facing randomness server
//!
//! An HTTP/1.1-over-TCP front-end on [`drange_core::RandomnessService`]
//! built from `std::net` only: an acceptor thread feeds accepted
//! connections through the engine's own [`drange_core::BatchChannel`]
//! to a fixed pool of worker threads, each of which owns a connection
//! for its keep-alive lifetime. Every wait on the serve path is
//! notification-driven — the connection queue, the request coalescer,
//! and the engine pool all park on condvars and are woken by the state
//! transition they wait for; the only clocks are socket read timeouts
//! (protocol idle limits) and the engine-side fetch timeout that maps
//! pool underruns to `503`.
//!
//! ## Endpoints
//!
//! | Endpoint | Method | Success | Failure |
//! |---|---|---|---|
//! | `/random?bytes=N&source=fast\|true` | GET/HEAD | `200` octet-stream | `400` bad/zero/oversized count or unknown/disabled source, `429 + Retry-After` rate limit, `503 + Retry-After` overload/underrun |
//! | `/healthz` | GET | `200 ok` | `503 degraded` |
//! | `/metrics` | GET | `200` Prometheus text | — |
//! | `/-/shutdown` | POST | `200`, then graceful stop | `404` unless enabled |
//! | `/debug/trace?n=N` | GET/HEAD | `200` Chrome trace JSON | `404` unless [`ServerConfig::debug_endpoints`] |
//! | `/debug/slow` | GET/HEAD | `200` slowest-requests table | `404` unless [`ServerConfig::debug_endpoints`] |
//!
//! Every `/random` response — including `429`/`503` rejections —
//! carries `X-Drange-Request-Id`, the request's trace id, so clients
//! can correlate an error with the server-side trace in
//! `/debug/trace`. `/random` and `/healthz` responses that touched
//! engine state also carry `X-Drange-Degraded: true|false`, surfacing
//! the engine's cell-lifecycle degradation to clients that want to
//! react before `/healthz` flips (the `429` path deliberately omits it:
//! rate limiting never reads engine state).
//!
//! ## QoS tiers
//!
//! `/random` serves two sources, selected per request with
//! `?source=fast|true` (default [`ServerConfig::default_source`]):
//!
//! * **`true`** — raw health-screened harvest bits through the
//!   coalescer and the REQUEST/RECEIVE service: every served byte is
//!   physical DRAM entropy, rate-bound by harvest throughput.
//! * **`fast`** — the per-shard ChaCha20 DRBG conditioning tier
//!   ([`drange_core::DrbgFarm`], DESIGN.md §5k): cryptographically
//!   conditioned output continuously reseeded from the same screened
//!   pool, served synchronously (no coalescer, no admission queue) at
//!   rates decoupled from harvest throughput. Requires the service's
//!   conditioning tier ([`drange_core::ServiceConfig::drbg`]); `400`
//!   when disabled.
//!
//! Every `/random` response past the rate limiter carries
//! `X-Drange-Source: fast|true` naming the tier that handled it, so
//! clients and smoke tests can assert which path served them.
//!
//! ## Tracing
//!
//! [`Server::bind_with_recorder`] attaches a
//! [`drange_core::telemetry::FlightRecorder`]: each request then
//! records a span tree — parse, rate limit, admission, coalesced fetch,
//! the service wait, the engine's pool drain, response write — into a
//! bounded in-memory ring, exported at `/debug/trace` (Chrome
//! trace-event JSON) and `/debug/slow` (a human-readable table of the
//! slowest requests). Without a recorder every span is a no-op that
//! never reads the clock.
//!
//! ## Backpressure
//!
//! Load sheds in three layers, cheapest first: the per-IP token bucket
//! (`429`) spends no engine resources; the admission watermark (`503`
//! when the service's pending queue is already deeper than
//! [`ServerConfig::max_pending_requests`]) sheds before parking a
//! worker; and the coalescer's fetch timeout (`503`) bounds how long
//! an admitted request may wait out a pool underrun. Both `503`s
//! advertise [`ServerConfig::retry_after`].

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod coalesce;
pub mod http;
pub mod ratelimit;
pub mod source;

use std::io;
use std::net::{IpAddr, Ipv4Addr, SocketAddr, TcpListener, TcpStream};
use std::sync::Arc;
use std::thread::{self, JoinHandle};
use std::time::{Duration, Instant};

use drange_core::sync::Flag;
use drange_core::telemetry::{
    Counter, FlightRecorder, Gauge, Histogram, MetricsRegistry, TraceId, Tracer,
};
use drange_core::{BatchChannel, RandomnessService};
use parking_lot::{Condvar, Mutex};

pub use coalesce::{Coalescer, FetchError};
pub use http::{Request, Response};
pub use ratelimit::{Admission, RateLimitConfig, RateLimiter};

/// Which randomness tier serves a `/random` request (the
/// `?source=fast|true` query parameter; see the crate docs).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum SourceMode {
    /// Raw health-screened harvest bits via the coalescer and the
    /// REQUEST/RECEIVE service — every byte is physical DRAM entropy.
    #[default]
    True,
    /// The ChaCha20 DRBG conditioning tier, reseeded from the screened
    /// pool — conditioned output at rates decoupled from harvest.
    Fast,
}

impl SourceMode {
    /// The wire name used in `?source=` and `X-Drange-Source`.
    #[must_use]
    pub fn as_str(self) -> &'static str {
        match self {
            SourceMode::True => "true",
            SourceMode::Fast => "fast",
        }
    }

    /// Parses a `?source=` value (`"fast"` / `"true"`).
    #[must_use]
    pub fn parse(raw: &str) -> Option<SourceMode> {
        match raw {
            "true" => Some(SourceMode::True),
            "fast" => Some(SourceMode::Fast),
            _ => None,
        }
    }
}

/// Server tuning knobs. The defaults serve a localhost deployment;
/// benches and tests override the timeouts.
#[derive(Debug, Clone, PartialEq)]
pub struct ServerConfig {
    /// Connection-serving worker threads.
    pub worker_threads: usize,
    /// Accepted connections queued for a free worker before the
    /// acceptor itself blocks (TCP's own backlog absorbs the rest).
    pub connection_backlog: usize,
    /// Keep-alive idle limit: a connection with no next request within
    /// this window is closed (also the slow-header read bound).
    pub keep_alive: Duration,
    /// Bytes served when `/random` has no `bytes` parameter.
    pub default_bytes: usize,
    /// Largest single `/random` request; beyond it is a `400`.
    pub max_request_bytes: usize,
    /// Engine-side wait bound per fetch; expiry is an underrun `503`.
    pub fetch_timeout: Duration,
    /// `Retry-After` advertised on `503` responses.
    pub retry_after: Duration,
    /// Requests at most this large are coalesced into combined engine
    /// requests; larger ones go straight through.
    pub coalesce_max_bytes: usize,
    /// Cap on requests combined into one engine request.
    pub coalesce_max_batch: usize,
    /// Admission watermark: when the service already has this many
    /// pending engine requests, new work is shed with `503`.
    pub max_pending_requests: usize,
    /// Per-IP token bucket; `None` disables rate limiting.
    pub rate_limit: Option<RateLimitConfig>,
    /// Whether `POST /-/shutdown` stops the server (off by default;
    /// meant for supervised deployments and CI smoke tests).
    pub allow_shutdown: bool,
    /// Whether `GET /debug/trace` and `GET /debug/slow` are served (off
    /// by default; they expose request metadata and are meant for
    /// operators, not the public edge). Useful only together with a
    /// flight recorder ([`Server::bind_with_recorder`]).
    pub debug_endpoints: bool,
    /// The tier serving `/random` requests that carry no `?source=`
    /// parameter (default [`SourceMode::True`]: raw harvest bits, the
    /// conservative choice — clients opt *in* to conditioned output).
    pub default_source: SourceMode,
}

impl Default for ServerConfig {
    fn default() -> Self {
        ServerConfig {
            worker_threads: 8,
            connection_backlog: 256,
            keep_alive: Duration::from_secs(5),
            default_bytes: 32,
            max_request_bytes: 64 * 1024,
            fetch_timeout: Duration::from_secs(2),
            retry_after: Duration::from_secs(1),
            coalesce_max_bytes: 1024,
            coalesce_max_batch: 64,
            max_pending_requests: 1024,
            rate_limit: None,
            allow_shutdown: false,
            debug_endpoints: false,
            default_source: SourceMode::True,
        }
    }
}

/// Server-side metric handles (no-ops without a registry).
#[derive(Debug, Clone, Default)]
struct ServerTelemetry {
    connections_total: Counter,
    open_connections: Gauge,
    requests_total: Counter,
    bytes_served: Counter,
    rejected_ratelimit: Counter,
    rejected_overload: Counter,
    rejected_bad_request: Counter,
    underruns: Counter,
    engine_failures: Counter,
    request_latency_ns: Histogram,
    served_true: Counter,
    served_fast: Counter,
}

impl ServerTelemetry {
    fn new(registry: &MetricsRegistry) -> Self {
        let rejected =
            |cause: &str| registry.counter("drange_server_rejected_total", &[("cause", cause)]);
        ServerTelemetry {
            connections_total: registry.counter("drange_server_connections_total", &[]),
            open_connections: registry.gauge("drange_server_open_connections", &[]),
            requests_total: registry.counter("drange_server_requests_total", &[]),
            bytes_served: registry.counter("drange_server_bytes_served_total", &[]),
            rejected_ratelimit: rejected("ratelimit"),
            rejected_overload: rejected("overload"),
            rejected_bad_request: rejected("bad_request"),
            underruns: registry.counter("drange_server_underruns_total", &[]),
            engine_failures: registry.counter("drange_server_engine_failures_total", &[]),
            request_latency_ns: registry.histogram("drange_server_request_latency_ns", &[]),
            served_true: registry.counter("drange_server_served_total", &[("source", "true")]),
            served_fast: registry.counter("drange_server_served_total", &[("source", "fast")]),
        }
    }
}

/// State shared by the acceptor, the workers, and shutdown handles.
#[derive(Debug)]
struct ServerShared {
    service: Arc<RandomnessService>,
    registry: MetricsRegistry,
    config: ServerConfig,
    coalescer: Coalescer,
    limiter: Option<RateLimiter>,
    telemetry: ServerTelemetry,
    /// The trace ring behind `/debug/trace` and `/debug/slow`.
    recorder: Option<FlightRecorder>,
    /// Span source for the request path (noop without a recorder).
    tracer: Tracer,
    /// Raised exactly once; workers and the acceptor observe it at
    /// their next loop head.
    stopping: Flag,
    /// Blocks [`Server::run_until_stopped`] until the stop signal.
    stop_state: Mutex<bool>,
    stop_cv: Condvar,
    /// The accepted-connection queue between acceptor and workers.
    /// Carries [`http::Conn`] (not bare streams) so a rotated
    /// keep-alive connection keeps its pipelined spill bytes.
    connections: BatchChannel<http::Conn>,
    /// Dialed to unblock the acceptor's `accept()` on stop.
    local_addr: SocketAddr,
}

impl ServerShared {
    /// Requests a stop: raise the latch, fail the connection queue's
    /// sender, wake the acceptor with a dummy dial, wake the owner.
    fn signal_stop(&self) {
        self.stopping.raise();
        self.connections.close();
        // An accept() with nobody dialing blocks forever; a throwaway
        // local connection is the portable std-only wakeup.
        let _ = TcpStream::connect_timeout(&self.local_addr, Duration::from_secs(1));
        let mut stopped = self.stop_state.lock();
        *stopped = true;
        drop(stopped);
        self.stop_cv.notify_all();
    }
}

/// A handle that can stop a running [`Server`] from another thread
/// (used by the `/-/shutdown` endpoint and signal handlers).
#[derive(Debug, Clone)]
pub struct ShutdownHandle {
    shared: Arc<ServerShared>,
}

impl ShutdownHandle {
    /// Requests a graceful stop (idempotent).
    pub fn signal(&self) {
        self.shared.signal_stop();
    }
}

/// The running server: an acceptor, a worker pool, and the listener's
/// bound address.
#[derive(Debug)]
pub struct Server {
    shared: Arc<ServerShared>,
    acceptor: Option<JoinHandle<()>>,
    workers: Vec<JoinHandle<()>>,
}

impl Server {
    /// Binds `addr` (port 0 picks a free port) and starts serving
    /// `service`. Engine and server metrics render at `/metrics` when
    /// they share `registry`.
    ///
    /// # Errors
    ///
    /// Propagates socket errors from binding the listener.
    pub fn bind(
        addr: SocketAddr,
        service: Arc<RandomnessService>,
        registry: MetricsRegistry,
        config: ServerConfig,
    ) -> io::Result<Server> {
        Self::bind_with_recorder(addr, service, registry, config, None)
    }

    /// As [`Server::bind`], additionally attaching a [`FlightRecorder`]:
    /// every request records a span tree (parse, rate limit, admission,
    /// fetch, engine wait, write) into the recorder's ring, and —
    /// when [`ServerConfig::debug_endpoints`] is set — `/debug/trace`
    /// and `/debug/slow` export it. The recorder's drop counters
    /// register on `registry` as `drange_trace_*` metrics.
    ///
    /// # Errors
    ///
    /// As [`Server::bind`].
    pub fn bind_with_recorder(
        addr: SocketAddr,
        service: Arc<RandomnessService>,
        registry: MetricsRegistry,
        config: ServerConfig,
        recorder: Option<FlightRecorder>,
    ) -> io::Result<Server> {
        let listener = TcpListener::bind(addr)?;
        let local_addr = listener.local_addr()?;
        let workers = config.worker_threads.max(1);
        let tracer = recorder
            .as_ref()
            .map_or_else(Tracer::noop, FlightRecorder::tracer);
        if let Some(rec) = &recorder {
            rec.attach_metrics(&registry);
        }
        let coalescer = Coalescer::new(
            config.coalesce_max_bytes,
            config.coalesce_max_batch,
            config.coalesce_max_batch.max(1) * config.coalesce_max_bytes.max(1),
            config.fetch_timeout,
        )
        .with_tracer(tracer.clone());
        let limiter = config.rate_limit.map(RateLimiter::new);
        let telemetry = ServerTelemetry::new(&registry);
        let shared = Arc::new(ServerShared {
            service,
            registry,
            coalescer,
            limiter,
            telemetry,
            recorder,
            tracer,
            stopping: Flag::new(),
            stop_state: Mutex::new(false),
            stop_cv: Condvar::new(),
            connections: BatchChannel::new(config.connection_backlog, 1),
            local_addr,
            config,
        });

        let acceptor = thread::Builder::new().name("drange-accept".into()).spawn({
            let shared = Arc::clone(&shared);
            move || acceptor_loop(&shared, &listener)
        })?;
        let mut worker_handles = Vec::with_capacity(workers);
        for i in 0..workers {
            worker_handles.push(
                thread::Builder::new()
                    .name(format!("drange-worker-{i}"))
                    .spawn({
                        let shared = Arc::clone(&shared);
                        move || worker_loop(&shared)
                    })?,
            );
        }
        Ok(Server {
            shared,
            acceptor: Some(acceptor),
            workers: worker_handles,
        })
    }

    /// The address the listener actually bound (resolves port 0).
    #[must_use]
    pub fn local_addr(&self) -> SocketAddr {
        self.shared.local_addr
    }

    /// A cloneable handle that can stop this server from anywhere.
    #[must_use]
    pub fn shutdown_handle(&self) -> ShutdownHandle {
        ShutdownHandle {
            shared: Arc::clone(&self.shared),
        }
    }

    /// Parks until a [`ShutdownHandle::signal`] (e.g. the `/-/shutdown`
    /// endpoint) fires, then joins the threads. The binary's main
    /// thread lives here.
    pub fn run_until_stopped(mut self) {
        {
            let mut stopped = self.shared.stop_state.lock();
            while !*stopped {
                self.shared.stop_cv.wait(&mut stopped);
            }
        }
        self.join_threads();
    }

    /// Stops the server and joins its threads (idempotent with an
    /// earlier `/-/shutdown`). In-flight responses complete; idle
    /// keep-alive connections close within the keep-alive window.
    pub fn shutdown(mut self) {
        self.shared.signal_stop();
        self.join_threads();
    }

    fn join_threads(&mut self) {
        if let Some(acceptor) = self.acceptor.take() {
            let _ = acceptor.join();
        }
        for worker in self.workers.drain(..) {
            let _ = worker.join();
        }
    }
}

impl Drop for Server {
    fn drop(&mut self) {
        if !self.shared.stopping.is_raised() {
            self.shared.signal_stop();
        }
        self.join_threads();
    }
}

/// Accepts connections into the worker queue until stopped.
fn acceptor_loop(shared: &ServerShared, listener: &TcpListener) {
    loop {
        if shared.stopping.is_raised() {
            break;
        }
        match listener.accept() {
            Ok((stream, _peer)) => {
                shared.telemetry.connections_total.inc();
                if shared.stopping.is_raised() {
                    break;
                }
                if shared.connections.send(http::Conn::new(stream)).is_err() {
                    // Queue closed: we are stopping; the stream drops
                    // and the client sees a reset, which is the
                    // documented shutdown behavior for unserved
                    // connections.
                    break;
                }
            }
            Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
            Err(_) => {
                if shared.stopping.is_raised() {
                    break;
                }
                // Transient accept errors (EMFILE under load) — the
                // listener itself is still good; keep accepting.
            }
        }
    }
    shared.connections.retire_sender();
}

/// Serves connections from the queue until it drains after shutdown.
///
/// Fairness: a worker does not own a keep-alive connection for its
/// whole lifetime. After each response, if other connections are
/// queued waiting for a worker, the current one is *rotated* — pushed
/// back onto the queue ([`BatchChannel::try_send`], never blocking) so
/// queued clients are served round-robin instead of starving behind
/// long-lived keep-alive sessions.
fn worker_loop(shared: &ServerShared) {
    while let Some(conn) = shared.connections.recv() {
        if shared.stopping.is_raised() {
            // Drain-and-drop: connections queued behind the stop signal
            // are closed, not served.
            continue;
        }
        shared.telemetry.open_connections.add(1);
        let mut current = Some(conn);
        while let Some(conn) = current.take() {
            if let Some(conn) = serve_connection(shared, conn) {
                if shared.stopping.is_raised() {
                    break;
                }
                if let Err(conn) = shared.connections.try_send(conn) {
                    // No room to rotate (queue refilled or closing):
                    // keep serving this connection ourselves.
                    current = Some(conn);
                }
            }
        }
        shared.telemetry.open_connections.sub(1);
    }
}

/// Serves requests on one connection until it closes (`None`) or
/// yields for rotation (`Some` — the connection is still live and owed
/// to the queue).
fn serve_connection(shared: &ServerShared, mut conn: http::Conn) -> Option<http::Conn> {
    let peer_ip = conn
        .stream()
        .peer_addr()
        .map(|a| a.ip())
        .unwrap_or(IpAddr::V4(Ipv4Addr::UNSPECIFIED));
    if conn
        .stream()
        .set_read_timeout(Some(shared.config.keep_alive))
        .is_err()
    {
        return None;
    }
    loop {
        if shared.stopping.is_raised() {
            return None;
        }
        // Captured before the (possibly idle) socket read so the retro
        // `serve.parse` child bills read+parse time; on a keep-alive
        // connection that includes the wait for the next request.
        let parse_t0 = shared.tracer.clock();
        match conn.read_request() {
            http::ReadOutcome::Request(request) => {
                let keep_alive = request.keep_alive && !shared.stopping.is_raised();
                // Every request gets a trace id — even with a noop
                // tracer, so `X-Drange-Request-Id` is always available
                // for log correlation.
                let trace = TraceId::next();
                let mut span = shared.tracer.root_span("serve.request", trace);
                if span.is_recording() {
                    span.attr_str("method", &request.method);
                    span.attr_str("path", &request.path);
                    span.attr_str("peer", &peer_ip.to_string());
                }
                span.child_since("serve.parse", parse_t0);
                let t0 = shared.telemetry.request_latency_ns.start();
                let mut response = handle_request(shared, &request, peer_ip);
                if request.path == "/random" {
                    response = response.with_header("X-Drange-Request-Id", format!("{trace}"));
                }
                shared.telemetry.requests_total.inc();
                if !keep_alive {
                    response.close = true;
                }
                if request.method == "HEAD" {
                    response.head_only = true;
                }
                let write_t0 = shared.tracer.clock();
                let write_ok = http::write_response(conn.stream(), &response).is_ok();
                span.child_since("serve.write", write_t0);
                if span.is_recording() {
                    span.attr_u64("status", u64::from(response.status));
                }
                drop(span);
                shared.telemetry.request_latency_ns.observe_since(t0);
                if !write_ok || response.close {
                    return None;
                }
                if !shared.connections.is_empty() {
                    return Some(conn);
                }
            }
            http::ReadOutcome::Closed | http::ReadOutcome::TimedOut => return None,
            http::ReadOutcome::Malformed(msg) => {
                let resp = Response::text(400, &format!("bad request: {msg}\n")).closing();
                let _ = http::write_response(conn.stream(), &resp);
                return None;
            }
            http::ReadOutcome::HeadTooLarge => {
                let resp = Response::text(431, "request head too large\n").closing();
                let _ = http::write_response(conn.stream(), &resp);
                return None;
            }
        }
    }
}

/// Routes one parsed request to its endpoint.
fn handle_request(shared: &ServerShared, request: &Request, peer_ip: IpAddr) -> Response {
    match (request.method.as_str(), request.path.as_str()) {
        ("GET" | "HEAD", "/random") => handle_random(shared, request, peer_ip),
        ("GET" | "HEAD", "/healthz") => handle_healthz(shared),
        ("GET" | "HEAD", "/metrics") => Response::text(200, &shared.registry.render_prometheus()),
        ("POST", "/-/shutdown") if shared.config.allow_shutdown => {
            shared.signal_stop();
            Response::text(200, "shutting down\n").closing()
        }
        ("GET" | "HEAD", "/debug/trace") if shared.config.debug_endpoints => {
            handle_debug_trace(shared, request)
        }
        ("GET" | "HEAD", "/debug/slow") if shared.config.debug_endpoints => {
            match &shared.recorder {
                Some(rec) => Response::text(200, &rec.render_slow_table()),
                None => Response::text(404, "no flight recorder attached\n"),
            }
        }
        (_, "/random" | "/healthz" | "/metrics") => {
            Response::text(405, "method not allowed\n").with_header("Allow", "GET, HEAD".into())
        }
        (_, "/debug/trace" | "/debug/slow") if shared.config.debug_endpoints => {
            Response::text(405, "method not allowed\n").with_header("Allow", "GET, HEAD".into())
        }
        _ => Response::text(404, "not found\n"),
    }
}

/// `GET /debug/trace?n=N` — Chrome trace-event JSON from the flight
/// recorder's ring (`?n=` keeps only the most recent N spans). Load it
/// in `chrome://tracing` or Perfetto.
fn handle_debug_trace(shared: &ServerShared, request: &Request) -> Response {
    let Some(rec) = &shared.recorder else {
        return Response::text(404, "no flight recorder attached\n");
    };
    let last_n = match request.query_param("n") {
        None => None,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => Some(n),
            Err(_) => return Response::text(400, "n must be a non-negative integer\n"),
        },
    };
    Response::new(
        200,
        "application/json",
        rec.render_chrome_trace(last_n).into_bytes(),
    )
}

/// `GET /random?bytes=N` — the randomness endpoint.
fn handle_random(shared: &ServerShared, request: &Request, peer_ip: IpAddr) -> Response {
    let tel = &shared.telemetry;
    let retry_after_secs = shared.config.retry_after.as_secs().max(1).to_string();

    if let Some(limiter) = &shared.limiter {
        let mut limit_span = shared.tracer.span("serve.ratelimit");
        // xtask:allow(instant-hot-path) -- the token bucket needs the real wall clock; the span clock is only live with a recorder
        if let Admission::Limited { retry_after } = limiter.check_at(peer_ip, Instant::now()) {
            limit_span.attr_bool("limited", true);
            drop(limit_span);
            tel.rejected_ratelimit.inc();
            // No `X-Drange-Degraded` here by design: the rate-limit
            // path must stay the cheapest rejection and never touch
            // engine state.
            return Response::text(429, "rate limit exceeded\n")
                .with_header("Retry-After", retry_after.as_secs().max(1).to_string());
        }
    }

    let source = match request.query_param("source") {
        None => shared.config.default_source,
        Some(raw) => match SourceMode::parse(raw) {
            Some(mode) => mode,
            None => {
                tel.rejected_bad_request.inc();
                return Response::text(400, "source must be `fast` or `true`\n");
            }
        },
    };
    let bytes = match request.query_param("bytes") {
        None => shared.config.default_bytes,
        Some(raw) => match raw.parse::<usize>() {
            Ok(n) => n,
            Err(_) => {
                tel.rejected_bad_request.inc();
                return Response::text(400, "bytes must be a non-negative integer\n");
            }
        },
    };
    if bytes == 0 {
        tel.rejected_bad_request.inc();
        return Response::text(400, "bytes must be at least 1\n");
    }
    if bytes > shared.config.max_request_bytes {
        tel.rejected_bad_request.inc();
        return Response::text(
            400,
            &format!(
                "bytes exceeds the per-request limit of {}\n",
                shared.config.max_request_bytes
            ),
        );
    }
    if source == SourceMode::Fast {
        return handle_fast(shared, bytes)
            .with_header("X-Drange-Source", SourceMode::Fast.as_str().into());
    }
    let degraded = shared.service.is_degraded();
    let mut admit_span = shared.tracer.span("serve.admission");
    let pending = shared.service.pending_requests();
    if admit_span.is_recording() {
        admit_span.attr_u64("bytes", bytes as u64);
        admit_span.attr_u64("pending", pending as u64);
    }
    if pending >= shared.config.max_pending_requests {
        admit_span.attr_bool("shed", true);
        drop(admit_span);
        tel.rejected_overload.inc();
        return Response::text(503, "server overloaded\n")
            .with_header("Retry-After", retry_after_secs)
            .with_header("X-Drange-Degraded", degraded.to_string());
    }
    drop(admit_span);

    let response = match shared.coalescer.fetch(&shared.service, bytes) {
        Ok(body) => {
            tel.bytes_served.add(body.len() as u64);
            tel.served_true.inc();
            Response::new(200, "application/octet-stream", body)
                .with_header("X-Drange-Degraded", degraded.to_string())
                .with_header("Cache-Control", "no-store".into())
        }
        Err(FetchError::Rejected(msg)) => {
            tel.rejected_bad_request.inc();
            Response::text(400, &format!("unserviceable request: {msg}\n"))
        }
        Err(FetchError::Underrun) => {
            tel.underruns.inc();
            Response::text(503, "randomness pool underrun\n")
                .with_header("Retry-After", retry_after_secs)
                .with_header("X-Drange-Degraded", degraded.to_string())
        }
        Err(FetchError::Engine(msg)) => {
            tel.engine_failures.inc();
            Response::text(500, &format!("engine failure: {msg}\n"))
                .with_header("X-Drange-Degraded", degraded.to_string())
                .closing()
        }
    };
    response.with_header("X-Drange-Source", SourceMode::True.as_str().into())
}

/// The `fast` tier: a synchronous DRBG generate — no coalescer, no
/// admission queue, no engine wait. The farm's own shard mutexes are
/// the only contention point, so this path's throughput is decoupled
/// from harvest rate (reseeds draw from the pool on their interval,
/// not per request).
fn handle_fast(shared: &ServerShared, bytes: usize) -> Response {
    let tel = &shared.telemetry;
    let retry_after_secs = shared.config.retry_after.as_secs().max(1).to_string();
    let mut span = shared.tracer.span("serve.fast");
    if span.is_recording() {
        span.attr_u64("bytes", bytes as u64);
    }
    match shared.service.generate_fast(bytes) {
        Ok(body) => {
            drop(span);
            tel.bytes_served.add(body.len() as u64);
            tel.served_fast.inc();
            Response::new(200, "application/octet-stream", body)
                .with_header("Cache-Control", "no-store".into())
        }
        Err(e) => {
            span.attr_bool("failed", true);
            drop(span);
            match e {
                drange_core::DrangeError::InvalidSpec(msg) => {
                    tel.rejected_bad_request.inc();
                    Response::text(400, &format!("unserviceable request: {msg}\n"))
                }
                // The shard has never been seeded and its first reseed
                // is blocked (health trip) or starved (pool timeout):
                // retryable, the same contract as a pool underrun.
                drange_core::DrangeError::Unhealthy(msg) => {
                    tel.underruns.inc();
                    Response::text(503, &format!("conditioning tier unhealthy: {msg}\n"))
                        .with_header("Retry-After", retry_after_secs)
                }
                drange_core::DrangeError::Engine(msg) => {
                    tel.underruns.inc();
                    Response::text(503, &format!("conditioning tier starved: {msg}\n"))
                        .with_header("Retry-After", retry_after_secs)
                }
                other => {
                    tel.engine_failures.inc();
                    Response::text(500, &format!("engine failure: {other}\n")).closing()
                }
            }
        }
    }
}

/// `GET /healthz` — liveness plus degradation.
fn handle_healthz(shared: &ServerShared) -> Response {
    let degraded = shared.service.is_degraded();
    let response = if degraded {
        Response::text(503, "degraded\n")
    } else {
        Response::text(200, "ok\n")
    };
    response.with_header("X-Drange-Degraded", degraded.to_string())
}
