//! Per-client token-bucket rate limiting, keyed by peer IP.
//!
//! Each client address owns a bucket holding up to `burst` tokens,
//! refilled continuously at `rate_per_sec`. A request spends one
//! token; an empty bucket means `429 Too Many Requests` with a
//! `Retry-After` telling the client when one token will have refilled.
//!
//! The clock is passed in by the caller ([`RateLimiter::check_at`])
//! so the policy is a pure state machine and deterministically
//! testable; the server calls it with the timestamp it already took
//! for the request-latency histogram.

use std::collections::HashMap;
use std::net::IpAddr;
use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Bucket table size at which fully-refilled (idle) entries are
/// evicted, bounding memory under address churn.
const PRUNE_AT: usize = 4096;

/// Token-bucket policy parameters.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct RateLimitConfig {
    /// Sustained requests per second granted to each client address.
    pub rate_per_sec: f64,
    /// Bucket capacity: how many requests may burst above the rate.
    pub burst: f64,
}

impl Default for RateLimitConfig {
    fn default() -> Self {
        RateLimitConfig {
            rate_per_sec: 100.0,
            burst: 200.0,
        }
    }
}

/// Outcome of admitting one request.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum Admission {
    /// A token was spent; serve the request.
    Admitted,
    /// Bucket empty; retry after the embedded delay.
    Limited {
        /// Time until one token will have refilled.
        retry_after: Duration,
    },
}

#[derive(Debug, Clone, Copy)]
struct Bucket {
    tokens: f64,
    refilled_at: Instant,
}

/// The per-IP token-bucket table.
#[derive(Debug)]
pub struct RateLimiter {
    config: RateLimitConfig,
    buckets: Mutex<HashMap<IpAddr, Bucket>>,
}

impl RateLimiter {
    /// Creates a limiter with the given policy. A non-positive rate or
    /// burst is clamped to a minimal working policy rather than
    /// dividing by zero.
    #[must_use]
    pub fn new(config: RateLimitConfig) -> Self {
        let config = RateLimitConfig {
            rate_per_sec: config.rate_per_sec.max(1e-6),
            burst: config.burst.max(1.0),
        };
        RateLimiter {
            config,
            buckets: Mutex::new(HashMap::new()),
        }
    }

    /// Admits or limits one request from `client` at time `now`.
    pub fn check_at(&self, client: IpAddr, now: Instant) -> Admission {
        let mut buckets = self.buckets.lock();
        if buckets.len() >= PRUNE_AT && !buckets.contains_key(&client) {
            let (rate, burst) = (self.config.rate_per_sec, self.config.burst);
            buckets.retain(|_, b| {
                let refilled = b.tokens + now.duration_since(b.refilled_at).as_secs_f64() * rate;
                refilled < burst
            });
        }
        let bucket = buckets.entry(client).or_insert(Bucket {
            tokens: self.config.burst,
            refilled_at: now,
        });
        let elapsed = now.duration_since(bucket.refilled_at).as_secs_f64();
        bucket.tokens = (bucket.tokens + elapsed * self.config.rate_per_sec).min(self.config.burst);
        bucket.refilled_at = now;
        if bucket.tokens >= 1.0 {
            bucket.tokens -= 1.0;
            Admission::Admitted
        } else {
            let deficit = 1.0 - bucket.tokens;
            Admission::Limited {
                retry_after: Duration::from_secs_f64(deficit / self.config.rate_per_sec),
            }
        }
    }

    /// Number of tracked client addresses (for tests and metrics).
    #[must_use]
    pub fn tracked_clients(&self) -> usize {
        self.buckets.lock().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn ip(last: u8) -> IpAddr {
        IpAddr::from([127, 0, 0, last])
    }

    #[test]
    fn burst_then_limited_then_refilled() {
        let rl = RateLimiter::new(RateLimitConfig {
            rate_per_sec: 10.0,
            burst: 2.0,
        });
        let t0 = Instant::now();
        assert_eq!(rl.check_at(ip(1), t0), Admission::Admitted);
        assert_eq!(rl.check_at(ip(1), t0), Admission::Admitted);
        let Admission::Limited { retry_after } = rl.check_at(ip(1), t0) else {
            panic!("third instant request must be limited");
        };
        // One token refills in 1/rate = 100 ms.
        assert!(retry_after <= Duration::from_millis(100));
        let later = t0 + Duration::from_millis(150);
        assert_eq!(rl.check_at(ip(1), later), Admission::Admitted);
    }

    #[test]
    fn clients_are_independent() {
        let rl = RateLimiter::new(RateLimitConfig {
            rate_per_sec: 1.0,
            burst: 1.0,
        });
        let t0 = Instant::now();
        assert_eq!(rl.check_at(ip(1), t0), Admission::Admitted);
        assert!(matches!(rl.check_at(ip(1), t0), Admission::Limited { .. }));
        assert_eq!(
            rl.check_at(ip(2), t0),
            Admission::Admitted,
            "a hot neighbor must not starve another client"
        );
    }

    #[test]
    fn tokens_cap_at_burst() {
        let rl = RateLimiter::new(RateLimitConfig {
            rate_per_sec: 1000.0,
            burst: 1.0,
        });
        let t0 = Instant::now();
        let much_later = t0 + Duration::from_secs(3600);
        assert_eq!(rl.check_at(ip(1), t0), Admission::Admitted);
        assert_eq!(rl.check_at(ip(1), much_later), Admission::Admitted);
        assert!(
            matches!(rl.check_at(ip(1), much_later), Admission::Limited { .. }),
            "an idle hour must refill to burst, not to rate*3600"
        );
    }

    #[test]
    fn degenerate_config_is_clamped() {
        let rl = RateLimiter::new(RateLimitConfig {
            rate_per_sec: 0.0,
            burst: -3.0,
        });
        let t0 = Instant::now();
        assert_eq!(rl.check_at(ip(9), t0), Admission::Admitted);
        assert!(matches!(rl.check_at(ip(9), t0), Admission::Limited { .. }));
    }
}
