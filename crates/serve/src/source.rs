//! Harvest sources for serving without a full DRAM simulation.
//!
//! The server is source-agnostic — production deployments wrap the
//! simulated DRAM channels ([`drange_core::channel_sources`]) — but
//! integration tests, CI smoke runs, and the `server_load` bench need
//! sources that are fast, deterministic, and scriptable:
//!
//! * [`PrngHarvestSource`] — a splitmix64 bit firehose whose output
//!   passes the engine's health screening, for measuring the *server*
//!   rather than the simulated device.
//! * [`ScriptedSource`] — the same firehose behind a [`ScriptedState`]
//!   handle that can throttle harvesting (to force pool underruns) and
//!   raise the degraded flag (to drive `/healthz` and the
//!   `X-Drange-Degraded` header) from the test thread.

use std::sync::Arc;
use std::time::Duration;

use drange_core::engine::HarvestSource;
use drange_core::lifecycle::LifecycleStats;
use drange_core::sync::Flag;
use drange_core::{BitBlock, Result};

/// Bits per harvested batch for the PRNG sources. Small enough that a
/// throttled source refills slowly, large enough to amortize the
/// engine's per-batch bookkeeping.
const BATCH_BITS: usize = 4096;

/// splitmix64 step.
fn splitmix(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// A deterministic uniform bit source (splitmix64), one batch of
/// `BATCH_BITS` (4096) per harvest call.
#[derive(Debug)]
pub struct PrngHarvestSource {
    state: u64,
}

impl PrngHarvestSource {
    /// Creates a source from a seed; distinct seeds give independent
    /// streams.
    #[must_use]
    pub fn new(seed: u64) -> Self {
        PrngHarvestSource { state: seed }
    }

    fn batch(&mut self) -> BitBlock {
        let mut block = BitBlock::with_capacity(BATCH_BITS);
        for _ in 0..BATCH_BITS / 64 {
            block.push_bits(splitmix(&mut self.state), 64);
        }
        block
    }
}

impl HarvestSource for PrngHarvestSource {
    fn harvest_batch(&mut self) -> Result<BitBlock> {
        Ok(self.batch())
    }
}

/// Shared control handle for [`ScriptedSource`]: the test side raises
/// latches, the harvesting side observes them on its next batch. Both
/// latches are one-way ([`Flag`]) — the scripted scenarios only ever
/// escalate (healthy → throttled, healthy → degraded), which keeps the
/// handle free of raw atomics.
#[derive(Debug, Default)]
pub struct ScriptedState {
    throttle: Flag,
    degraded: Flag,
}

impl ScriptedState {
    /// Creates a handle with nothing raised.
    #[must_use]
    pub fn new() -> Arc<Self> {
        Arc::new(ScriptedState::default())
    }

    /// From now on, every harvested batch costs `ScriptedSource`'s
    /// configured delay — the pool refills slower than clients drain
    /// it, forcing underruns.
    pub fn throttle(&self) {
        self.throttle.raise();
    }

    /// From now on, the source reports a degraded cell population.
    pub fn degrade(&self) {
        self.degraded.raise();
    }
}

/// A [`PrngHarvestSource`] with scriptable throttling and degradation.
#[derive(Debug)]
pub struct ScriptedSource {
    prng: PrngHarvestSource,
    state: Arc<ScriptedState>,
    throttle_delay: Duration,
}

impl ScriptedSource {
    /// Creates a source observing `state`. While the throttle latch is
    /// raised, each batch takes at least `throttle_delay`.
    #[must_use]
    pub fn new(seed: u64, state: Arc<ScriptedState>, throttle_delay: Duration) -> Self {
        ScriptedSource {
            prng: PrngHarvestSource::new(seed),
            state,
            throttle_delay,
        }
    }
}

impl HarvestSource for ScriptedSource {
    fn harvest_batch(&mut self) -> Result<BitBlock> {
        if self.state.throttle.is_raised() {
            std::thread::sleep(self.throttle_delay);
        }
        self.prng.harvest_batch()
    }

    fn lifecycle_stats(&self) -> Option<LifecycleStats> {
        Some(LifecycleStats {
            live_cells: 64,
            degraded: self.state.degraded.is_raised(),
            ..LifecycleStats::default()
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn prng_batches_are_full_and_distinct() {
        let mut s = PrngHarvestSource::new(7);
        let a = s.harvest_batch().unwrap();
        let b = s.harvest_batch().unwrap();
        assert_eq!(a.len(), BATCH_BITS);
        assert_eq!(b.len(), BATCH_BITS);
        assert_ne!(a.words(), b.words(), "consecutive batches must differ");
    }

    #[test]
    fn prng_bits_are_roughly_balanced() {
        let mut s = PrngHarvestSource::new(99);
        let block = s.harvest_batch().unwrap();
        let ones: usize = block.iter().filter(|&b| b).count();
        let frac = ones as f64 / block.len() as f64;
        assert!(
            (0.4..=0.6).contains(&frac),
            "splitmix output should pass health screening, got ones fraction {frac}"
        );
    }

    #[test]
    fn scripted_source_reports_degradation() {
        let state = ScriptedState::new();
        let src = ScriptedSource::new(1, Arc::clone(&state), Duration::from_millis(1));
        assert!(!src.lifecycle_stats().unwrap().degraded);
        state.degrade();
        assert!(src.lifecycle_stats().unwrap().degraded);
    }
}
