//! `drange-serve` — serve D-RaNGe randomness over HTTP.
//!
//! ```sh
//! drange-serve [--addr 127.0.0.1:7878] [--threads 8]
//!              [--source prng|sim] [--seed 1] [--channels 2]
//!              [--queue-bits 65536] [--fetch-timeout-ms 2000]
//!              [--rate-limit RPS[:BURST]] [--allow-remote-shutdown]
//!              [--debug-endpoints] [--trace-threshold-ms N]
//! ```
//!
//! `--source sim` profiles and identifies RNG cells on the simulated
//! DRAM first (seconds of startup); `--source prng` (the default)
//! serves a deterministic PRNG stream through the same engine, which
//! is what CI smoke tests and load benches want.

use std::net::SocketAddr;
use std::process::ExitCode;
use std::sync::Arc;
use std::time::Duration;

use dram_sim::{DeviceConfig, Manufacturer};
use drange_core::telemetry::{FlightRecorder, MetricsRegistry, RecorderConfig, Tracer};
use drange_core::{
    channel_sources, DRangeConfig, DrbgConfig, IdentifySpec, ProfileSpec, Profiler,
    RandomnessService, RngCellCatalog, ServiceConfig,
};
use drange_serve::source::PrngHarvestSource;
use drange_serve::{RateLimitConfig, Server, ServerConfig, SourceMode};
use memctrl::MemoryController;

struct Cli {
    addr: SocketAddr,
    threads: usize,
    source: String,
    seed: u64,
    channels: usize,
    queue_bits: usize,
    fetch_timeout: Duration,
    rate_limit: Option<RateLimitConfig>,
    allow_shutdown: bool,
    debug_endpoints: bool,
    trace_threshold: Option<Duration>,
    conditioning: bool,
    default_source: SourceMode,
}

/// `Ok(None)` means `--help` was handled and the process should exit
/// successfully without starting a server.
fn parse_cli() -> Result<Option<Cli>, String> {
    let mut cli = Cli {
        addr: "127.0.0.1:7878".parse().expect("literal addr"),
        threads: 8,
        source: "prng".into(),
        seed: 1,
        channels: 2,
        queue_bits: 1 << 16,
        fetch_timeout: Duration::from_millis(2000),
        rate_limit: None,
        allow_shutdown: false,
        debug_endpoints: false,
        trace_threshold: None,
        conditioning: true,
        default_source: SourceMode::True,
    };
    let mut args = std::env::args().skip(1);
    while let Some(arg) = args.next() {
        let mut value = |name: &str| args.next().ok_or_else(|| format!("{name} needs a value"));
        match arg.as_str() {
            "--addr" => {
                cli.addr = value("--addr")?
                    .parse()
                    .map_err(|e| format!("--addr: {e}"))?
            }
            "--threads" => {
                cli.threads = value("--threads")?
                    .parse()
                    .map_err(|e| format!("--threads: {e}"))?;
            }
            "--source" => cli.source = value("--source")?,
            "--seed" => {
                cli.seed = value("--seed")?
                    .parse()
                    .map_err(|e| format!("--seed: {e}"))?
            }
            "--channels" => {
                cli.channels = value("--channels")?
                    .parse()
                    .map_err(|e| format!("--channels: {e}"))?;
            }
            "--queue-bits" => {
                cli.queue_bits = value("--queue-bits")?
                    .parse()
                    .map_err(|e| format!("--queue-bits: {e}"))?;
            }
            "--fetch-timeout-ms" => {
                let ms: u64 = value("--fetch-timeout-ms")?
                    .parse()
                    .map_err(|e| format!("--fetch-timeout-ms: {e}"))?;
                cli.fetch_timeout = Duration::from_millis(ms);
            }
            "--rate-limit" => {
                let spec = value("--rate-limit")?;
                let (rate, burst) = match spec.split_once(':') {
                    Some((r, b)) => (
                        r.parse().map_err(|e| format!("--rate-limit rate: {e}"))?,
                        b.parse().map_err(|e| format!("--rate-limit burst: {e}"))?,
                    ),
                    None => {
                        let r: f64 = spec.parse().map_err(|e| format!("--rate-limit: {e}"))?;
                        (r, r * 2.0)
                    }
                };
                cli.rate_limit = Some(RateLimitConfig {
                    rate_per_sec: rate,
                    burst,
                });
            }
            "--allow-remote-shutdown" => cli.allow_shutdown = true,
            "--debug-endpoints" => cli.debug_endpoints = true,
            "--no-conditioning" => cli.conditioning = false,
            "--default-source" => {
                let raw = value("--default-source")?;
                cli.default_source = SourceMode::parse(&raw)
                    .ok_or_else(|| format!("--default-source must be fast|true, got `{raw}`"))?;
            }
            "--trace-threshold-ms" => {
                let ms: u64 = value("--trace-threshold-ms")?
                    .parse()
                    .map_err(|e| format!("--trace-threshold-ms: {e}"))?;
                cli.trace_threshold = Some(Duration::from_millis(ms));
            }
            "--help" | "-h" => {
                println!(
                    "drange-serve: HTTP randomness server over the D-RaNGe engine\n\n\
                     options:\n  \
                     --addr HOST:PORT          listen address (127.0.0.1:7878)\n  \
                     --threads N               worker threads (8)\n  \
                     --source prng|sim         bit source (prng)\n  \
                     --seed N                  source seed (1)\n  \
                     --channels N              simulated channels for --source sim (2)\n  \
                     --queue-bits N            engine pool capacity in bits (65536)\n  \
                     --fetch-timeout-ms N      engine wait before 503 (2000)\n  \
                     --rate-limit RPS[:BURST]  per-IP token bucket (off)\n  \
                     --allow-remote-shutdown   enable POST /-/shutdown\n  \
                     --no-conditioning         disable the ChaCha20 DRBG fast tier\n  \
                     --default-source MODE     tier for /random without ?source= — fast|true (true)\n  \
                     --debug-endpoints         enable GET /debug/trace and /debug/slow\n  \
                     --trace-threshold-ms N    record only traces slower than N ms\n  \
                     \x20                          (default: record every trace)"
                );
                return Ok(None);
            }
            other => return Err(format!("unknown argument `{other}` (try --help)")),
        }
    }
    Ok(Some(cli))
}

fn build_service(
    cli: &Cli,
    registry: &MetricsRegistry,
    tracer: Tracer,
) -> Result<RandomnessService, String> {
    let service_config = ServiceConfig {
        queue_capacity: cli.queue_bits,
        low_watermark: (cli.queue_bits / 16).max(1),
        min_entropy: 0.9,
        drbg: cli.conditioning.then(DrbgConfig::default),
    };
    match cli.source.as_str() {
        "prng" => {
            let sources: Vec<PrngHarvestSource> = (0..cli.channels.max(1))
                .map(|i| PrngHarvestSource::new(cli.seed.wrapping_add(i as u64)))
                .collect();
            RandomnessService::with_sources_traced(sources, service_config, Some(registry), tracer)
                .map_err(|e| e.to_string())
        }
        "sim" => {
            let device = DeviceConfig::new(Manufacturer::A).with_seed(cli.seed);
            let mut ctrl = MemoryController::from_config(device.clone());
            eprintln!("profiling the simulated device (seed {})...", cli.seed);
            let profile = Profiler::new(&mut ctrl)
                .run(ProfileSpec::default())
                .map_err(|e| format!("profiling failed: {e}"))?;
            let catalog = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())
                .map_err(|e| format!("identification failed: {e}"))?;
            let sources = channel_sources(
                &device,
                &catalog,
                &DRangeConfig::default(),
                cli.channels.max(1),
            )
            .map_err(|e| format!("channel setup failed: {e}"))?;
            RandomnessService::with_sources_traced(sources, service_config, Some(registry), tracer)
                .map_err(|e| e.to_string())
        }
        other => Err(format!("unknown --source `{other}` (prng|sim)")),
    }
}

fn main() -> ExitCode {
    let cli = match parse_cli() {
        Ok(Some(cli)) => cli,
        Ok(None) => return ExitCode::SUCCESS,
        Err(e) => {
            eprintln!("drange-serve: {e}");
            return ExitCode::from(2);
        }
    };
    let registry = MetricsRegistry::new();
    // The flight recorder rides along with the debug endpoints: without
    // them there is nobody to read the ring, so the tracer stays noop
    // and the span plumbing costs nothing.
    let recorder = cli.debug_endpoints.then(|| {
        FlightRecorder::with_config(RecorderConfig {
            latency_threshold: cli.trace_threshold,
            ..RecorderConfig::default()
        })
    });
    let tracer = recorder
        .as_ref()
        .map_or_else(Tracer::noop, FlightRecorder::tracer);
    let service = match build_service(&cli, &registry, tracer) {
        Ok(service) => Arc::new(service),
        Err(e) => {
            eprintln!("drange-serve: {e}");
            return ExitCode::FAILURE;
        }
    };
    let config = ServerConfig {
        worker_threads: cli.threads,
        fetch_timeout: cli.fetch_timeout,
        rate_limit: cli.rate_limit,
        allow_shutdown: cli.allow_shutdown,
        debug_endpoints: cli.debug_endpoints,
        default_source: cli.default_source,
        ..ServerConfig::default()
    };
    let server = match Server::bind_with_recorder(cli.addr, service, registry, config, recorder) {
        Ok(server) => server,
        Err(e) => {
            eprintln!("drange-serve: cannot bind {}: {e}", cli.addr);
            return ExitCode::FAILURE;
        }
    };
    println!(
        "drange-serve listening on http://{} (source: {}, {} workers)",
        server.local_addr(),
        cli.source,
        cli.threads.max(1),
    );
    server.run_until_stopped();
    println!("drange-serve stopped");
    ExitCode::SUCCESS
}
