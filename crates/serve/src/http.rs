//! A deliberately small HTTP/1.1 subset over `std::net::TcpStream`.
//!
//! The server speaks exactly what its endpoints need: request line +
//! headers (bounded), an optional discarded body, keep-alive
//! semantics, and plain `Content-Length` responses. No chunked
//! encoding, no continuation lines, no percent-decoding — `bytes=N`
//! query strings never need it. Anything outside the subset is
//! answered with `400`/`431` and the connection is closed, which is
//! the safe failure mode for a randomness endpoint.
//!
//! Reads go through [`Conn`], which carries the spill buffer between
//! keep-alive requests so pipelined bytes are never dropped on the
//! floor.

use std::io::{self, Read, Write};
use std::net::TcpStream;

/// Upper bound on the request head (request line + headers).
pub const MAX_HEAD_BYTES: usize = 8 * 1024;

/// Upper bound on a request body we are willing to read-and-discard.
pub const MAX_BODY_BYTES: usize = 64 * 1024;

/// One parsed request head.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// Upper-cased method token (`GET`, `POST`, …).
    pub method: String,
    /// Decoded-enough path: the target up to `?`.
    pub path: String,
    /// Raw query pairs, split on `&` and `=` (no percent-decoding).
    pub query: Vec<(String, String)>,
    /// Header names lower-cased, values trimmed.
    pub headers: Vec<(String, String)>,
    /// Whether the connection should be kept open after the response.
    pub keep_alive: bool,
}

impl Request {
    /// First value of the query parameter `name`, if present.
    #[must_use]
    pub fn query_param(&self, name: &str) -> Option<&str> {
        self.query
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }

    /// First value of the (lower-cased) header `name`, if present.
    #[must_use]
    pub fn header(&self, name: &str) -> Option<&str> {
        self.headers
            .iter()
            .find(|(k, _)| k == name)
            .map(|(_, v)| v.as_str())
    }
}

/// What one attempt to read a request produced.
#[derive(Debug)]
pub enum ReadOutcome {
    /// A complete, parseable request head (body already discarded).
    Request(Request),
    /// Clean EOF before any byte of a new request — the client hung
    /// up between requests, which is not an error.
    Closed,
    /// The socket's read timeout elapsed (keep-alive idle timeout).
    TimedOut,
    /// Bytes arrived but did not form a request within the subset.
    Malformed(&'static str),
    /// The head outgrew [`MAX_HEAD_BYTES`].
    HeadTooLarge,
}

/// A connection with its spill buffer: bytes read past the end of one
/// request head are kept for the next request on the same connection.
#[derive(Debug)]
pub struct Conn {
    stream: TcpStream,
    spill: Vec<u8>,
}

impl Conn {
    /// Wraps an accepted stream.
    #[must_use]
    pub fn new(stream: TcpStream) -> Self {
        Conn {
            stream,
            spill: Vec::new(),
        }
    }

    /// The underlying stream (for writes and socket options).
    pub fn stream(&mut self) -> &mut TcpStream {
        &mut self.stream
    }

    /// Reads and parses the next request on this connection.
    pub fn read_request(&mut self) -> ReadOutcome {
        let head_end = loop {
            if let Some(end) = find_head_end(&self.spill) {
                break end;
            }
            if self.spill.len() >= MAX_HEAD_BYTES {
                return ReadOutcome::HeadTooLarge;
            }
            let mut chunk = [0u8; 2048];
            match self.stream.read(&mut chunk) {
                Ok(0) => {
                    if self.spill.is_empty() {
                        return ReadOutcome::Closed;
                    }
                    return ReadOutcome::Malformed("eof inside request head");
                }
                Ok(n) => self.spill.extend_from_slice(&chunk[..n]),
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return ReadOutcome::TimedOut;
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return ReadOutcome::Closed,
            }
        };
        let head: Vec<u8> = self.spill.drain(..head_end).collect();
        let request = match parse_head(&head) {
            Ok(r) => r,
            Err(msg) => return ReadOutcome::Malformed(msg),
        };
        let body_len = match request
            .header("content-length")
            .map(str::parse::<usize>)
            .transpose()
        {
            Ok(n) => n.unwrap_or(0),
            Err(_) => return ReadOutcome::Malformed("unparseable content-length"),
        };
        if body_len > MAX_BODY_BYTES {
            return ReadOutcome::Malformed("request body too large");
        }
        if let Err(outcome) = self.discard_body(body_len) {
            return outcome;
        }
        ReadOutcome::Request(request)
    }

    /// Consumes `len` body bytes (spill first, then the socket).
    fn discard_body(&mut self, len: usize) -> Result<(), ReadOutcome> {
        let from_spill = len.min(self.spill.len());
        self.spill.drain(..from_spill);
        let mut remaining = len - from_spill;
        let mut chunk = [0u8; 2048];
        while remaining > 0 {
            let want = remaining.min(chunk.len());
            match self.stream.read(&mut chunk[..want]) {
                Ok(0) => return Err(ReadOutcome::Malformed("eof inside request body")),
                Ok(n) => remaining -= n,
                Err(e)
                    if e.kind() == io::ErrorKind::WouldBlock
                        || e.kind() == io::ErrorKind::TimedOut =>
                {
                    return Err(ReadOutcome::TimedOut);
                }
                Err(e) if e.kind() == io::ErrorKind::Interrupted => {}
                Err(_) => return Err(ReadOutcome::Closed),
            }
        }
        Ok(())
    }
}

/// Index one past the `\r\n\r\n` (or bare `\n\n`) head terminator.
fn find_head_end(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|i| i + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|i| i + 2))
}

/// Parses the request line and headers out of a complete head.
fn parse_head(head: &[u8]) -> Result<Request, &'static str> {
    let text = std::str::from_utf8(head).map_err(|_| "request head is not utf-8")?;
    let mut lines = text.split("\r\n").flat_map(|l| l.split('\n'));
    let request_line = lines.next().ok_or("empty request head")?;
    let mut parts = request_line.split_ascii_whitespace();
    let method = parts.next().ok_or("missing method")?.to_ascii_uppercase();
    let target = parts.next().ok_or("missing request target")?;
    let version = parts.next().ok_or("missing http version")?;
    if parts.next().is_some() {
        return Err("malformed request line");
    }
    if !version.starts_with("HTTP/1.") {
        return Err("unsupported http version");
    }
    let http11 = version == "HTTP/1.1";

    let (path, query_text) = match target.split_once('?') {
        Some((p, q)) => (p, q),
        None => (target, ""),
    };
    let query = query_text
        .split('&')
        .filter(|s| !s.is_empty())
        .map(|pair| match pair.split_once('=') {
            Some((k, v)) => (k.to_string(), v.to_string()),
            None => (pair.to_string(), String::new()),
        })
        .collect();

    let mut headers = Vec::new();
    for line in lines {
        if line.is_empty() {
            continue;
        }
        let (name, value) = line.split_once(':').ok_or("malformed header line")?;
        headers.push((name.trim().to_ascii_lowercase(), value.trim().to_string()));
    }

    let request = Request {
        method,
        path: path.to_string(),
        query,
        headers,
        keep_alive: false,
    };
    let keep_alive = match request.header("connection").map(str::to_ascii_lowercase) {
        Some(c) if c.contains("close") => false,
        Some(c) if c.contains("keep-alive") => true,
        _ => http11,
    };
    Ok(Request {
        keep_alive,
        ..request
    })
}

/// One response, rendered by [`write_response`].
#[derive(Debug, Clone)]
pub struct Response {
    /// Status code (`200`, `503`, …).
    pub status: u16,
    /// Content type of `body` (`application/octet-stream`, …).
    pub content_type: &'static str,
    /// Response body, sent verbatim with a `Content-Length`.
    pub body: Vec<u8>,
    /// Extra headers (`Retry-After`, `X-Drange-Degraded`, …).
    pub extra_headers: Vec<(String, String)>,
    /// Whether to advertise and perform `Connection: close`.
    pub close: bool,
    /// Suppress the body bytes (HEAD) while keeping the headers.
    pub head_only: bool,
}

impl Response {
    /// A fresh response with the given status and body.
    #[must_use]
    pub fn new(status: u16, content_type: &'static str, body: Vec<u8>) -> Self {
        Response {
            status,
            content_type,
            body,
            extra_headers: Vec::new(),
            close: false,
            head_only: false,
        }
    }

    /// Plain-text convenience constructor.
    #[must_use]
    pub fn text(status: u16, body: &str) -> Self {
        Response::new(
            status,
            "text/plain; charset=utf-8",
            body.as_bytes().to_vec(),
        )
    }

    /// Adds one extra header.
    #[must_use]
    pub fn with_header(mut self, name: &str, value: String) -> Self {
        self.extra_headers.push((name.to_string(), value));
        self
    }

    /// Marks the connection for closing after this response.
    #[must_use]
    pub fn closing(mut self) -> Self {
        self.close = true;
        self
    }
}

/// The canonical reason phrase for the status codes the server emits.
fn reason(status: u16) -> &'static str {
    match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Unknown",
    }
}

/// Serializes and writes `resp` to the stream.
pub fn write_response(stream: &mut TcpStream, resp: &Response) -> io::Result<()> {
    let mut head = format!(
        "HTTP/1.1 {} {}\r\nContent-Type: {}\r\nContent-Length: {}\r\n",
        resp.status,
        reason(resp.status),
        resp.content_type,
        resp.body.len(),
    );
    for (name, value) in &resp.extra_headers {
        head.push_str(name);
        head.push_str(": ");
        head.push_str(value);
        head.push_str("\r\n");
    }
    if resp.close {
        head.push_str("Connection: close\r\n");
    }
    head.push_str("\r\n");
    stream.write_all(head.as_bytes())?;
    if !resp.head_only {
        stream.write_all(&resp.body)?;
    }
    stream.flush()
}

#[cfg(test)]
mod tests {
    use super::*;

    fn parse(text: &str) -> Result<Request, &'static str> {
        parse_head(text.as_bytes())
    }

    #[test]
    fn parses_a_plain_get() {
        let r = parse("GET /random?bytes=32&x=1 HTTP/1.1\r\nHost: h\r\n\r\n").unwrap();
        assert_eq!(r.method, "GET");
        assert_eq!(r.path, "/random");
        assert_eq!(r.query_param("bytes"), Some("32"));
        assert_eq!(r.query_param("x"), Some("1"));
        assert_eq!(r.query_param("missing"), None);
        assert!(r.keep_alive, "http/1.1 defaults to keep-alive");
    }

    #[test]
    fn connection_close_and_http10_defaults() {
        let r = parse("GET / HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
        assert!(!r.keep_alive);
        let r = parse("GET / HTTP/1.0\r\n\r\n").unwrap();
        assert!(!r.keep_alive, "http/1.0 defaults to close");
        let r = parse("GET / HTTP/1.0\r\nConnection: Keep-Alive\r\n\r\n").unwrap();
        assert!(r.keep_alive);
    }

    #[test]
    fn header_names_are_case_insensitive() {
        let r = parse("POST /-/shutdown HTTP/1.1\r\nContent-LENGTH: 5\r\n\r\n").unwrap();
        assert_eq!(r.header("content-length"), Some("5"));
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse("NOT A REQUEST AT ALL\r\n\r\n").is_err());
        assert!(parse("GET /x SPDY/3\r\n\r\n").is_err());
        assert!(parse("GET /x HTTP/1.1\r\nbroken header line\r\n\r\n").is_err());
    }

    #[test]
    fn finds_head_terminators() {
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n\r\nrest"), Some(18));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\n\nrest"), Some(16));
        assert_eq!(find_head_end(b"GET / HTTP/1.1\r\n"), None);
    }
}
