//! `std::sync`-shaped shims: sequentially-consistent atomics whose
//! every access is a scheduling point, plus a Mutex/Condvar pair whose
//! blocking is modeled by the scheduler (timeouts never fire, so
//! protocols that rely on them for progress deadlock visibly).

pub use std::sync::Arc;
use std::sync::{
    LockResult, Mutex as StdMutex, MutexGuard as StdMutexGuard, OnceLock, PoisonError,
};
use std::time::Duration;

use crate::exec::{self, AbortExecution};

/// Atomic shims. Orderings are accepted for API compatibility but every
/// access is performed `SeqCst`: loomlite explores interleavings of
/// sequentially consistent executions only (weaker orderings are out of
/// scope — use the real `loom` for memory-model exploration).
pub mod atomic {
    pub use std::sync::atomic::Ordering;

    use crate::exec;

    macro_rules! atomic_shim {
        ($(#[$doc:meta])* $name:ident, $std:ident, $int:ty) => {
            $(#[$doc])*
            #[derive(Debug, Default)]
            pub struct $name(std::sync::atomic::$std);

            impl $name {
                /// Creates a new atomic with the given initial value.
                #[must_use]
                pub fn new(v: $int) -> Self {
                    Self(std::sync::atomic::$std::new(v))
                }

                /// Loads the value (modeled as a scheduling point).
                pub fn load(&self, _order: Ordering) -> $int {
                    exec::op_yield();
                    self.0.load(Ordering::SeqCst)
                }

                /// Stores a value (modeled as a scheduling point).
                pub fn store(&self, v: $int, _order: Ordering) {
                    exec::op_yield();
                    self.0.store(v, Ordering::SeqCst);
                }

                /// Swaps the value, returning the previous one.
                pub fn swap(&self, v: $int, _order: Ordering) -> $int {
                    exec::op_yield();
                    self.0.swap(v, Ordering::SeqCst)
                }

                /// Compare-and-exchange.
                ///
                /// # Errors
                ///
                /// Returns the actual value when it differs from
                /// `current`.
                pub fn compare_exchange(
                    &self,
                    current: $int,
                    new: $int,
                    _success: Ordering,
                    _failure: Ordering,
                ) -> Result<$int, $int> {
                    exec::op_yield();
                    self.0
                        .compare_exchange(current, new, Ordering::SeqCst, Ordering::SeqCst)
                }

                /// Compare-and-exchange (weak form; never fails
                /// spuriously under the model).
                ///
                /// # Errors
                ///
                /// Returns the actual value when it differs from
                /// `current`.
                pub fn compare_exchange_weak(
                    &self,
                    current: $int,
                    new: $int,
                    success: Ordering,
                    failure: Ordering,
                ) -> Result<$int, $int> {
                    self.compare_exchange(current, new, success, failure)
                }
            }
        };
    }

    macro_rules! atomic_int_ops {
        ($name:ident, $int:ty) => {
            impl $name {
                /// Adds to the value, returning the previous one.
                pub fn fetch_add(&self, v: $int, _order: Ordering) -> $int {
                    exec::op_yield();
                    self.0.fetch_add(v, Ordering::SeqCst)
                }

                /// Subtracts from the value, returning the previous one.
                pub fn fetch_sub(&self, v: $int, _order: Ordering) -> $int {
                    exec::op_yield();
                    self.0.fetch_sub(v, Ordering::SeqCst)
                }

                /// Maximum with the value, returning the previous one.
                pub fn fetch_max(&self, v: $int, _order: Ordering) -> $int {
                    exec::op_yield();
                    self.0.fetch_max(v, Ordering::SeqCst)
                }

                /// Minimum with the value, returning the previous one.
                pub fn fetch_min(&self, v: $int, _order: Ordering) -> $int {
                    exec::op_yield();
                    self.0.fetch_min(v, Ordering::SeqCst)
                }

                /// Fetch-and-update loop (modeled as one atomic step:
                /// the closure's retries are invisible to the
                /// scheduler, which is sound because `fetch_update` is
                /// linearizable).
                ///
                /// # Errors
                ///
                /// Returns the current value when the closure returns
                /// `None`.
                pub fn fetch_update<F>(
                    &self,
                    _set_order: Ordering,
                    _fetch_order: Ordering,
                    f: F,
                ) -> Result<$int, $int>
                where
                    F: FnMut($int) -> Option<$int>,
                {
                    exec::op_yield();
                    self.0.fetch_update(Ordering::SeqCst, Ordering::SeqCst, f)
                }
            }
        };
    }

    atomic_shim!(
        /// `AtomicU32` shim.
        AtomicU32,
        AtomicU32,
        u32
    );
    atomic_shim!(
        /// `AtomicU64` shim.
        AtomicU64,
        AtomicU64,
        u64
    );
    atomic_shim!(
        /// `AtomicUsize` shim.
        AtomicUsize,
        AtomicUsize,
        usize
    );
    atomic_shim!(
        /// `AtomicBool` shim.
        AtomicBool,
        AtomicBool,
        bool
    );
    atomic_int_ops!(AtomicU32, u32);
    atomic_int_ops!(AtomicU64, u64);
    atomic_int_ops!(AtomicUsize, usize);

    impl AtomicBool {
        /// Logical OR with the value, returning the previous one.
        pub fn fetch_or(&self, v: bool, _order: Ordering) -> bool {
            exec::op_yield();
            self.0.fetch_or(v, Ordering::SeqCst)
        }

        /// Logical AND with the value, returning the previous one.
        pub fn fetch_and(&self, v: bool, _order: Ordering) -> bool {
            exec::op_yield();
            self.0.fetch_and(v, Ordering::SeqCst)
        }
    }
}

/// `std::sync::Mutex` shim: blocking is modeled by the scheduler inside
/// an execution; plain std locking outside one. Always returns `Ok`
/// inside a model (model threads that panic abort the whole execution,
/// so poisoning cannot be observed).
#[derive(Debug, Default)]
pub struct Mutex<T> {
    inner: StdMutex<T>,
    id: OnceLock<usize>,
}

impl<T> Mutex<T> {
    /// Creates a new mutex.
    #[must_use]
    pub fn new(t: T) -> Self {
        Mutex {
            inner: StdMutex::new(t),
            id: OnceLock::new(),
        }
    }

    fn model_id(&self) -> usize {
        *self.id.get_or_init(exec::fresh_object_id)
    }

    /// Acquires the mutex.
    ///
    /// # Errors
    ///
    /// Propagates std poisoning in the real-thread fallback; never
    /// errors inside a model execution.
    pub fn lock(&self) -> LockResult<MutexGuard<'_, T>> {
        match exec::current_ctx() {
            Some((exec, me)) => {
                if exec.lock_mutex(me, self.model_id(), true).is_err() {
                    std::panic::panic_any(AbortExecution);
                }
                // Uncontended by construction: the scheduler granted us
                // the model lock, so no controlled thread holds the
                // inner lock.
                let inner = self.inner.lock().unwrap_or_else(PoisonError::into_inner);
                Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: true,
                })
            }
            None => match self.inner.lock() {
                Ok(inner) => Ok(MutexGuard {
                    lock: self,
                    inner: Some(inner),
                    model: false,
                }),
                Err(poisoned) => Err(PoisonError::new(MutexGuard {
                    lock: self,
                    inner: Some(poisoned.into_inner()),
                    model: false,
                })),
            },
        }
    }
}

/// Guard returned by [`Mutex::lock`].
#[derive(Debug)]
pub struct MutexGuard<'a, T> {
    lock: &'a Mutex<T>,
    inner: Option<StdMutexGuard<'a, T>>,
    model: bool,
}

impl<T> std::ops::Deref for MutexGuard<'_, T> {
    type Target = T;

    fn deref(&self) -> &T {
        self.inner
            .as_ref()
            .expect("loomlite: dereferenced a relinquished guard")
    }
}

impl<T> std::ops::DerefMut for MutexGuard<'_, T> {
    fn deref_mut(&mut self) -> &mut T {
        self.inner
            .as_mut()
            .expect("loomlite: dereferenced a relinquished guard")
    }
}

impl<T> Drop for MutexGuard<'_, T> {
    fn drop(&mut self) {
        if let Some(inner) = self.inner.take() {
            drop(inner);
            if self.model {
                if let Some((exec, _)) = exec::current_ctx() {
                    exec.release_mutex(self.lock.model_id());
                }
            }
        }
    }
}

/// Result of a [`Condvar::wait_timeout`]: inside a model execution the
/// timeout never fires (`timed_out()` is always false).
#[derive(Debug, Clone, Copy)]
pub struct WaitTimeoutResult {
    timed: bool,
}

impl WaitTimeoutResult {
    /// Whether the wait returned because the timeout elapsed.
    #[must_use]
    pub fn timed_out(&self) -> bool {
        self.timed
    }
}

/// `std::sync::Condvar` shim. A notify with no parked waiter is lost,
/// and modeled waits never time out — together these surface
/// lost-wakeup protocol bugs as deadlocks the checker reports.
#[derive(Debug, Default)]
pub struct Condvar {
    inner: std::sync::Condvar,
    id: OnceLock<usize>,
}

impl Condvar {
    /// Creates a new condition variable.
    #[must_use]
    pub fn new() -> Self {
        Condvar::default()
    }

    fn model_id(&self) -> usize {
        *self.id.get_or_init(exec::fresh_object_id)
    }

    /// Parks until notified, atomically releasing the guard's mutex.
    ///
    /// # Errors
    ///
    /// Propagates std poisoning in the real-thread fallback; never
    /// errors inside a model execution.
    pub fn wait<'a, T>(&self, guard: MutexGuard<'a, T>) -> LockResult<MutexGuard<'a, T>> {
        match exec::current_ctx() {
            Some((exec, me)) => Ok(self.model_wait(&exec, me, guard)),
            None => {
                let (mutex, inner) = relinquish(guard);
                match self.inner.wait(inner) {
                    Ok(g) => Ok(reattach(mutex, g)),
                    Err(poisoned) => Err(PoisonError::new(reattach(mutex, poisoned.into_inner()))),
                }
            }
        }
    }

    /// Parks until notified or the timeout elapses. Inside a model
    /// execution the timeout is ignored (see the type-level docs).
    ///
    /// # Errors
    ///
    /// Propagates std poisoning in the real-thread fallback; never
    /// errors inside a model execution.
    pub fn wait_timeout<'a, T>(
        &self,
        guard: MutexGuard<'a, T>,
        dur: Duration,
    ) -> LockResult<(MutexGuard<'a, T>, WaitTimeoutResult)> {
        match exec::current_ctx() {
            Some((exec, me)) => Ok((
                self.model_wait(&exec, me, guard),
                WaitTimeoutResult { timed: false },
            )),
            None => {
                let (mutex, inner) = relinquish(guard);
                match self.inner.wait_timeout(inner, dur) {
                    Ok((g, r)) => Ok((
                        reattach(mutex, g),
                        WaitTimeoutResult {
                            timed: r.timed_out(),
                        },
                    )),
                    Err(poisoned) => {
                        let (g, r) = poisoned.into_inner();
                        Err(PoisonError::new((
                            reattach(mutex, g),
                            WaitTimeoutResult {
                                timed: r.timed_out(),
                            },
                        )))
                    }
                }
            }
        }
    }

    fn model_wait<'a, T>(
        &self,
        exec: &std::sync::Arc<crate::exec::Execution>,
        me: usize,
        guard: MutexGuard<'a, T>,
    ) -> MutexGuard<'a, T> {
        // Scheduling point *before* the park, while the caller still
        // holds the mutex: a real condvar has exactly this window —
        // `notify_all` does not need the mutex, so a notify that fires
        // between the caller's last predicate check and its park finds
        // no parked waiter and is lost. Without this yield the model
        // would fuse check-and-park into one atomic step and miss
        // every lost-wakeup bug of that shape (the release-and-park
        // itself *is* atomic, as POSIX guarantees).
        exec::op_yield();
        let (mutex, inner) = relinquish(guard);
        drop(inner);
        if exec
            .condvar_wait(me, self.model_id(), mutex.model_id())
            .is_err()
        {
            std::panic::panic_any(AbortExecution);
        }
        let inner = mutex.inner.lock().unwrap_or_else(PoisonError::into_inner);
        MutexGuard {
            lock: mutex,
            inner: Some(inner),
            model: true,
        }
    }

    /// Wakes one parked waiter (lost if none are parked).
    pub fn notify_one(&self) {
        match exec::current_ctx() {
            Some((exec, _)) => {
                exec::op_yield();
                exec.notify(self.model_id(), false);
            }
            None => self.inner.notify_one(),
        }
    }

    /// Wakes all parked waiters (lost if none are parked).
    pub fn notify_all(&self) {
        match exec::current_ctx() {
            Some((exec, _)) => {
                exec::op_yield();
                exec.notify(self.model_id(), true);
            }
            None => self.inner.notify_all(),
        }
    }
}

/// Takes the inner std guard out of a shim guard without running the
/// shim release protocol (the caller takes over the lock's lifecycle).
fn relinquish<'a, T>(mut guard: MutexGuard<'a, T>) -> (&'a Mutex<T>, StdMutexGuard<'a, T>) {
    let mutex = guard.lock;
    let inner = guard
        .inner
        .take()
        .expect("loomlite: guard already relinquished");
    // `guard` now drops inert (inner is None).
    (mutex, inner)
}

fn reattach<'a, T>(mutex: &'a Mutex<T>, inner: StdMutexGuard<'a, T>) -> MutexGuard<'a, T> {
    MutexGuard {
        lock: mutex,
        inner: Some(inner),
        model: false,
    }
}
