//! The execution engine: one controlled thread runs at a time; every
//! visible operation is a *yield point* where the scheduler consults a
//! decision tape. Exhausting the tape depth-first explores every
//! interleaving of yield points.

use std::any::Any;
use std::cell::RefCell;
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Condvar as StdCondvar, Mutex as StdMutex, PoisonError};

/// Panic payload used to unwind controlled threads out of an execution
/// that has already failed (deadlock or a panic elsewhere). Filtered by
/// the panic hook and swallowed by thread trampolines.
pub(crate) struct AbortExecution;

/// Globally unique ids for model objects (mutexes, condvars). Ids only
/// need to be unique, not dense: per-execution state is keyed lazily.
static NEXT_OBJECT_ID: AtomicUsize = AtomicUsize::new(0);

pub(crate) fn fresh_object_id() -> usize {
    NEXT_OBJECT_ID.fetch_add(1, Ordering::Relaxed)
}

/// Scheduling state of one controlled thread.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) enum Run {
    /// Eligible to be scheduled.
    Runnable,
    /// Waiting to acquire the mutex with this object id.
    BlockedMutex(usize),
    /// Parked on the condvar with this object id (no notify seen yet).
    BlockedCondvar(usize),
    /// Waiting for the thread with this tid to finish.
    BlockedJoin(usize),
    /// Done (normally, or unwound during an abort).
    Finished,
}

/// One recorded scheduling decision: which of the enabled threads ran.
/// Only branching points (more than one enabled thread) are recorded.
#[derive(Debug, Clone, PartialEq, Eq)]
pub(crate) struct Choice {
    pub(crate) chosen: usize,
    pub(crate) enabled: Vec<usize>,
}

pub(crate) struct ExecState {
    pub(crate) runs: Vec<Run>,
    pub(crate) current: usize,
    mutexes: HashMap<usize, bool>,
    cv_waiters: HashMap<usize, VecDeque<usize>>,
    pub(crate) tape: Vec<Choice>,
    pub(crate) pos: usize,
    pub(crate) failure: Option<String>,
    pub(crate) finished: usize,
    pub(crate) real_handles: Vec<std::thread::JoinHandle<()>>,
    /// CHESS-style preemption bound: once `preemptions` reaches the
    /// bound, a runnable current thread keeps running (no choice point).
    bound: Option<usize>,
    preemptions: usize,
}

pub(crate) struct Execution {
    pub(crate) state: StdMutex<ExecState>,
    pub(crate) cv: StdCondvar,
}

thread_local! {
    static CTX: RefCell<Option<(Arc<Execution>, usize)>> = const { RefCell::new(None) };
}

pub(crate) fn set_ctx(exec: Arc<Execution>, tid: usize) {
    CTX.with(|c| *c.borrow_mut() = Some((exec, tid)));
}

pub(crate) fn clear_ctx() {
    CTX.with(|c| *c.borrow_mut() = None);
}

pub(crate) fn current_ctx() -> Option<(Arc<Execution>, usize)> {
    CTX.with(|c| c.borrow().clone())
}

/// Yield point for a non-blocking visible op (atomic access, notify,
/// spawn). No-op outside a model execution so the shims degrade to
/// plain std behavior in ordinary tests.
pub(crate) fn op_yield() {
    if let Some((exec, me)) = current_ctx() {
        if exec.switch(me, Run::Runnable).is_err() {
            std::panic::panic_any(AbortExecution);
        }
    }
}

impl Execution {
    pub(crate) fn new(tape: Vec<Choice>, bound: Option<usize>) -> Self {
        Execution {
            state: StdMutex::new(ExecState {
                runs: vec![Run::Runnable],
                current: 0,
                mutexes: HashMap::new(),
                cv_waiters: HashMap::new(),
                tape,
                pos: 0,
                failure: None,
                finished: 0,
                real_handles: Vec::new(),
                bound,
                preemptions: 0,
            }),
            cv: StdCondvar::new(),
        }
    }

    fn lock_state(&self) -> std::sync::MutexGuard<'_, ExecState> {
        self.state.lock().unwrap_or_else(PoisonError::into_inner)
    }

    fn enabled(st: &ExecState) -> Vec<usize> {
        st.runs
            .iter()
            .enumerate()
            .filter(|(_, r)| **r == Run::Runnable)
            .map(|(i, _)| i)
            .collect()
    }

    /// Picks the next thread to run, consulting/extending the decision
    /// tape at branching points. Sets `failure` on deadlock.
    fn advance(&self, st: &mut ExecState) {
        let enabled = Self::enabled(st);
        if enabled.is_empty() {
            if st.finished < st.runs.len() {
                st.failure = Some(format!(
                    "deadlock: no runnable thread; thread states: {:?}",
                    st.runs
                ));
            }
            return;
        }
        // `current` is the thread that just yielded: it stayed runnable
        // (plain yield point) or blocked/finished (then this is not a
        // preemption however we schedule).
        let current_runnable = st.runs[st.current] == Run::Runnable;
        if current_runnable && st.bound.is_some_and(|b| st.preemptions >= b) {
            // Preemption budget exhausted: no choice point, the current
            // thread keeps running.
            return;
        }
        let next = if enabled.len() == 1 {
            enabled[0]
        } else {
            let idx = if st.pos < st.tape.len() {
                let choice = &st.tape[st.pos];
                assert!(
                    choice.enabled == enabled,
                    "loomlite: nondeterministic model (replay mismatch at decision {}: \
                     recorded enabled {:?}, got {:?}); models must not depend on real \
                     time, randomness, or ambient global state",
                    st.pos,
                    choice.enabled,
                    enabled
                );
                choice.chosen
            } else {
                st.tape.push(Choice {
                    chosen: 0,
                    enabled: enabled.clone(),
                });
                0
            };
            st.pos += 1;
            enabled[idx]
        };
        if current_runnable && next != st.current {
            st.preemptions += 1;
        }
        st.current = next;
    }

    /// Core scheduling primitive: record `me`'s new state, hand the
    /// token to the next thread, and block until `me` is scheduled
    /// again. `Err` means the execution has failed and `me` must unwind.
    pub(crate) fn switch(&self, me: usize, new_run: Run) -> Result<(), ()> {
        let mut st = self.lock_state();
        if st.failure.is_some() {
            return Err(());
        }
        st.runs[me] = new_run;
        self.advance(&mut st);
        self.cv.notify_all();
        loop {
            if st.failure.is_some() {
                return Err(());
            }
            if st.current == me && st.runs[me] == Run::Runnable {
                return Ok(());
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// First schedule of a freshly spawned thread: wait for the token
    /// without changing any state.
    pub(crate) fn wait_first_schedule(&self, me: usize) -> Result<(), ()> {
        let mut st = self.lock_state();
        loop {
            if st.failure.is_some() {
                return Err(());
            }
            if st.current == me && st.runs[me] == Run::Runnable {
                return Ok(());
            }
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }

    /// Registers a new controlled thread; returns its tid. The new
    /// thread is immediately eligible for scheduling.
    pub(crate) fn register_thread(&self) -> usize {
        let mut st = self.lock_state();
        st.runs.push(Run::Runnable);
        st.runs.len() - 1
    }

    pub(crate) fn push_real_handle(&self, handle: std::thread::JoinHandle<()>) {
        self.lock_state().real_handles.push(handle);
    }

    /// Acquires model mutex `id` for `me`, yielding/blocking as needed.
    /// `pre_yield` inserts the standard before-op choice point (false
    /// when re-acquiring after a condvar wait, which is already at a
    /// fresh schedule slot).
    pub(crate) fn lock_mutex(&self, me: usize, id: usize, pre_yield: bool) -> Result<(), ()> {
        if pre_yield {
            self.switch(me, Run::Runnable)?;
        }
        loop {
            {
                let mut st = self.lock_state();
                if st.failure.is_some() {
                    return Err(());
                }
                let locked = st.mutexes.entry(id).or_insert(false);
                if !*locked {
                    *locked = true;
                    return Ok(());
                }
            }
            // Held by someone else: park until a release makes us
            // runnable, then retry (another thread may steal the lock
            // in between — that is a real interleaving).
            self.switch(me, Run::BlockedMutex(id))?;
        }
    }

    /// Releases model mutex `id`: marks it free and wakes every thread
    /// blocked on it (they contend again when scheduled). Deliberately
    /// not a choice point — the releaser's next visible op is.
    pub(crate) fn release_mutex(&self, id: usize) {
        let mut st = self.lock_state();
        st.mutexes.insert(id, false);
        for r in &mut st.runs {
            if *r == Run::BlockedMutex(id) {
                *r = Run::Runnable;
            }
        }
    }

    /// Atomically releases `mutex_id` and parks `me` on condvar
    /// `cv_id`; on wakeup, re-acquires the mutex before returning.
    ///
    /// Deliberately models a *timeout-free* wait: `wait_timeout` under
    /// loomlite never times out, so any protocol that relies on the
    /// timeout (rather than an explicit notify) for forward progress
    /// shows up as a deadlock. That is exactly the lost-wakeup class of
    /// bug. Spurious wakeups are not modeled.
    pub(crate) fn condvar_wait(&self, me: usize, cv_id: usize, mutex_id: usize) -> Result<(), ()> {
        {
            let mut st = self.lock_state();
            if st.failure.is_some() {
                return Err(());
            }
            st.mutexes.insert(mutex_id, false);
            for r in &mut st.runs {
                if *r == Run::BlockedMutex(mutex_id) {
                    *r = Run::Runnable;
                }
            }
            st.cv_waiters.entry(cv_id).or_default().push_back(me);
        }
        self.switch(me, Run::BlockedCondvar(cv_id))?;
        self.lock_mutex(me, mutex_id, false)
    }

    /// Wakes parked waiters of condvar `cv_id` (`all` = notify_all).
    /// A notify with no parked waiter is lost, exactly like the real
    /// primitive. The caller must have passed a choice point already.
    pub(crate) fn notify(&self, cv_id: usize, all: bool) {
        let mut st = self.lock_state();
        if let Some(q) = st.cv_waiters.get_mut(&cv_id) {
            let woken: Vec<usize> = if all {
                q.drain(..).collect()
            } else {
                q.pop_front().into_iter().collect()
            };
            for t in woken {
                st.runs[t] = Run::Runnable;
            }
        }
    }

    /// Records a real (non-abort) panic from thread `tid` as the
    /// execution failure.
    pub(crate) fn record_panic(&self, tid: usize, payload: &(dyn Any + Send)) {
        let text = payload
            .downcast_ref::<&str>()
            .map(|s| (*s).to_string())
            .or_else(|| payload.downcast_ref::<String>().cloned())
            .unwrap_or_else(|| "non-string panic payload".to_string());
        let mut st = self.lock_state();
        if st.failure.is_none() {
            st.failure = Some(format!("thread {tid} panicked: {text}"));
        }
        self.cv.notify_all();
    }

    /// Marks `me` finished, wakes its joiners, and hands the token on.
    pub(crate) fn finish(&self, me: usize) {
        let mut st = self.lock_state();
        st.runs[me] = Run::Finished;
        st.finished += 1;
        for r in &mut st.runs {
            if *r == Run::BlockedJoin(me) {
                *r = Run::Runnable;
            }
        }
        if st.failure.is_none() {
            self.advance(&mut st);
        }
        self.cv.notify_all();
    }

    /// Blocks `me` until thread `tid` finishes.
    pub(crate) fn join_thread(&self, me: usize, tid: usize) -> Result<(), ()> {
        self.switch(me, Run::Runnable)?;
        loop {
            {
                let st = self.lock_state();
                if st.failure.is_some() {
                    return Err(());
                }
                if st.runs[tid] == Run::Finished {
                    return Ok(());
                }
            }
            self.switch(me, Run::BlockedJoin(tid))?;
        }
    }

    /// Driver side: wait until every controlled thread has finished
    /// (including threads unwound by an abort).
    pub(crate) fn wait_all_finished(&self) {
        let mut st = self.lock_state();
        while st.finished < st.runs.len() {
            st = self.cv.wait(st).unwrap_or_else(PoisonError::into_inner);
        }
    }
}
