//! # loomlite — minimal exhaustive-interleaving model checker
//!
//! A dependency-free, loom-style concurrency model checker used by the
//! workspace's `cfg(loom)` tests. The real [`loom`] crate cannot be
//! assumed present (this workspace must build in hermetic environments
//! with no crate registry), so this crate reimplements the slice of it
//! the D-RaNGe verification layer needs:
//!
//! * [`model`] runs a closure repeatedly, exploring **every**
//!   interleaving of its visible operations across the threads it
//!   spawns (depth-first over scheduling decisions, with deterministic
//!   replay).
//! * [`thread`], [`sync::Mutex`], [`sync::Condvar`], and
//!   [`sync::atomic`] are drop-in shims for their `std` counterparts.
//!   Outside a model execution they degrade to plain `std` behavior, so
//!   code compiled with `--cfg loom` still runs its ordinary unit
//!   tests.
//! * Deadlocks (every thread blocked), lost wakeups (a notify with no
//!   parked waiter is dropped, and modeled waits **never time out** —
//!   so any protocol that needs the timeout for progress deadlocks
//!   visibly), and panics in any thread fail the check with the
//!   decision tape that reproduces them.
//!
//! ## Scope and limitations
//!
//! * Sequential consistency only: every atomic access is performed
//!   `SeqCst` regardless of the ordering argument. loomlite explores
//!   interleavings, not weak-memory reorderings.
//! * `Condvar::notify_one` wakes the longest-parked waiter (FIFO)
//!   rather than exploring every choice of waiter; spurious wakeups are
//!   not modeled.
//! * State space is explored exhaustively with no partial-order
//!   reduction beyond "thread-local ops are invisible", so keep models
//!   small: a handful of threads with a handful of visible ops each.
//!
//! ## Example
//!
//! ```rust
//! use loomlite::sync::atomic::{AtomicU64, Ordering};
//! use loomlite::sync::Arc;
//!
//! loomlite::model(|| {
//!     let n = Arc::new(AtomicU64::new(0));
//!     let n2 = Arc::clone(&n);
//!     let t = loomlite::thread::spawn(move || {
//!         n2.fetch_add(1, Ordering::SeqCst);
//!     });
//!     n.fetch_add(1, Ordering::SeqCst);
//!     t.join().expect("model thread");
//!     assert_eq!(n.load(Ordering::SeqCst), 2);
//! });
//! ```
//!
//! [`loom`]: https://docs.rs/loom

// This crate is test infrastructure: panicking is its reporting
// mechanism, and its shims wrap raw std primitives by design. Both are
// waived in xtask/lint_policy.toml rather than worked around.

mod exec;
pub mod sync;
pub mod thread;

use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Once, PoisonError};

use exec::{AbortExecution, Execution};

/// Default cap on explored schedules; override with the
/// `LOOMLITE_MAX_ITERATIONS` environment variable.
pub const DEFAULT_MAX_ITERATIONS: u64 = 200_000;

/// Statistics from a completed exploration.
#[derive(Debug, Clone, Copy)]
pub struct Report {
    /// Number of distinct schedules executed.
    pub iterations: u64,
}

/// Exploration configuration (mirrors `loom::model::Builder`).
#[derive(Debug, Clone, Copy, Default)]
pub struct Builder {
    /// CHESS-style preemption bound: explore only schedules with at
    /// most this many preemptions (switches away from a still-runnable
    /// thread). `None` (the default) explores exhaustively. Most
    /// concurrency bugs manifest within 2 preemptions, and the bound
    /// turns combinatorial state spaces (e.g. a 40-bucket histogram
    /// snapshot racing a recorder) into tractable ones.
    pub preemption_bound: Option<usize>,
    /// Per-call override of the schedule cap (defaults to
    /// [`DEFAULT_MAX_ITERATIONS`] / `LOOMLITE_MAX_ITERATIONS`).
    pub max_iterations: Option<u64>,
}

impl Builder {
    /// Default configuration: exhaustive search.
    #[must_use]
    pub fn new() -> Self {
        Builder::default()
    }

    /// Checks `f` under every schedule admitted by this configuration;
    /// panics on the first failing one (see [`explore`]).
    pub fn check<F: Fn()>(&self, f: F) -> Report {
        run_exploration(self, f)
    }
}

fn max_iterations() -> u64 {
    std::env::var("LOOMLITE_MAX_ITERATIONS")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(DEFAULT_MAX_ITERATIONS)
}

/// Installs a panic-hook filter (once, process-wide) that silences the
/// internal `AbortExecution` unwind used to tear down controlled
/// threads of a failed execution.
fn install_hook_filter() {
    static HOOK: Once = Once::new();
    HOOK.call_once(|| {
        let prev = panic::take_hook();
        panic::set_hook(Box::new(move |info| {
            if info.payload().downcast_ref::<AbortExecution>().is_none() {
                prev(info);
            }
        }));
    });
}

/// Explores every schedule of `f` and returns statistics.
///
/// # Panics
///
/// Panics when any schedule deadlocks or panics (the message includes
/// the failing decision tape), when the model behaves
/// nondeterministically across replays, or when the iteration cap is
/// exceeded.
pub fn explore<F: Fn()>(f: F) -> Report {
    Builder::new().check(f)
}

fn run_exploration<F: Fn()>(builder: &Builder, f: F) -> Report {
    assert!(
        exec::current_ctx().is_none(),
        "loomlite: nested model() calls are not supported"
    );
    install_hook_filter();
    let cap = builder.max_iterations.unwrap_or_else(max_iterations);
    let mut tape = Vec::new();
    let mut iterations: u64 = 0;
    loop {
        iterations += 1;
        assert!(
            iterations <= cap,
            "loomlite: exceeded {cap} schedules without exhausting the state space; \
             shrink the model or raise LOOMLITE_MAX_ITERATIONS"
        );
        let execution = Arc::new(Execution::new(tape, builder.preemption_bound));
        exec::set_ctx(Arc::clone(&execution), 0);
        let outcome = panic::catch_unwind(AssertUnwindSafe(&f));
        if let Err(payload) = outcome {
            if !payload.is::<AbortExecution>() {
                execution.record_panic(0, payload.as_ref());
            }
        }
        execution.finish(0);
        execution.wait_all_finished();
        exec::clear_ctx();
        let (failure, final_tape) = {
            let mut st = execution
                .state
                .lock()
                .unwrap_or_else(PoisonError::into_inner);
            let handles = std::mem::take(&mut st.real_handles);
            let failure = st.failure.clone();
            let final_tape = std::mem::take(&mut st.tape);
            drop(st);
            for handle in handles {
                let _ = handle.join();
            }
            (failure, final_tape)
        };
        if let Some(message) = failure {
            panic!(
                "loomlite: model failed on schedule {iterations}: {message}\n\
                 failing decision tape: {final_tape:?}"
            );
        }
        tape = final_tape;
        // Depth-first backtrack: advance the deepest branching decision
        // that still has unexplored alternatives.
        loop {
            match tape.pop() {
                None => return Report { iterations },
                Some(mut choice) => {
                    if choice.chosen + 1 < choice.enabled.len() {
                        choice.chosen += 1;
                        tape.push(choice);
                        break;
                    }
                }
            }
        }
    }
}

/// Checks `f` under every schedule; panics on the first failing one.
/// See [`explore`] for details and the crate docs for limitations.
pub fn model<F: Fn()>(f: F) {
    let _ = explore(f);
}

#[cfg(test)]
mod tests {
    use super::sync::atomic::{AtomicU64, Ordering};
    use super::sync::{Arc, Condvar, Mutex};
    use super::*;

    fn failure_message<F: Fn() + Send + 'static>(f: F) -> String {
        let result = panic::catch_unwind(AssertUnwindSafe(|| model(f)));
        let payload = result.expect_err("model should have failed");
        payload
            .downcast_ref::<String>()
            .cloned()
            .or_else(|| payload.downcast_ref::<&str>().map(|s| (*s).to_string()))
            .unwrap_or_default()
    }

    #[test]
    fn single_thread_runs_once() {
        let report = explore(|| {
            let n = AtomicU64::new(1);
            assert_eq!(n.load(Ordering::SeqCst), 1);
        });
        assert_eq!(report.iterations, 1);
    }

    #[test]
    fn atomic_increments_never_lose_updates() {
        model(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(1, Ordering::SeqCst);
            t.join().expect("model thread");
            assert_eq!(n.load(Ordering::SeqCst), 2);
        });
    }

    #[test]
    fn racy_read_modify_write_is_caught() {
        // load-then-store is not atomic: some schedule interleaves the
        // two threads' loads and loses an update. The checker must find
        // that schedule and surface the assertion failure.
        let message = failure_message(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                let v = n2.load(Ordering::SeqCst);
                n2.store(v + 1, Ordering::SeqCst);
            });
            let v = n.load(Ordering::SeqCst);
            n.store(v + 1, Ordering::SeqCst);
            t.join().expect("model thread");
            assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
        });
        assert!(message.contains("lost update"), "{message}");
    }

    #[test]
    fn exploration_visits_multiple_schedules() {
        let report = explore(|| {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                n2.fetch_add(1, Ordering::SeqCst);
            });
            n.fetch_add(2, Ordering::SeqCst);
            t.join().expect("model thread");
        });
        assert!(report.iterations > 1, "{report:?}");
    }

    #[test]
    fn mutex_provides_mutual_exclusion() {
        model(|| {
            let cell = Arc::new(Mutex::new(0u64));
            let cell2 = Arc::clone(&cell);
            let t = thread::spawn(move || {
                let mut guard = cell2.lock().expect("model lock");
                let v = *guard;
                *guard = v + 1;
            });
            {
                let mut guard = cell.lock().expect("model lock");
                let v = *guard;
                *guard = v + 1;
            }
            t.join().expect("model thread");
            assert_eq!(*cell.lock().expect("model lock"), 2);
        });
    }

    #[test]
    fn lost_wakeup_deadlocks_and_is_reported() {
        // Classic lost wakeup: the waiter checks no predicate before
        // parking, so a notify that lands first is dropped and the wait
        // never returns. The no-timeout wait model turns this into a
        // deadlock on the schedule where the notifier runs first.
        let message = failure_message(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (lock, cv) = &*pair2;
                let guard = lock.lock().expect("model lock");
                // BUG under test: parks without re-checking the flag.
                let _guard = cv.wait(guard).expect("model wait");
            });
            let (lock, cv) = &*pair;
            *lock.lock().expect("model lock") = true;
            cv.notify_all();
            t.join().expect("model thread");
        });
        assert!(message.contains("deadlock"), "{message}");
    }

    #[test]
    fn predicate_checked_wait_never_deadlocks() {
        // The fixed shape: check the flag under the lock before every
        // park. No schedule deadlocks.
        model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (lock, cv) = &*pair2;
                let mut guard = lock.lock().expect("model lock");
                while !*guard {
                    guard = cv.wait(guard).expect("model wait");
                }
            });
            let (lock, cv) = &*pair;
            *lock.lock().expect("model lock") = true;
            cv.notify_all();
            t.join().expect("model thread");
        });
    }

    #[test]
    fn wait_timeout_reports_not_timed_out_in_model() {
        model(|| {
            let pair = Arc::new((Mutex::new(false), Condvar::new()));
            let pair2 = Arc::clone(&pair);
            let t = thread::spawn(move || {
                let (lock, cv) = &*pair2;
                let mut guard = lock.lock().expect("model lock");
                while !*guard {
                    let (g, timeout) = cv
                        .wait_timeout(guard, std::time::Duration::from_secs(1))
                        .expect("model wait");
                    guard = g;
                    assert!(!timeout.timed_out());
                }
            });
            let (lock, cv) = &*pair;
            *lock.lock().expect("model lock") = true;
            cv.notify_all();
            t.join().expect("model thread");
        });
    }

    #[test]
    fn shims_degrade_to_std_outside_models() {
        // No model() wrapper: the shims must behave like plain std.
        let n = Arc::new(AtomicU64::new(0));
        let n2 = Arc::clone(&n);
        let t = thread::spawn(move || {
            n2.fetch_add(5, Ordering::SeqCst);
        });
        t.join().expect("real thread");
        assert_eq!(n.load(Ordering::SeqCst), 5);

        let pair = Arc::new((Mutex::new(false), Condvar::new()));
        let pair2 = Arc::clone(&pair);
        let t = thread::spawn(move || {
            let (lock, cv) = &*pair2;
            *lock.lock().expect("lock") = true;
            cv.notify_all();
        });
        let (lock, cv) = &*pair;
        let mut guard = lock.lock().expect("lock");
        while !*guard {
            let (g, _timeout) = cv
                .wait_timeout(guard, std::time::Duration::from_millis(50))
                .expect("wait");
            guard = g;
        }
        drop(guard);
        t.join().expect("real thread");
    }

    #[test]
    fn preemption_bound_still_catches_single_preemption_races() {
        // The lost-update race needs exactly one preemption (between
        // the load and the store), so a bound of 2 must still find it —
        // while exploring far fewer schedules than the exhaustive run.
        let bounded = Builder {
            preemption_bound: Some(2),
            max_iterations: None,
        };
        let result = panic::catch_unwind(AssertUnwindSafe(|| {
            bounded.check(|| {
                let n = Arc::new(AtomicU64::new(0));
                let n2 = Arc::clone(&n);
                let t = thread::spawn(move || {
                    let v = n2.load(Ordering::SeqCst);
                    n2.store(v + 1, Ordering::SeqCst);
                });
                let v = n.load(Ordering::SeqCst);
                n.store(v + 1, Ordering::SeqCst);
                t.join().expect("model thread");
                assert_eq!(n.load(Ordering::SeqCst), 2, "lost update");
            })
        }));
        assert!(result.is_err(), "bounded search must still find the race");
    }

    #[test]
    fn preemption_bound_shrinks_the_state_space() {
        let work = || {
            let n = Arc::new(AtomicU64::new(0));
            let n2 = Arc::clone(&n);
            let t = thread::spawn(move || {
                for _ in 0..4 {
                    n2.fetch_add(1, Ordering::SeqCst);
                }
            });
            for _ in 0..4 {
                n.fetch_add(1, Ordering::SeqCst);
            }
            t.join().expect("model thread");
            assert_eq!(n.load(Ordering::SeqCst), 8);
        };
        let full = explore(work);
        let bounded = Builder {
            preemption_bound: Some(1),
            max_iterations: None,
        }
        .check(work);
        assert!(
            bounded.iterations < full.iterations,
            "bounded {} vs full {}",
            bounded.iterations,
            full.iterations
        );
    }

    #[test]
    fn three_thread_interleavings_are_exhaustive() {
        // 2 spawned threads + the root each do one visible op; the
        // checker must visit more than one schedule and keep the
        // invariant in all of them.
        let report = explore(|| {
            let n = Arc::new(AtomicU64::new(0));
            let a = Arc::clone(&n);
            let b = Arc::clone(&n);
            let ta = thread::spawn(move || {
                a.fetch_add(1, Ordering::SeqCst);
            });
            let tb = thread::spawn(move || {
                b.fetch_add(10, Ordering::SeqCst);
            });
            ta.join().expect("model thread");
            tb.join().expect("model thread");
            assert_eq!(n.load(Ordering::SeqCst), 11);
        });
        assert!(report.iterations >= 2, "{report:?}");
    }
}
