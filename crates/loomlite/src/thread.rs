//! `std::thread`-shaped shims. Inside a [`crate::model`] execution,
//! spawned threads are controlled by the scheduler; outside one they
//! degrade to plain `std::thread`.

use std::io;
use std::panic::{self, AssertUnwindSafe};
use std::sync::{Arc, Mutex, PoisonError};

use crate::exec::{self, AbortExecution};

type PanicPayload = Box<dyn std::any::Any + Send + 'static>;

enum Inner<T> {
    Model {
        tid: usize,
        slot: Arc<Mutex<Option<std::thread::Result<T>>>>,
    },
    Real(std::thread::JoinHandle<T>),
}

/// Handle to a spawned (controlled or real) thread.
pub struct JoinHandle<T>(Inner<T>);

impl<T> std::fmt::Debug for JoinHandle<T> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match &self.0 {
            Inner::Model { tid, .. } => write!(f, "JoinHandle(model tid {tid})"),
            Inner::Real(_) => write!(f, "JoinHandle(real)"),
        }
    }
}

impl<T> JoinHandle<T> {
    /// Waits for the thread to finish and returns its result.
    pub fn join(self) -> std::thread::Result<T> {
        match self.0 {
            Inner::Real(handle) => handle.join(),
            Inner::Model { tid, slot } => {
                let (exec, me) = exec::current_ctx()
                    .expect("loomlite: joining a model thread outside its execution");
                if exec.join_thread(me, tid).is_err() {
                    panic::panic_any(AbortExecution);
                }
                slot.lock()
                    .unwrap_or_else(PoisonError::into_inner)
                    .take()
                    .expect("loomlite: finished thread has no result")
            }
        }
    }
}

/// `std::thread::Builder` shim. The thread name is accepted for API
/// compatibility; model threads are identified by tid instead.
#[derive(Debug, Default)]
pub struct Builder {
    name: Option<String>,
}

impl Builder {
    /// New builder with default settings.
    #[must_use]
    pub fn new() -> Self {
        Builder::default()
    }

    /// Sets the thread name (used only by the real-thread fallback).
    #[must_use]
    pub fn name(mut self, name: String) -> Self {
        self.name = Some(name);
        self
    }

    /// Spawns the thread; see [`spawn`].
    pub fn spawn<F, T>(self, f: F) -> io::Result<JoinHandle<T>>
    where
        F: FnOnce() -> T + Send + 'static,
        T: Send + 'static,
    {
        if exec::current_ctx().is_some() {
            return Ok(spawn(f));
        }
        let mut builder = std::thread::Builder::new();
        if let Some(name) = self.name {
            builder = builder.name(name);
        }
        builder.spawn(f).map(|h| JoinHandle(Inner::Real(h)))
    }
}

/// Spawns a controlled thread inside a model execution, or a real
/// thread outside one.
pub fn spawn<F, T>(f: F) -> JoinHandle<T>
where
    F: FnOnce() -> T + Send + 'static,
    T: Send + 'static,
{
    let Some((exec, me)) = exec::current_ctx() else {
        return JoinHandle(Inner::Real(std::thread::spawn(f)));
    };
    // Spawning is a visible op: allow a preemption before it.
    if exec.switch(me, crate::exec::Run::Runnable).is_err() {
        panic::panic_any(AbortExecution);
    }
    let tid = exec.register_thread();
    let slot: Arc<Mutex<Option<std::thread::Result<T>>>> = Arc::new(Mutex::new(None));
    let trampoline_slot = Arc::clone(&slot);
    let trampoline_exec = Arc::clone(&exec);
    let real = std::thread::Builder::new()
        .name(format!("loomlite-{tid}"))
        .spawn(move || {
            exec::set_ctx(Arc::clone(&trampoline_exec), tid);
            let result: std::thread::Result<T> = if trampoline_exec.wait_first_schedule(tid).is_ok()
            {
                match panic::catch_unwind(AssertUnwindSafe(f)) {
                    Ok(v) => Ok(v),
                    Err(payload) => {
                        if !payload.is::<AbortExecution>() {
                            trampoline_exec.record_panic(tid, payload.as_ref());
                        }
                        Err(payload)
                    }
                }
            } else {
                Err(Box::new(AbortExecution) as PanicPayload)
            };
            *trampoline_slot
                .lock()
                .unwrap_or_else(PoisonError::into_inner) = Some(result);
            trampoline_exec.finish(tid);
            exec::clear_ctx();
        })
        .expect("loomlite: OS refused to spawn a model thread");
    exec.push_real_handle(real);
    JoinHandle(Inner::Model { tid, slot })
}

/// Yield point with no side effect (maps to `std::thread::yield_now`).
pub fn yield_now() {
    if exec::current_ctx().is_some() {
        exec::op_yield();
    } else {
        std::thread::yield_now();
    }
}
