//! Property-based tests of the statistical suite: p-values are always
//! probabilities, preconditions hold, and the math substrate behaves
//! monotonically.

use nist_sts::special::{erfc, igamc, ln_gamma, normal_cdf};
use nist_sts::{Bits, NistSuite};
use proptest::prelude::*;

fn splitmix_bits(n: usize, seed: u64) -> Bits {
    let mut state = seed;
    Bits::from_fn(n, |_| {
        state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & 1 == 1
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    /// Every applicable test returns p-values in [0,1] on arbitrary
    /// random-looking streams of arbitrary (sufficient) length.
    #[test]
    fn p_values_are_probabilities(seed in any::<u64>(), extra in 0usize..5000) {
        let bits = splitmix_bits(120_000 + extra, seed);
        let report = NistSuite::default().run(&bits);
        for outcome in &report.outcomes {
            if let Ok(r) = &outcome.result {
                for &p in r.p_values() {
                    prop_assert!((0.0..=1.0).contains(&p), "{}: p = {p}", outcome.name);
                }
            }
        }
    }

    /// Splitmix streams pass the quick tests at alpha = 1e-6 for any
    /// seed (an ideal source essentially never produces p < 1e-6 on a
    /// handful of tests).
    #[test]
    fn ideal_streams_pass_quick_tests(seed in any::<u64>()) {
        let bits = splitmix_bits(20_000, seed);
        prop_assert!(nist_sts::monobit::test(&bits).unwrap().passed(1e-6));
        prop_assert!(nist_sts::runs::test(&bits).unwrap().passed(1e-6));
        prop_assert!(nist_sts::serial::test(&bits).unwrap().passed(1e-6));
    }

    /// erfc is monotone decreasing and bounded in (0, 2).
    #[test]
    fn erfc_monotone(x in -6.0f64..6.0, dx in 0.001f64..2.0) {
        let a = erfc(x);
        let b = erfc(x + dx);
        prop_assert!(b <= a + 1e-12);
        prop_assert!(a > 0.0 && a < 2.0);
    }

    /// The normal CDF is a CDF: monotone, symmetric, bounded.
    #[test]
    fn normal_cdf_properties(x in -8.0f64..8.0) {
        let p = normal_cdf(x);
        prop_assert!((0.0..=1.0).contains(&p));
        prop_assert!((normal_cdf(x) + normal_cdf(-x) - 1.0).abs() < 1e-10);
        prop_assert!(normal_cdf(x + 0.1) >= p);
    }

    /// igamc is a survival function in x and ln_gamma satisfies the
    /// recurrence ln Γ(x+1) = ln Γ(x) + ln x.
    #[test]
    fn gamma_identities(a in 0.5f64..30.0, x in 0.0f64..60.0) {
        let q = igamc(a, x);
        prop_assert!((0.0..=1.0).contains(&q));
        prop_assert!(igamc(a, x + 0.5) <= q + 1e-12);
        let lhs = ln_gamma(a + 1.0);
        let rhs = ln_gamma(a) + a.ln();
        prop_assert!((lhs - rhs).abs() < 1e-9 * lhs.abs().max(1.0));
    }

    /// Bits byte round trips for all inputs (whole bytes).
    #[test]
    fn bits_round_trip(bytes in proptest::collection::vec(any::<u8>(), 0..128)) {
        prop_assert_eq!(Bits::from_bytes_msb(&bytes).to_bytes_msb(), bytes);
    }

    /// Linear complexity never exceeds the sequence length and is
    /// invariant under appending a generated continuation... at minimum
    /// it is monotone in prefix length.
    #[test]
    fn linear_complexity_bounds(seed in any::<u64>(), n in 1usize..128) {
        let bits = splitmix_bits(n, seed);
        let seq: Vec<u8> = bits.iter().collect();
        let l = nist_sts::berlekamp::linear_complexity(&seq);
        prop_assert!(l <= n);
        if n > 4 {
            let l_prefix = nist_sts::berlekamp::linear_complexity(&seq[..n - 1]);
            prop_assert!(l >= l_prefix);
        }
    }

    /// GF(2) rank is bounded by both dimensions and XOR-ing one row
    /// into another never changes it.
    #[test]
    fn rank_invariants(rows in proptest::collection::vec(any::<u64>(), 1..24), i in 0usize..24, j in 0usize..24) {
        use nist_sts::rank_gf2::rank_gf2;
        let r = rank_gf2(&rows, 64);
        prop_assert!(r <= rows.len().min(64));
        let (i, j) = (i % rows.len(), j % rows.len());
        if i != j {
            let mut modified = rows.clone();
            modified[i] ^= rows[j];
            prop_assert_eq!(rank_gf2(&modified, 64), r, "row operation preserves rank");
        }
    }
}
