//! Test 10 — Linear complexity test (SP 800-22 §2.10).
//!
//! Computes the Berlekamp–Massey linear complexity of M-bit blocks;
//! random data has complexity tightly concentrated near M/2.

use crate::berlekamp::linear_complexity;
use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::result::TestResult;
use crate::special::igamc;

/// Block length (NIST recommends 500 <= M <= 5000).
pub const BLOCK_LEN: usize = 500;
/// Number of chi-square categories - 1 (K = 6).
pub const K: usize = 6;
/// Minimum recommended sequence length (N >= 200 blocks at M = 500
/// would be 10^5; NIST's formal requirement is n >= 10^6, but the test
/// is well-defined from ~200 blocks).
pub const MIN_BITS: usize = 100_000;

/// Category probabilities π₀..π₆ (SP 800-22 §3.10).
pub const PI: [f64; 7] = [0.010417, 0.03125, 0.125, 0.5, 0.25, 0.0625, 0.020833];

/// Runs the linear-complexity test with block length `m`.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] for short sequences and
/// [`StsError::NotApplicable`] for out-of-range `m`.
pub fn test_with_block(bits: &Bits, m: usize) -> Result<TestResult, StsError> {
    require_len("linear_complexity", MIN_BITS, bits.len())?;
    if !(500..=5000).contains(&m) {
        return Err(StsError::NotApplicable {
            test: "linear_complexity",
            reason: format!("block length {m} outside 500..=5000"),
        });
    }
    let n_blocks = bits.len() / m;
    let mf = m as f64;
    // Theoretical mean complexity of a random M-bit block.
    let sign = if m % 2 == 0 { 1.0 } else { -1.0 };
    let mu = mf / 2.0 + (9.0 - sign) / 36.0 - (mf / 3.0 + 2.0 / 9.0) / 2f64.powf(mf);
    let mut nu = [0u64; K + 1];
    for b in 0..n_blocks {
        let block: Vec<u8> = (b * m..(b + 1) * m).map(|i| bits.bit(i)).collect();
        let l = linear_complexity(&block) as f64;
        let t = sign * (l - mu) + 2.0 / 9.0;
        let cat = if t <= -2.5 {
            0
        } else if t <= -1.5 {
            1
        } else if t <= -0.5 {
            2
        } else if t <= 0.5 {
            3
        } else if t <= 1.5 {
            4
        } else if t <= 2.5 {
            5
        } else {
            6
        };
        nu[cat] += 1;
    }
    let mut chi2 = 0.0;
    for (i, &count) in nu.iter().enumerate() {
        let expect = n_blocks as f64 * PI[i];
        chi2 += (count as f64 - expect) * (count as f64 - expect) / expect;
    }
    let p = igamc(K as f64 / 2.0, chi2 / 2.0);
    Ok(TestResult::single("linear_complexity", p))
}

/// Runs the linear-complexity test with the default block length.
///
/// # Errors
///
/// See [`test_with_block`].
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    test_with_block(bits, BLOCK_LEN)
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::rng_bits as xorshift_bits;

    #[test]
    fn pi_sums_to_one() {
        let sum: f64 = PI.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4);
    }

    #[test]
    fn random_bits_pass() {
        let bits = xorshift_bits(200_000, 0xD15EA5E);
        assert!(test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn lfsr_output_fails() {
        // A short LFSR (x^16 + x^14 + x^13 + x^11 + 1): complexity 16
        // everywhere instead of ~250.
        let mut reg = 0xACE1u16;
        let bits = Bits::from_fn(200_000, |_| {
            let bit = (reg ^ (reg >> 2) ^ (reg >> 3) ^ (reg >> 5)) & 1;
            reg = (reg >> 1) | (bit << 15);
            bit == 1
        });
        let r = test(&bits).unwrap();
        assert!(r.p_values()[0] < 1e-10);
    }

    #[test]
    fn rejects_bad_block() {
        let bits = xorshift_bits(200_000, 1);
        assert!(test_with_block(&bits, 100).is_err());
        assert!(test_with_block(&bits, 10_000).is_err());
    }

    #[test]
    fn too_short_is_error() {
        assert!(test(&Bits::from_fn(1000, |_| true)).is_err());
    }
}
