//! Second-level ("two-level") testing per SP 800-22 §4: when many
//! sequences are tested, the *proportion* of passing sequences must lie
//! in a confidence band, and the p-values themselves must be uniformly
//! distributed.
//!
//! The D-RaNGe paper uses exactly this machinery: "our proportion of
//! passing sequences (1.0) falls within the range of acceptable
//! proportions ([0.998, 1] calculated ... using (1−α) ± 3·√(α(1−α)/k))"
//! (Section 7.1).

use crate::special::igamc;

/// The acceptable range of the passing proportion for `k` sequences at
/// significance `alpha`: `(1−α) ± 3·√(α(1−α)/k)`, clamped to `[0, 1]`.
///
/// # Panics
///
/// Panics if `k` is zero or `alpha` outside `(0, 1)`.
pub fn proportion_range(alpha: f64, k: usize) -> (f64, f64) {
    assert!(k > 0, "need at least one sequence");
    assert!(alpha > 0.0 && alpha < 1.0, "alpha in (0,1)");
    let p = 1.0 - alpha;
    let half = 3.0 * (alpha * (1.0 - alpha) / k as f64).sqrt();
    ((p - half).max(0.0), (p + half).min(1.0))
}

/// Whether the observed passing proportion is acceptable.
pub fn proportion_acceptable(alpha: f64, passed: usize, total: usize) -> bool {
    let (lo, hi) = proportion_range(alpha, total);
    let prop = passed as f64 / total as f64;
    (lo..=hi).contains(&prop)
}

/// Uniformity-of-p-values check (SP 800-22 §4.2.2): chi-square over ten
/// equal bins of `[0,1]`; returns the uniformity p-value `P_T`
/// (igamc(9/2, χ²/2)). NIST deems the p-values uniform when
/// `P_T ≥ 0.0001`.
///
/// # Panics
///
/// Panics if `p_values` is empty or contains values outside `[0, 1]`.
pub fn p_value_uniformity(p_values: &[f64]) -> f64 {
    assert!(!p_values.is_empty(), "need at least one p-value");
    let mut bins = [0u64; 10];
    for &p in p_values {
        assert!((0.0..=1.0).contains(&p), "p-value {p} outside [0,1]");
        let idx = ((p * 10.0) as usize).min(9);
        bins[idx] += 1;
    }
    let expect = p_values.len() as f64 / 10.0;
    let chi2: f64 = bins
        .iter()
        .map(|&c| (c as f64 - expect) * (c as f64 - expect) / expect)
        .sum();
    igamc(4.5, chi2 / 2.0)
}

/// Aggregated second-level verdict over many per-sequence p-values of
/// one test.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct SecondLevelReport {
    /// Sequences that passed at `alpha`.
    pub passed: usize,
    /// Total sequences.
    pub total: usize,
    /// Lower bound of the acceptable proportion.
    pub proportion_lo: f64,
    /// Upper bound of the acceptable proportion.
    pub proportion_hi: f64,
    /// Uniformity p-value `P_T`.
    pub uniformity_p: f64,
}

impl SecondLevelReport {
    /// Runs the full second-level analysis.
    ///
    /// # Panics
    ///
    /// Panics on empty input or invalid `alpha`.
    pub fn analyze(alpha: f64, p_values: &[f64]) -> Self {
        let passed = p_values.iter().filter(|&&p| p >= alpha).count();
        let (lo, hi) = proportion_range(alpha, p_values.len());
        SecondLevelReport {
            passed,
            total: p_values.len(),
            proportion_lo: lo,
            proportion_hi: hi,
            uniformity_p: p_value_uniformity(p_values),
        }
    }

    /// NIST's acceptance criterion: proportion in range and
    /// `P_T ≥ 0.0001`.
    pub fn acceptable(&self) -> bool {
        let prop = self.passed as f64 / self.total as f64;
        (self.proportion_lo..=self.proportion_hi).contains(&prop) && self.uniformity_p >= 1e-4
    }
}

impl std::fmt::Display for SecondLevelReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{}/{} passed (acceptable [{:.4}, {:.4}]), uniformity P_T = {:.4}",
            self.passed, self.total, self.proportion_lo, self.proportion_hi, self.uniformity_p
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn paper_proportion_range() {
        // The paper: alpha = 1e-4, proportion range [0.998, 1] for its
        // 236 streams (k enters through the sqrt).
        let (lo, hi) = proportion_range(1e-4, 236);
        assert!((lo - 0.9979).abs() < 3e-4, "lo = {lo}");
        assert_eq!(hi, 1.0);
        assert!(proportion_acceptable(1e-4, 236, 236));
        assert!(!proportion_acceptable(1e-4, 230, 236));
    }

    #[test]
    fn uniform_p_values_are_uniform() {
        let ps: Vec<f64> = (0..1000).map(|i| (i as f64 + 0.5) / 1000.0).collect();
        assert!(p_value_uniformity(&ps) > 0.99);
    }

    #[test]
    fn clustered_p_values_fail_uniformity() {
        let ps = vec![0.95; 200];
        assert!(p_value_uniformity(&ps) < 1e-10);
    }

    #[test]
    fn analyze_combines_both_criteria() {
        let ps: Vec<f64> = (0..500).map(|i| (i as f64 + 0.5) / 500.0).collect();
        let r = SecondLevelReport::analyze(0.01, &ps);
        // ~1% of a uniform sample falls below alpha = 0.01: proportion
        // ~0.99, inside the band.
        assert!(r.acceptable(), "{r}");
        // All-zero p-values: fails both.
        let bad = SecondLevelReport::analyze(0.01, &vec![0.0; 100]);
        assert!(!bad.acceptable());
    }

    #[test]
    fn display_reports_counts() {
        let r = SecondLevelReport::analyze(0.01, &[0.5, 0.6, 0.7]);
        let s = r.to_string();
        assert!(s.contains("3/3"));
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn empty_input_panics() {
        let _ = p_value_uniformity(&[]);
    }
}
