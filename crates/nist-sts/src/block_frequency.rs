//! Test 2 — Frequency within a block (SP 800-22 §2.2).
//!
//! Tests whether the proportion of ones within M-bit blocks is close to
//! 1/2, catching locally biased regions a global monobit test misses.

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::result::TestResult;
use crate::special::igamc;

/// Minimum recommended sequence length.
pub const MIN_BITS: usize = 100;

/// Default block size (NIST recommends M >= 20, M > 0.01 n).
pub const DEFAULT_BLOCK: usize = 128;

/// Runs the block-frequency test with block size `m`.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] when fewer than one block of
/// data is available or the sequence is shorter than [`MIN_BITS`].
pub fn test_with_block(bits: &Bits, m: usize) -> Result<TestResult, StsError> {
    require_len("block_frequency", MIN_BITS.max(m), bits.len())?;
    let n = bits.len();
    let blocks = n / m;
    let mut chi2 = 0.0;
    for b in 0..blocks {
        let ones: usize = (b * m..(b + 1) * m).map(|i| bits.bit(i) as usize).sum();
        let pi = ones as f64 / m as f64;
        chi2 += (pi - 0.5) * (pi - 0.5);
    }
    chi2 *= 4.0 * m as f64;
    let p = igamc(blocks as f64 / 2.0, chi2 / 2.0);
    Ok(TestResult::single("frequency_within_block", p))
}

/// Runs the block-frequency test with the default block size.
///
/// # Errors
///
/// See [`test_with_block`].
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    test_with_block(bits, DEFAULT_BLOCK)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_worked_example() {
        // SP 800-22 §2.2.4: ε = 0110011010, M = 3 -> chi2 = 1,
        // P-value = igamc(3/2, 1/2) = 0.801252.
        let bits = Bits::from_bools([
            false, true, true, false, false, true, true, false, true, false,
        ]);
        // Below MIN_BITS; compute the statistic directly.
        let m = 3;
        let blocks = bits.len() / m;
        let mut chi2 = 0.0;
        for b in 0..blocks {
            let ones: usize = (b * m..(b + 1) * m).map(|i| bits.bit(i) as usize).sum();
            let pi = ones as f64 / m as f64;
            chi2 += (pi - 0.5) * (pi - 0.5);
        }
        chi2 *= 4.0 * m as f64;
        assert!((chi2 - 1.0).abs() < 1e-12, "chi2 = {chi2}");
        let p = igamc(blocks as f64 / 2.0, chi2 / 2.0);
        assert!((p - 0.801252).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn balanced_blocks_pass() {
        let bits = Bits::from_fn(12_800, |i| i % 2 == 0);
        assert!(test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn block_biased_sequence_fails() {
        // Alternating all-ones / all-zeros blocks: globally balanced but
        // every block is maximally biased.
        let bits = Bits::from_fn(12_800, |i| (i / DEFAULT_BLOCK) % 2 == 0);
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn too_short_is_error() {
        let bits = Bits::from_fn(50, |_| true);
        assert!(test(&bits).is_err());
    }
}
