//! Test 11 — Serial test (SP 800-22 §2.11).
//!
//! Tests the uniformity of overlapping m-bit patterns (with wraparound):
//! every m-bit pattern should appear about equally often.

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::result::TestResult;
use crate::special::igamc;

/// Minimum recommended sequence length for the default block length.
pub const MIN_BITS: usize = 1000;

/// ψ²_m statistic: the generalized chi-square over overlapping m-bit
/// pattern frequencies (with wraparound). ψ²_0 is defined as 0.
fn psi_squared(bits: &Bits, m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len();
    let mut counts = vec![0u64; 1usize << m];
    let mask = (1usize << m) - 1;
    // Build the first m-bit window.
    let mut window = 0usize;
    for i in 0..m {
        window = (window << 1) | bits.bit(i % n) as usize;
    }
    counts[window] += 1;
    for i in 1..n {
        window = ((window << 1) | bits.bit((i + m - 1) % n) as usize) & mask;
        counts[window] += 1;
    }
    let nf = n as f64;
    let sum_sq: f64 = counts.iter().map(|&c| (c as f64) * (c as f64)).sum();
    (1usize << m) as f64 / nf * sum_sq - nf
}

/// Runs the serial test with pattern length `m` (two p-values).
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] if the sequence is shorter
/// than [`MIN_BITS`] or `m` is too large for the sequence
/// (NIST requires `m < log2(n) - 2`).
pub fn test_with_m(bits: &Bits, m: usize) -> Result<TestResult, StsError> {
    require_len("serial", MIN_BITS, bits.len())?;
    let max_m = ((bits.len() as f64).log2() - 2.0).floor() as usize;
    if m < 2 || m > max_m {
        return Err(StsError::NotApplicable {
            test: "serial",
            reason: format!("m = {m} outside 2..={max_m} for n = {}", bits.len()),
        });
    }
    let psi_m = psi_squared(bits, m);
    let psi_m1 = psi_squared(bits, m - 1);
    let psi_m2 = psi_squared(bits, m.saturating_sub(2));
    let d1 = psi_m - psi_m1;
    let d2 = psi_m - 2.0 * psi_m1 + psi_m2;
    let p1 = igamc((1usize << (m - 1)) as f64 / 2.0, d1 / 2.0);
    let p2 = igamc((1usize << (m - 2)) as f64 / 2.0, d2 / 2.0);
    Ok(TestResult::multi("serial", vec![p1, p2]))
}

/// Runs the serial test with the NIST-recommended block length for the
/// sequence size (`m = 16` for megabit sequences, smaller otherwise).
///
/// # Errors
///
/// See [`test_with_m`].
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    let max_m = ((bits.len() as f64).log2() - 2.0).floor() as usize;
    test_with_m(bits, max_m.min(16).max(2))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_worked_example() {
        // SP 800-22 §2.11.4: ε = 0011011101 (n = 10), m = 3:
        // ψ²_3 = 2.8, ψ²_2 = 1.2, ψ²_1 = 0.4,
        // ∇ψ² = 1.6, ∇²ψ² = 0.8,
        // P1 = igamc(2, 0.8) = 0.808792, P2 = igamc(1, 0.4) = 0.670320.
        let bits = Bits::from_bools([
            false, false, true, true, false, true, true, true, false, true,
        ]);
        let psi3 = psi_squared(&bits, 3);
        let psi2 = psi_squared(&bits, 2);
        let psi1 = psi_squared(&bits, 1);
        assert!((psi3 - 2.8).abs() < 1e-9, "psi3 = {psi3}");
        assert!((psi2 - 1.2).abs() < 1e-9, "psi2 = {psi2}");
        assert!((psi1 - 0.4).abs() < 1e-9, "psi1 = {psi1}");
        let p1 = igamc(4.0 / 2.0, (psi3 - psi2) / 2.0);
        let p2 = igamc(2.0 / 2.0, (psi3 - 2.0 * psi2 + psi1) / 2.0);
        assert!((p1 - 0.808792).abs() < 1e-5, "p1 = {p1}");
        assert!((p2 - 0.670320).abs() < 1e-5, "p2 = {p2}");
    }

    #[test]
    fn random_bits_pass() {
        let mut x = 0x7777_1234u64;
        let bits = Bits::from_fn(100_000, |_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 1 == 1
        });
        assert!(test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn periodic_bits_fail() {
        let bits = Bits::from_fn(100_000, |i| i % 3 == 0);
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn rejects_out_of_range_m() {
        let bits = Bits::from_fn(2000, |i| i % 2 == 0);
        assert!(test_with_m(&bits, 1).is_err());
        assert!(test_with_m(&bits, 20).is_err());
    }

    #[test]
    fn psi_of_zero_m_is_zero() {
        let bits = Bits::from_fn(100, |i| i % 2 == 0);
        assert_eq!(psi_squared(&bits, 0), 0.0);
    }
}
