//! Test 15 — Random excursions variant test (SP 800-22 §2.15).
//!
//! For each state x ∈ {±1..±9}, compares the *total* number of visits
//! across the whole walk against its expectation J. Produces 18
//! p-values.

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::result::TestResult;
use crate::special::erfc;

/// Minimum recommended sequence length.
pub const MIN_BITS: usize = 100_000;
/// Minimum number of cycles.
pub const MIN_CYCLES: usize = 500;

/// The 18 examined states, -9..=-1 then 1..=9.
pub fn states() -> Vec<i32> {
    (-9..=9).filter(|&x| x != 0).collect()
}

/// Runs the random excursions variant test.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] for short sequences and
/// [`StsError::NotApplicable`] when the walk has fewer than
/// [`MIN_CYCLES`] zero crossings.
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    require_len("random_excursion_variant", MIN_BITS, bits.len())?;
    let mut sum: i64 = 0;
    let mut j = 0usize;
    let mut visits = [0u64; 19]; // index = state + 9 (state 0 unused)
    for i in 0..bits.len() {
        sum += bits.pm1(i);
        if sum == 0 {
            j += 1;
        } else if (-9..=9).contains(&sum) {
            visits[(sum + 9) as usize] += 1;
        }
    }
    if sum != 0 {
        j += 1; // close the final cycle
    }
    if j < MIN_CYCLES {
        return Err(StsError::NotApplicable {
            test: "random_excursion_variant",
            reason: format!("only {j} cycles, need {MIN_CYCLES}"),
        });
    }
    let jf = j as f64;
    let mut p_values = Vec::with_capacity(18);
    for x in states() {
        let xi = visits[(x + 9) as usize] as f64;
        let denom = (2.0 * jf * (4.0 * x.abs() as f64 - 2.0)).sqrt();
        p_values.push(erfc((xi - jf).abs() / denom / std::f64::consts::SQRT_2));
    }
    Ok(TestResult::multi("random_excursion_variant", p_values))
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::rng_bits as xorshift_bits;

    #[test]
    fn eighteen_states() {
        let s = states();
        assert_eq!(s.len(), 18);
        assert!(!s.contains(&0));
        assert_eq!(*s.first().unwrap(), -9);
        assert_eq!(*s.last().unwrap(), 9);
    }

    #[test]
    fn random_bits_pass() {
        let bits = xorshift_bits(1_000_000, 0xCAFE);
        let r = test(&bits).unwrap();
        assert_eq!(r.p_values().len(), 18);
        assert!(r.passed(1e-4), "min p = {}", r.min_p());
    }

    #[test]
    fn structured_walk_fails() {
        // A walk that oscillates deterministically around +1/+2 visits
        // low states massively more often than J.
        let bits = Bits::from_fn(400_000, |i| {
            matches!(i % 4, 0 | 1 | 3) == (i % 8 < 4) || i % 2 == 0
        });
        match test(&bits) {
            Ok(r) => assert!(!r.passed(1e-4)),
            Err(StsError::NotApplicable { .. }) => {} // also an acceptable detection
            Err(e) => panic!("unexpected error {e}"),
        }
    }

    #[test]
    fn drifting_walk_not_applicable() {
        let bits = Bits::from_fn(200_000, |i| i % 3 != 0);
        assert!(matches!(test(&bits), Err(StsError::NotApplicable { .. })));
    }

    #[test]
    fn too_short_is_error() {
        assert!(test(&Bits::from_fn(1000, |_| true)).is_err());
    }
}
