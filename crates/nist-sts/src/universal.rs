//! Test 9 — Maurer's "universal statistical" test (SP 800-22 §2.9).
//!
//! Measures the compressibility of the sequence by tracking distances
//! between repetitions of L-bit blocks.

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::result::TestResult;
use crate::special::erfc;

/// Minimum sequence length for the smallest supported regime (L = 6).
pub const MIN_BITS: usize = 387_840;

/// `(expected value, variance)` of the per-block statistic for
/// L = 6..=16 (SP 800-22 §2.9.4 table).
const TABLE: [(f64, f64); 11] = [
    (5.2177052, 2.954), // L = 6
    (6.1962507, 3.125), // L = 7
    (7.1836656, 3.238), // L = 8
    (8.1764248, 3.311), // L = 9
    (9.1723243, 3.356), // L = 10
    (10.170032, 3.384), // L = 11
    (11.168765, 3.401), // L = 12
    (12.168070, 3.410), // L = 13
    (13.167693, 3.416), // L = 14
    (14.167488, 3.419), // L = 15
    (15.167379, 3.421), // L = 16
];

/// Chooses the block length L for a sequence length per §2.9.7.
fn choose_l(n: usize) -> usize {
    const THRESHOLDS: [(usize, usize); 11] = [
        (387_840, 6),
        (904_960, 7),
        (2_068_480, 8),
        (4_654_080, 9),
        (10_342_400, 10),
        (22_753_280, 11),
        (49_643_520, 12),
        (107_560_960, 13),
        (231_669_760, 14),
        (496_435_200, 15),
        (1_059_061_760, 16),
    ];
    let mut l = 0;
    for (min_n, ell) in THRESHOLDS {
        if n >= min_n {
            l = ell;
        }
    }
    l
}

/// Runs Maurer's universal test with automatic parameter selection.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] for sequences below
/// [`MIN_BITS`].
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    require_len("maurers_universal", MIN_BITS, bits.len())?;
    let l = choose_l(bits.len());
    test_with_params(bits, l, 10 * (1usize << l))
}

/// Runs Maurer's universal test with explicit block length `l` and
/// initialization-segment length `q` (in blocks).
///
/// # Errors
///
/// Returns [`StsError::NotApplicable`] for out-of-table `l` or when no
/// test blocks remain after initialization.
pub fn test_with_params(bits: &Bits, l: usize, q: usize) -> Result<TestResult, StsError> {
    if !(6..=16).contains(&l) {
        return Err(StsError::NotApplicable {
            test: "maurers_universal",
            reason: format!("L = {l} outside the tabulated range 6..=16"),
        });
    }
    let total_blocks = bits.len() / l;
    if total_blocks <= q {
        return Err(StsError::NotApplicable {
            test: "maurers_universal",
            reason: format!("only {total_blocks} blocks for Q = {q}"),
        });
    }
    let k = total_blocks - q;
    let mut last_seen = vec![0usize; 1usize << l]; // 0 = never seen
    let block_at = |b: usize| -> usize {
        let mut v = 0usize;
        for i in 0..l {
            v = (v << 1) | bits.bit(b * l + i) as usize;
        }
        v
    };
    // Initialization segment.
    for b in 0..q {
        last_seen[block_at(b)] = b + 1;
    }
    // Test segment: sum log2 of distances to previous occurrence.
    let mut sum = 0.0;
    for b in q..total_blocks {
        let v = block_at(b);
        let dist = (b + 1) - last_seen[v];
        sum += (dist as f64).log2();
        last_seen[v] = b + 1;
    }
    let fn_stat = sum / k as f64;
    let (expected, variance) = TABLE[l - 6];
    // Finite-size correction factor (SP 800-22 §2.9.4).
    let c =
        0.7 - 0.8 / l as f64 + (4.0 + 32.0 / l as f64) * (k as f64).powf(-3.0 / l as f64) / 15.0;
    let sigma = c * (variance / k as f64).sqrt();
    let p = erfc(((fn_stat - expected) / (std::f64::consts::SQRT_2 * sigma)).abs());
    Ok(TestResult::single("maurers_universal", p))
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::rng_bits as xorshift_bits;

    #[test]
    fn l_selection_matches_table() {
        assert_eq!(choose_l(387_840), 6);
        assert_eq!(choose_l(904_960), 7);
        assert_eq!(choose_l(1_000_000), 7);
        assert_eq!(choose_l(2_068_480), 8);
    }

    #[test]
    fn random_bits_pass() {
        let bits = xorshift_bits(400_000, 0xAA55);
        assert!(test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn periodic_bits_fail() {
        // Period 12: blocks repeat at tiny distances -> low f_n.
        let bits = Bits::from_fn(400_000, |i| (i % 12) < 6);
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn explicit_params_small_sequence() {
        // With explicit L = 6 and a small Q, the test runs on shorter
        // sequences (useful for unit testing).
        let bits = xorshift_bits(60_000, 3);
        let r = test_with_params(&bits, 6, 640).unwrap();
        assert!((0.0..=1.0).contains(&r.p_values()[0]));
    }

    #[test]
    fn rejects_bad_l() {
        let bits = xorshift_bits(60_000, 3);
        assert!(test_with_params(&bits, 5, 100).is_err());
        assert!(test_with_params(&bits, 17, 100).is_err());
    }

    #[test]
    fn too_short_is_error() {
        assert!(test(&Bits::from_fn(1000, |_| true)).is_err());
    }
}
