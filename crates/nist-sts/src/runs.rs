//! Test 3 — Runs test (SP 800-22 §2.3).
//!
//! Tests whether the number of runs (maximal same-bit substrings) is
//! consistent with randomness: too few runs means clumping, too many
//! means oscillation.

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::result::TestResult;
use crate::special::erfc;

/// Minimum recommended sequence length.
pub const MIN_BITS: usize = 100;

/// Runs the runs test.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] for short sequences.
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    require_len("runs", MIN_BITS, bits.len())?;
    let n = bits.len();
    let pi = bits.ones() as f64 / n as f64;
    // Prerequisite frequency check (SP 800-22 step 2): if the sequence
    // already fails monobit badly, the runs statistic is meaningless and
    // the p-value is defined as 0.
    let tau = 2.0 / (n as f64).sqrt();
    if (pi - 0.5).abs() >= tau {
        return Ok(TestResult::single("runs", 0.0));
    }
    let mut v_obs = 1u64;
    for i in 1..n {
        if bits.bit(i) != bits.bit(i - 1) {
            v_obs += 1;
        }
    }
    let num = (v_obs as f64 - 2.0 * n as f64 * pi * (1.0 - pi)).abs();
    let den = 2.0 * (2.0 * n as f64).sqrt() * pi * (1.0 - pi);
    let p = erfc(num / den);
    Ok(TestResult::single("runs", p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_worked_example() {
        // SP 800-22 §2.3.4: ε = 1001101011 (n = 10): π = 0.6,
        // V_obs = 7, P-value = 0.147232. (Below MIN_BITS; compute the
        // statistic directly.)
        let bits = Bits::from_bools([
            true, false, false, true, true, false, true, false, true, true,
        ]);
        let n = bits.len();
        let pi = bits.ones() as f64 / n as f64;
        assert!((pi - 0.6).abs() < 1e-12);
        let mut v_obs = 1u64;
        for i in 1..n {
            if bits.bit(i) != bits.bit(i - 1) {
                v_obs += 1;
            }
        }
        assert_eq!(v_obs, 7);
        let num = (v_obs as f64 - 2.0 * n as f64 * pi * (1.0 - pi)).abs();
        let den = 2.0 * (2.0 * n as f64).sqrt() * pi * (1.0 - pi);
        let p = erfc(num / den);
        assert!((p - 0.147232).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn alternating_sequence_fails() {
        // 0101... has the maximum possible number of runs.
        let bits = Bits::from_fn(1000, |i| i % 2 == 0);
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn clumped_sequence_fails() {
        // 500 ones then 500 zeros: only 2 runs.
        let bits = Bits::from_fn(1000, |i| i < 500);
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn biased_sequence_shortcircuits_to_zero() {
        let bits = Bits::from_fn(1000, |i| i % 8 != 0);
        let r = test(&bits).unwrap();
        assert_eq!(r.p_values()[0], 0.0);
    }

    #[test]
    fn too_short_is_error() {
        assert!(test(&Bits::from_fn(10, |_| true)).is_err());
    }
}
