//! Test 6 — Discrete Fourier transform (spectral) test (SP 800-22 §2.6).
//!
//! Detects periodic features: too many DFT peaks above the 95 %
//! threshold indicates repetitive structure.

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::fft::{fft_in_place, Complex};
use crate::result::TestResult;
use crate::special::erfc;

/// Minimum recommended sequence length.
pub const MIN_BITS: usize = 1000;

/// Runs the spectral test.
///
/// The radix-2 FFT requires a power-of-two length, so the sequence is
/// truncated to the largest power of two that fits — statistically
/// harmless since the test considers only the aggregate peak count.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] for short sequences.
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    require_len("dft", MIN_BITS, bits.len())?;
    let n = if bits.len().is_power_of_two() {
        bits.len()
    } else {
        1usize << (usize::BITS - 1 - bits.len().leading_zeros())
    };
    let mut buf: Vec<Complex> = (0..n)
        .map(|i| Complex::new(bits.pm1(i) as f64, 0.0))
        .collect();
    fft_in_place(&mut buf);
    // Threshold T = sqrt(ln(1/0.05) * n); expect 95% of the first n/2
    // magnitudes below it.
    let t = ((1.0f64 / 0.05).ln() * n as f64).sqrt();
    let half = n / 2;
    let n1 = buf.iter().take(half).filter(|c| c.abs() < t).count() as f64;
    let n0 = 0.95 * half as f64;
    let d = (n1 - n0) / (n as f64 * 0.95 * 0.05 / 4.0).sqrt();
    let p = erfc(d.abs() / std::f64::consts::SQRT_2);
    Ok(TestResult::single("dft", p))
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::rng_bits as xorshift_bits;

    #[test]
    fn random_bits_pass() {
        for seed in [1u64, 99, 0xABCD] {
            let bits = xorshift_bits(16_384, seed);
            assert!(test(&bits).unwrap().passed(0.01), "seed {seed}");
        }
    }

    #[test]
    fn periodic_bits_fail() {
        // Period-8 pattern: strong spectral line.
        let bits = Bits::from_fn(16_384, |i| (i % 8) < 3);
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn truncates_non_power_of_two() {
        // 10_000 bits -> uses 8192; must not panic.
        let bits = xorshift_bits(10_000, 7);
        let r = test(&bits).unwrap();
        assert!((0.0..=1.0).contains(&r.p_values()[0]));
    }

    #[test]
    fn too_short_is_error() {
        assert!(test(&Bits::from_fn(100, |_| true)).is_err());
    }
}
