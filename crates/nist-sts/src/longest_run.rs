//! Test 4 — Longest run of ones in a block (SP 800-22 §2.4).
//!
//! Tests whether the longest run of ones within M-bit blocks matches
//! the distribution expected of random data.

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::result::TestResult;
use crate::special::igamc;

/// Minimum sequence length (the M = 8 regime applies from 128 bits).
pub const MIN_BITS: usize = 128;

struct Regime {
    m: usize,
    /// Run-length category boundaries: category i is `v <= lo + i`,
    /// except the last which is `v >= lo + k`.
    lo: usize,
    k: usize,
    pi: &'static [f64],
}

/// Category probabilities from SP 800-22 §2.4.4 / §3.4.
fn regime(n: usize) -> Regime {
    if n < 6272 {
        Regime {
            m: 8,
            lo: 1,
            k: 3,
            pi: &[0.2148, 0.3672, 0.2305, 0.1875],
        }
    } else if n < 750_000 {
        Regime {
            m: 128,
            lo: 4,
            k: 5,
            pi: &[0.1174, 0.2430, 0.2493, 0.1752, 0.1027, 0.1124],
        }
    } else {
        Regime {
            m: 10_000,
            lo: 10,
            k: 6,
            pi: &[0.0882, 0.2092, 0.2483, 0.1933, 0.1208, 0.0675, 0.0727],
        }
    }
}

/// Runs the longest-run-of-ones test.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] for sequences shorter than
/// [`MIN_BITS`].
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    require_len("longest_run_ones_in_a_block", MIN_BITS, bits.len())?;
    let n = bits.len();
    let r = regime(n);
    let blocks = n / r.m;
    let mut nu = vec![0u64; r.k + 1];
    for b in 0..blocks {
        let mut longest = 0usize;
        let mut run = 0usize;
        for i in b * r.m..(b + 1) * r.m {
            if bits.bit(i) == 1 {
                run += 1;
                longest = longest.max(run);
            } else {
                run = 0;
            }
        }
        let cat = longest.saturating_sub(r.lo).min(r.k);
        nu[cat] += 1;
    }
    let mut chi2 = 0.0;
    for (i, &count) in nu.iter().enumerate() {
        let expect = blocks as f64 * r.pi[i];
        chi2 += (count as f64 - expect) * (count as f64 - expect) / expect;
    }
    let p = igamc(r.k as f64 / 2.0, chi2 / 2.0);
    Ok(TestResult::single("longest_run_ones_in_a_block", p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn regimes_switch_at_documented_sizes() {
        assert_eq!(regime(128).m, 8);
        assert_eq!(regime(6272).m, 128);
        assert_eq!(regime(750_000).m, 10_000);
    }

    #[test]
    fn category_probabilities_sum_to_one() {
        for n in [128, 10_000, 1_000_000] {
            let r = regime(n);
            let sum: f64 = r.pi.iter().sum();
            assert!((sum - 1.0).abs() < 1e-3, "n={n} sum={sum}");
            assert_eq!(r.pi.len(), r.k + 1);
        }
    }

    #[test]
    fn all_ones_fails() {
        let bits = Bits::from_fn(1024, |_| true);
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn alternating_fails() {
        // Longest run is always 1: far below expectation.
        let bits = Bits::from_fn(1024, |i| i % 2 == 0);
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn lcg_bits_pass() {
        // A decent PRNG's bits should pass this test.
        let mut x = 0x2545F491_4F6CDD1Du64;
        let bits = Bits::from_fn(100_000, |_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 1 == 1
        });
        assert!(test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn too_short_is_error() {
        assert!(test(&Bits::from_fn(100, |_| true)).is_err());
    }
}
