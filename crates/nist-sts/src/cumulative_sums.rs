//! Test 13 — Cumulative sums (Cusum) test (SP 800-22 §2.13).
//!
//! Tests whether the random walk defined by the ±1 sequence strays too
//! far from zero, in both forward and backward directions.

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::result::TestResult;
use crate::special::normal_cdf;

/// Minimum recommended sequence length.
pub const MIN_BITS: usize = 100;

/// Walk direction for the cusum statistic.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Direction {
    /// Sum from the start of the sequence.
    Forward,
    /// Sum from the end of the sequence.
    Backward,
}

/// The cusum p-value in one direction.
fn p_value(bits: &Bits, dir: Direction) -> f64 {
    let n = bits.len();
    let mut sum: i64 = 0;
    let mut z: i64 = 0;
    for k in 0..n {
        let i = match dir {
            Direction::Forward => k,
            Direction::Backward => n - 1 - k,
        };
        sum += bits.pm1(i);
        z = z.max(sum.abs());
    }
    let z = z as f64;
    let nf = n as f64;
    let sqrt_n = nf.sqrt();

    // SP 800-22 §2.13.5 formula.
    let mut p = 1.0;
    let k_lo = ((-nf / z + 1.0) / 4.0).floor() as i64;
    let k_hi = ((nf / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo..=k_hi {
        let kf = k as f64;
        p -= normal_cdf((4.0 * kf + 1.0) * z / sqrt_n) - normal_cdf((4.0 * kf - 1.0) * z / sqrt_n);
    }
    let k_lo2 = ((-nf / z - 3.0) / 4.0).floor() as i64;
    let k_hi2 = ((nf / z - 1.0) / 4.0).floor() as i64;
    for k in k_lo2..=k_hi2 {
        let kf = k as f64;
        p += normal_cdf((4.0 * kf + 3.0) * z / sqrt_n) - normal_cdf((4.0 * kf + 1.0) * z / sqrt_n);
    }
    p.clamp(0.0, 1.0)
}

/// Runs the cumulative-sums test (both directions; two p-values).
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] for short sequences.
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    require_len("cumulative_sums", MIN_BITS, bits.len())?;
    let forward = p_value(bits, Direction::Forward);
    let backward = p_value(bits, Direction::Backward);
    Ok(TestResult::multi(
        "cumulative_sums",
        vec![forward, backward],
    ))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_worked_example() {
        // SP 800-22 §2.13.4: ε = 1011010111 (n = 10), forward z = 4.
        // The document reports P = 0.4116588 with rounded Φ values; the
        // exact evaluation of the §2.13.5 formula (cross-checked against
        // an independent Python implementation) is 0.4115847.
        let bits = Bits::from_bools([
            true, false, true, true, false, true, false, true, true, true,
        ]);
        let p = p_value(&bits, Direction::Forward);
        assert!((p - 0.4115847).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn drifting_walk_fails() {
        // 60% ones: the walk drifts linearly.
        let bits = Bits::from_fn(1000, |i| i % 5 != 0);
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn alternating_walk_passes() {
        // The walk oscillates between 0 and 1: max excursion 1, which
        // for cusum is *too small* to be suspicious in this test's
        // one-sided sense? No: small z gives p near 1.
        let bits = Bits::from_fn(1000, |i| i % 2 == 0);
        let r = test(&bits).unwrap();
        assert!(r.passed(0.01));
    }

    #[test]
    fn forward_and_backward_differ_for_asymmetric_input() {
        // Heavy drift early, balanced late.
        let bits = Bits::from_fn(400, |i| if i < 60 { true } else { i % 2 == 0 });
        let f = p_value(&bits, Direction::Forward);
        let b = p_value(&bits, Direction::Backward);
        assert_ne!(f, b);
    }

    #[test]
    fn p_values_in_unit_interval() {
        for seed in 0..20u64 {
            let mut x = seed.wrapping_mul(0x9E3779B97F4A7C15) | 1;
            let bits = Bits::from_fn(2000, |_| {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1 == 1
            });
            let r = test(&bits).unwrap();
            for &p in r.p_values() {
                assert!((0.0..=1.0).contains(&p));
            }
        }
    }

    #[test]
    fn too_short_is_error() {
        assert!(test(&Bits::from_fn(10, |_| true)).is_err());
    }
}
