//! Test 8 — Overlapping template matching (SP 800-22 §2.8).
//!
//! Counts *overlapping* occurrences of the all-ones m-bit template in
//! M-bit blocks and compares the count distribution against the
//! theoretical one (a compound-Poisson approximation).

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::result::TestResult;
use crate::special::igamc;

/// Template length (NIST default m = 9).
pub const M_TEMPLATE: usize = 9;
/// Block length (NIST default M = 1032).
pub const BLOCK_LEN: usize = 1032;
/// Number of count categories - 1 (K = 5: categories 0..=4 and ≥5).
pub const K: usize = 5;
/// Minimum recommended sequence length.
pub const MIN_BITS: usize = 1_000_000;

/// Category probabilities π₀..π₅ for m = 9, M = 1032 (SP 800-22 §3.8,
/// as corrected in the reference implementation).
pub const PI: [f64; 6] = [0.364091, 0.185659, 0.139381, 0.100571, 0.070432, 0.139865];

/// Runs the overlapping template matching test.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] for sequences shorter than
/// [`MIN_BITS`].
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    require_len("overlapping_template_matching", MIN_BITS, bits.len())?;
    let n_blocks = bits.len() / BLOCK_LEN;
    let mut nu = [0u64; K + 1];
    for b in 0..n_blocks {
        let base = b * BLOCK_LEN;
        let mut count = 0usize;
        let mut run = 0usize;
        // Overlapping occurrences of the all-ones template = positions
        // where the current run of ones is at least m.
        for i in 0..BLOCK_LEN {
            if bits.bit(base + i) == 1 {
                run += 1;
                if run >= M_TEMPLATE {
                    count += 1;
                }
            } else {
                run = 0;
            }
        }
        nu[count.min(K)] += 1;
    }
    let mut chi2 = 0.0;
    for (i, &count) in nu.iter().enumerate() {
        let expect = n_blocks as f64 * PI[i];
        chi2 += (count as f64 - expect) * (count as f64 - expect) / expect;
    }
    let p = igamc(K as f64 / 2.0, chi2 / 2.0);
    Ok(TestResult::single("overlapping_template_matching", p))
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::rng_bits as xorshift_bits;

    #[test]
    fn pi_sums_to_one() {
        let sum: f64 = PI.iter().sum();
        assert!((sum - 1.0).abs() < 1e-4, "sum = {sum}");
    }

    #[test]
    fn random_bits_pass() {
        let bits = xorshift_bits(1_100_000, 0x5EED);
        assert!(test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn long_runs_of_ones_fail() {
        // Insert a 16-one run every 200 bits: far too many overlapping
        // matches of the 9-ones template.
        let mut x = 11u64;
        let bits = Bits::from_fn(1_100_000, |i| {
            if i % 200 < 16 {
                true
            } else {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1 == 1
            }
        });
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn all_zeros_fails() {
        // Every block lands in category 0: chi2 explodes.
        let bits = Bits::from_fn(1_100_000, |_| false);
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn too_short_is_error() {
        assert!(test(&Bits::from_fn(10_000, |_| true)).is_err());
    }
}
