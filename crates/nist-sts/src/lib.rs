//! # nist-sts — NIST SP 800-22 statistical test suite
//!
//! A from-scratch implementation of all 15 tests of the NIST
//! *Statistical Test Suite for Random and Pseudorandom Number Generators
//! for Cryptographic Applications* (SP 800-22 rev. 1a), the suite the
//! D-RaNGe paper uses to validate its bitstreams (Table 1):
//!
//! 1. Frequency (monobit)
//! 2. Frequency within a block
//! 3. Runs
//! 4. Longest run of ones in a block
//! 5. Binary matrix rank
//! 6. Discrete Fourier transform (spectral)
//! 7. Non-overlapping template matching
//! 8. Overlapping template matching
//! 9. Maurer's "universal statistical" test
//! 10. Linear complexity
//! 11. Serial
//! 12. Approximate entropy
//! 13. Cumulative sums
//! 14. Random excursions
//! 15. Random excursions variant
//!
//! Each test takes a [`Bits`] sequence and returns a [`TestResult`]
//! carrying one or more p-values; a sequence passes at significance
//! level `alpha` when every p-value is at least `alpha`. [`NistSuite`]
//! runs all 15 in the paper's Table 1 order.
//!
//! The math substrate (complementary error function, regularized
//! incomplete gamma, FFT, GF(2) matrix rank, Berlekamp–Massey) is
//! implemented in this crate with no external dependencies.
//!
//! ## Example
//!
//! ```rust
//! use nist_sts::{Bits, NistSuite};
//!
//! # fn main() -> Result<(), nist_sts::StsError> {
//! // An alternating sequence passes monobit but fails runs.
//! let bits = Bits::from_fn(10_000, |i| i % 2 == 0);
//! let monobit = nist_sts::monobit::test(&bits)?;
//! assert!(monobit.passed(0.01));
//! let runs = nist_sts::runs::test(&bits)?;
//! assert!(!runs.passed(0.01));
//! let _ = NistSuite::default();
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod approximate_entropy;
pub mod berlekamp;
pub mod bits;
pub mod block_frequency;
pub mod cumulative_sums;
pub mod dft;
pub mod diehard;
pub mod error;
pub mod fft;
pub mod linear_complexity;
pub mod longest_run;
pub mod matrix_rank;
pub mod monobit;
pub mod non_overlapping;
pub mod overlapping;
pub mod random_excursions;
pub mod random_excursions_variant;
pub mod rank_gf2;
pub mod result;
pub mod runs;
pub mod second_level;
pub mod serial;
pub mod special;
pub mod suite;
pub mod templates;
#[doc(hidden)]
pub mod testutil;
pub mod universal;

pub use bits::Bits;
pub use error::StsError;
pub use result::TestResult;
pub use second_level::SecondLevelReport;
pub use suite::{NistSuite, SuiteReport, TestOutcome};
