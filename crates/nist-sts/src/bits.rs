//! Bit-sequence container shared by all tests.

/// A sequence of bits under test.
///
/// Stored one bit per byte for simple, fast random access — the suite's
/// reference sequences are at most a few megabits, so compactness is not
/// the constraint.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub struct Bits {
    data: Vec<u8>,
}

impl Bits {
    /// An empty sequence.
    pub fn new() -> Self {
        Bits { data: Vec::new() }
    }

    /// Builds a sequence by evaluating `f(i)` for `i in 0..len`.
    pub fn from_fn(len: usize, mut f: impl FnMut(usize) -> bool) -> Self {
        Bits {
            data: (0..len).map(|i| u8::from(f(i))).collect(),
        }
    }

    /// Builds from a slice of bytes, most-significant bit first (the
    /// NIST convention for reading input files).
    pub fn from_bytes_msb(bytes: &[u8]) -> Self {
        let mut data = Vec::with_capacity(bytes.len() * 8);
        for &b in bytes {
            for k in (0..8).rev() {
                data.push((b >> k) & 1);
            }
        }
        Bits { data }
    }

    /// Builds from an iterator of bools.
    pub fn from_bools(iter: impl IntoIterator<Item = bool>) -> Self {
        Bits {
            data: iter.into_iter().map(u8::from).collect(),
        }
    }

    /// Appends one bit.
    pub fn push(&mut self, bit: bool) {
        self.data.push(u8::from(bit));
    }

    /// Number of bits.
    #[inline]
    pub fn len(&self) -> usize {
        self.data.len()
    }

    /// Whether the sequence is empty.
    #[inline]
    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// The bit at `i` as 0/1.
    ///
    /// # Panics
    ///
    /// Panics if `i` is out of range.
    #[inline]
    pub fn bit(&self, i: usize) -> u8 {
        self.data[i]
    }

    /// The bit at `i` as ±1 (`1 -> +1`, `0 -> -1`).
    #[inline]
    pub fn pm1(&self, i: usize) -> i64 {
        if self.data[i] == 1 {
            1
        } else {
            -1
        }
    }

    /// Count of one-bits.
    pub fn ones(&self) -> usize {
        self.data.iter().map(|&b| b as usize).sum()
    }

    /// Iterator over bits as 0/1.
    pub fn iter(&self) -> impl Iterator<Item = u8> + '_ {
        self.data.iter().copied()
    }

    /// The raw 0/1 byte slice.
    pub fn as_slice(&self) -> &[u8] {
        &self.data
    }

    /// A sub-range view copied into a new `Bits`.
    ///
    /// # Panics
    ///
    /// Panics if the range is out of bounds.
    pub fn slice(&self, range: std::ops::Range<usize>) -> Bits {
        Bits {
            data: self.data[range].to_vec(),
        }
    }

    /// Truncates to `len` bits (no-op if already shorter).
    pub fn truncate(&mut self, len: usize) {
        self.data.truncate(len);
    }

    /// Packs the bits into bytes, most-significant bit first; the final
    /// partial byte (if any) is zero-padded on the right.
    pub fn to_bytes_msb(&self) -> Vec<u8> {
        let mut out = Vec::with_capacity(self.data.len().div_ceil(8));
        for chunk in self.data.chunks(8) {
            let mut b = 0u8;
            for (k, &bit) in chunk.iter().enumerate() {
                b |= bit << (7 - k);
            }
            out.push(b);
        }
        out
    }
}

impl FromIterator<bool> for Bits {
    fn from_iter<T: IntoIterator<Item = bool>>(iter: T) -> Self {
        Bits::from_bools(iter)
    }
}

impl Extend<bool> for Bits {
    fn extend<T: IntoIterator<Item = bool>>(&mut self, iter: T) {
        self.data.extend(iter.into_iter().map(u8::from));
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn from_bytes_msb_order() {
        let b = Bits::from_bytes_msb(&[0b1010_0001]);
        assert_eq!(b.len(), 8);
        assert_eq!(b.iter().collect::<Vec<_>>(), vec![1, 0, 1, 0, 0, 0, 0, 1]);
    }

    #[test]
    fn byte_round_trip() {
        let b = Bits::from_bytes_msb(&[0xDE, 0xAD, 0xBE, 0xEF]);
        assert_eq!(b.to_bytes_msb(), vec![0xDE, 0xAD, 0xBE, 0xEF]);
    }

    #[test]
    fn partial_byte_pads_right() {
        let mut b = Bits::new();
        b.push(true);
        b.push(true);
        b.push(false);
        assert_eq!(b.to_bytes_msb(), vec![0b1100_0000]);
    }

    #[test]
    fn pm1_mapping() {
        let b = Bits::from_bools([true, false]);
        assert_eq!(b.pm1(0), 1);
        assert_eq!(b.pm1(1), -1);
    }

    #[test]
    fn ones_and_slice() {
        let b = Bits::from_fn(10, |i| i < 4);
        assert_eq!(b.ones(), 4);
        let s = b.slice(2..6);
        assert_eq!(s.iter().collect::<Vec<_>>(), vec![1, 1, 0, 0]);
    }

    #[test]
    fn collect_and_extend() {
        let mut b: Bits = [true, false].into_iter().collect();
        b.extend([true]);
        assert_eq!(b.len(), 3);
        assert_eq!(b.ones(), 2);
    }

    #[test]
    fn truncate_shortens() {
        let mut b = Bits::from_fn(10, |_| true);
        b.truncate(4);
        assert_eq!(b.len(), 4);
        b.truncate(100);
        assert_eq!(b.len(), 4);
    }
}
