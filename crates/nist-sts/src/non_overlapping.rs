//! Test 7 — Non-overlapping template matching (SP 800-22 §2.7).
//!
//! Counts non-overlapping occurrences of aperiodic m-bit templates in
//! N blocks; too many or too few occurrences of any template indicate
//! non-randomness. NIST's default is m = 9, giving 148 templates and
//! one p-value per template.

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::result::TestResult;
use crate::special::igamc;
use crate::templates::aperiodic_templates;

/// Default template length.
pub const DEFAULT_M: usize = 9;
/// Number of blocks (NIST default).
pub const BLOCKS: usize = 8;
/// Minimum recommended sequence length.
pub const MIN_BITS: usize = 100_000;

/// Counts non-overlapping occurrences of `template` in `bits[start..end]`:
/// on a match, the scan skips the whole template.
fn count_occurrences(bits: &Bits, start: usize, end: usize, template: &[u8]) -> u64 {
    let m = template.len();
    let mut count = 0u64;
    let mut i = start;
    while i + m <= end {
        let matched = (0..m).all(|j| bits.bit(i + j) == template[j]);
        if matched {
            count += 1;
            i += m;
        } else {
            i += 1;
        }
    }
    count
}

/// Runs the non-overlapping template test for every aperiodic template
/// of length `m`, returning one p-value per template.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] for short sequences and
/// [`StsError::NotApplicable`] for out-of-range `m`.
pub fn test_with_m(bits: &Bits, m: usize) -> Result<TestResult, StsError> {
    require_len("non_overlapping_template_matching", MIN_BITS, bits.len())?;
    if !(2..=12).contains(&m) {
        return Err(StsError::NotApplicable {
            test: "non_overlapping_template_matching",
            reason: format!("template length {m} outside 2..=12"),
        });
    }
    let n = bits.len();
    let block_len = n / BLOCKS;
    let mu = (block_len - m + 1) as f64 / (1u64 << m) as f64;
    let sigma2 = block_len as f64
        * (1.0 / (1u64 << m) as f64 - (2.0 * m as f64 - 1.0) / (1u128 << (2 * m)) as f64);
    let mut p_values = Vec::new();
    for template in aperiodic_templates(m) {
        let mut chi2 = 0.0;
        for b in 0..BLOCKS {
            let w = count_occurrences(bits, b * block_len, (b + 1) * block_len, &template);
            chi2 += (w as f64 - mu) * (w as f64 - mu) / sigma2;
        }
        p_values.push(igamc(BLOCKS as f64 / 2.0, chi2 / 2.0));
    }
    Ok(TestResult::multi(
        "non_overlapping_template_matching",
        p_values,
    ))
}

/// Runs the test with the default m = 9 (148 templates).
///
/// # Errors
///
/// See [`test_with_m`].
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    test_with_m(bits, DEFAULT_M)
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::rng_bits as xorshift_bits;

    #[test]
    fn nist_worked_example_counts() {
        // SP 800-22 §2.7.4: ε = 10100100101110010110 (n = 20), m = 3,
        // template B = 001, N = 2 blocks of M = 10.
        // Block 1 = 1010010010: W = 2; Block 2 = 1110010110: W = 1.
        let bits = Bits::from_bools("10100100101110010110".chars().map(|c| c == '1'));
        let template = [0u8, 0, 1];
        assert_eq!(count_occurrences(&bits, 0, 10, &template), 2);
        assert_eq!(count_occurrences(&bits, 10, 20, &template), 1);
    }

    #[test]
    fn non_overlap_skips_matched_region() {
        // "000" in "00000": occurrences at 0 and (after skip) none more
        // (only 2 bits remain).
        let bits = Bits::from_fn(5, |_| false);
        assert_eq!(count_occurrences(&bits, 0, 5, &[0, 0, 0]), 1);
        let bits6 = Bits::from_fn(6, |_| false);
        assert_eq!(count_occurrences(&bits6, 0, 6, &[0, 0, 0]), 2);
    }

    #[test]
    fn random_bits_pass_all_templates() {
        let bits = xorshift_bits(120_000, 0xC0FFEE);
        let r = test(&bits).unwrap();
        assert_eq!(r.p_values().len(), 148);
        // At alpha = 1e-4 (the paper's level) every template passes.
        assert!(r.passed(1e-4), "min p = {}", r.min_p());
    }

    #[test]
    fn planted_template_fails() {
        // Plant 000000001 much more often than expected.
        let mut x = 7u64;
        let bits = Bits::from_fn(120_000, |i| {
            if i % 40 < 9 {
                i % 40 == 8
            } else {
                x ^= x << 13;
                x ^= x >> 7;
                x ^= x << 17;
                x & 1 == 1
            }
        });
        let r = test(&bits).unwrap();
        assert!(!r.passed(1e-4), "min p = {}", r.min_p());
    }

    #[test]
    fn rejects_bad_m() {
        let bits = xorshift_bits(120_000, 5);
        assert!(test_with_m(&bits, 1).is_err());
        assert!(test_with_m(&bits, 13).is_err());
    }

    #[test]
    fn too_short_is_error() {
        assert!(test(&Bits::from_fn(1000, |_| true)).is_err());
    }
}
