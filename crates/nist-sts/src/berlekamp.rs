//! Berlekamp–Massey algorithm over GF(2) (for the linear-complexity
//! test): the length of the shortest LFSR generating a bit sequence.

/// Linear complexity of `bits` (each element 0 or 1): the length of the
/// shortest linear feedback shift register that produces the sequence.
pub fn linear_complexity(bits: &[u8]) -> usize {
    let n = bits.len();
    let mut c = vec![0u8; n + 1]; // connection polynomial C(D)
    let mut b = vec![0u8; n + 1]; // previous C before last length change
    c[0] = 1;
    b[0] = 1;
    let mut l = 0usize; // current LFSR length
    let mut m: isize = -1; // index of last length change
    for i in 0..n {
        // Discrepancy d = s_i + sum_{j=1..L} c_j * s_{i-j} (mod 2).
        let mut d = bits[i];
        for j in 1..=l {
            d ^= c[j] & bits[i - j];
        }
        if d == 1 {
            let t = c.clone();
            let shift = (i as isize - m) as usize;
            for j in 0..=n - shift.min(n) {
                if j + shift <= n {
                    c[j + shift] ^= b[j];
                }
            }
            if 2 * l <= i {
                l = i + 1 - l;
                m = i as isize;
                b = t;
            }
        }
    }
    l
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn all_zeros_has_complexity_zero() {
        assert_eq!(linear_complexity(&[0; 20]), 0);
    }

    #[test]
    fn impulse_has_full_complexity() {
        // 0...01: needs an LFSR as long as the run of zeros + 1.
        let mut bits = vec![0u8; 10];
        bits.push(1);
        assert_eq!(linear_complexity(&bits), 11);
    }

    #[test]
    fn alternating_sequence_is_simple() {
        let bits: Vec<u8> = (0..40).map(|i| (i % 2) as u8).collect();
        // 0101... satisfies s_i = s_{i-2} (and in GF(2) even s_i = s_{i-1} + 1
        // is not linear homogeneous); complexity is small.
        assert!(linear_complexity(&bits) <= 2);
    }

    #[test]
    fn nist_example_sequence() {
        // SP 800-22 section 2.10.8 example: the 13-bit sequence
        // 1101011110001 has linear complexity 4.
        let bits: Vec<u8> = [1, 1, 0, 1, 0, 1, 1, 1, 1, 0, 0, 0, 1].to_vec();
        assert_eq!(linear_complexity(&bits), 4);
    }

    #[test]
    fn lfsr_output_recovers_register_length() {
        // Generate from a known LFSR: s_i = s_{i-3} ^ s_{i-4} (x^4+x^3+1,
        // maximal length), seed 0001.
        let mut s = vec![0u8, 0, 0, 1];
        for i in 4..64 {
            let bit = s[i - 3] ^ s[i - 4];
            s.push(bit);
        }
        assert_eq!(linear_complexity(&s), 4);
    }

    #[test]
    fn complexity_is_monotone_in_prefix_length() {
        let bits: Vec<u8> = (0..64)
            .map(|i| ((i * i * 7 + i * 3 + 1) % 5 % 2) as u8)
            .collect();
        let mut prev = 0;
        for n in 1..=bits.len() {
            let l = linear_complexity(&bits[..n]);
            assert!(l >= prev, "complexity cannot decrease with more bits");
            prev = l;
        }
    }

    #[test]
    fn random_sequence_complexity_near_half_length() {
        // A fixed "random-looking" (non-GF(2)-linear) sequence:
        // complexity concentrates very tightly around n/2.
        let seq = crate::testutil::rng_bits(200, 0xFACE);
        let bits: Vec<u8> = seq.iter().collect();
        let l = linear_complexity(&bits);
        assert!((95..=105).contains(&l), "complexity {l} should be near 100");
    }
}
