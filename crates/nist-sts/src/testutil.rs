//! Test-support generators.
//!
//! Statistical-test fixtures need a "good" random source that is **not**
//! GF(2)-linear: xorshift-style generators are linear over GF(2), so the
//! linear-complexity test (correctly!) rejects them. SplitMix64 mixes
//! with 64-bit multiplications, which are not GF(2)-linear, and passes
//! the whole suite.

use crate::bits::Bits;

/// One SplitMix64 step.
#[doc(hidden)]
pub fn splitmix_next(state: &mut u64) -> u64 {
    *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
    let mut z = *state;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

/// `n` bits from a SplitMix64 stream seeded with `seed`.
#[doc(hidden)]
pub fn rng_bits(n: usize, seed: u64) -> Bits {
    let mut state = seed;
    let mut word = 0u64;
    let mut left = 0u32;
    Bits::from_fn(n, |_| {
        if left == 0 {
            word = splitmix_next(&mut state);
            left = 64;
        }
        let bit = word & 1 == 1;
        word >>= 1;
        left -= 1;
        bit
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn rng_bits_is_deterministic_and_balanced() {
        let a = rng_bits(10_000, 7);
        let b = rng_bits(10_000, 7);
        assert_eq!(a, b);
        let ones = a.ones() as f64 / 10_000.0;
        assert!((ones - 0.5).abs() < 0.02, "ones fraction {ones}");
    }

    #[test]
    fn different_seeds_differ() {
        assert_ne!(rng_bits(1000, 1), rng_bits(1000, 2));
    }
}
