//! Error type for the statistical tests.

use std::fmt;

/// Errors raised by the statistical tests.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum StsError {
    /// The sequence is too short for the test's requirements.
    InsufficientData {
        /// Name of the test.
        test: &'static str,
        /// Bits required by the test.
        needed: usize,
        /// Bits provided.
        got: usize,
    },
    /// The test is not applicable to this sequence (e.g. the random
    /// excursions tests when the number of cycles is too small).
    NotApplicable {
        /// Name of the test.
        test: &'static str,
        /// Explanation.
        reason: String,
    },
}

impl fmt::Display for StsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            StsError::InsufficientData { test, needed, got } => {
                write!(f, "{test}: need at least {needed} bits, got {got}")
            }
            StsError::NotApplicable { test, reason } => {
                write!(f, "{test}: not applicable: {reason}")
            }
        }
    }
}

impl std::error::Error for StsError {}

/// Checks the minimum-length precondition for a test.
pub(crate) fn require_len(test: &'static str, needed: usize, got: usize) -> Result<(), StsError> {
    if got < needed {
        Err(StsError::InsufficientData { test, needed, got })
    } else {
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_names_test() {
        let e = StsError::InsufficientData {
            test: "runs",
            needed: 100,
            got: 3,
        };
        let s = e.to_string();
        assert!(s.contains("runs") && s.contains("100") && s.contains('3'));
    }

    #[test]
    fn require_len_boundary() {
        assert!(require_len("x", 10, 10).is_ok());
        assert!(require_len("x", 10, 9).is_err());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<StsError>();
    }
}
