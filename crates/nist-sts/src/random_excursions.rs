//! Test 14 — Random excursions test (SP 800-22 §2.14).
//!
//! Views the sequence as a random walk and checks, for each state
//! x ∈ {±1..±4}, the distribution of the number of visits to x per
//! zero-to-zero cycle. Produces 8 p-values.

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::result::TestResult;
use crate::special::igamc;

/// Minimum recommended sequence length.
pub const MIN_BITS: usize = 100_000;
/// Minimum number of cycles for the chi-square approximation.
pub const MIN_CYCLES: usize = 500;

/// The states examined.
pub const STATES: [i32; 8] = [-4, -3, -2, -1, 1, 2, 3, 4];

/// Theoretical probability that a cycle visits state `x` exactly `k`
/// times (k = 5 means "5 or more"), SP 800-22 §3.14.
pub fn pi_k(x: i32, k: usize) -> f64 {
    let ax = x.abs() as f64;
    match k {
        0 => 1.0 - 1.0 / (2.0 * ax),
        1..=4 => (1.0 / (4.0 * ax * ax)) * (1.0 - 1.0 / (2.0 * ax)).powi(k as i32 - 1),
        _ => (1.0 / (2.0 * ax)) * (1.0 - 1.0 / (2.0 * ax)).powi(4),
    }
}

/// Splits the walk into zero-to-zero cycles and counts per-cycle visits.
/// Returns `(J, visits[state][k])` where k = 0..=5.
fn cycle_visit_counts(bits: &Bits) -> (usize, [[u64; 6]; 8]) {
    let mut counts = [[0u64; 6]; 8];
    let mut j = 0usize;
    let mut sum: i64 = 0;
    // Per-cycle visit counters for each of the 8 states.
    let mut visits = [0u64; 8];
    let close_cycle = |visits: &mut [u64; 8], counts: &mut [[u64; 6]; 8]| {
        for (s, v) in visits.iter_mut().enumerate() {
            counts[s][(*v).min(5) as usize] += 1;
            *v = 0;
        }
    };
    for i in 0..bits.len() {
        sum += bits.pm1(i);
        if sum == 0 {
            j += 1;
            close_cycle(&mut visits, &mut counts);
        } else if let Some(idx) = state_index(sum) {
            visits[idx] += 1;
        }
    }
    if sum != 0 {
        // The walk is closed with a final virtual return to zero.
        j += 1;
        close_cycle(&mut visits, &mut counts);
    }
    (j, counts)
}

fn state_index(s: i64) -> Option<usize> {
    match s {
        -4 => Some(0),
        -3 => Some(1),
        -2 => Some(2),
        -1 => Some(3),
        1 => Some(4),
        2 => Some(5),
        3 => Some(6),
        4 => Some(7),
        _ => None,
    }
}

/// Runs the random excursions test (8 p-values, one per state).
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] for short sequences and
/// [`StsError::NotApplicable`] when the walk has fewer than
/// [`MIN_CYCLES`] cycles.
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    require_len("random_excursion", MIN_BITS, bits.len())?;
    let (j, counts) = cycle_visit_counts(bits);
    if j < MIN_CYCLES {
        return Err(StsError::NotApplicable {
            test: "random_excursion",
            reason: format!("only {j} cycles, need {MIN_CYCLES}"),
        });
    }
    let jf = j as f64;
    let mut p_values = Vec::with_capacity(8);
    for (s, &x) in STATES.iter().enumerate() {
        let mut chi2 = 0.0;
        for k in 0..6 {
            let expect = jf * pi_k(x, k);
            chi2 += (counts[s][k] as f64 - expect) * (counts[s][k] as f64 - expect) / expect;
        }
        p_values.push(igamc(5.0 / 2.0, chi2 / 2.0));
    }
    Ok(TestResult::multi("random_excursion", p_values))
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::rng_bits as xorshift_bits;

    #[test]
    fn pi_rows_sum_to_one() {
        for x in STATES {
            let sum: f64 = (0..6).map(|k| pi_k(x, k)).sum();
            assert!((sum - 1.0).abs() < 1e-12, "x = {x}, sum = {sum}");
        }
    }

    #[test]
    fn nist_example_cycle_structure() {
        // SP 800-22 §2.14.4: ε = 0110110101 gives the walk
        // -1,0,1,0,1,2,1,2,1,0 (then close): J = 3 cycles.
        let bits = Bits::from_bools([
            false, true, true, false, true, true, false, true, false, true,
        ]);
        let (j, counts) = cycle_visit_counts(&bits);
        assert_eq!(j, 3);
        // State +1 is visited 4 times total: cycle1 {-1}: 0 visits of +1;
        // cycle2 {1}: 1 visit; cycle3 {1,2,1,2,1}: 3 visits.
        let idx_plus1 = 4;
        assert_eq!(counts[idx_plus1][0], 1); // one cycle with zero visits
        assert_eq!(counts[idx_plus1][1], 1); // one cycle with one visit
        assert_eq!(counts[idx_plus1][3], 1); // one cycle with three visits
    }

    #[test]
    fn random_bits_pass() {
        let bits = xorshift_bits(1_000_000, 0xBEEF);
        let r = test(&bits).unwrap();
        assert_eq!(r.p_values().len(), 8);
        assert!(r.passed(1e-4), "min p = {}", r.min_p());
    }

    #[test]
    fn drifting_walk_is_not_applicable() {
        // A biased sequence rarely returns to zero -> too few cycles.
        let bits = Bits::from_fn(200_000, |i| i % 3 != 0);
        assert!(matches!(test(&bits), Err(StsError::NotApplicable { .. })));
    }

    #[test]
    fn too_short_is_error() {
        assert!(test(&Bits::from_fn(1000, |_| true)).is_err());
    }
}
