//! A DIEHARD-style battery (Marsaglia) — the other classical validation
//! suite the D-RaNGe paper names alongside NIST ("TRNGs are usually
//! validated using statistical tests such as NIST or DIEHARD",
//! Section 2.2).
//!
//! Implemented tests, each returning a [`TestResult`]:
//!
//! * **Birthday spacings** — duplicate spacings among random
//!   "birthdays" are Poisson; detects lattice structure.
//! * **Binary rank 6×8** — ranks of 6×8 GF(2) matrices against the
//!   exact distribution.
//! * **Runs up and down** — the count of monotone runs in a sequence
//!   of uniforms, normal approximation.
//! * **5-permutations** — uniformity of the 120 orderings of
//!   consecutive non-overlapping 5-tuples (a chi-square variant of
//!   Marsaglia's OPERM5; the overlapping original needs a singular
//!   covariance correction that adds nothing for this use).
//! * **Craps** — play craps; the win rate must match 244/495.
//! * **Parking lot** — crash rate of randomly parked cars in a square.
//! * **Minimum distance** — closest-pair distances of random points
//!   are exponential.
//! * **Count-the-1s** — 4-letter words from byte ones-counts follow
//!   the product distribution.
//! * **Sums of uniforms** — batch sums of 100 uniforms are normal.
//!
//! All tests consume 32-bit words drawn MSB-first from a [`Bits`]
//! stream via [`WordStream`].

use crate::bits::Bits;
use crate::error::StsError;
use crate::rank_gf2::rank_gf2;
use crate::result::TestResult;
use crate::special::{erfc, igamc};

/// Draws 32-bit words from a bit stream, MSB first.
#[derive(Debug)]
pub struct WordStream<'a> {
    bits: &'a Bits,
    pos: usize,
}

impl<'a> WordStream<'a> {
    /// A stream over `bits`.
    pub fn new(bits: &'a Bits) -> Self {
        WordStream { bits, pos: 0 }
    }

    /// Words remaining.
    pub fn remaining(&self) -> usize {
        (self.bits.len() - self.pos) / 32
    }

    /// The next 32-bit word, or `None` when exhausted.
    pub fn next_u32(&mut self) -> Option<u32> {
        if self.pos + 32 > self.bits.len() {
            return None;
        }
        let mut w = 0u32;
        for _ in 0..32 {
            w = (w << 1) | self.bits.bit(self.pos) as u32;
            self.pos += 1;
        }
        Some(w)
    }

    /// A uniform `f64` in `[0, 1)` from the next word.
    pub fn next_unit(&mut self) -> Option<f64> {
        self.next_u32().map(|w| w as f64 / 4_294_967_296.0)
    }

    fn require(&self, test: &'static str, words: usize) -> Result<(), StsError> {
        if self.remaining() < words {
            Err(StsError::InsufficientData {
                test,
                needed: words * 32,
                got: self.bits.len() - self.pos,
            })
        } else {
            Ok(())
        }
    }

    /// [`WordStream::next_u32`] with exhaustion as a typed error.
    fn take_u32(&mut self, test: &'static str) -> Result<u32, StsError> {
        self.next_u32().ok_or(StsError::InsufficientData {
            test,
            needed: 32,
            got: self.bits.len() - self.pos,
        })
    }

    /// [`WordStream::next_unit`] with exhaustion as a typed error.
    fn take_unit(&mut self, test: &'static str) -> Result<f64, StsError> {
        self.take_u32(test).map(|w| w as f64 / 4_294_967_296.0)
    }
}

/// Birthday spacings: `trials` rounds of 512 birthdays in a 2²⁴-day
/// year; the number of duplicated spacings per round is Poisson(2).
/// Chi-square over the Poisson histogram.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] when the stream has fewer
/// than `trials * 512` words.
pub fn birthday_spacings(bits: &Bits, trials: usize) -> Result<TestResult, StsError> {
    const M: usize = 512; // birthdays per trial
    const DAY_BITS: u32 = 24;
    let mut stream = WordStream::new(bits);
    stream.require("birthday_spacings", trials * M)?;

    let lambda = (M as f64).powi(3) / (4.0 * 2f64.powi(DAY_BITS as i32)); // = 2.0
                                                                          // Histogram of duplicate counts, binned 0..=7+.
    let mut hist = [0u64; 8];
    for _ in 0..trials {
        let mut days: Vec<u32> = (0..M)
            .map(|_| {
                stream
                    .take_u32("birthday_spacings")
                    .map(|w| w >> (32 - DAY_BITS))
            })
            .collect::<Result<_, _>>()?;
        days.sort_unstable();
        let mut spacings: Vec<u32> = days.windows(2).map(|w| w[1] - w[0]).collect();
        spacings.sort_unstable();
        let duplicates = spacings.windows(2).filter(|w| w[0] == w[1]).count();
        hist[duplicates.min(7)] += 1;
    }
    // Expected Poisson(lambda) probabilities for bins 0..6 and 7+.
    let mut chi2 = 0.0;
    let mut dof = 0usize;
    let mut p_acc = 0.0;
    let mut p_k = (-lambda).exp();
    for (k, &count) in hist.iter().enumerate() {
        let p = if k == 7 { 1.0 - p_acc } else { p_k };
        if k < 7 {
            p_acc += p_k;
            p_k *= lambda / (k as f64 + 1.0);
        }
        let expect = trials as f64 * p;
        if expect >= 1.0 {
            chi2 += (count as f64 - expect) * (count as f64 - expect) / expect;
            dof += 1;
        }
    }
    let p = igamc((dof.saturating_sub(1)).max(1) as f64 / 2.0, chi2 / 2.0);
    Ok(TestResult::single("diehard_birthday_spacings", p))
}

/// Exact rank distribution of a random 6×8 GF(2) matrix:
/// P(rank = 6), P(rank = 5), P(rank ≤ 4).
pub const RANK_6X8_P: [f64; 3] = [0.773_118_0, 0.217_439_0, 0.009_443_0];

/// Binary rank test on 6×8 matrices (each matrix uses 48 bits = 1.5
/// words; we draw 6 bytes from words for simplicity).
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] when fewer than `matrices`
/// can be drawn.
pub fn rank_6x8(bits: &Bits, matrices: usize) -> Result<TestResult, StsError> {
    let mut stream = WordStream::new(bits);
    stream.require("diehard_rank_6x8", matrices * 2)?;
    let mut counts = [0u64; 3];
    for _ in 0..matrices {
        let a = stream.take_u32("diehard_rank_6x8")?;
        let b = stream.take_u32("diehard_rank_6x8")?;
        // Six 8-bit rows from the 64 drawn bits.
        let rows: Vec<u64> = (0..6)
            .map(|i| {
                let bits48 = ((a as u64) << 32) | b as u64;
                (bits48 >> (8 * i)) & 0xFF
            })
            .collect();
        match rank_gf2(&rows, 8) {
            6 => counts[0] += 1,
            5 => counts[1] += 1,
            _ => counts[2] += 1,
        }
    }
    let mut chi2 = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        let expect = matrices as f64 * RANK_6X8_P[i];
        chi2 += (c as f64 - expect) * (c as f64 - expect) / expect;
    }
    let p = igamc(1.0, chi2 / 2.0); // 2 degrees of freedom
    Ok(TestResult::single("diehard_rank_6x8", p))
}

/// Runs up and down: the total number of monotone runs among `n`
/// uniforms is asymptotically normal with mean `(2n−1)/3` and variance
/// `(16n−29)/90`.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] for short streams.
pub fn runs_up_down(bits: &Bits, n: usize) -> Result<TestResult, StsError> {
    let mut stream = WordStream::new(bits);
    stream.require("diehard_runs_up_down", n)?;
    let values: Vec<u32> = (0..n)
        .map(|_| stream.take_u32("diehard_runs_up_down"))
        .collect::<Result<_, _>>()?;
    let mut runs = 1u64;
    for i in 2..n {
        let prev_up = values[i - 1] > values[i - 2];
        let up = values[i] > values[i - 1];
        if up != prev_up {
            runs += 1;
        }
    }
    let nf = n as f64;
    let mean = (2.0 * nf - 1.0) / 3.0;
    let var = (16.0 * nf - 29.0) / 90.0;
    let z = (runs as f64 - mean) / var.sqrt();
    let p = erfc(z.abs() / std::f64::consts::SQRT_2);
    Ok(TestResult::single("diehard_runs_up_down", p))
}

/// 5-permutations: consecutive non-overlapping 5-tuples of words fall
/// into one of 120 orderings, uniformly. Chi-square with 119 degrees
/// of freedom.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] when fewer than `tuples`
/// 5-tuples can be drawn, and [`StsError::NotApplicable`] if any tuple
/// contains equal words (probability ~2⁻²⁷ per tuple; retry rather
/// than bias the ordering).
pub fn permutations5(bits: &Bits, tuples: usize) -> Result<TestResult, StsError> {
    let mut stream = WordStream::new(bits);
    stream.require("diehard_permutations5", tuples * 5)?;
    let mut counts = vec![0u64; 120];
    for _ in 0..tuples {
        let vals: Vec<u32> = (0..5)
            .map(|_| stream.take_u32("diehard_permutations5"))
            .collect::<Result<_, _>>()?;
        // Lehmer code of the tuple's ordering.
        let mut code = 0usize;
        for i in 0..5 {
            if (i + 1..5).any(|j| vals[j] == vals[i]) {
                return Err(StsError::NotApplicable {
                    test: "diehard_permutations5",
                    reason: "tie within a 5-tuple".into(),
                });
            }
            let smaller = (i + 1..5).filter(|&j| vals[j] < vals[i]).count();
            code = code * (5 - i) + smaller;
        }
        counts[code] += 1;
    }
    let expect = tuples as f64 / 120.0;
    let chi2: f64 = counts
        .iter()
        .map(|&c| (c as f64 - expect) * (c as f64 - expect) / expect)
        .sum();
    let p = igamc(119.0 / 2.0, chi2 / 2.0);
    Ok(TestResult::single("diehard_permutations5", p))
}

/// The exact probability of winning a game of craps.
pub const CRAPS_WIN_P: f64 = 244.0 / 495.0;

/// Craps: play `games` games; the win count must be binomial with
/// p = 244/495. Normal-approximation z-test.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] if the stream runs out of
/// dice throws mid-game (budget: ~16 words per game is ample).
pub fn craps(bits: &Bits, games: usize) -> Result<TestResult, StsError> {
    let mut stream = WordStream::new(bits);
    // A game needs two dice per throw; games average ~3.4 throws.
    stream.require("diehard_craps", games * 10)?;
    let throw = |stream: &mut WordStream| -> Option<u32> {
        let d1 = stream.next_u32()? % 6 + 1;
        let d2 = stream.next_u32()? % 6 + 1;
        Some(d1 + d2)
    };
    let mut wins = 0u64;
    for _ in 0..games {
        let first = throw(&mut stream).ok_or(StsError::InsufficientData {
            test: "diehard_craps",
            needed: games * 10 * 32,
            got: bits.len(),
        })?;
        match first {
            7 | 11 => wins += 1,
            2 | 3 | 12 => {}
            point => loop {
                let t = throw(&mut stream).ok_or(StsError::InsufficientData {
                    test: "diehard_craps",
                    needed: games * 10 * 32,
                    got: bits.len(),
                })?;
                if t == point {
                    wins += 1;
                    break;
                }
                if t == 7 {
                    break;
                }
            },
        }
    }
    let n = games as f64;
    let z = (wins as f64 - n * CRAPS_WIN_P) / (n * CRAPS_WIN_P * (1.0 - CRAPS_WIN_P)).sqrt();
    let p = erfc(z.abs() / std::f64::consts::SQRT_2);
    Ok(TestResult::single("diehard_craps", p))
}

/// Expected parked-car count of the parking-lot test (Marsaglia).
pub const PARKING_MEAN: f64 = 3523.0;
/// Standard deviation of the parked-car count.
pub const PARKING_SD: f64 = 21.9;

/// Parking lot: attempt to "park" 12000 points in a 100x100 square
/// with unit exclusion distance; the number parked is normal with the
/// Marsaglia constants above.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] when fewer than 24000 words
/// are available.
pub fn parking_lot(bits: &Bits) -> Result<TestResult, StsError> {
    const ATTEMPTS: usize = 12_000;
    let mut stream = WordStream::new(bits);
    stream.require("diehard_parking_lot", ATTEMPTS * 2)?;
    // Spatial hash with 10x10 buckets over the 100x100 square: the
    // exclusion radius is 1, so only neighboring buckets matter.
    const GRID: usize = 10;
    let mut buckets: Vec<Vec<(f64, f64)>> = vec![Vec::new(); GRID * GRID];
    let mut parked = 0u64;
    for _ in 0..ATTEMPTS {
        let x = stream.take_unit("diehard_parking_lot")? * 100.0;
        let y = stream.take_unit("diehard_parking_lot")? * 100.0;
        let bx = ((x / 10.0) as usize).min(GRID - 1);
        let by = ((y / 10.0) as usize).min(GRID - 1);
        let mut ok = true;
        'scan: for nx in bx.saturating_sub(1)..=(bx + 1).min(GRID - 1) {
            for ny in by.saturating_sub(1)..=(by + 1).min(GRID - 1) {
                for &(px, py) in &buckets[nx * GRID + ny] {
                    // Marsaglia uses the Linfinity-style "crash" when both
                    // coordinate gaps are below 1.
                    if (px - x).abs() < 1.0 && (py - y).abs() < 1.0 {
                        ok = false;
                        break 'scan;
                    }
                }
            }
        }
        if ok {
            buckets[bx * GRID + by].push((x, y));
            parked += 1;
        }
    }
    let z = (parked as f64 - PARKING_MEAN) / PARKING_SD;
    let p = erfc(z.abs() / std::f64::consts::SQRT_2);
    Ok(TestResult::single("diehard_parking_lot", p))
}

/// Minimum distance: `rounds` rounds of `n` points in a 10000-square;
/// the minimum squared pairwise distance is exponential with mean
/// `area / (C(n,2) * pi)`; the transformed values must be uniform
/// (chi-square over ten bins).
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] when the stream is too short.
pub fn minimum_distance(bits: &Bits, rounds: usize, n: usize) -> Result<TestResult, StsError> {
    let mut stream = WordStream::new(bits);
    stream.require("diehard_minimum_distance", rounds * n * 2)?;
    let side = 10_000.0f64;
    let pairs = (n * (n - 1) / 2) as f64;
    let mean = side * side / (pairs * std::f64::consts::PI);
    let mut hist = [0u64; 10];
    for _ in 0..rounds {
        let mut pts: Vec<(f64, f64)> = (0..n)
            .map(|_| {
                Ok((
                    stream.take_unit("diehard_minimum_distance")? * side,
                    stream.take_unit("diehard_minimum_distance")? * side,
                ))
            })
            .collect::<Result<_, StsError>>()?;
        // Closest pair by x-sweep.
        pts.sort_by(|a, b| a.0.total_cmp(&b.0));
        let mut best = f64::INFINITY;
        for i in 0..pts.len() {
            for j in (i + 1)..pts.len() {
                let dx = pts[j].0 - pts[i].0;
                if dx * dx >= best {
                    break;
                }
                let dy = pts[j].1 - pts[i].1;
                let d2 = dx * dx + dy * dy;
                if d2 < best {
                    best = d2;
                }
            }
        }
        let u = 1.0 - (-best / mean).exp();
        hist[((u * 10.0) as usize).min(9)] += 1;
    }
    let expect = rounds as f64 / 10.0;
    let chi2: f64 = hist
        .iter()
        .map(|&c| (c as f64 - expect) * (c as f64 - expect) / expect)
        .sum();
    let p = igamc(4.5, chi2 / 2.0);
    Ok(TestResult::single("diehard_minimum_distance", p))
}

/// Letter probabilities of the count-the-1s mapping: a byte maps to a
/// letter by its ones count bucketed {0-2, 3, 4, 5, 6-8}.
pub const LETTER_P: [f64; 5] = [
    37.0 / 256.0,
    56.0 / 256.0,
    70.0 / 256.0,
    56.0 / 256.0,
    37.0 / 256.0,
];

/// Count-the-1s (stream variant, non-overlapping words): bytes become
/// five-valued letters by ones count; non-overlapping 4-letter words
/// must follow the product distribution (chi-square over 625 cells).
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] when fewer than `words4 * 4`
/// bytes are available.
pub fn count_the_ones(bits: &Bits, words4: usize) -> Result<TestResult, StsError> {
    let needed_bits = words4 * 4 * 8;
    if bits.len() < needed_bits {
        return Err(StsError::InsufficientData {
            test: "diehard_count_the_ones",
            needed: needed_bits,
            got: bits.len(),
        });
    }
    let letter = |byte: u32| -> usize {
        match byte.count_ones() {
            0..=2 => 0,
            3 => 1,
            4 => 2,
            5 => 3,
            _ => 4,
        }
    };
    let mut counts = vec![0u64; 625];
    let mut pos = 0usize;
    let mut next_byte = || -> u32 {
        let mut b = 0u32;
        for _ in 0..8 {
            b = (b << 1) | bits.bit(pos) as u32;
            pos += 1;
        }
        b
    };
    for _ in 0..words4 {
        let mut idx = 0usize;
        for _ in 0..4 {
            idx = idx * 5 + letter(next_byte());
        }
        counts[idx] += 1;
    }
    let mut chi2 = 0.0;
    for (i, &c) in counts.iter().enumerate() {
        let (a, b, cc, d) = (i / 125, (i / 25) % 5, (i / 5) % 5, i % 5);
        let pw = LETTER_P[a] * LETTER_P[b] * LETTER_P[cc] * LETTER_P[d];
        let expect = words4 as f64 * pw;
        chi2 += (c as f64 - expect) * (c as f64 - expect) / expect;
    }
    let p = igamc(624.0 / 2.0, chi2 / 2.0);
    Ok(TestResult::single("diehard_count_the_ones", p))
}

/// Sums of 100 consecutive uniforms (non-overlapping): each sum is
/// normal with mean 50 and variance 100/12; the sum of squared z-scores
/// over `batches` batches is chi-square with `batches` dof.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] when fewer than
/// `batches * 100` words are available.
pub fn sums_of_uniforms(bits: &Bits, batches: usize) -> Result<TestResult, StsError> {
    let mut stream = WordStream::new(bits);
    stream.require("diehard_sums", batches * 100)?;
    let sd = (100.0f64 / 12.0).sqrt();
    let mut chi2 = 0.0;
    for _ in 0..batches {
        let s: f64 = (0..100)
            .map(|_| stream.take_unit("diehard_sums"))
            .sum::<Result<f64, _>>()?;
        let z = (s - 50.0) / sd;
        chi2 += z * z;
    }
    let p = igamc(batches as f64 / 2.0, chi2 / 2.0);
    Ok(TestResult::single("diehard_sums", p))
}

/// Runs the whole battery with sizes scaled to the stream length.
///
/// # Errors
///
/// Propagates the first insufficient-data error (a 4 Mb stream runs
/// everything comfortably).
pub fn battery(bits: &Bits) -> Result<Vec<TestResult>, StsError> {
    let words = bits.len() / 32;
    // Allocate the word budget across the nine tests.
    let trials = (words / 9 / 512).max(20);
    let matrices = (words / 9 / 2).min(40_000).max(100);
    let n_runs = (words / 9).min(50_000).max(1_000);
    let tuples = (words / 9 / 5).min(20_000).max(120 * 5);
    let games = (words / 9 / 10).min(20_000).max(200);
    let rounds = (words / 9 / 2000).clamp(10, 50);
    let word4s = (words / 9).min(60_000).max(12_000);
    let batches = (words / 9 / 100).clamp(20, 200);
    Ok(vec![
        birthday_spacings(bits, trials)?,
        rank_6x8(bits, matrices)?,
        runs_up_down(bits, n_runs)?,
        permutations5(bits, tuples)?,
        craps(bits, games)?,
        parking_lot(bits)?,
        minimum_distance(bits, rounds, 1000)?,
        count_the_ones(bits, word4s)?,
        sums_of_uniforms(bits, batches)?,
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testutil::rng_bits;

    fn stream() -> Bits {
        rng_bits(4_200_000, 0xD1E_4A2D)
    }

    #[test]
    fn battery_passes_on_ideal_stream() {
        let bits = stream();
        let results = battery(&bits).unwrap();
        assert_eq!(results.len(), 9);
        for r in &results {
            assert!(r.passed(1e-4), "{} p = {}", r.name(), r.min_p());
        }
    }

    #[test]
    fn clustered_points_fail_parking_and_distance() {
        // Top bits stuck at zero: points cluster in a corner strip.
        let mut state = 7u64;
        let bits = Bits::from_fn(2_000_000, |i| {
            if i % 32 == 0 {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                state = (state ^ (state >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            }
            // Zero the top 8 bits of every word.
            if i % 32 < 8 {
                false
            } else {
                (state >> (31 - (i % 32))) & 1 == 1
            }
        });
        let park = parking_lot(&bits).unwrap();
        assert!(
            !park.passed(1e-4),
            "clustered points crash more: p = {}",
            park.min_p()
        );
        let dist = minimum_distance(&bits, 20, 1000).unwrap();
        assert!(
            !dist.passed(1e-4),
            "clustered points sit closer: p = {}",
            dist.min_p()
        );
    }

    #[test]
    fn biased_bytes_fail_count_the_ones() {
        let bits = Bits::from_fn(2_000_000, |i| i % 3 == 0); // ~33% ones
        let r = count_the_ones(&bits, 15_000).unwrap();
        assert!(!r.passed(1e-4));
    }

    #[test]
    fn shifted_uniforms_fail_sums() {
        // Force the top bit set: every uniform is >= 0.5.
        let mut state = 3u64;
        let bits = Bits::from_fn(1_000_000, |i| {
            if i % 32 == 0 {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                state = (state ^ (state >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            }
            i % 32 == 0 || (state >> (31 - (i % 32))) & 1 == 1
        });
        let r = sums_of_uniforms(&bits, 100).unwrap();
        assert!(r.min_p() < 1e-10);
    }

    #[test]
    fn letter_probabilities_sum_to_one() {
        assert!((LETTER_P.iter().sum::<f64>() - 1.0).abs() < 1e-12);
    }

    #[test]
    fn rank_probabilities_sum_to_one() {
        let s: f64 = RANK_6X8_P.iter().sum();
        assert!((s - 1.0).abs() < 1e-4);
    }

    #[test]
    fn constant_stream_fails_birthday() {
        let bits = Bits::from_fn(2_000_000, |_| false);
        let r = birthday_spacings(&bits, 100).unwrap();
        assert!(r.min_p() < 1e-10, "all-equal birthdays must fail");
    }

    #[test]
    fn sawtooth_generator_fails_permutations() {
        // A counter-like generator: consecutive words ascend except at
        // wraparound, so one of the 120 orderings dominates.
        let mut state = 12345u32;
        let bits = Bits::from_fn(3_000_000, |i| {
            if i % 32 == 0 {
                state = state.wrapping_add(0x0100_0001);
            }
            (state >> (31 - (i % 32))) & 1 == 1
        });
        let r = permutations5(&bits, 10_000);
        match r {
            Ok(res) => {
                assert!(!res.passed(1e-4), "sawtooth must fail: p = {}", res.min_p())
            }
            Err(StsError::NotApplicable { .. }) => {} // ties: also a detection
            Err(e) => panic!("{e}"),
        }
    }

    #[test]
    fn biased_dice_fail_craps() {
        // 75% ones biases the dice sum upward.
        let bits = Bits::from_fn(3_000_000, |i| i % 4 != 0);
        let r = craps(&bits, 5_000).unwrap();
        assert!(!r.passed(1e-4));
    }

    #[test]
    fn monotone_stream_fails_runs() {
        // Ever-increasing values -> a single run.
        let mut counter = 0u32;
        let bits = Bits::from_fn(1_000_000, |i| {
            if i % 32 == 0 {
                counter += 1;
            }
            (counter >> (31 - (i % 32))) & 1 == 1
        });
        let r = runs_up_down(&bits, 20_000).unwrap();
        assert!(r.min_p() < 1e-10);
    }

    #[test]
    fn word_stream_draws_msb_first() {
        let bits = Bits::from_bytes_msb(&[0xDE, 0xAD, 0xBE, 0xEF, 0x01, 0x02, 0x03, 0x04]);
        let mut s = WordStream::new(&bits);
        assert_eq!(s.remaining(), 2);
        assert_eq!(s.next_u32(), Some(0xDEADBEEF));
        assert_eq!(s.next_u32(), Some(0x01020304));
        assert_eq!(s.next_u32(), None);
    }

    #[test]
    fn insufficient_data_is_reported() {
        let bits = Bits::from_fn(1000, |i| i % 2 == 0);
        assert!(matches!(
            birthday_spacings(&bits, 100),
            Err(StsError::InsufficientData { .. })
        ));
        assert!(matches!(
            craps(&bits, 1000),
            Err(StsError::InsufficientData { .. })
        ));
    }
}
