//! Test 5 — Binary matrix rank test (SP 800-22 §2.5).
//!
//! Tests for linear dependence among fixed-length substrings: the
//! sequence is carved into 32×32 binary matrices and their GF(2) ranks
//! are compared against the theoretical distribution.

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::rank_gf2::rank_gf2;
use crate::result::TestResult;

/// Matrix dimension (NIST uses 32×32).
pub const M: usize = 32;

/// Minimum bits: NIST recommends at least 38 matrices.
pub const MIN_BITS: usize = 38 * M * M;

/// Probabilities of rank 32, 31, and ≤30 for a random 32×32 GF(2)
/// matrix (SP 800-22 §3.5).
pub const P_FULL: f64 = 0.2888;
/// Probability of rank 31.
pub const P_MINUS1: f64 = 0.5776;
/// Probability of rank ≤ 30.
pub const P_REST: f64 = 0.1336;

/// Runs the binary matrix rank test.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] if fewer than 38 full
/// matrices fit in the sequence.
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    require_len("binary_matrix_rank", MIN_BITS, bits.len())?;
    let per_matrix = M * M;
    let n_matrices = bits.len() / per_matrix;
    let mut f_full = 0u64;
    let mut f_minus1 = 0u64;
    for mat in 0..n_matrices {
        let base = mat * per_matrix;
        let rows: Vec<u64> = (0..M)
            .map(|r| {
                let mut row = 0u64;
                for c in 0..M {
                    if bits.bit(base + r * M + c) == 1 {
                        row |= 1u64 << c;
                    }
                }
                row
            })
            .collect();
        match rank_gf2(&rows, M) {
            r if r == M => f_full += 1,
            r if r == M - 1 => f_minus1 += 1,
            _ => {}
        }
    }
    let n = n_matrices as f64;
    let f_rest = n - f_full as f64 - f_minus1 as f64;
    let chi2 = (f_full as f64 - P_FULL * n).powi(2) / (P_FULL * n)
        + (f_minus1 as f64 - P_MINUS1 * n).powi(2) / (P_MINUS1 * n)
        + (f_rest - P_REST * n).powi(2) / (P_REST * n);
    // 2 degrees of freedom: P = exp(-chi2 / 2).
    let p = (-chi2 / 2.0).exp();
    Ok(TestResult::single("binary_matrix_rank", p))
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::rng_bits as xorshift_bits;

    #[test]
    fn probabilities_sum_to_one() {
        assert!((P_FULL + P_MINUS1 + P_REST - 1.0).abs() < 1e-12);
    }

    #[test]
    fn random_bits_pass() {
        let bits = xorshift_bits(60_000, 0x1234_5678_9ABC_DEF1);
        assert!(test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn constant_bits_fail() {
        // All-zero matrices have rank 0: the ≤30 bucket gets everything.
        let bits = Bits::from_fn(60_000, |_| false);
        let r = test(&bits).unwrap();
        assert!(r.p_values()[0] < 1e-10);
    }

    #[test]
    fn repeating_rows_fail() {
        // Every matrix row identical -> rank 1.
        let bits = Bits::from_fn(60_000, |i| (i % M) % 2 == 0);
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn too_short_is_error() {
        assert!(test(&Bits::from_fn(1024, |_| true)).is_err());
    }
}
