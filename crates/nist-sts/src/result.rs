//! Result type shared by all tests.

/// The outcome of one statistical test: one or more p-values.
///
/// Most tests produce a single p-value; a few (serial, cumulative sums,
/// the template and excursion tests) produce several. A sequence passes
/// at significance level `alpha` when **every** p-value is `>= alpha`.
#[derive(Debug, Clone, PartialEq)]
pub struct TestResult {
    name: &'static str,
    p_values: Vec<f64>,
}

impl TestResult {
    /// A result with a single p-value.
    ///
    /// # Panics
    ///
    /// Panics if the p-value is not in `[0, 1]` (NaN included).
    pub fn single(name: &'static str, p: f64) -> Self {
        TestResult::multi(name, vec![p])
    }

    /// A result with several p-values.
    ///
    /// # Panics
    ///
    /// Panics if `p_values` is empty or any value is outside `[0, 1]`.
    pub fn multi(name: &'static str, p_values: Vec<f64>) -> Self {
        assert!(
            !p_values.is_empty(),
            "{name}: at least one p-value required"
        );
        for &p in &p_values {
            assert!(
                (0.0..=1.0).contains(&p),
                "{name}: p-value {p} outside [0,1]"
            );
        }
        TestResult { name, p_values }
    }

    /// The test's name.
    pub fn name(&self) -> &'static str {
        self.name
    }

    /// All p-values.
    pub fn p_values(&self) -> &[f64] {
        &self.p_values
    }

    /// The smallest p-value (the binding one for pass/fail).
    pub fn min_p(&self) -> f64 {
        self.p_values.iter().copied().fold(f64::INFINITY, f64::min)
    }

    /// The mean p-value (what multi-p tests conventionally report).
    pub fn mean_p(&self) -> f64 {
        self.p_values.iter().sum::<f64>() / self.p_values.len() as f64
    }

    /// Whether every p-value is at least `alpha`.
    pub fn passed(&self, alpha: f64) -> bool {
        self.p_values.iter().all(|&p| p >= alpha)
    }
}

impl std::fmt::Display for TestResult {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        if self.p_values.len() == 1 {
            write!(f, "{}: p = {:.4}", self.name, self.p_values[0])
        } else {
            write!(
                f,
                "{}: {} p-values, min = {:.4}, mean = {:.4}",
                self.name,
                self.p_values.len(),
                self.min_p(),
                self.mean_p()
            )
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_and_accessors() {
        let r = TestResult::single("monobit", 0.42);
        assert_eq!(r.name(), "monobit");
        assert_eq!(r.p_values(), &[0.42]);
        assert_eq!(r.min_p(), 0.42);
        assert!(r.passed(0.01));
        assert!(!r.passed(0.5));
    }

    #[test]
    fn multi_min_and_mean() {
        let r = TestResult::multi("serial", vec![0.2, 0.6]);
        assert_eq!(r.min_p(), 0.2);
        assert!((r.mean_p() - 0.4).abs() < 1e-15);
        assert!(!r.passed(0.3), "one p below alpha fails the test");
    }

    #[test]
    #[should_panic(expected = "outside [0,1]")]
    fn rejects_bad_p() {
        let _ = TestResult::single("x", 1.5);
    }

    #[test]
    #[should_panic(expected = "at least one")]
    fn rejects_empty() {
        let _ = TestResult::multi("x", vec![]);
    }

    #[test]
    fn display_formats() {
        assert!(TestResult::single("runs", 0.5)
            .to_string()
            .contains("0.5000"));
        assert!(TestResult::multi("cusum", vec![0.1, 0.9])
            .to_string()
            .contains("min"));
    }
}
