//! Special functions used by the test statistics: `erfc`, `ln Γ`, and
//! the regularized incomplete gamma functions.

use std::f64::consts::PI;

/// The complementary error function.
///
/// Series for small arguments, Lentz continued fraction for large ones;
/// relative error below 1e-12.
pub fn erfc(x: f64) -> f64 {
    if x < 0.0 {
        return 2.0 - erfc(-x);
    }
    if x < 2.0 {
        let mut term = x;
        let mut sum = x;
        let x2 = x * x;
        let mut n = 0u32;
        loop {
            n += 1;
            term *= -x2 / n as f64;
            let add = term / (2 * n + 1) as f64;
            sum += add;
            if add.abs() < 1e-17 * sum.abs().max(1e-300) || n > 200 {
                break;
            }
        }
        1.0 - sum * 2.0 / PI.sqrt()
    } else {
        let x2 = x * x;
        let tiny = 1e-300;
        let f = x.max(tiny);
        let mut c = f;
        let mut d = 0.0;
        let mut result = f;
        for n in 1..300 {
            let a = n as f64 / 2.0;
            let b = x;
            d = b + a * d;
            if d.abs() < tiny {
                d = tiny;
            }
            c = b + a / c;
            if c.abs() < tiny {
                c = tiny;
            }
            d = 1.0 / d;
            let delta = c * d;
            result *= delta;
            if (delta - 1.0).abs() < 1e-16 {
                break;
            }
        }
        (-x2).exp() / PI.sqrt() / result
    }
}

/// The error function `erf(x) = 1 - erfc(x)`.
pub fn erf(x: f64) -> f64 {
    1.0 - erfc(x)
}

/// The standard normal cumulative distribution function.
pub fn normal_cdf(x: f64) -> f64 {
    0.5 * erfc(-x / std::f64::consts::SQRT_2)
}

/// Natural log of the gamma function (Lanczos approximation, g = 7).
pub fn ln_gamma(x: f64) -> f64 {
    const COEFFS: [f64; 9] = [
        0.999_999_999_999_809_93,
        676.520_368_121_885_1,
        -1_259.139_216_722_402_8,
        771.323_428_777_653_13,
        -176.615_029_162_140_6,
        12.507_343_278_686_905,
        -0.138_571_095_265_720_12,
        9.984_369_578_019_572e-6,
        1.505_632_735_149_311_6e-7,
    ];
    if x < 0.5 {
        // Reflection formula.
        return (PI / (PI * x).sin()).ln() - ln_gamma(1.0 - x);
    }
    let x = x - 1.0;
    let mut a = COEFFS[0];
    let t = x + 7.5;
    for (i, &c) in COEFFS.iter().enumerate().skip(1) {
        a += c / (x + i as f64);
    }
    0.5 * (2.0 * PI).ln() + (x + 0.5) * t.ln() - t + a.ln()
}

/// Regularized lower incomplete gamma function `P(a, x)`.
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn igam(a: f64, x: f64) -> f64 {
    1.0 - igamc(a, x)
}

/// Regularized upper incomplete gamma function `Q(a, x)` — the function
/// NIST's chi-square-based p-values are expressed in (`igamc`).
///
/// # Panics
///
/// Panics if `a <= 0` or `x < 0`.
pub fn igamc(a: f64, x: f64) -> f64 {
    assert!(a > 0.0, "igamc requires a > 0, got {a}");
    assert!(x >= 0.0, "igamc requires x >= 0, got {x}");
    if x == 0.0 {
        return 1.0;
    }
    if x < a + 1.0 {
        // Q = 1 - P with P from the series expansion.
        1.0 - lower_series(a, x)
    } else {
        // Continued fraction for Q (modified Lentz).
        upper_cf(a, x)
    }
}

/// Series for P(a, x), valid for x < a + 1.
fn lower_series(a: f64, x: f64) -> f64 {
    let mut sum = 1.0 / a;
    let mut term = sum;
    let mut n = a;
    for _ in 0..10_000 {
        n += 1.0;
        term *= x / n;
        sum += term;
        if term.abs() < sum.abs() * 1e-16 {
            break;
        }
    }
    sum * (-x + a * x.ln() - ln_gamma(a)).exp()
}

/// Continued fraction for Q(a, x), valid for x >= a + 1.
fn upper_cf(a: f64, x: f64) -> f64 {
    let tiny = 1e-300;
    let mut b = x + 1.0 - a;
    let mut c = 1.0 / tiny;
    let mut d = 1.0 / b;
    let mut h = d;
    for i in 1..10_000 {
        let an = -(i as f64) * (i as f64 - a);
        b += 2.0;
        d = an * d + b;
        if d.abs() < tiny {
            d = tiny;
        }
        c = b + an / c;
        if c.abs() < tiny {
            c = tiny;
        }
        d = 1.0 / d;
        let delta = d * c;
        h *= delta;
        if (delta - 1.0).abs() < 1e-16 {
            break;
        }
    }
    h * (-x + a * x.ln() - ln_gamma(a)).exp()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn erfc_reference_values() {
        assert!((erfc(0.0) - 1.0).abs() < 1e-14);
        assert!((erfc(1.0) - 0.15729920705028513).abs() < 1e-12);
        assert!((erfc(-1.0) - 1.8427007929497148).abs() < 1e-12);
        assert!((erfc(3.0) - 2.2090496998585445e-5).abs() < 1e-15);
    }

    #[test]
    fn ln_gamma_matches_factorials() {
        for n in 1..15u64 {
            let fact: f64 = (1..n).map(|k| k as f64).product();
            assert!(
                (ln_gamma(n as f64) - fact.ln()).abs() < 1e-10,
                "ln_gamma({n})"
            );
        }
        // Gamma(0.5) = sqrt(pi)
        assert!((ln_gamma(0.5) - PI.sqrt().ln()).abs() < 1e-12);
    }

    #[test]
    fn igamc_reference_values() {
        // Q(1, x) = exp(-x)
        for x in [0.1, 1.0, 3.0, 10.0] {
            assert!((igamc(1.0, x) - (-x).exp()).abs() < 1e-12, "Q(1,{x})");
        }
        // Chi-square survival with k=4 dof at x: Q(2, x/2).
        // chi2_sf(4 dof, 9.488) ~ 0.05 (95th percentile).
        assert!((igamc(2.0, 9.488 / 2.0) - 0.05).abs() < 5e-4);
        // Q(0.5, x) = erfc(sqrt(x))
        for x in [0.2, 1.0, 4.0] {
            assert!((igamc(0.5, x) - erfc(x.sqrt())).abs() < 1e-12);
        }
    }

    #[test]
    fn igam_complements_igamc() {
        for a in [0.5, 1.5, 4.0, 20.0] {
            for x in [0.1, 1.0, 5.0, 30.0] {
                assert!((igam(a, x) + igamc(a, x) - 1.0).abs() < 1e-12);
            }
        }
    }

    #[test]
    fn igamc_monotone_decreasing_in_x() {
        let mut prev = 1.0;
        for i in 0..100 {
            let q = igamc(3.0, i as f64 * 0.3);
            assert!(q <= prev + 1e-15);
            prev = q;
        }
    }

    #[test]
    fn normal_cdf_symmetry() {
        assert!((normal_cdf(0.0) - 0.5).abs() < 1e-14);
        assert!((normal_cdf(1.96) - 0.9750021048517795).abs() < 1e-10);
        assert!((normal_cdf(-1.96) + normal_cdf(1.96) - 1.0).abs() < 1e-12);
    }

    #[test]
    #[should_panic(expected = "a > 0")]
    fn igamc_rejects_bad_a() {
        let _ = igamc(0.0, 1.0);
    }
}
