//! Binary matrix rank over GF(2) (for the matrix-rank test).

/// Computes the rank over GF(2) of a matrix given as one `u64` bitmask
/// per row (column `j` is bit `j`; up to 64 columns).
///
/// Gaussian elimination with bit-parallel row operations.
pub fn rank_gf2(rows: &[u64], cols: usize) -> usize {
    assert!(cols <= 64, "at most 64 columns, got {cols}");
    let mut rows = rows.to_vec();
    let mut rank = 0usize;
    for col in 0..cols {
        let mask = 1u64 << col;
        // Find a pivot row at or below `rank`.
        let Some(pivot) = (rank..rows.len()).find(|&r| rows[r] & mask != 0) else {
            continue;
        };
        rows.swap(rank, pivot);
        let pivot_row = rows[rank];
        for (r, row) in rows.iter_mut().enumerate() {
            if r != rank && *row & mask != 0 {
                *row ^= pivot_row;
            }
        }
        rank += 1;
        if rank == rows.len() {
            break;
        }
    }
    rank
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn identity_has_full_rank() {
        let rows: Vec<u64> = (0..32).map(|i| 1u64 << i).collect();
        assert_eq!(rank_gf2(&rows, 32), 32);
    }

    #[test]
    fn zero_matrix_has_rank_zero() {
        assert_eq!(rank_gf2(&[0; 32], 32), 0);
    }

    #[test]
    fn duplicate_rows_reduce_rank() {
        let rows = vec![0b101, 0b101, 0b010];
        assert_eq!(rank_gf2(&rows, 3), 2);
    }

    #[test]
    fn linear_combination_detected() {
        // r3 = r1 XOR r2 -> rank 2.
        let rows = vec![0b1100, 0b0110, 0b1010];
        assert_eq!(rank_gf2(&rows, 4), 2);
    }

    #[test]
    fn rank_is_invariant_under_row_permutations() {
        let rows = vec![0b1011, 0b0111, 0b1100, 0b0001];
        let base = rank_gf2(&rows, 4);
        let perm = vec![rows[2], rows[0], rows[3], rows[1]];
        assert_eq!(rank_gf2(&perm, 4), base);
    }

    #[test]
    fn rank_bounded_by_dimensions() {
        let rows = vec![u64::MAX; 5];
        assert!(rank_gf2(&rows, 64) <= 5);
        let tall: Vec<u64> = (0..64).map(|i| (i as u64).wrapping_mul(0x9E37)).collect();
        assert!(rank_gf2(&tall, 16) <= 16);
    }
}
