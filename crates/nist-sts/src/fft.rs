//! Iterative radix-2 complex FFT (for the spectral test).

use std::f64::consts::PI;

/// A complex number (minimal, local to the FFT).
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct Complex {
    /// Real part.
    pub re: f64,
    /// Imaginary part.
    pub im: f64,
}

impl Complex {
    /// Constructs a complex number.
    pub fn new(re: f64, im: f64) -> Self {
        Complex { re, im }
    }

    /// Magnitude `|z|`.
    pub fn abs(self) -> f64 {
        self.re.hypot(self.im)
    }

    fn mul(self, other: Complex) -> Complex {
        Complex {
            re: self.re * other.re - self.im * other.im,
            im: self.re * other.im + self.im * other.re,
        }
    }

    fn add(self, other: Complex) -> Complex {
        Complex {
            re: self.re + other.re,
            im: self.im + other.im,
        }
    }

    fn sub(self, other: Complex) -> Complex {
        Complex {
            re: self.re - other.re,
            im: self.im - other.im,
        }
    }
}

/// In-place iterative Cooley–Tukey FFT.
///
/// # Panics
///
/// Panics if the length is not a power of two.
pub fn fft_in_place(data: &mut [Complex]) {
    let n = data.len();
    assert!(
        n.is_power_of_two(),
        "FFT length must be a power of two, got {n}"
    );
    if n <= 1 {
        return;
    }
    // Bit-reversal permutation.
    let bits = n.trailing_zeros();
    for i in 0..n {
        let j = (i.reverse_bits() >> (usize::BITS - bits)) as usize;
        if j > i {
            data.swap(i, j);
        }
    }
    // Butterfly stages.
    let mut len = 2;
    while len <= n {
        let ang = -2.0 * PI / len as f64;
        let wlen = Complex::new(ang.cos(), ang.sin());
        for start in (0..n).step_by(len) {
            let mut w = Complex::new(1.0, 0.0);
            for k in 0..len / 2 {
                let u = data[start + k];
                let v = data[start + k + len / 2].mul(w);
                data[start + k] = u.add(v);
                data[start + k + len / 2] = u.sub(v);
                w = w.mul(wlen);
            }
        }
        len <<= 1;
    }
}

/// Magnitudes of the first `n/2` DFT coefficients of a real signal,
/// computed by zero-padding to the next power of two as the NIST
/// reference implementation does not: NIST requires truncation to the
/// largest usable length instead, so we evaluate the DFT of exactly the
/// signal given, padding only when the length is already a power of two.
///
/// For test purposes we expose the plain power-of-two FFT; callers are
/// responsible for choosing a power-of-two length (the spectral test
/// truncates its input).
pub fn real_fft_magnitudes(signal: &[f64]) -> Vec<f64> {
    let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
    fft_in_place(&mut buf);
    buf.iter().take(signal.len() / 2).map(|c| c.abs()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fft_of_impulse_is_flat() {
        let mut data = vec![Complex::default(); 8];
        data[0] = Complex::new(1.0, 0.0);
        fft_in_place(&mut data);
        for c in &data {
            assert!((c.abs() - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn fft_of_constant_is_impulse() {
        let mut data = vec![Complex::new(1.0, 0.0); 16];
        fft_in_place(&mut data);
        assert!((data[0].re - 16.0).abs() < 1e-12);
        for c in &data[1..] {
            assert!(c.abs() < 1e-10);
        }
    }

    #[test]
    fn fft_matches_naive_dft() {
        let signal: Vec<f64> = (0..32).map(|i| ((i * 7 + 3) % 11) as f64 - 5.0).collect();
        let mags = real_fft_magnitudes(&signal);
        for (k, &m) in mags.iter().enumerate() {
            let mut re = 0.0;
            let mut im = 0.0;
            for (t, &x) in signal.iter().enumerate() {
                let ang = -2.0 * PI * (k * t) as f64 / signal.len() as f64;
                re += x * ang.cos();
                im += x * ang.sin();
            }
            assert!((m - re.hypot(im)).abs() < 1e-9, "bin {k}");
        }
    }

    #[test]
    fn parseval_energy_is_preserved() {
        let signal: Vec<f64> = (0..64)
            .map(|i| if i % 3 == 0 { 1.0 } else { -1.0 })
            .collect();
        let mut buf: Vec<Complex> = signal.iter().map(|&x| Complex::new(x, 0.0)).collect();
        fft_in_place(&mut buf);
        let time_energy: f64 = signal.iter().map(|x| x * x).sum();
        let freq_energy: f64 =
            buf.iter().map(|c| c.abs() * c.abs()).sum::<f64>() / signal.len() as f64;
        assert!((time_energy - freq_energy).abs() < 1e-9);
    }

    #[test]
    #[should_panic(expected = "power of two")]
    fn non_power_of_two_panics() {
        let mut data = vec![Complex::default(); 12];
        fft_in_place(&mut data);
    }

    #[test]
    fn single_cosine_concentrates_energy() {
        let n = 256;
        let f = 16;
        let signal: Vec<f64> = (0..n)
            .map(|t| (2.0 * PI * (f * t) as f64 / n as f64).cos())
            .collect();
        let mags = real_fft_magnitudes(&signal);
        let peak = mags
            .iter()
            .enumerate()
            .max_by(|a, b| a.1.partial_cmp(b.1).unwrap())
            .unwrap()
            .0;
        assert_eq!(peak, f);
    }
}
