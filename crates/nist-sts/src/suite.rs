//! The full 15-test suite runner, in the order of the paper's Table 1.

use crate::bits::Bits;
use crate::error::StsError;
use crate::result::TestResult;
use crate::{
    approximate_entropy, block_frequency, cumulative_sums, dft, linear_complexity, longest_run,
    matrix_rank, monobit, non_overlapping, overlapping, random_excursions,
    random_excursions_variant, runs, serial, universal,
};

/// Outcome of one test within a suite run.
#[derive(Debug, Clone, PartialEq)]
pub struct TestOutcome {
    /// Test name (matching the paper's Table 1 row names).
    pub name: &'static str,
    /// The test result, or the reason it could not run.
    pub result: Result<TestResult, StsError>,
}

impl TestOutcome {
    /// Whether the test ran and passed at `alpha`.
    pub fn passed(&self, alpha: f64) -> bool {
        self.result.as_ref().is_ok_and(|r| r.passed(alpha))
    }

    /// The representative p-value reported for the table (mean over
    /// multi-p tests, following the convention of reporting a single
    /// number per test), or `None` if the test could not run.
    pub fn reported_p(&self) -> Option<f64> {
        self.result.as_ref().ok().map(|r| r.mean_p())
    }
}

/// Report of a full suite run over one bitstream.
#[derive(Debug, Clone, PartialEq)]
pub struct SuiteReport {
    /// Per-test outcomes, in Table 1 order.
    pub outcomes: Vec<TestOutcome>,
    /// The significance level used for pass/fail.
    pub alpha: f64,
}

impl SuiteReport {
    /// Whether every applicable test passed.
    pub fn all_passed(&self) -> bool {
        self.outcomes.iter().all(|o| match &o.result {
            Ok(r) => r.passed(self.alpha),
            // Tests that are structurally inapplicable (e.g. too few
            // random-walk cycles on a *short* input) do not fail the
            // stream; insufficient data is the caller's problem and
            // still counts as failure.
            Err(StsError::NotApplicable { .. }) => true,
            Err(StsError::InsufficientData { .. }) => false,
        })
    }

    /// Number of tests that ran successfully.
    pub fn tests_run(&self) -> usize {
        self.outcomes.iter().filter(|o| o.result.is_ok()).count()
    }
}

impl std::fmt::Display for SuiteReport {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        writeln!(
            f,
            "{:<42} {:>10}  {}",
            "NIST Test Name", "P-value", "Status"
        )?;
        for o in &self.outcomes {
            match &o.result {
                Ok(r) => writeln!(
                    f,
                    "{:<42} {:>10.3}  {}",
                    o.name,
                    r.mean_p(),
                    if r.passed(self.alpha) { "PASS" } else { "FAIL" }
                )?,
                Err(e) => writeln!(f, "{:<42} {:>10}  SKIP ({e})", o.name, "-")?,
            }
        }
        Ok(())
    }
}

/// Configuration for a full suite run.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NistSuite {
    /// Significance level (the paper uses α = 0.0001; NIST's default
    /// recommendation is 0.01).
    pub alpha: f64,
}

impl NistSuite {
    /// A suite with the paper's significance level α = 0.0001.
    pub fn paper() -> Self {
        NistSuite { alpha: 1e-4 }
    }

    /// A suite with a custom significance level.
    ///
    /// # Panics
    ///
    /// Panics unless `0 < alpha < 1`.
    pub fn with_alpha(alpha: f64) -> Self {
        assert!(alpha > 0.0 && alpha < 1.0, "alpha must be in (0,1)");
        NistSuite { alpha }
    }

    /// Runs all 15 tests on `bits`, in the paper's Table 1 order.
    pub fn run(&self, bits: &Bits) -> SuiteReport {
        let outcomes = vec![
            TestOutcome {
                name: "monobit",
                result: monobit::test(bits),
            },
            TestOutcome {
                name: "frequency_within_block",
                result: block_frequency::test(bits),
            },
            TestOutcome {
                name: "runs",
                result: runs::test(bits),
            },
            TestOutcome {
                name: "longest_run_ones_in_a_block",
                result: longest_run::test(bits),
            },
            TestOutcome {
                name: "binary_matrix_rank",
                result: matrix_rank::test(bits),
            },
            TestOutcome {
                name: "dft",
                result: dft::test(bits),
            },
            TestOutcome {
                name: "non_overlapping_template_matching",
                result: non_overlapping::test(bits),
            },
            TestOutcome {
                name: "overlapping_template_matching",
                result: overlapping::test(bits),
            },
            TestOutcome {
                name: "maurers_universal",
                result: universal::test(bits),
            },
            TestOutcome {
                name: "linear_complexity",
                result: linear_complexity::test(bits),
            },
            TestOutcome {
                name: "serial",
                result: serial::test(bits),
            },
            TestOutcome {
                name: "approximate_entropy",
                result: approximate_entropy::test(bits),
            },
            TestOutcome {
                name: "cumulative_sums",
                result: cumulative_sums::test(bits),
            },
            TestOutcome {
                name: "random_excursion",
                result: random_excursions::test(bits),
            },
            TestOutcome {
                name: "random_excursion_variant",
                result: random_excursions_variant::test(bits),
            },
        ];
        SuiteReport {
            outcomes,
            alpha: self.alpha,
        }
    }
}

impl Default for NistSuite {
    fn default() -> Self {
        NistSuite { alpha: 0.01 }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    use crate::testutil::rng_bits as xorshift_bits;

    #[test]
    fn suite_has_15_tests_in_table1_order() {
        let bits = xorshift_bits(2_000, 5);
        let report = NistSuite::default().run(&bits);
        assert_eq!(report.outcomes.len(), 15);
        assert_eq!(report.outcomes[0].name, "monobit");
        assert_eq!(report.outcomes[14].name, "random_excursion_variant");
    }

    #[test]
    fn megabit_random_stream_passes_everything() {
        let bits = xorshift_bits(1_100_000, 0x0123_4567_89AB_CDEF);
        let report = NistSuite::paper().run(&bits);
        assert_eq!(
            report.tests_run(),
            15,
            "all tests applicable at 1.1 Mb:\n{report}"
        );
        assert!(report.all_passed(), "{report}");
    }

    #[test]
    fn constant_stream_fails() {
        let bits = Bits::from_fn(1_100_000, |_| true);
        let report = NistSuite::paper().run(&bits);
        assert!(!report.all_passed());
    }

    #[test]
    fn short_stream_reports_insufficient_data() {
        let bits = xorshift_bits(200, 1);
        let report = NistSuite::default().run(&bits);
        assert!(report.tests_run() < 15);
        assert!(
            !report.all_passed(),
            "insufficient data cannot count as pass"
        );
    }

    #[test]
    fn display_renders_every_row() {
        let bits = xorshift_bits(1_100_000, 42);
        let report = NistSuite::default().run(&bits);
        let text = report.to_string();
        for o in &report.outcomes {
            assert!(text.contains(o.name), "missing {}", o.name);
        }
    }

    #[test]
    #[should_panic(expected = "alpha")]
    fn bad_alpha_panics() {
        let _ = NistSuite::with_alpha(1.5);
    }
}
