//! Test 1 — Frequency (monobit) test (SP 800-22 §2.1).
//!
//! Tests whether the proportion of ones is close to 1/2.

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::result::TestResult;
use crate::special::erfc;

/// Minimum recommended sequence length.
pub const MIN_BITS: usize = 100;

/// Runs the frequency (monobit) test.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] for sequences shorter than
/// [`MIN_BITS`].
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    require_len("monobit", MIN_BITS, bits.len())?;
    let n = bits.len();
    let sum: i64 = (0..n).map(|i| bits.pm1(i)).sum();
    let s_obs = (sum.abs() as f64) / (n as f64).sqrt();
    let p = erfc(s_obs / std::f64::consts::SQRT_2);
    Ok(TestResult::single("monobit", p))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_worked_example() {
        // SP 800-22 §2.1.4 worked example: ε = 1011010101 (n = 10,
        // below MIN_BITS, so compute the statistic directly):
        // S = 2, s_obs = 0.632456, P-value = 0.527089.
        let bits = Bits::from_bytes_msb(&[0b1011_0101, 0b0100_0000]);
        let n = 10;
        let sum: i64 = (0..n).map(|i| bits.pm1(i)).sum();
        assert_eq!(sum, 2);
        let s_obs = sum.abs() as f64 / (n as f64).sqrt();
        let p = erfc(s_obs / std::f64::consts::SQRT_2);
        assert!((p - 0.527089).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn balanced_sequence_passes() {
        let bits = Bits::from_fn(1000, |i| i % 2 == 0);
        assert!(test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn biased_sequence_fails() {
        let bits = Bits::from_fn(1000, |i| i % 4 != 0); // 75% ones
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn all_ones_p_is_zero_like() {
        let bits = Bits::from_fn(1000, |_| true);
        let p = test(&bits).unwrap().p_values()[0];
        assert!(p < 1e-100);
    }

    #[test]
    fn too_short_is_error() {
        let bits = Bits::from_fn(10, |_| true);
        assert!(matches!(
            test(&bits),
            Err(StsError::InsufficientData { .. })
        ));
    }
}
