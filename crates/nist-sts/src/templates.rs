//! Aperiodic (non-self-overlapping) templates for the non-overlapping
//! template matching test.
//!
//! A template is *aperiodic* when no shifted copy of it can overlap
//! itself — equivalently, the word has no border (no proper prefix that
//! is also a suffix). For length 9 there are exactly 148 such words,
//! which is NIST's template set for the default m = 9.

/// Whether `bits` (0/1 values) has no border: for every shift
/// `1 <= k < m`, the prefix of length `m-k` differs from the suffix of
/// length `m-k`.
pub fn is_aperiodic(bits: &[u8]) -> bool {
    let m = bits.len();
    for k in 1..m {
        if bits[..m - k] == bits[k..] {
            return false;
        }
    }
    true
}

/// All aperiodic templates of length `m`, each as a `Vec<u8>` of 0/1,
/// in increasing numeric order.
///
/// # Panics
///
/// Panics if `m` is 0 or greater than 20 (the enumeration is 2^m).
pub fn aperiodic_templates(m: usize) -> Vec<Vec<u8>> {
    assert!(m >= 1 && m <= 20, "template length must be 1..=20, got {m}");
    let mut out = Vec::new();
    for value in 0u32..(1 << m) {
        let bits: Vec<u8> = (0..m).map(|i| ((value >> (m - 1 - i)) & 1) as u8).collect();
        if is_aperiodic(&bits) {
            out.push(bits);
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_aperiodic_counts() {
        // Bifix-free binary words (OEIS A003000): 2, 2, 4, 6, 12, 20,
        // 40, 74, 148 for m = 1..9. NIST's m = 9 template set has 148.
        let want = [2usize, 2, 4, 6, 12, 20, 40, 74, 148];
        for (m, &w) in want.iter().enumerate() {
            assert_eq!(aperiodic_templates(m + 1).len(), w, "m={}", m + 1);
        }
    }

    #[test]
    fn classic_examples() {
        assert!(is_aperiodic(&[0, 0, 0, 0, 0, 0, 0, 0, 1])); // 000000001
        assert!(is_aperiodic(&[1, 0, 0, 0, 0, 0, 0, 0, 0])); // 100000000
        assert!(!is_aperiodic(&[1, 0, 1])); // border "1"
        assert!(!is_aperiodic(&[1, 1])); // border "1"
        assert!(is_aperiodic(&[1, 0])); // no border
    }

    #[test]
    fn all_ones_is_periodic_for_m_over_1() {
        for m in 2..10 {
            assert!(!is_aperiodic(&vec![1u8; m]), "m={m}");
        }
    }

    #[test]
    fn templates_are_distinct_and_correct_length() {
        let t = aperiodic_templates(9);
        let set: std::collections::HashSet<_> = t.iter().collect();
        assert_eq!(set.len(), t.len());
        assert!(t.iter().all(|b| b.len() == 9));
        assert!(t.iter().all(|b| is_aperiodic(b)));
    }
}
