//! Test 12 — Approximate entropy test (SP 800-22 §2.12).
//!
//! Compares the frequencies of overlapping m-bit and (m+1)-bit patterns:
//! for random data the incremental entropy per extra bit is ln 2.

use crate::bits::Bits;
use crate::error::{require_len, StsError};
use crate::result::TestResult;
use crate::special::igamc;

/// Minimum recommended sequence length.
pub const MIN_BITS: usize = 1000;

/// φ_m statistic: Σ π_i ln π_i over overlapping m-bit pattern
/// frequencies (with wraparound).
fn phi(bits: &Bits, m: usize) -> f64 {
    if m == 0 {
        return 0.0;
    }
    let n = bits.len();
    let mut counts = vec![0u64; 1usize << m];
    let mask = (1usize << m) - 1;
    let mut window = 0usize;
    for i in 0..m {
        window = (window << 1) | bits.bit(i % n) as usize;
    }
    counts[window] += 1;
    for i in 1..n {
        window = ((window << 1) | bits.bit((i + m - 1) % n) as usize) & mask;
        counts[window] += 1;
    }
    let nf = n as f64;
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / nf;
            p * p.ln()
        })
        .sum()
}

/// Runs the approximate-entropy test with pattern length `m`.
///
/// # Errors
///
/// Returns [`StsError::InsufficientData`] for short sequences and
/// [`StsError::NotApplicable`] if `m` exceeds `log2(n) - 5`.
pub fn test_with_m(bits: &Bits, m: usize) -> Result<TestResult, StsError> {
    require_len("approximate_entropy", MIN_BITS, bits.len())?;
    let max_m = ((bits.len() as f64).log2() - 5.0).floor() as usize;
    if m < 1 || m > max_m {
        return Err(StsError::NotApplicable {
            test: "approximate_entropy",
            reason: format!("m = {m} outside 1..={max_m} for n = {}", bits.len()),
        });
    }
    let n = bits.len() as f64;
    let ap_en = phi(bits, m) - phi(bits, m + 1);
    let chi2 = 2.0 * n * (std::f64::consts::LN_2 - ap_en);
    let p = igamc((1usize << (m - 1)) as f64, chi2 / 2.0);
    Ok(TestResult::single("approximate_entropy", p))
}

/// Runs the approximate-entropy test with the NIST-recommended pattern
/// length for the sequence size (capped at `m = 10`).
///
/// # Errors
///
/// See [`test_with_m`].
pub fn test(bits: &Bits) -> Result<TestResult, StsError> {
    let max_m = ((bits.len() as f64).log2() - 5.0).floor() as usize;
    test_with_m(bits, max_m.min(10).max(1))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nist_worked_example_statistic() {
        // SP 800-22 §2.12 worked example: ε = 0100110101 (n = 10),
        // m = 3: φ3 = −1.643418, φ4 = −1.834372, ApEn = 0.190954,
        // chi2 = 2·10·(ln 2 − ApEn) = 10.043859,
        // P-value = igamc(4, chi2/2) = 0.261961.
        let bits = Bits::from_bools([
            false, true, false, false, true, true, false, true, false, true,
        ]);
        let ap_en = phi(&bits, 3) - phi(&bits, 4);
        let chi2 = 2.0 * 10.0 * (std::f64::consts::LN_2 - ap_en);
        let p = igamc(4.0, chi2 / 2.0);
        assert!((ap_en - 0.19095425).abs() < 1e-7, "ApEn = {ap_en}");
        assert!((p - 0.2619611).abs() < 1e-6, "p = {p}");
    }

    #[test]
    fn random_bits_pass() {
        let mut x = 0xFEED_BEEFu64;
        let bits = Bits::from_fn(50_000, |_| {
            x ^= x << 13;
            x ^= x >> 7;
            x ^= x << 17;
            x & 1 == 1
        });
        assert!(test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn periodic_bits_fail() {
        let bits = Bits::from_fn(50_000, |i| i % 4 < 2);
        assert!(!test(&bits).unwrap().passed(0.01));
    }

    #[test]
    fn rejects_oversized_m() {
        let bits = Bits::from_fn(2000, |i| i % 2 == 0);
        assert!(test_with_m(&bits, 15).is_err());
    }

    #[test]
    fn phi_zero_for_m_zero() {
        let bits = Bits::from_fn(100, |i| i % 2 == 0);
        assert_eq!(phi(&bits, 0), 0.0);
    }
}
