//! Model checks for the randomness service's REQUEST/RECEIVE wait
//! protocol.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p drange-core --test
//! loom_service`. `RandomnessService::wait_receive` parks a client on
//! `ready_cv` while its request is in flight on another thread; these
//! models re-state that protocol (`src/service.rs`:
//! `process_deadline` / `wait_receive_inner`) over `loomlite`'s
//! Mutex/Condvar, where waits never time out — so the historical bug
//! this file pins (an error-path requeue that *didn't* notify, papered
//! over by a 5 ms poll) shows up as a hard deadlock, not a stall.
//!
//! The wait protocol has two halves that must stay in lockstep, and
//! there is a failing model for dropping either one:
//!
//! 1. every transition out of the in-flight state — completion,
//!    cancellation, error/timeout requeue — notifies `ready_cv` under
//!    the inner lock, and
//! 2. the waiter's park predicate treats "my id is back in `pending`"
//!    as a wake condition, re-driving the firmware loop itself instead
//!    of waiting for a completion no thread is producing.
//!
//! The model and `src/service.rs` must be kept in sync by hand; each
//! model function cites the code it mirrors.

#![cfg(loom)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use loomlite::sync::{Arc, Condvar, Mutex};
use loomlite::{thread, Builder};

/// The single request id the models trace.
const ID: u64 = 1;

/// Mirrors `ServiceInner`: the request lifecycle state behind one lock.
struct SvcState {
    pending: VecDeque<u64>,
    ready: Vec<u64>,
    outstanding: Vec<u64>,
}

/// The service reduced to its wait protocol. The engine is scripted:
/// `engine_ok` decides whether a fetch completes or fails (a real
/// engine error — e.g. an unhealthy source retiring the last worker —
/// is global and permanent, which the constant models exactly). The
/// two `bug_*` switches re-introduce the historical defects.
struct Model {
    inner: Mutex<SvcState>,
    ready_cv: Condvar,
    engine_ok: bool,
    /// BUG switch: when set, the error-path requeue in `process` skips
    /// its `notify_all` (the pre-fix code).
    bug_skip_requeue_notify: bool,
    /// BUG switch: when set, the waiter's predicate ignores `pending`
    /// (the pre-fix code) and parks even when its own id needs
    /// driving.
    bug_skip_pending_recheck: bool,
}

impl Model {
    fn new(engine_ok: bool) -> Self {
        Model {
            inner: Mutex::new(SvcState {
                pending: VecDeque::from([ID]),
                ready: Vec::new(),
                outstanding: vec![ID],
            }),
            ready_cv: Condvar::new(),
            engine_ok,
            bug_skip_requeue_notify: false,
            bug_skip_pending_recheck: false,
        }
    }
}

/// Mirrors `RandomnessService::process_deadline`: pop a pending
/// request, fetch its bytes from the engine, publish the completion —
/// or requeue the head and notify on an engine error, so a waiter
/// parked on that id wakes and drives the loop itself.
fn process(m: &Model) -> Result<usize, &'static str> {
    let mut completed = 0usize;
    loop {
        let head = {
            let mut inner = m.inner.lock().expect("model lock");
            inner.pending.pop_front()
        };
        let Some(id) = head else { return Ok(completed) };
        if m.engine_ok {
            {
                let mut inner = m.inner.lock().expect("model lock");
                // A request canceled while in flight completes into
                // the void (mirrors the `outstanding` check before the
                // `ready` insert).
                if inner.outstanding.contains(&id) {
                    inner.ready.push(id);
                }
            }
            m.ready_cv.notify_all();
            completed += 1;
        } else {
            {
                let mut inner = m.inner.lock().expect("model lock");
                inner.pending.push_front(id);
            }
            if !m.bug_skip_requeue_notify {
                m.ready_cv.notify_all();
            }
            return Err("engine error");
        }
    }
}

/// Mirrors `RandomnessService::wait_receive_inner` (untimed): drive the
/// firmware loop, then park only while the id is in flight on another
/// thread — not ready, still outstanding, not back in `pending`.
fn wait_receive(m: &Model, id: u64) -> Result<(), &'static str> {
    loop {
        process(m)?;
        let mut inner = m.inner.lock().expect("model lock");
        loop {
            if let Some(i) = inner.ready.iter().position(|&r| r == id) {
                inner.ready.swap_remove(i);
                if let Some(o) = inner.outstanding.iter().position(|&r| r == id) {
                    inner.outstanding.swap_remove(o);
                }
                return Ok(());
            }
            if !inner.outstanding.contains(&id) {
                return Err("unknown, canceled, or already-received id");
            }
            if !m.bug_skip_pending_recheck && inner.pending.contains(&id) {
                // Our id is back in the queue and no thread owns it:
                // drive the firmware loop ourselves.
                break;
            }
            inner = m.ready_cv.wait(inner).expect("model wait");
        }
    }
}

/// Mirrors `RandomnessService::cancel`: drop the id everywhere under
/// the lock, then wake waiters so one parked on it observes the
/// cancellation.
fn cancel(m: &Model, id: u64) -> bool {
    let mut inner = m.inner.lock().expect("model lock");
    let Some(o) = inner.outstanding.iter().position(|&r| r == id) else {
        return false;
    };
    inner.outstanding.swap_remove(o);
    inner.pending.retain(|&p| p != id);
    inner.ready.retain(|&p| p != id);
    drop(inner);
    m.ready_cv.notify_all();
    true
}

/// Happy path under every schedule: whichever thread pops the request
/// (the processor or the waiter driving the loop itself), the waiter
/// collects the completion — parked waiters are woken by the
/// completion notify, never stranded.
#[test]
fn completion_notify_reaches_a_parked_waiter() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(Model::new(true));
        let processor = thread::spawn({
            let m = Arc::clone(&m);
            move || {
                let _ = process(&m);
            }
        });
        wait_receive(&m, ID).expect("the completion must reach the waiter");
        processor.join().expect("processor thread");
        let inner = m.inner.lock().expect("model lock");
        assert!(inner.outstanding.is_empty(), "the id must be consumed");
        assert!(inner.ready.is_empty());
    });
}

/// The fixed protocol survives the error path under every schedule: a
/// processor that fails while serving the waiter's id requeues it
/// *with* a notify, the waiter wakes (or observes `pending` before
/// parking), re-drives the loop, and surfaces the engine error instead
/// of deadlocking.
#[test]
fn error_requeue_notifies_the_waiter() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(Model::new(false));
        let processor = thread::spawn({
            let m = Arc::clone(&m);
            move || {
                let _ = process(&m);
            }
        });
        let out = wait_receive(&m, ID);
        assert!(
            out.is_err(),
            "a permanently failing engine must surface its error"
        );
        processor.join().expect("processor thread");
    });
}

/// Regression model for half 1 of the protocol (the notify). This *is*
/// the pre-fix `service.rs` bug: `process` requeued the head on an
/// engine error without notifying, so a waiter already parked on the
/// id slept forever — invisibly in production, because a 5 ms
/// `wait_for` poll retried the loop. With the poll gone the checker
/// reports the schedule as a deadlock.
#[test]
fn requeue_without_notify_loses_the_wakeup() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loomlite::model(|| {
            let mut m = Model::new(false);
            m.bug_skip_requeue_notify = true;
            let m = Arc::new(m);
            let processor = thread::spawn({
                let m = Arc::clone(&m);
                move || {
                    let _ = process(&m);
                }
            });
            let _ = wait_receive(&m, ID);
            processor.join().expect("processor thread");
        });
    }));
    let message = result
        .expect_err("the notify-free requeue must fail the model check")
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("deadlock"),
        "expected a deadlock report, got: {message}"
    );
}

/// Regression model for half 2 of the protocol (the predicate). The
/// requeue notify alone is not enough: a waiter whose park predicate
/// ignores `pending` re-parks right after the wakeup — its id is
/// queued, but it waits for a completion no thread will produce. Both
/// halves of the fix are load-bearing.
#[test]
fn waiter_without_the_pending_recheck_parks_forever() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loomlite::model(|| {
            let mut m = Model::new(false);
            m.bug_skip_pending_recheck = true;
            let m = Arc::new(m);
            let processor = thread::spawn({
                let m = Arc::clone(&m);
                move || {
                    let _ = process(&m);
                }
            });
            let _ = wait_receive(&m, ID);
            processor.join().expect("processor thread");
        });
    }));
    let message = result
        .expect_err("the predicate-free waiter must fail the model check")
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("deadlock"),
        "expected a deadlock report, got: {message}"
    );
}

/// Cancellation under every schedule: either the waiter wins (receives
/// the bytes; cancel finds nothing) or the cancel wins (the waiter is
/// woken and gets the unknown-id error; an in-flight fetch completes
/// into the void) — never both, never a deadlock, never a leaked id.
#[test]
fn cancel_wakes_the_waiter_exactly_once() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(Model::new(true));
        let canceler = thread::spawn({
            let m = Arc::clone(&m);
            move || cancel(&m, ID)
        });
        let out = wait_receive(&m, ID);
        let canceled = canceler.join().expect("canceler thread");
        assert_eq!(
            out.is_ok(),
            !canceled,
            "exactly one side must win the id: wait={out:?} canceled={canceled}"
        );
        let inner = m.inner.lock().expect("model lock");
        assert!(inner.outstanding.is_empty(), "no id may leak");
        assert!(inner.ready.is_empty(), "no bytes may linger");
    });
}
