//! Model checks for the DRBG farm's reseed/generate shard handoff.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p drange-core --test
//! loom_drbg`. A [`drange_core::DrbgFarm`] shard is a mutex around
//! `(key, credit, counters)`; its two safety claims are:
//!
//! 1. **Key erasure is atomic.** Every generate reads the key, derives
//!    `(next_key, output)` from it, and writes the next key back in
//!    one critical section (`src/drbg/mod.rs`: `generate_inner`). Two
//!    concurrent generates must therefore never observe the same key —
//!    i.e. never emit the same output.
//! 2. **Credit never runs ahead of entropy.** A reseed credits the
//!    ledger in the same critical section that absorbs the seed, and a
//!    generate spends in the same critical section that ratchets, so
//!    no observer (`stats()`) can ever see `spent > credited`.
//!
//! The models restate both claims over `loomlite`'s mutex, plus a
//! failing variant for each that re-introduces the tempting refactor
//! (splitting the critical section) and shows the checker catching it.
//! The model and `src/drbg/mod.rs` must be kept in sync by hand.

#![cfg(loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};

use loomlite::sync::{Arc, Mutex};
use loomlite::{thread, Builder};

/// Abstract stand-in for one shard: the ChaCha key collapses to a
/// `u64`, the keystream PRF to splitmix64 — all that matters for the
/// handoff is that distinct keys give distinct outputs.
struct Shard {
    key: u64,
    credited: u64,
    spent: u64,
    generates: u64,
}

fn shard() -> Mutex<Shard> {
    Mutex::new(Shard {
        key: 0x5EED,
        credited: 0,
        spent: 0,
        generates: 0,
    })
}

/// The abstract ratchet: `output` is a function of the pre-ratchet key
/// alone, so two generates that saw the same key produce the same
/// output — exactly the fault the key-erasure claim excludes.
fn ratchet(key: u64) -> (u64, u64) {
    let next = key
        .wrapping_mul(0x9E37_79B9_7F4A_7C15)
        .wrapping_add(0x6364_1362_2384_6793);
    (next, key ^ 0xD1B5_4A32_D192_ED03)
}

/// Mirrors `generate_inner`'s critical section: ratchet and spend
/// under one lock acquisition.
fn generate(shard: &Mutex<Shard>, bytes: u64) -> u64 {
    let mut s = shard.lock().expect("model lock");
    let (next, out) = ratchet(s.key);
    s.key = next;
    s.generates += 1;
    let available = s.credited - s.spent;
    s.spent += (bytes * 8).min(available);
    out
}

/// The tempting refactor the checker must reject: read the key, drop
/// the lock "while the keystream computes", write the next key back in
/// a second acquisition. Fast, and fatally wrong.
fn generate_split_lock(shard: &Mutex<Shard>, bytes: u64) -> u64 {
    let key = {
        let s = shard.lock().expect("model lock");
        s.key
    };
    let (next, out) = ratchet(key);
    let mut s = shard.lock().expect("model lock");
    s.key = next;
    s.generates += 1;
    let available = s.credited - s.spent;
    s.spent += (bytes * 8).min(available);
    out
}

/// Mirrors `reseed_shard`'s success path: absorb and credit under the
/// same lock acquisition.
fn reseed(shard: &Mutex<Shard>, seed: u64, bits: u64) {
    let mut s = shard.lock().expect("model lock");
    s.key ^= seed;
    s.credited += bits;
}

/// Key erasure under every schedule: three concurrent generates on one
/// shard always emit pairwise-distinct outputs, and each mints exactly
/// one generate.
#[test]
fn concurrent_generates_never_repeat_output() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let shard = Arc::new(shard());
        let a = thread::spawn({
            let shard = Arc::clone(&shard);
            move || generate(&shard, 16)
        });
        let b = thread::spawn({
            let shard = Arc::clone(&shard);
            move || generate(&shard, 16)
        });
        let c = generate(&shard, 16);
        let a = a.join().expect("generate thread a");
        let b = b.join().expect("generate thread b");
        assert!(
            a != b && a != c && b != c,
            "two generates observed the same key: {a:#x} {b:#x} {c:#x}"
        );
        let s = shard.lock().expect("model lock");
        assert_eq!(s.generates, 3, "every generate must be minted once");
    });
}

/// The failing variant: with the ratchet split across two lock
/// acquisitions, some schedule lets two generates read the same key
/// and emit identical output — the checker must find it.
#[test]
fn split_lock_ratchet_loses_key_erasure() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loomlite::model(|| {
            let shard = Arc::new(shard());
            let a = thread::spawn({
                let shard = Arc::clone(&shard);
                move || generate_split_lock(&shard, 16)
            });
            let b = generate_split_lock(&shard, 16);
            let a = a.join().expect("generate thread");
            assert_ne!(a, b, "repeated DRBG output");
        });
    }));
    let message = result
        .expect_err("the split-lock ratchet must fail the model check")
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("repeated DRBG output"),
        "expected the duplicate-output assertion, got: {message}"
    );
}

/// Credit soundness under every schedule: a reseed crediting 256 bits
/// races two generates spending; however they interleave, an observer
/// taking the lock (as `stats()` does) never sees `spent > credited`,
/// and the final ledger balances.
#[test]
fn credit_never_runs_ahead_of_the_reseed() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let shard = Arc::new(shard());
        let reseeder = thread::spawn({
            let shard = Arc::clone(&shard);
            move || reseed(&shard, 0xFEED_FACE, 256)
        });
        let spender = thread::spawn({
            let shard = Arc::clone(&shard);
            move || generate(&shard, 64)
        });
        // The observer: every lock acquisition must see a sound ledger.
        {
            let s = shard.lock().expect("model lock");
            assert!(
                s.spent <= s.credited,
                "observer saw spent {} > credited {}",
                s.spent,
                s.credited
            );
        }
        let _ = generate(&shard, 64);
        reseeder.join().expect("reseed thread");
        spender.join().expect("spender thread");
        let s = shard.lock().expect("model lock");
        assert!(s.spent <= s.credited, "final ledger unsound");
        assert_eq!(s.credited, 256);
        assert_eq!(s.generates, 2);
    });
}
