//! Known-answer tests for the conditioning tier (the CI `drbg-kat`
//! job).
//!
//! Two fixture families live under `tests/vectors/`:
//!
//! * `chacha20_keystream.txt` / `chacha20_encrypt.txt` — RFC 8439's
//!   own test vectors (§2.3.2, appendix A.1, §2.4.2), checked
//!   bit-exactly against [`drange_core::drbg::chacha`]. These pin the
//!   primitive against the published standard.
//! * `drbg_generate.txt` — a generate/reseed known-answer chain for
//!   the DRBG itself over a scripted seed source: instantiate,
//!   steady-state generates, an interval reseed *blocked by a health
//!   trip* (output must continue from the unreseeded key), the
//!   unblocked reseed one generate later, and a prediction-resistant
//!   generate. Self-generated once and committed, so any change to the
//!   ratchet, the absorb step, the credit policy, or the reseed
//!   decision order shows up as a bit mismatch here.
//!
//! Every assertion compares lowercase hex strings, so a failure
//! message shows the actual bytes directly.

use std::cell::Cell;
use std::collections::BTreeMap;
use std::time::Duration;

use drange_core::drbg::{chacha, DrbgConfig, DrbgFarm, SeedSource};
use drange_core::telemetry::Tracer;
use drange_core::{Result, TripCounts};

const KEYSTREAM_VECTORS: &str = include_str!("vectors/chacha20_keystream.txt");
const ENCRYPT_VECTORS: &str = include_str!("vectors/chacha20_encrypt.txt");
const DRBG_VECTORS: &str = include_str!("vectors/drbg_generate.txt");

fn from_hex(s: &str) -> Vec<u8> {
    assert!(s.len() % 2 == 0, "odd hex length in fixture: {s:?}");
    (0..s.len() / 2)
        .map(|i| u8::from_str_radix(&s[2 * i..2 * i + 2], 16).expect("hex byte"))
        .collect()
}

fn to_hex(bytes: &[u8]) -> String {
    bytes.iter().map(|b| format!("{b:02x}")).collect()
}

/// Parses a fixture file into records: `key = value` lines, records
/// separated by blank lines, `#` comments ignored.
fn parse_records(text: &str) -> Vec<BTreeMap<String, String>> {
    let mut records = Vec::new();
    let mut current = BTreeMap::new();
    for line in text.lines() {
        let line = line.trim();
        if line.is_empty() {
            if !current.is_empty() {
                records.push(std::mem::take(&mut current));
            }
            continue;
        }
        if line.starts_with('#') {
            continue;
        }
        let (k, v) = line
            .split_once('=')
            .expect("fixture line must be `key = value`");
        current.insert(k.trim().to_string(), v.trim().to_string());
    }
    if !current.is_empty() {
        records.push(current);
    }
    records
}

fn field<'a>(record: &'a BTreeMap<String, String>, key: &str) -> &'a str {
    record
        .get(key)
        .unwrap_or_else(|| panic!("fixture record missing `{key}`"))
}

#[test]
fn chacha20_keystream_vectors_are_bit_exact() {
    let records = parse_records(KEYSTREAM_VECTORS);
    assert!(
        records.len() >= 2,
        "expected at least two keystream vectors"
    );
    for record in &records {
        let key: [u8; 32] = from_hex(field(record, "key"))
            .try_into()
            .expect("32-byte key");
        let nonce: [u8; 12] = from_hex(field(record, "nonce"))
            .try_into()
            .expect("12-byte nonce");
        let counter: u32 = field(record, "counter").parse().expect("counter");
        let expected = field(record, "keystream");
        let mut out = vec![0u8; expected.len() / 2];
        chacha::keystream(&key, counter, &nonce, &mut out);
        assert_eq!(
            to_hex(&out),
            *expected,
            "keystream mismatch (counter {counter})"
        );
    }
}

#[test]
fn chacha20_encryption_vector_is_bit_exact() {
    let records = parse_records(ENCRYPT_VECTORS);
    assert_eq!(records.len(), 1, "expected exactly one encryption vector");
    let record = &records[0];
    let key: [u8; 32] = from_hex(field(record, "key"))
        .try_into()
        .expect("32-byte key");
    let nonce: [u8; 12] = from_hex(field(record, "nonce"))
        .try_into()
        .expect("12-byte nonce");
    let counter: u32 = field(record, "counter").parse().expect("counter");
    let plaintext = from_hex(field(record, "plaintext"));
    let expected = field(record, "ciphertext");

    let mut data = plaintext.clone();
    chacha::xor_keystream(&key, counter, &nonce, &mut data);
    assert_eq!(to_hex(&data), *expected, "ciphertext mismatch");
    // Decryption is the same operation.
    chacha::xor_keystream(&key, counter, &nonce, &mut data);
    assert_eq!(data, plaintext, "decrypt must round-trip");
}

/// A fully deterministic seed source for the DRBG chain: draw `i`
/// (1-based) returns 32 bytes of value `i`; the test scripts the trip
/// counter between steps.
struct FixedSeed {
    draws: Cell<u64>,
    trips: Cell<u64>,
}

impl FixedSeed {
    fn new() -> Self {
        FixedSeed {
            draws: Cell::new(0),
            trips: Cell::new(0),
        }
    }
}

impl SeedSource for FixedSeed {
    fn draw_seed(&self, bytes: usize, _timeout: Duration) -> Result<Option<Vec<u8>>> {
        let i = self.draws.get() + 1;
        self.draws.set(i);
        Ok(Some(vec![i as u8; bytes]))
    }

    fn trip_counts(&self) -> TripCounts {
        TripCounts {
            repetition: self.trips.get(),
            adaptive: 0,
        }
    }
}

/// Runs the scripted generate/reseed chain and returns the five
/// 32-byte outputs (hex) plus the farm for stats assertions.
fn run_drbg_chain() -> (Vec<String>, DrbgFarm, FixedSeed) {
    let farm = DrbgFarm::new(
        DrbgConfig {
            shards: 1,
            reseed_interval: 2,
            seed_bytes: 32,
            ..DrbgConfig::default()
        },
        1,
        None,
        Tracer::noop(),
    )
    .expect("valid config");
    let src = FixedSeed::new();
    let mut outputs = Vec::new();
    // Step 1: instantiate (draw #1) + generate.
    outputs.push(to_hex(&farm.generate(&src, 32).expect("step 1")));
    // Step 2: steady state, no reseed due.
    outputs.push(to_hex(&farm.generate(&src, 32).expect("step 2")));
    // Step 3: interval reseed due, but the health monitors tripped
    // since the last decision — reseed blocked, output continues from
    // the unreseeded (ratcheted) key.
    src.trips.set(1);
    outputs.push(to_hex(&farm.generate(&src, 32).expect("step 3")));
    // Step 4: trips quiet since the step-3 decision — the reseed
    // proceeds (draw #2).
    outputs.push(to_hex(&farm.generate(&src, 32).expect("step 4")));
    // Step 5: prediction resistance forces a reseed (draw #3).
    outputs.push(to_hex(&farm.generate_pr(&src, 32).expect("step 5")));
    (outputs, farm, src)
}

#[test]
fn drbg_generate_reseed_chain_is_bit_exact() {
    let records = parse_records(DRBG_VECTORS);
    assert_eq!(records.len(), 1, "expected one DRBG chain record");
    let record = &records[0];
    let (outputs, farm, src) = run_drbg_chain();
    for (i, out) in outputs.iter().enumerate() {
        let key = format!("step{}", i + 1);
        assert_eq!(out, field(record, &key), "DRBG output mismatch at {key}");
    }
    // The chain's side effects are part of the known answer.
    let stats = farm.stats();
    assert_eq!(stats.generates, 5);
    assert_eq!(stats.reseeds, 3, "instantiate + unblocked + PR");
    assert_eq!(stats.reseeds_blocked_health, 1, "step 3 was blocked");
    assert_eq!(stats.reseeds_blocked_starved, 0);
    assert_eq!(stats.entropy_credited_bits, 3 * 256);
    assert_eq!(src.draws.get(), 3, "exactly three pool draws");
}

#[test]
fn drbg_outputs_are_pairwise_distinct() {
    let (outputs, _, _) = run_drbg_chain();
    for i in 0..outputs.len() {
        for j in i + 1..outputs.len() {
            assert_ne!(outputs[i], outputs[j], "steps {i} and {j} repeat output");
        }
    }
}

/// The acceptance-pinned behavior: a health trip blocks reseeding but
/// never serving, and a required reseed (prediction resistance) under
/// a trip is an explicit `Unhealthy` error.
#[test]
fn reseed_blocked_on_health_trip_never_blocks_serving() {
    let farm = DrbgFarm::new(
        DrbgConfig {
            shards: 1,
            reseed_interval: 1,
            seed_bytes: 32,
            ..DrbgConfig::default()
        },
        1,
        None,
        Tracer::noop(),
    )
    .expect("valid config");
    let src = FixedSeed::new();
    farm.generate(&src, 16).expect("instantiate");
    let draws_before = src.draws.get();
    // Trips move before every following decision: reseeds stay blocked
    // (interval 1 makes one due on every generate), serving never is.
    for round in 0..5u64 {
        src.trips.set(round + 1);
        let out = farm.generate(&src, 16).expect("serving continues");
        assert_eq!(out.len(), 16);
    }
    assert_eq!(src.draws.get(), draws_before, "no seed drawn while tripped");
    let stats = farm.stats();
    assert_eq!(stats.reseeds_blocked_health, 5);
    assert_eq!(stats.reseeds, 1, "only the instantiation reseeded");
    // Prediction resistance under a trip is an error, not silent reuse.
    src.trips.set(99);
    let err = farm.generate_pr(&src, 16).unwrap_err();
    assert!(
        matches!(err, drange_core::DrangeError::Unhealthy(_)),
        "expected Unhealthy, got {err:?}"
    );
}
