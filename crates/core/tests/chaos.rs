//! Chaos-tier integration test: environmental fault injection against
//! the self-healing RNG-cell lifecycle.
//!
//! The scenario mirrors a hostile deployment window for a DRAM TRNG:
//! a 20 °C thermal shock with a ramp back to baseline, accelerated
//! aging on well over 5 % of the RNG-cell population, and a handful of
//! transiently stuck cells. The lifecycle must quarantine the affected
//! cells through its statistical monitors, re-characterize them after
//! backoff, reinstate the cells whose fault cleared, permanently retire
//! the worn-out ones, and keep producing bits that still pass a NIST
//! smoke screen — all within a bounded number of batches and without
//! entering degraded mode.
//!
//! Run by the `chaos-smoke` CI job and, at full scale, by the nightly
//! workflow.

use std::sync::OnceLock;
use std::time::{Duration, Instant};

use dram_sim::{select_fraction, CellAddr, DeviceConfig, EnvSchedule, Manufacturer};
use drange_core::telemetry::MetricsRegistry;
use drange_core::{
    resilient_channel_sources, DRange, DRangeConfig, EngineConfig, HarvestEngine, IdentifySpec,
    LifecycleConfig, ProfileSpec, Profiler, ResilientDRange, RngCellCatalog,
};
use memctrl::MemoryController;
use nist_sts::Bits;

fn device_config() -> DeviceConfig {
    DeviceConfig::new(Manufacturer::A)
        .with_seed(42)
        .with_noise_seed(4242)
}

/// Profiling and identification are deterministic for fixed seeds, so
/// the catalog is built once and shared across the chaos tests.
fn catalog() -> &'static RngCellCatalog {
    static CATALOG: OnceLock<RngCellCatalog> = OnceLock::new();
    CATALOG.get_or_init(|| {
        let mut ctrl = MemoryController::from_config(device_config());
        let profile = Profiler::new(&mut ctrl)
            .run(
                ProfileSpec {
                    banks: (0..8).collect(),
                    rows: 0..128,
                    cols: 0..16,
                    ..ProfileSpec::default()
                }
                .with_iterations(25),
            )
            .unwrap();
        RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default()).unwrap()
    })
}

/// Lifecycle tuning for the chaos tier: the run-length cutoff stays
/// high enough that honest cells essentially never trip (a run of 24
/// identical bits has probability ~2^-23 per bit), while injected
/// stuck-at and heavy-wear faults trip deterministically within 24
/// batches.
fn chaos_lifecycle() -> LifecycleConfig {
    // max_strikes 4 tolerates one premature re-characterization: a cell
    // whose pre-fault bits happened to match the stuck value trips its
    // run monitor early, so the first recheck can land while the
    // transient fault is still active — the doubled backoff then pushes
    // the next recheck past the fault's clearing instead of retiring a
    // healable cell. Persistently worn cells still retire after three
    // failed rechecks.
    LifecycleConfig {
        stuck_run_cutoff: 24,
        bias_window: 64,
        backoff_batches: 8,
        max_strikes: 4,
        ..LifecycleConfig::default()
    }
}

#[test]
fn chaos_schedule_quarantines_reinstates_and_retires() {
    let r = ResilientDRange::new(
        MemoryController::from_config(device_config()),
        catalog(),
        DRangeConfig::default(),
        chaos_lifecycle(),
    )
    .unwrap();
    let active = r.generator().active_cells();

    // Accelerated aging on >5 % of the population: the wear is
    // persistent, so these cells must end up retired. The seeded draw
    // is per-cell Bernoulli, so top it up deterministically to the 5 %
    // floor — the catalog (and with it the draw count) shifts with the
    // noise stream.
    let mut aged = select_fraction(0xC0FFEE, &active, 0.08);
    let min_aged = (active.len().div_ceil(20)).max(2);
    for c in &active {
        if aged.len() >= min_aged {
            break;
        }
        if !aged.contains(c) {
            aged.push(*c);
        }
    }
    assert!(
        aged.len() * 20 >= active.len() && !aged.is_empty(),
        "aging must cover at least 5% of {} cells, got {}",
        active.len(),
        aged.len()
    );
    // Transient stuck-at faults that the schedule later clears: these
    // cells must be quarantined and then reinstated.
    let transient: Vec<CellAddr> = active
        .iter()
        .copied()
        .filter(|c| !aged.contains(c))
        .take(3)
        .collect();
    assert_eq!(transient.len(), 3);

    // One schedule step is applied per harvested batch. The thermal
    // excursion is deliberately shorter than the statistical windows
    // (it must not trip anyone); the stuck-at faults clear before
    // their victims' re-characterization at trip + backoff, while the
    // wear never clears.
    let schedule = EnvSchedule::new(0xC0FFEE)
        .shock(20.0)
        .hold(2)
        .ramp(-20.0, 4)
        .stuck_at(&transient, true)
        .age_cells(&aged, 10.0)
        .hold(24)
        .clear_stuck(&transient)
        .hold(26);
    let mut r = r.with_schedule(schedule);

    let want_retired = aged.len() as u64;
    loop {
        let _ = r.next_batch().unwrap();
        let s = r.lifecycle_stats();
        if s.reinstated_cells >= 3 && s.retired_cells >= want_retired {
            break;
        }
        assert!(
            r.batches() < 3_000,
            "chaos scenario failed to converge: {s:?}"
        );
    }

    let stats = r.lifecycle_stats();
    assert!(
        stats.quarantine_events >= want_retired + 3,
        "every faulted cell must have been quarantined: {stats:?}"
    );
    assert!(stats.reinstated_cells >= 3, "{stats:?}");
    assert!(stats.retired_cells >= want_retired, "{stats:?}");
    assert!(
        stats.recharacterizations >= stats.reinstated_cells + stats.retired_cells,
        "every verdict requires a re-characterization: {stats:?}"
    );
    assert!(
        !stats.degraded,
        "retiring 8% of cells must not degrade the generator: {stats:?}"
    );

    let faults = r.fault_stats();
    assert!(faults.temperature_events >= 1, "{faults:?}");
    assert!(faults.cells_aged >= aged.len() as u64, "{faults:?}");
    assert!(faults.cells_stuck >= transient.len() as u64, "{faults:?}");

    // Post-recovery smoke screen: the surviving population still
    // produces bits that pass first-level NIST tests.
    let mut stream = Vec::with_capacity(24_000);
    while stream.len() < 24_000 {
        stream.extend(r.next_batch().unwrap().iter());
    }
    let bits = Bits::from_bools(stream);
    let monobit = nist_sts::monobit::test(&bits).unwrap();
    assert!(
        monobit.passed(1e-4),
        "post-recovery monobit p={}",
        monobit.min_p()
    );
    let runs = nist_sts::runs::test(&bits).unwrap();
    assert!(runs.passed(1e-4), "post-recovery runs p={}", runs.min_p());
    let final_stats = r.lifecycle_stats();
    assert_eq!(
        final_stats.retired_cells, stats.retired_cells,
        "recovery must be stable: no further retirements while harvesting"
    );
}

/// Extracts the value of the first Prometheus sample line whose name
/// and label set match every given fragment.
fn sample_value(text: &str, fragments: &[&str]) -> Option<f64> {
    text.lines()
        .filter(|l| !l.starts_with('#'))
        .find(|l| fragments.iter().all(|f| l.contains(f)))
        .and_then(|l| l.rsplit(' ').next())
        .and_then(|v| v.parse().ok())
}

#[test]
fn lifecycle_series_reach_prometheus_export() {
    // A probe generator (same seeds, same catalog) exposes the harvest
    // plan so the schedule can target real planned cells.
    let probe = DRange::new(
        MemoryController::from_config(device_config()),
        catalog(),
        DRangeConfig::default(),
    )
    .unwrap();
    let victims: Vec<CellAddr> = probe.active_cells().into_iter().take(2).collect();
    drop(probe);

    let schedule = EnvSchedule::new(7)
        .shock(20.0)
        .stuck_at(&victims, true)
        .hold(200);
    let registry = MetricsRegistry::new();
    let sources = resilient_channel_sources(
        &device_config(),
        catalog(),
        &DRangeConfig::default(),
        &chaos_lifecycle(),
        Some(&schedule),
        1,
        Some(&registry),
    )
    .unwrap();
    let engine =
        HarvestEngine::spawn_with_telemetry(sources, EngineConfig::default(), Some(&registry))
            .unwrap();

    // The stuck victims trip their run-length monitors after
    // `stuck_run_cutoff` batches; quarantine and the subsequent
    // re-characterization must surface in the Prometheus export.
    let deadline = Instant::now() + Duration::from_secs(120);
    loop {
        let text = registry.render_prometheus();
        let quarantines = sample_value(
            &text,
            &["drange_lifecycle_events_total", "event=\"quarantine\""],
        );
        let rechecks = sample_value(
            &text,
            &["drange_lifecycle_events_total", "event=\"recharacterize\""],
        );
        let live = sample_value(&text, &["drange_lifecycle_cells", "state=\"live\""]);
        let stuck = sample_value(&text, &["drange_injected_faults_total", "kind=\"stuck\""]);
        let degraded = sample_value(&text, &["drange_degraded"]);
        if quarantines.unwrap_or(0.0) >= 1.0
            && rechecks.unwrap_or(0.0) >= 1.0
            && live.unwrap_or(0.0) >= 1.0
            && stuck.unwrap_or(0.0) >= victims.len() as f64
            && degraded == Some(0.0)
        {
            break;
        }
        assert!(
            Instant::now() < deadline,
            "lifecycle series never appeared in the export:\n{text}"
        );
        std::thread::sleep(Duration::from_millis(20));
    }

    let stats = engine.shutdown();
    let lc = stats
        .lifecycle
        .expect("resilient sources report lifecycle stats");
    assert!(lc.quarantine_events >= 1);
    assert!(stats.faults.expect("fault stats flow through").cells_stuck >= victims.len() as u64);
    assert!(!stats.is_degraded());
}
