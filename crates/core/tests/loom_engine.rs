//! Model checks for the harvesting engine's cross-thread protocols.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p drange-core --test
//! loom_engine`. The engine itself runs on `crossbeam` channels and
//! `parking_lot` primitives that the model checker cannot instrument,
//! so these tests re-state the protocols of `src/engine.rs` —
//! worker publish, collector watermark gate, client wait, shutdown
//! handshake — line for line over the *real* [`drange_core::sync`]
//! types (which switch to `loomlite` shims under `--cfg loom`) and
//! `loomlite`'s own Mutex/Condvar. Modeled condvar waits never time
//! out, so anything the engine's `POLL`-bounded waits would paper over
//! (a lost wakeup, a missing notify on an exit path) shows up here as
//! a hard deadlock.
//!
//! The model and `src/engine.rs` must be kept in sync by hand; each
//! model function cites the code it mirrors.

#![cfg(loom)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use drange_core::sync::{BitLedger, CounterCell, Flag, LiveCount, WatermarkGate};
use loomlite::sync::{Arc, Condvar, Mutex};
use loomlite::{thread, Builder};

/// Bits per harvested batch in the models.
const BATCH: u64 = 8;
/// Modeled worker→collector channel capacity, in batches.
const CHANNEL_CAP: usize = 1;

/// The engine's `Shared` state, reduced to what the protocols touch:
/// the pool is a bit count, the bounded crossbeam channel is a
/// `VecDeque` of batch sizes with its own mutex and a condvar per
/// direction.
struct Model {
    channel: Mutex<VecDeque<u64>>,
    /// Worker-side: space freed in the channel (crossbeam's internal
    /// sender parking).
    channel_space: Condvar,
    /// Collector-side: data available, or disconnect (last worker
    /// retired).
    channel_data: Condvar,
    pool: Mutex<u64>,
    bits_available: Condvar,
    space_available: Condvar,
    shutdown: Flag,
    live: LiveCount,
    collector_done: Flag,
    in_flight: BitLedger,
    /// Bits wanted by blocked clients; non-zero demand bypasses the
    /// watermark gate (mirrors `Shared::demand_bits`).
    demand: BitLedger,
    harvested: CounterCell,
    discarded: CounterCell,
    served: CounterCell,
}

impl Model {
    fn new(workers: usize) -> Self {
        Model {
            channel: Mutex::new(VecDeque::new()),
            channel_space: Condvar::new(),
            channel_data: Condvar::new(),
            pool: Mutex::new(0),
            bits_available: Condvar::new(),
            space_available: Condvar::new(),
            shutdown: Flag::new(),
            live: LiveCount::new(workers),
            collector_done: Flag::new(),
            in_flight: BitLedger::new(),
            demand: BitLedger::new(),
            harvested: CounterCell::new(),
            discarded: CounterCell::new(),
            served: CounterCell::new(),
        }
    }
}

/// Mirrors `worker_run` + `worker_loop`: harvest, publish into the
/// bounded channel (blocking on space like crossbeam's sender), retire
/// with the lock barrier, wake the channel (disconnect) and any pool
/// waiters.
fn worker(m: &Model, batches: usize) {
    for _ in 0..batches {
        if m.shutdown.is_raised() {
            break;
        }
        m.harvested.add(BATCH);
        m.in_flight.publish(BATCH);
        let mut ch = m.channel.lock().expect("model lock");
        while ch.len() >= CHANNEL_CAP {
            ch = m.channel_space.wait(ch).expect("model wait");
        }
        ch.push_back(BATCH);
        drop(ch);
        m.channel_data.notify_all();
    }
    m.live.retire();
    // Channel-lock barrier for the disconnect notify: the collector
    // checks `all_retired` under the *channel* mutex, so the pool
    // barrier below does not order this wakeup against its park. In
    // the real engine this is crossbeam's sender-drop disconnect,
    // which parks and wakes receivers internally; the hand-rolled
    // channel has to do it explicitly.
    drop(m.channel.lock().expect("model lock"));
    m.channel_data.notify_all();
    drop(m.pool.lock().expect("model lock"));
    m.bits_available.notify_all();
    m.space_available.notify_all();
}

/// Mirrors `collector_loop`: hysteresis-gate on the pool (bypassed
/// during shutdown), drain the channel into the pool, exit on
/// disconnect, raise `collector_done` behind the lock barrier.
///
/// `pool_bound`: when set, asserts the pool never exceeds it right
/// after a batch lands (the backpressure property).
fn collector(m: &Model, mut gate: WatermarkGate, pool_bound: Option<u64>) {
    loop {
        if !m.shutdown.is_raised() {
            let mut pool = m.pool.lock().expect("model lock");
            while !gate.admit(*pool as usize)
                && *pool >= m.demand.outstanding()
                && !m.shutdown.is_raised()
            {
                pool = m.space_available.wait(pool).expect("model wait");
            }
        }
        let mut ch = m.channel.lock().expect("model lock");
        let batch = loop {
            if let Some(b) = ch.pop_front() {
                break Some(b);
            }
            if m.live.all_retired() {
                // All senders dropped: crossbeam disconnect.
                break None;
            }
            ch = m.channel_data.wait(ch).expect("model wait");
        };
        drop(ch);
        let Some(n) = batch else { break };
        m.channel_space.notify_all();
        let mut pool = m.pool.lock().expect("model lock");
        *pool += n;
        if let Some(bound) = pool_bound {
            assert!(
                *pool <= bound,
                "pool {} exceeds the backpressure bound {bound}",
                *pool
            );
        }
        drop(pool);
        m.in_flight.retire(n);
        m.bits_available.notify_all();
    }
    m.collector_done.raise();
    drop(m.pool.lock().expect("model lock"));
    m.bits_available.notify_all();
}

/// Mirrors `take_bits_inner`: serve from the pool or wait, failing fast
/// once the engine stops.
fn take_bits(m: &Model, bits: u64) -> Result<(), &'static str> {
    let mut pool = m.pool.lock().expect("model lock");
    let mut waiting = false;
    loop {
        if *pool >= bits {
            *pool -= bits;
            drop(pool);
            if waiting {
                m.demand.retire(bits);
            }
            m.served.add(bits);
            m.space_available.notify_all();
            return Ok(());
        }
        let workers_gone = m.live.all_retired() && m.collector_done.is_raised();
        if m.shutdown.is_raised() || workers_gone {
            drop(pool);
            if waiting {
                m.demand.retire(bits);
            }
            return Err("engine stopped before the request could be served");
        }
        if !waiting {
            waiting = true;
            // Published under the pool mutex, which doubles as the
            // lock barrier against the collector's gate check.
            m.demand.publish(bits);
            m.space_available.notify_all();
        }
        pool = m.bits_available.wait(pool).expect("model wait");
    }
}

/// Mirrors `HarvestEngine::halt`: raise the flag, lock barrier, wake
/// everything.
fn halt(m: &Model) {
    m.shutdown.raise();
    drop(m.pool.lock().expect("model lock"));
    m.bits_available.notify_all();
    m.space_available.notify_all();
}

/// The graceful-shutdown handshake conserves every bit under every
/// schedule: shutdown can land before, between, or after the worker's
/// two batches, the collector drains whatever was published (the gate
/// is bypassed during shutdown), and after both joins the ledger is
/// empty and *harvested = queued + served + discarded* holds exactly.
#[test]
fn graceful_shutdown_conserves_every_bit() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(Model::new(1));
        let w = thread::spawn({
            let m = Arc::clone(&m);
            move || worker(&m, 2)
        });
        let c = thread::spawn({
            let m = Arc::clone(&m);
            // high == one batch: the gate closes after the first batch
            // lands, so the second drains only via the shutdown bypass.
            move || collector(&m, WatermarkGate::new(0, BATCH as usize), None)
        });
        halt(&m);
        w.join().expect("worker thread");
        c.join().expect("collector thread");
        assert!(m.collector_done.is_raised());
        assert!(m.live.all_retired());
        assert_eq!(
            m.in_flight.outstanding(),
            0,
            "shutdown leaves bits in flight"
        );
        let queued = *m.pool.lock().expect("model lock");
        assert_eq!(
            m.harvested.get(),
            queued + m.served.get() + m.discarded.get(),
            "bit conservation violated"
        );
    });
}

/// A client blocked on an under-filled pool must be woken — and error
/// out instead of deadlocking — when the last worker retires and the
/// collector drains out. Exercises the retire/collector-done exit
/// notifications: drop either `notify_all` (or its lock barrier) in
/// `src/engine.rs` and this model deadlocks.
#[test]
fn client_outlives_worker_retirement() {
    // Three threads exchanging through two mutexes is too many
    // interleavings for exhaustive search; two preemptions cover every
    // schedule where one exit-path notify lands inside another
    // thread's check-to-park window.
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(Model::new(1));
        let w = thread::spawn({
            let m = Arc::clone(&m);
            move || worker(&m, 1)
        });
        let c = thread::spawn({
            let m = Arc::clone(&m);
            move || collector(&m, WatermarkGate::new(0, 1 << 16), None)
        });
        // Only one 8-bit batch will ever arrive: the 16-bit request
        // must fail fast once the engine drains, on every schedule.
        let out = take_bits(&m, 2 * BATCH);
        assert!(out.is_err(), "a 16-bit take cannot be served from 8 bits");
        w.join().expect("worker thread");
        c.join().expect("collector thread");
        assert_eq!(m.in_flight.outstanding(), 0);
    });
}

/// Watermark backpressure: with `high` = one batch, a batch is admitted
/// only once the pool has drained to `low`, so the pool never exceeds
/// one batch — and the collector still makes progress (no schedule
/// deadlocks between the gate and the consuming client).
#[test]
fn watermark_gate_bounds_the_pool_without_wedging() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(Model::new(1));
        let w = thread::spawn({
            let m = Arc::clone(&m);
            move || worker(&m, 2)
        });
        let c = thread::spawn({
            let m = Arc::clone(&m);
            move || collector(&m, WatermarkGate::new(0, BATCH as usize), Some(BATCH))
        });
        take_bits(&m, BATCH).expect("first batch");
        take_bits(&m, BATCH).expect("second batch");
        halt(&m);
        w.join().expect("worker thread");
        c.join().expect("collector thread");
        assert_eq!(m.served.get(), 2 * BATCH);
        assert_eq!(m.harvested.get(), 2 * BATCH);
        assert_eq!(*m.pool.lock().expect("model lock"), 0);
        assert_eq!(m.in_flight.outstanding(), 0);
    });
}

/// A request larger than the high watermark must still be served.
/// Without the demand bypass this wedges on every schedule: the gate
/// stops the pool at `high` (one batch here), only reopening at `low`,
/// while the client holds out for two batches — client and collector
/// then wait on each other forever. This reproduces a liveness bug
/// observed in the real engine (a `take_bytes` of the full pool
/// capacity hung once harvest batches came in under the watermark).
#[test]
fn oversized_request_is_served_via_demand_bypass() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(Model::new(1));
        let w = thread::spawn({
            let m = Arc::clone(&m);
            move || worker(&m, 2)
        });
        let c = thread::spawn({
            let m = Arc::clone(&m);
            // The gate closes after one batch; the client wants two.
            move || collector(&m, WatermarkGate::new(0, BATCH as usize), None)
        });
        take_bits(&m, 2 * BATCH).expect("demand bypass serves the oversized request");
        halt(&m);
        w.join().expect("worker thread");
        c.join().expect("collector thread");
        assert_eq!(m.served.get(), 2 * BATCH);
        assert_eq!(m.demand.outstanding(), 0, "demand ledger must drain");
        assert_eq!(m.in_flight.outstanding(), 0);
    });
}

/// Regression model for the exit-path lock barrier. Without the
/// barrier, `halt()`'s wakeup can land in the window between a
/// client's shutdown-flag check and its park — the client holds the
/// pool mutex across that window, but `notify_all` does not need the
/// mutex, so the notify finds no parked waiter and is lost. In the
/// real engine the `POLL`-bounded wait papers over the loss as a 20 ms
/// stall; under the model (no timeouts) it is a deadlock the checker
/// must report.
#[test]
fn halt_without_the_lock_barrier_loses_the_wakeup() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loomlite::model(|| {
            let m = Arc::new(Model::new(0));
            let client = thread::spawn({
                let m = Arc::clone(&m);
                move || {
                    let _ = take_bits(&m, BATCH);
                }
            });
            // BUG under test: `halt()` without the pool-lock barrier.
            m.shutdown.raise();
            m.bits_available.notify_all();
            client.join().expect("client thread");
        });
    }));
    let message = result
        .expect_err("the barrier-free halt must fail the model check")
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("deadlock"),
        "expected a deadlock report, got: {message}"
    );
}
