//! Model checks for the harvesting engine's cross-thread protocols.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p drange-core --test
//! loom_engine`. The engine runs on `parking_lot` primitives that the
//! model checker cannot instrument, so these tests re-state the
//! protocols of `src/engine.rs` and `src/channel.rs` — worker publish
//! through the notification-driven [`drange_core::channel`] hand-off,
//! collector watermark gate, client wait, shutdown handshake — line
//! for line over the *real* [`drange_core::sync`] types (which switch
//! to `loomlite` shims under `--cfg loom`) and `loomlite`'s own
//! Mutex/Condvar. Every blocking wait in the engine is a plain,
//! untimed condvar wait, and the modeled waits never time out either:
//! a lost wakeup or a missing notify on an exit path is a hard
//! deadlock here, exactly as it would be in production.
//!
//! The model and `src/engine.rs`/`src/channel.rs` must be kept in sync
//! by hand; each model function cites the code it mirrors.

#![cfg(loom)]

use std::collections::VecDeque;
use std::panic::{catch_unwind, AssertUnwindSafe};

use drange_core::bits::{BitBlock, BitQueue};
use drange_core::sync::{BitLedger, CounterCell, Flag, LiveCount, WatermarkGate};
use loomlite::sync::{Arc, Condvar, Mutex};
use loomlite::{thread, Builder};

/// Bits per harvested batch in the models.
const BATCH: u64 = 8;
/// Modeled worker→collector channel capacity, in batches.
const CHANNEL_CAP: usize = 1;

/// Mirrors `channel::ChannelState`: the queue plus the sender
/// population and closed flag, all behind one lock so every transition
/// a peer waits on is mutated under it.
struct ChannelState {
    queue: VecDeque<u64>,
    senders: usize,
    closed: bool,
}

/// The engine's `Shared` state, reduced to what the protocols touch:
/// the pool is a bit count, the worker→collector hand-off is the
/// [`drange_core::channel::BatchChannel`] protocol restated over the
/// model-checked primitives.
struct Model {
    channel: Mutex<ChannelState>,
    /// Worker-side: space freed in the channel, or close
    /// (`BatchChannel::space`).
    channel_space: Condvar,
    /// Collector-side: data available, sender retirement, or close
    /// (`BatchChannel::data`).
    channel_data: Condvar,
    pool: Mutex<u64>,
    bits_available: Condvar,
    space_available: Condvar,
    shutdown: Flag,
    live: LiveCount,
    collector_done: Flag,
    in_flight: BitLedger,
    /// Bits wanted by blocked clients; non-zero demand bypasses the
    /// watermark gate (mirrors `Shared::demand_bits`).
    demand: BitLedger,
    harvested: CounterCell,
    discarded: CounterCell,
    served: CounterCell,
}

impl Model {
    fn new(workers: usize) -> Self {
        Model {
            channel: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                senders: workers,
                closed: false,
            }),
            channel_space: Condvar::new(),
            channel_data: Condvar::new(),
            pool: Mutex::new(0),
            bits_available: Condvar::new(),
            space_available: Condvar::new(),
            shutdown: Flag::new(),
            live: LiveCount::new(workers),
            collector_done: Flag::new(),
            in_flight: BitLedger::new(),
            demand: BitLedger::new(),
            harvested: CounterCell::new(),
            discarded: CounterCell::new(),
            served: CounterCell::new(),
        }
    }
}

/// Mirrors `BatchChannel::send`: block on space, fail fast (returning
/// the batch) once the channel closes.
fn ch_send(m: &Model, batch: u64) -> Result<(), u64> {
    let mut ch = m.channel.lock().expect("model lock");
    loop {
        if ch.closed {
            return Err(batch);
        }
        if ch.queue.len() < CHANNEL_CAP {
            ch.queue.push_back(batch);
            drop(ch);
            m.channel_data.notify_one();
            return Ok(());
        }
        ch = m.channel_space.wait(ch).expect("model wait");
    }
}

/// Mirrors `BatchChannel::recv`: drain queued batches (even after
/// close), end the stream only when every sender has retired.
fn ch_recv(m: &Model) -> Option<u64> {
    let mut ch = m.channel.lock().expect("model lock");
    loop {
        if let Some(b) = ch.queue.pop_front() {
            drop(ch);
            m.channel_space.notify_one();
            return Some(b);
        }
        if ch.senders == 0 {
            return None;
        }
        ch = m.channel_data.wait(ch).expect("model wait");
    }
}

/// Mirrors `BatchChannel::retire_sender`: the count drops under the
/// channel lock, so the end-of-stream notify cannot land in the
/// collector's check-to-park window.
fn ch_retire(m: &Model) {
    let mut ch = m.channel.lock().expect("model lock");
    ch.senders = ch.senders.saturating_sub(1);
    let last = ch.senders == 0;
    drop(ch);
    if last {
        m.channel_data.notify_all();
    }
}

/// Mirrors `BatchChannel::close`: mark closed under the lock, then
/// wake both sides.
fn ch_close(m: &Model) {
    let mut ch = m.channel.lock().expect("model lock");
    ch.closed = true;
    drop(ch);
    m.channel_space.notify_all();
    m.channel_data.notify_all();
}

/// Mirrors `worker_run` + `worker_loop`: harvest, publish into the
/// bounded channel, account undeliverable batches as discarded, retire
/// with the lock barrier, and wake any pool waiters.
fn worker(m: &Model, batches: usize) {
    for _ in 0..batches {
        if m.shutdown.is_raised() {
            break;
        }
        m.harvested.add(BATCH);
        m.in_flight.publish(BATCH);
        if let Err(batch) = ch_send(m, BATCH) {
            // The channel closed before space opened up: the batch is
            // undeliverable; account it so no bits go missing
            // (mirrors the `channel.send` error arm of `worker_run`).
            m.in_flight.retire(batch);
            m.discarded.add(batch);
            break;
        }
    }
    m.live.retire();
    ch_retire(m);
    drop(m.pool.lock().expect("model lock"));
    m.bits_available.notify_all();
    m.space_available.notify_all();
}

/// Mirrors `collector_loop`: hysteresis-gate on the pool (bypassed
/// during shutdown), drain the channel into the pool, exit at the end
/// of the stream, raise `collector_done` behind the lock barrier.
///
/// `pool_bound`: when set, asserts the pool never exceeds it right
/// after a batch lands (the backpressure property).
fn collector(m: &Model, mut gate: WatermarkGate, pool_bound: Option<u64>) {
    loop {
        if !m.shutdown.is_raised() {
            let mut pool = m.pool.lock().expect("model lock");
            while !gate.admit(*pool as usize)
                && *pool >= m.demand.outstanding()
                && !m.shutdown.is_raised()
            {
                pool = m.space_available.wait(pool).expect("model wait");
            }
        }
        let Some(n) = ch_recv(m) else { break };
        let mut pool = m.pool.lock().expect("model lock");
        *pool += n;
        if let Some(bound) = pool_bound {
            assert!(
                *pool <= bound,
                "pool {} exceeds the backpressure bound {bound}",
                *pool
            );
        }
        drop(pool);
        m.in_flight.retire(n);
        m.bits_available.notify_all();
    }
    m.collector_done.raise();
    drop(m.pool.lock().expect("model lock"));
    m.bits_available.notify_all();
}

/// Mirrors `take_bits_inner`: serve from the pool or wait, failing fast
/// once the engine stops.
fn take_bits(m: &Model, bits: u64) -> Result<(), &'static str> {
    let mut pool = m.pool.lock().expect("model lock");
    let mut waiting = false;
    loop {
        if *pool >= bits {
            *pool -= bits;
            drop(pool);
            if waiting {
                m.demand.retire(bits);
            }
            m.served.add(bits);
            m.space_available.notify_all();
            return Ok(());
        }
        let workers_gone = m.live.all_retired() && m.collector_done.is_raised();
        if m.shutdown.is_raised() || workers_gone {
            drop(pool);
            if waiting {
                m.demand.retire(bits);
            }
            return Err("engine stopped before the request could be served");
        }
        if !waiting {
            waiting = true;
            // Published under the pool mutex, which doubles as the
            // lock barrier against the collector's gate check.
            m.demand.publish(bits);
            m.space_available.notify_all();
        }
        pool = m.bits_available.wait(pool).expect("model wait");
    }
}

/// Mirrors `HarvestEngine::halt`: raise the flag, close the channel,
/// lock barrier, wake everything.
fn halt(m: &Model) {
    m.shutdown.raise();
    ch_close(m);
    drop(m.pool.lock().expect("model lock"));
    m.bits_available.notify_all();
    m.space_available.notify_all();
}

/// The graceful-shutdown handshake conserves every bit under every
/// schedule: shutdown can land before, between, or after the worker's
/// two batches, the collector drains whatever was published (the gate
/// is bypassed during shutdown), and after both joins the ledger is
/// empty and *harvested = queued + served + discarded* holds exactly.
#[test]
fn graceful_shutdown_conserves_every_bit() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(Model::new(1));
        let w = thread::spawn({
            let m = Arc::clone(&m);
            move || worker(&m, 2)
        });
        let c = thread::spawn({
            let m = Arc::clone(&m);
            // high == one batch: the gate closes after the first batch
            // lands, so the second drains only via the shutdown bypass.
            move || collector(&m, WatermarkGate::new(0, BATCH as usize), None)
        });
        halt(&m);
        w.join().expect("worker thread");
        c.join().expect("collector thread");
        assert!(m.collector_done.is_raised());
        assert!(m.live.all_retired());
        assert_eq!(
            m.in_flight.outstanding(),
            0,
            "shutdown leaves bits in flight"
        );
        let queued = *m.pool.lock().expect("model lock");
        assert_eq!(
            m.harvested.get(),
            queued + m.served.get() + m.discarded.get(),
            "bit conservation violated"
        );
    });
}

/// A client blocked on an under-filled pool must be woken — and error
/// out instead of deadlocking — when the last worker retires and the
/// collector drains out. Exercises the retire/collector-done exit
/// notifications: drop either `notify_all` (or its lock barrier) in
/// `src/engine.rs` and this model deadlocks.
#[test]
fn client_outlives_worker_retirement() {
    // Three threads exchanging through two mutexes is too many
    // interleavings for exhaustive search; two preemptions cover every
    // schedule where one exit-path notify lands inside another
    // thread's check-to-park window.
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(Model::new(1));
        let w = thread::spawn({
            let m = Arc::clone(&m);
            move || worker(&m, 1)
        });
        let c = thread::spawn({
            let m = Arc::clone(&m);
            move || collector(&m, WatermarkGate::new(0, 1 << 16), None)
        });
        // Only one 8-bit batch will ever arrive: the 16-bit request
        // must fail fast once the engine drains, on every schedule.
        let out = take_bits(&m, 2 * BATCH);
        assert!(out.is_err(), "a 16-bit take cannot be served from 8 bits");
        w.join().expect("worker thread");
        c.join().expect("collector thread");
        assert_eq!(m.in_flight.outstanding(), 0);
    });
}

/// Watermark backpressure: with `high` = one batch, a batch is admitted
/// only once the pool has drained to `low`, so the pool never exceeds
/// one batch — and the collector still makes progress (no schedule
/// deadlocks between the gate and the consuming client).
#[test]
fn watermark_gate_bounds_the_pool_without_wedging() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(Model::new(1));
        let w = thread::spawn({
            let m = Arc::clone(&m);
            move || worker(&m, 2)
        });
        let c = thread::spawn({
            let m = Arc::clone(&m);
            move || collector(&m, WatermarkGate::new(0, BATCH as usize), Some(BATCH))
        });
        take_bits(&m, BATCH).expect("first batch");
        take_bits(&m, BATCH).expect("second batch");
        halt(&m);
        w.join().expect("worker thread");
        c.join().expect("collector thread");
        assert_eq!(m.served.get(), 2 * BATCH);
        assert_eq!(m.harvested.get(), 2 * BATCH);
        assert_eq!(*m.pool.lock().expect("model lock"), 0);
        assert_eq!(m.in_flight.outstanding(), 0);
    });
}

/// A request larger than the high watermark must still be served.
/// Without the demand bypass this wedges on every schedule: the gate
/// stops the pool at `high` (one batch here), only reopening at `low`,
/// while the client holds out for two batches — client and collector
/// then wait on each other forever. This reproduces a liveness bug
/// observed in the real engine (a `take_bytes` of the full pool
/// capacity hung once harvest batches came in under the watermark).
#[test]
fn oversized_request_is_served_via_demand_bypass() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(Model::new(1));
        let w = thread::spawn({
            let m = Arc::clone(&m);
            move || worker(&m, 2)
        });
        let c = thread::spawn({
            let m = Arc::clone(&m);
            // The gate closes after one batch; the client wants two.
            move || collector(&m, WatermarkGate::new(0, BATCH as usize), None)
        });
        take_bits(&m, 2 * BATCH).expect("demand bypass serves the oversized request");
        halt(&m);
        w.join().expect("worker thread");
        c.join().expect("collector thread");
        assert_eq!(m.served.get(), 2 * BATCH);
        assert_eq!(m.demand.outstanding(), 0, "demand ledger must drain");
        assert_eq!(m.in_flight.outstanding(), 0);
    });
}

/// Regression model for the exit-path lock barrier. Without the
/// barrier, `halt()`'s wakeup can land in the window between a
/// client's shutdown-flag check and its park — the client holds the
/// pool mutex across that window, but `notify_all` does not need the
/// mutex, so the notify finds no parked waiter and is lost. In the
/// real engine the `POLL`-bounded wait papers over the loss as a 20 ms
/// stall; under the model (no timeouts) it is a deadlock the checker
/// must report.
/// Shutdown with a sender blocked on a full channel: `close` must fail
/// the blocked send (the worker accounts the batch as discarded), and
/// the delivered batch must stay receivable after close — draining it
/// keeps *harvested = queued + served + discarded* exact. No collector
/// runs concurrently, so the blocked sender can only be freed by the
/// close notify itself.
#[test]
fn close_fails_blocked_senders_and_drains_delivered_batches() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(Model::new(1));
        // Two batches against a capacity-1 channel with no consumer:
        // unless shutdown wins the race outright, the second send
        // parks and only `ch_close`'s notify can free it.
        let w = thread::spawn({
            let m = Arc::clone(&m);
            move || worker(&m, 2)
        });
        halt(&m);
        w.join().expect("worker thread");
        // Whatever the schedule, the stream has ended; drain what was
        // delivered (recv keeps working after close) and balance the
        // ledger.
        let mut queued = 0;
        while let Some(n) = ch_recv(&m) {
            queued += n;
            m.in_flight.retire(n);
        }
        assert_eq!(m.in_flight.outstanding(), 0, "bits left in flight");
        assert_eq!(
            m.harvested.get(),
            queued + m.discarded.get(),
            "bit conservation violated across close"
        );
    });
}

/// Regression model for the close protocol. `BatchChannel::close` must
/// notify `space` after marking the channel closed: a worker parked on
/// a full channel has no other wakeup source once the consumer stops
/// draining. Skip that notify and the worker sleeps through shutdown
/// forever — the checker reports the schedule as a deadlock.
#[test]
fn close_without_the_sender_notify_strands_a_blocked_worker() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loomlite::model(|| {
            let m = Arc::new(Model::new(1));
            let w = thread::spawn({
                let m = Arc::clone(&m);
                move || worker(&m, 2)
            });
            // BUG under test: close marks the state under the lock but
            // skips the sender-side notify (the receiver-side one is
            // kept, to pin the failure on `space` specifically).
            m.shutdown.raise();
            {
                let mut ch = m.channel.lock().expect("model lock");
                ch.closed = true;
            }
            m.channel_data.notify_all();
            w.join().expect("worker thread");
        });
    }));
    let message = result
        .expect_err("the notify-free close must fail the model check")
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("deadlock"),
        "expected a deadlock report, got: {message}"
    );
}

// ---------------------------------------------------------------------
// Sharded hand-off: `channel::ShardedChannel` + `BitQueue` bulk
// publication. These models restate the channel-affine protocol the
// engine now runs — one single-sender shard per worker, a doorbell
// sequence the collector parks on — and push *real* `BitBlock`s into a
// *real* `BitQueue` pool (plain data, so the model-checked mutex can
// guard the genuine `push_words` splice, not a bit-count stand-in).
// ---------------------------------------------------------------------

/// One shard of the sharded model: mirrors `ShardedChannel`'s
/// per-producer `BatchChannel`, carrying real bit blocks.
struct ShardState {
    queue: VecDeque<BitBlock>,
    senders: usize,
    closed: bool,
}

/// Mirrors `channel::ShardedChannel` + the engine state the sharded
/// protocol touches. The pool is a real [`BitQueue`]: the collector's
/// `push_block` goes through the wait-free bulk `push_words` splice,
/// so the model checks the actual publication code under every
/// schedule, including unaligned splice offsets (the shard payloads
/// have non-multiple-of-64 lengths).
struct ShardedModel {
    shards: Vec<Mutex<ShardState>>,
    /// Per-shard space condvar (`BatchChannel::space`): the shard's
    /// single sender parks here when the shard is full.
    shard_space: Vec<Condvar>,
    /// Doorbell sequence (`ShardedChannel::doorbell`): bumped under
    /// this lock on every consumer-visible transition.
    doorbell: Mutex<u64>,
    /// Signaled after every doorbell bump (`ShardedChannel::bell_rung`).
    bell_rung: Condvar,
    pool: Mutex<BitQueue>,
    in_flight: BitLedger,
    harvested: CounterCell,
    discarded: CounterCell,
    /// Population count of every bit successfully delivered — lets the
    /// end-state assert conservation of bit *values* through the bulk
    /// splice, not just of counts.
    ones_delivered: CounterCell,
}

/// Modeled per-shard capacity, in batches.
const SHARD_CAP: usize = 1;

impl ShardedModel {
    fn new(workers: usize) -> Self {
        ShardedModel {
            shards: (0..workers)
                .map(|_| {
                    Mutex::new(ShardState {
                        queue: VecDeque::new(),
                        senders: 1,
                        closed: false,
                    })
                })
                .collect(),
            shard_space: (0..workers).map(|_| Condvar::new()).collect(),
            doorbell: Mutex::new(0),
            bell_rung: Condvar::new(),
            pool: Mutex::new(BitQueue::new()),
            in_flight: BitLedger::new(),
            harvested: CounterCell::new(),
            discarded: CounterCell::new(),
            ones_delivered: CounterCell::new(),
        }
    }
}

/// Mirrors `ShardedChannel::ring`: bump the sequence under the
/// doorbell lock, then wake the collector.
fn sh_ring(m: &ShardedModel) {
    let mut seq = m.doorbell.lock().expect("model lock");
    *seq = seq.wrapping_add(1);
    drop(seq);
    m.bell_rung.notify_all();
}

/// Mirrors `ShardedChannel::send`: the shard's `BatchChannel::send`
/// followed by the doorbell ring on success.
fn sh_send(m: &ShardedModel, shard: usize, batch: BitBlock) -> Result<(), BitBlock> {
    let mut st = m.shards[shard].lock().expect("model lock");
    loop {
        if st.closed {
            return Err(batch);
        }
        if st.queue.len() < SHARD_CAP {
            st.queue.push_back(batch);
            drop(st);
            sh_ring(m);
            return Ok(());
        }
        st = m.shard_space[shard].wait(st).expect("model wait");
    }
}

/// Mirrors `ShardedChannel::retire_sender`: shard retirement plus the
/// doorbell ring that lets a parked collector observe it.
fn sh_retire(m: &ShardedModel, shard: usize) {
    let mut st = m.shards[shard].lock().expect("model lock");
    st.senders = st.senders.saturating_sub(1);
    drop(st);
    sh_ring(m);
}

/// Mirrors `ShardedChannel::close`: close every shard under its own
/// lock (waking its blocked sender), then ring the doorbell.
fn sh_close(m: &ShardedModel) {
    for (shard, space) in m.shards.iter().zip(&m.shard_space) {
        let mut st = shard.lock().expect("model lock");
        st.closed = true;
        drop(st);
        space.notify_all();
    }
    sh_ring(m);
}

/// One shard's `BatchChannel::try_recv`: `Ok(Some)` = batch,
/// `Ok(None)` = empty-but-live, `Err(())` = disconnected.
fn sh_try_recv(m: &ShardedModel, shard: usize) -> Result<Option<BitBlock>, ()> {
    let mut st = m.shards[shard].lock().expect("model lock");
    if let Some(batch) = st.queue.pop_front() {
        drop(st);
        m.shard_space[shard].notify_one();
        return Ok(Some(batch));
    }
    if st.senders == 0 {
        Err(())
    } else {
        Ok(None)
    }
}

/// Mirrors `ShardedChannel::recv_any`: snapshot the doorbell *before*
/// the scan, round-robin the shards with non-blocking drains, park
/// only while the sequence still equals the snapshot.
fn sh_recv_any(m: &ShardedModel, cursor: &mut usize) -> Option<BitBlock> {
    let n = m.shards.len();
    loop {
        let snapshot = *m.doorbell.lock().expect("model lock");
        let mut live = false;
        for k in 0..n {
            let i = (*cursor + k) % n;
            match sh_try_recv(m, i) {
                Ok(Some(batch)) => {
                    *cursor = (i + 1) % n;
                    return Some(batch);
                }
                Ok(None) => live = true,
                Err(()) => {}
            }
        }
        if !live {
            return None;
        }
        let mut seq = m.doorbell.lock().expect("model lock");
        while *seq == snapshot {
            seq = m.bell_rung.wait(seq).expect("model wait");
        }
    }
}

/// Mirrors the sharded `worker_loop`/`worker_run`: publish `payload`
/// into this worker's own shard, account an undeliverable batch as
/// discarded, retire the shard.
fn sharded_worker(m: &ShardedModel, shard: usize, payload: &[bool]) {
    let batch = BitBlock::from_bools(payload);
    m.harvested.add(batch.len() as u64);
    m.in_flight.publish(batch.len() as u64);
    match sh_send(m, shard, batch) {
        Ok(()) => {}
        Err(batch) => {
            m.in_flight.retire(batch.len() as u64);
            m.discarded.add(batch.len() as u64);
        }
    }
    sh_retire(m, shard);
}

/// Mirrors the sharded `collector_loop` (gate elided — the watermark
/// protocol is covered by the single-channel models above): drain via
/// `recv_any` into the real `BitQueue` through the bulk `push_block`
/// splice.
fn sharded_collector(m: &ShardedModel) {
    let mut cursor = 0;
    while let Some(batch) = sh_recv_any(m, &mut cursor) {
        let n = batch.len() as u64;
        let ones = batch.iter().filter(|&b| b).count() as u64;
        let mut pool = m.pool.lock().expect("model lock");
        pool.push_block(&batch);
        drop(pool);
        m.in_flight.retire(n);
        m.ones_delivered.add(ones);
    }
}

/// The sharded hand-off conserves every bit — by *value*, through the
/// real `BitQueue::push_words` splice — under every schedule: two
/// workers publish odd-length payloads (so the second splice lands at
/// an unaligned bit offset in whichever order the collector drains
/// them), the collector multiplexes the shards behind the doorbell,
/// and after the joins the pool holds exactly the delivered bits.
#[test]
fn sharded_doorbell_conserves_bit_values_through_bitqueue() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(ShardedModel::new(2));
        // 13 and 9 bits: both splices exercise the shifted (non-word-
        // aligned) path of `push_words`, in either drain order.
        let w0 = thread::spawn({
            let m = Arc::clone(&m);
            move || {
                sharded_worker(
                    &m,
                    0,
                    &[
                        true, false, true, true, false, false, true, false, true, true, true,
                        false, true,
                    ],
                )
            }
        });
        let w1 = thread::spawn({
            let m = Arc::clone(&m);
            move || {
                sharded_worker(
                    &m,
                    1,
                    &[false, true, true, false, true, false, false, true, true],
                )
            }
        });
        let c = thread::spawn({
            let m = Arc::clone(&m);
            move || sharded_collector(&m)
        });
        w0.join().expect("worker 0");
        w1.join().expect("worker 1");
        c.join().expect("collector");
        assert_eq!(m.in_flight.outstanding(), 0, "bits left in flight");
        assert_eq!(m.discarded.get(), 0, "nothing closed this run");
        let mut pool = m.pool.lock().expect("model lock");
        let pooled = pool.len();
        assert_eq!(pooled as u64, m.harvested.get(), "13 + 9 bits pooled");
        let drained = pool.pop_block(pooled);
        let ones = drained.iter().filter(|&b| b).count() as u64;
        assert_eq!(
            ones,
            m.ones_delivered.get(),
            "bulk splice must conserve bit values, not just counts"
        );
        assert_eq!(ones, 8 + 5, "population count of both payloads");
    });
}

/// Shutdown against the sharded hand-off: close lands before, between,
/// or after the publishes; a worker blocked on its full shard fails
/// fast and accounts the batch as discarded; delivered batches drain
/// after close. Conservation (harvested = pooled + discarded) must
/// hold on every schedule.
#[test]
fn sharded_close_conserves_bits_under_shutdown() {
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let m = Arc::new(ShardedModel::new(1));
        // Two batches against a capacity-1 shard with no collector:
        // unless close wins outright, the second send parks on the
        // shard's space condvar and only `sh_close`'s per-shard notify
        // can free it.
        let w = thread::spawn({
            let m = Arc::clone(&m);
            move || {
                sharded_worker(&m, 0, &[true, true, false]);
                // A second single-batch pass through the same shard
                // (sharded_worker retires once, so model the second
                // batch inline).
                let batch = BitBlock::from_bools(&[false, true]);
                m.harvested.add(batch.len() as u64);
                m.in_flight.publish(batch.len() as u64);
                if let Err(batch) = sh_send(&m, 0, batch) {
                    m.in_flight.retire(batch.len() as u64);
                    m.discarded.add(batch.len() as u64);
                }
            }
        });
        sh_close(&m);
        w.join().expect("worker thread");
        // Drain whatever was delivered (try_recv keeps working after
        // close) and balance the ledger.
        let mut pooled = 0u64;
        while let Ok(Some(batch)) = sh_try_recv(&m, 0) {
            pooled += batch.len() as u64;
            m.in_flight.retire(batch.len() as u64);
        }
        assert_eq!(m.in_flight.outstanding(), 0, "bits left in flight");
        assert_eq!(
            m.harvested.get(),
            pooled + m.discarded.get(),
            "bit conservation violated across sharded close"
        );
    });
}

/// Pins the doorbell ordering: `recv_any` must snapshot the sequence
/// *before* scanning the shards. The buggy variant modeled here
/// snapshots after the scan, so a ring that lands between the (empty)
/// scan and the snapshot is folded into the snapshot — the collector
/// parks with the batch already queued and nobody left to ring: a
/// lost wakeup the checker must report as a deadlock.
#[test]
fn recv_any_snapshot_after_the_scan_loses_the_ring() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loomlite::model(|| {
            let m = Arc::new(ShardedModel::new(1));
            let w = thread::spawn({
                let m = Arc::clone(&m);
                // Send only — no retire, so the collector's only exit
                // is receiving the batch (pinning the failure on the
                // doorbell, not on end-of-stream detection).
                move || {
                    let _ = sh_send(&m, 0, BitBlock::from_bools(&[true]));
                }
            });
            // BUG under test: scan first, snapshot after.
            loop {
                if let Ok(Some(_)) = sh_try_recv(&m, 0) {
                    break;
                }
                let snapshot = *m.doorbell.lock().expect("model lock");
                let mut seq = m.doorbell.lock().expect("model lock");
                while *seq == snapshot {
                    seq = m.bell_rung.wait(seq).expect("model wait");
                }
            }
            w.join().expect("worker thread");
        });
    }));
    let message = result
        .expect_err("the snapshot-after-scan recv must fail the model check")
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("deadlock"),
        "expected a deadlock report, got: {message}"
    );
}

#[test]
fn halt_without_the_lock_barrier_loses_the_wakeup() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loomlite::model(|| {
            let m = Arc::new(Model::new(0));
            let client = thread::spawn({
                let m = Arc::clone(&m);
                move || {
                    let _ = take_bits(&m, BATCH);
                }
            });
            // BUG under test: `halt()` without the pool-lock barrier.
            m.shutdown.raise();
            m.bits_available.notify_all();
            client.join().expect("client thread");
        });
    }));
    let message = result
        .expect_err("the barrier-free halt must fail the model check")
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("deadlock"),
        "expected a deadlock report, got: {message}"
    );
}
