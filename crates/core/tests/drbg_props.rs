//! Property-based tests (proptest) of the conditioning tier's policy
//! invariants: however generates, prediction-resistant generates,
//! health trips, and pool starvation interleave, the farm must (a)
//! credit entropy **only** for health-screened bits actually drawn
//! from the pool, (b) refuse to reseed across an interval that saw an
//! RCT/APT trip while never refusing to *serve*, and (c) force a pool
//! draw on every successful prediction-resistant generate.
//!
//! The tests run a reference model of the reseed policy next to the
//! real [`DrbgFarm`] (one shard, so the interleave is sequential) and
//! require their observable counters to agree exactly.

use std::cell::Cell;
use std::time::Duration;

use drange_core::drbg::{DrbgConfig, DrbgFarm, SeedSource};
use drange_core::telemetry::Tracer;
use drange_core::{DrangeError, Result, TripCounts};
use proptest::prelude::*;

/// One step of the scripted client/environment interleave.
#[derive(Debug, Clone)]
enum Op {
    /// A fast generate of `1..=64` bytes.
    Gen(usize),
    /// A prediction-resistant generate of `1..=64` bytes.
    GenPr(usize),
    /// A zero-byte generate (must be a complete no-op).
    GenZero,
    /// The health monitors trip `1..=3` more times.
    Trip(u64),
    /// Toggle pool starvation (draws return `Ok(None)` while on).
    SetStarved(bool),
}

fn op_strategy() -> impl Strategy<Value = Op> {
    prop_oneof![
        4 => (1usize..65).prop_map(Op::Gen),
        2 => (1usize..65).prop_map(Op::GenPr),
        1 => Just(Op::GenZero),
        2 => (1u64..4).prop_map(Op::Trip),
        1 => any::<bool>().prop_map(Op::SetStarved),
    ]
}

/// A deterministic pool stand-in with scriptable trips and starvation.
struct ScriptedPool {
    draws: Cell<u64>,
    trips: Cell<u64>,
    starved: Cell<bool>,
}

impl ScriptedPool {
    fn new() -> Self {
        ScriptedPool {
            draws: Cell::new(0),
            trips: Cell::new(0),
            starved: Cell::new(false),
        }
    }
}

impl SeedSource for ScriptedPool {
    fn draw_seed(&self, bytes: usize, _timeout: Duration) -> Result<Option<Vec<u8>>> {
        if self.starved.get() {
            return Ok(None);
        }
        let i = self.draws.get() + 1;
        self.draws.set(i);
        Ok(Some(
            (0..bytes)
                .map(|j| (i as u8).wrapping_add(j as u8))
                .collect(),
        ))
    }

    fn trip_counts(&self) -> TripCounts {
        TripCounts {
            repetition: self.trips.get(),
            adaptive: 0,
        }
    }
}

/// The reference model of one shard's reseed policy — a direct
/// transcription of DESIGN.md §5k's decision rule, kept independent of
/// the implementation under test.
#[derive(Debug, Default)]
struct Model {
    instantiated: bool,
    since_reseed: u64,
    last_trips: Option<u64>,
    generates: u64,
    reseeds: u64,
    blocked_health: u64,
    blocked_starved: u64,
    draws: u64,
    credited_bits: u64,
    spent_bits: u64,
}

enum ModelReseed {
    Done,
    BlockedHealth,
    Starved,
}

impl Model {
    fn reseed(&mut self, trips: u64, starved: bool, seed_bits: u64) -> ModelReseed {
        if let Some(last) = self.last_trips {
            if trips != last {
                self.last_trips = Some(trips);
                self.blocked_health += 1;
                return ModelReseed::BlockedHealth;
            }
        }
        self.last_trips = Some(trips);
        if starved {
            self.blocked_starved += 1;
            return ModelReseed::Starved;
        }
        self.draws += 1;
        self.credited_bits += seed_bits;
        self.since_reseed = 0;
        self.instantiated = true;
        self.reseeds += 1;
        ModelReseed::Done
    }

    /// Models one generate; returns whether the farm must serve it.
    fn generate(
        &mut self,
        pr: bool,
        bytes: u64,
        trips: u64,
        starved: bool,
        interval: u64,
        seed_bits: u64,
    ) -> std::result::Result<(), ModelReseed> {
        let required = !self.instantiated || pr;
        if required || self.since_reseed >= interval {
            match self.reseed(trips, starved, seed_bits) {
                ModelReseed::Done => {}
                blocked if required => return Err(blocked),
                _ => {}
            }
        }
        self.generates += 1;
        self.since_reseed += 1;
        let available = self.credited_bits - self.spent_bits;
        self.spent_bits += (bytes * 8).min(available);
        Ok(())
    }
}

fn one_shard_farm(reseed_interval: u64, seed_bytes: usize) -> DrbgFarm {
    DrbgFarm::new(
        DrbgConfig {
            shards: 1,
            reseed_interval,
            seed_bytes,
            ..DrbgConfig::default()
        },
        1,
        None,
        Tracer::noop(),
    )
    .expect("valid config")
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The farm and the reference model agree on every observable
    /// counter for arbitrary interleavings, and entropy credits never
    /// exceed the health-screened bits actually drawn from the pool.
    #[test]
    fn farm_matches_the_reference_model(
        ops in proptest::collection::vec(op_strategy(), 1..40),
        interval in 1u64..5,
        seed_bytes in prop_oneof![Just(16usize), Just(32), Just(48)],
    ) {
        let farm = one_shard_farm(interval, seed_bytes);
        let pool = ScriptedPool::new();
        let mut model = Model::default();
        let seed_bits = seed_bytes as u64 * 8;

        for op in &ops {
            match op {
                Op::Trip(n) => pool.trips.set(pool.trips.get() + n),
                Op::SetStarved(on) => pool.starved.set(*on),
                Op::GenZero => {
                    prop_assert_eq!(farm.generate(&pool, 0).unwrap(), Vec::<u8>::new());
                    prop_assert_eq!(farm.generate_pr(&pool, 0).unwrap(), Vec::<u8>::new());
                }
                Op::Gen(bytes) | Op::GenPr(bytes) => {
                    let pr = matches!(op, Op::GenPr(_));
                    let expected = model.generate(
                        pr,
                        *bytes as u64,
                        pool.trips.get(),
                        pool.starved.get(),
                        interval,
                        seed_bits,
                    );
                    let got = if pr {
                        farm.generate_pr(&pool, *bytes)
                    } else {
                        farm.generate(&pool, *bytes)
                    };
                    match expected {
                        Ok(()) => {
                            let out = got.unwrap();
                            prop_assert_eq!(out.len(), *bytes, "short generate");
                        }
                        Err(ModelReseed::BlockedHealth) => {
                            prop_assert!(
                                matches!(got, Err(DrangeError::Unhealthy(_))),
                                "expected Unhealthy, got {:?}", got
                            );
                        }
                        Err(ModelReseed::Starved | ModelReseed::Done) => {
                            prop_assert!(
                                matches!(got, Err(DrangeError::Engine(_))),
                                "expected Engine (starved), got {:?}", got
                            );
                        }
                    }
                }
            }
        }

        let stats = farm.stats();
        prop_assert_eq!(stats.generates, model.generates);
        prop_assert_eq!(stats.reseeds, model.reseeds);
        prop_assert_eq!(stats.reseeds_blocked_health, model.blocked_health);
        prop_assert_eq!(stats.reseeds_blocked_starved, model.blocked_starved);
        prop_assert_eq!(stats.entropy_credited_bits, model.credited_bits);
        prop_assert_eq!(stats.entropy_spent_bits, model.spent_bits);
        // The core soundness claim: every credited bit is a
        // health-screened bit that actually left the pool.
        prop_assert_eq!(stats.entropy_credited_bits, pool.draws.get() * seed_bits);
        prop_assert!(stats.entropy_spent_bits <= stats.entropy_credited_bits);
    }

    /// While the trip counter keeps moving, no seed is ever drawn —
    /// and serving an already-instantiated shard never fails.
    #[test]
    fn reseeds_stay_blocked_while_trips_keep_moving(
        rounds in 1usize..20,
        interval in 1u64..3,
    ) {
        let farm = one_shard_farm(interval, 32);
        let pool = ScriptedPool::new();
        farm.generate(&pool, 8).unwrap();
        let draws_after_instantiation = pool.draws.get();
        for round in 0..rounds {
            pool.trips.set(pool.trips.get() + 1 + round as u64 % 2);
            let out = farm.generate(&pool, 8).unwrap();
            prop_assert_eq!(out.len(), 8, "serving must never block on health");
        }
        prop_assert_eq!(
            pool.draws.get(), draws_after_instantiation,
            "a moving trip counter must starve the reseed path of draws"
        );
    }

    /// Every successful prediction-resistant generate performs exactly
    /// one fresh pool draw, no matter the interval position.
    #[test]
    fn prediction_resistance_always_draws(
        warmup in 0usize..6,
        pr_calls in 1usize..8,
        interval in 2u64..6,
    ) {
        let farm = one_shard_farm(interval, 32);
        let pool = ScriptedPool::new();
        for _ in 0..warmup {
            farm.generate(&pool, 4).unwrap();
        }
        let before = pool.draws.get();
        for _ in 0..pr_calls {
            farm.generate_pr(&pool, 4).unwrap();
        }
        prop_assert_eq!(
            pool.draws.get() - before,
            pr_calls as u64,
            "each PR generate must draw exactly once"
        );
    }
}
