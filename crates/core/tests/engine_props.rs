//! Property-based tests (proptest) of the harvesting engine's bit
//! accounting: whatever mix of healthy and stuck channels the engine
//! runs over, and however clients interleave their requests, every
//! harvested bit must end up queued, served, or discarded — none lost,
//! none duplicated into two places.

use drange_core::{BitBlock, EngineConfig, HarvestEngine, HarvestSource};
use proptest::prelude::*;

/// Scripted harvest source: either a deterministic healthy PRNG stream
/// (splitmix64) or a stuck all-zero channel that the health monitors
/// reject.
#[derive(Debug)]
enum ScriptedSource {
    Prng { state: u64, batch: usize },
    Stuck { batch: usize },
}

impl ScriptedSource {
    fn next_bit(state: &mut u64) -> bool {
        *state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *state;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        (z ^ (z >> 31)) & 1 == 1
    }
}

impl HarvestSource for ScriptedSource {
    fn harvest_batch(&mut self) -> drange_core::Result<BitBlock> {
        match self {
            ScriptedSource::Prng { state, batch } => {
                Ok((0..*batch).map(|_| Self::next_bit(state)).collect())
            }
            ScriptedSource::Stuck { batch } => Ok((0..*batch).map(|_| false).collect()),
        }
    }
}

fn small_config() -> EngineConfig {
    EngineConfig {
        queue_capacity: 1 << 11,
        low_watermark: 1 << 7,
        high_watermark: 1 << 10,
        ..EngineConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    /// `queued + served + discarded == harvested` after a graceful
    /// shutdown, for arbitrary channel mixes and request sequences.
    #[test]
    fn accounting_always_balances(
        healthy in 1usize..4,
        stuck in 0usize..3,
        batch in 32usize..200,
        requests in proptest::collection::vec(1usize..64, 0..12),
        seed in any::<u64>(),
    ) {
        let sources: Vec<ScriptedSource> = (0..healthy)
            .map(|i| ScriptedSource::Prng { state: seed ^ i as u64, batch })
            .chain((0..stuck).map(|_| ScriptedSource::Stuck { batch }))
            .collect();
        let engine = HarvestEngine::spawn(sources, small_config()).unwrap();
        let mut served_bytes = 0usize;
        for &r in &requests {
            let bytes = engine.take_bytes(r).unwrap();
            prop_assert_eq!(bytes.len(), r);
            served_bytes += r;
        }
        let stats = engine.shutdown();
        prop_assert_eq!(stats.in_flight_bits, 0, "nothing in flight after the join");
        prop_assert_eq!(stats.served_bits, (served_bytes * 8) as u64);
        prop_assert_eq!(
            stats.harvested_bits,
            stats.queued_bits as u64 + stats.served_bits + stats.discarded_bits,
            "bit accounting must balance: {:?}", stats
        );
    }

    /// The same invariant under concurrent clients: random request
    /// sequences split across threads still account for every bit.
    #[test]
    fn accounting_balances_under_interleaving(
        requests in proptest::collection::vec(1usize..48, 2..16),
        seed in any::<u64>(),
    ) {
        let sources: Vec<ScriptedSource> = (0..2)
            .map(|i| ScriptedSource::Prng { state: seed ^ i as u64, batch: 96 })
            .collect();
        let engine = HarvestEngine::spawn(sources, small_config()).unwrap();
        let total_bytes: usize = requests.iter().sum();
        std::thread::scope(|scope| {
            let mid = requests.len() / 2;
            for half in [&requests[..mid], &requests[mid..]] {
                let engine = &engine;
                scope.spawn(move || {
                    for &r in half {
                        let bytes = engine.take_bytes(r).unwrap();
                        assert_eq!(bytes.len(), r);
                    }
                });
            }
        });
        let stats = engine.shutdown();
        prop_assert_eq!(stats.in_flight_bits, 0);
        prop_assert_eq!(stats.served_bits, (total_bytes * 8) as u64);
        prop_assert_eq!(
            stats.harvested_bits,
            stats.queued_bits as u64 + stats.served_bits + stats.discarded_bits
        );
    }
}
