//! Algorithm 2 — the D-RaNGe sampling loop and the TRNG front end.
//!
//! Selects, per bank, the two DRAM words (in distinct rows) with the
//! highest RNG-cell density, writes the high-entropy data pattern to
//! them and their neighbors, and then alternates reduced-`tRCD` reads
//! between the two rows of every bank, harvesting the RNG cells' bits
//! and restoring the original data after each read (paper Algorithm 2).
//!
//! The harvested random bit of a cell is its *failure indicator*
//! (sensed value XOR written value) — identical to the raw read value
//! for the solid-zero pattern the paper uses, and unbiased for any
//! written value.

use dram_sim::{CellAddr, DataPattern, SenseCacheStats, WordAddr};
use memctrl::MemoryController;
use rand::RngCore;

use crate::bits::{BitBlock, BitQueue};
use crate::error::{DrangeError, Result};
use crate::identify::RngCellCatalog;

/// Configuration of the sampling mechanism.
#[derive(Debug, Clone, PartialEq)]
pub struct DRangeConfig {
    /// Reduced activation latency during sampling, ns.
    pub trcd_ns: f64,
    /// Data pattern written to the sampled words and their neighbors.
    pub pattern: DataPattern,
    /// Number of banks to sample from (best-ranked first); `None`
    /// uses every bank with RNG cells.
    pub banks: Option<usize>,
    /// Banks never used for sampling (e.g. reserved for a co-resident
    /// retention TRNG, Section 8.4's combined design).
    pub exclude_banks: Vec<usize>,
    /// Size of the harvested-bit queue the controller firmware keeps
    /// (Section 6.3).
    pub queue_capacity: usize,
}

impl Default for DRangeConfig {
    fn default() -> Self {
        DRangeConfig {
            trcd_ns: 10.0,
            pattern: DataPattern::Solid0,
            banks: None,
            exclude_banks: Vec::new(),
            queue_capacity: 4096,
        }
    }
}

/// One selected DRAM word and its RNG-cell bit positions.
#[derive(Debug, Clone, PartialEq, Eq)]
struct PlannedWord {
    addr: WordAddr,
    /// Actively harvested bit positions, sorted ascending.
    bits: Vec<usize>,
    /// Bit positions benched by the cell lifecycle (quarantined cells
    /// awaiting re-characterization); excluded from harvesting but
    /// remembered so they can be resumed in place.
    suspended: Vec<usize>,
    original: u64,
}

/// Per-bank sampling plan: the two words in distinct rows.
#[derive(Debug, Clone)]
struct BankPlan {
    bank: usize,
    words: Vec<PlannedWord>, // 1 or 2 entries
}

/// One planned word flattened into exact pass order — everything the
/// hot loop needs, with the bit positions in a shared pool
/// (`PassArena::bits[bits_start..bits_end]`) so a pass touches no
/// nested allocations.
#[derive(Debug, Clone, Copy)]
struct PassWord {
    bank: usize,
    row: usize,
    col: usize,
    original: u64,
    bits_start: usize,
    bits_end: usize,
}

/// Reusable per-pass buffers: a flattened snapshot of the plan in
/// exact pass order plus the packed harvest buffer. Rebuilt only when
/// the plan changes (revision-stamped), so steady-state passes
/// allocate nothing.
#[derive(Debug, Default)]
struct PassArena {
    /// Plan revision ([`DRange::plan_rev`]) the snapshot reflects.
    rev: u64,
    built: bool,
    /// Pass-order word addresses — the device's bulk-resolve run.
    run: Vec<WordAddr>,
    /// Flattened plan snapshot in exact pass order.
    words: Vec<PassWord>,
    /// Flat bit-position pool backing the `PassWord` ranges.
    bits: Vec<u32>,
    /// Packed harvest buffer (MSB-first), reused across passes.
    buf: Vec<u64>,
    /// Valid bits in `buf`.
    buf_len: usize,
}

impl PassArena {
    fn rebuild(&mut self, plan: &[BankPlan], rev: u64) {
        self.run.clear();
        self.words.clear();
        self.bits.clear();
        for word_idx in 0..2 {
            // Phase-interleaved issue across banks maximizes bank-level
            // parallelism under tRRD/tFAW.
            for bp in plan {
                let Some(w) = bp.words.get(word_idx) else {
                    continue;
                };
                // A fully suspended word (every cell benched by the
                // lifecycle) is skipped outright — no point burning an
                // ACT/PRE cycle that harvests nothing.
                if w.bits.is_empty() {
                    continue;
                }
                let bits_start = self.bits.len();
                self.bits.extend(w.bits.iter().map(|&b| b as u32));
                self.run.push(w.addr);
                self.words.push(PassWord {
                    bank: bp.bank,
                    row: w.addr.row,
                    col: w.addr.col,
                    original: w.original,
                    bits_start,
                    bits_end: self.bits.len(),
                });
            }
        }
        self.rev = rev;
        self.built = true;
    }
}

/// Sampling statistics.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct SampleStats {
    /// Random bits harvested so far.
    pub bits: u64,
    /// Device time consumed by sampling, ps.
    pub device_time_ps: u64,
    /// Algorithm 2 core-loop iterations executed.
    pub iterations: u64,
}

impl SampleStats {
    /// Observed throughput in bits per second of device time.
    pub fn throughput_bps(&self) -> f64 {
        if self.device_time_ps == 0 {
            0.0
        } else {
            self.bits as f64 / (self.device_time_ps as f64 * 1e-12)
        }
    }
}

/// The D-RaNGe true random number generator.
///
/// Owns a memory controller and continuously harvests random bits from
/// the planned RNG-cell words. Implements [`rand::RngCore`], so it can
/// drop into any API expecting a random source.
#[derive(Debug)]
pub struct DRange {
    ctrl: MemoryController,
    config: DRangeConfig,
    plan: Vec<BankPlan>,
    /// Bumped on every plan mutation; invalidates the pass arena.
    plan_rev: u64,
    arena: PassArena,
    queue: BitQueue,
    stats: SampleStats,
    bits_per_iteration: usize,
}

impl DRange {
    /// Builds the generator: ranks banks by RNG-cell density, selects
    /// two words (distinct rows) per bank, and writes the data pattern
    /// to the selected rows (Algorithm 2 lines 2-5).
    ///
    /// # Errors
    ///
    /// Returns [`DrangeError::NoRngCells`] when the catalog has no
    /// usable words, and [`DrangeError::InvalidSpec`] for bad configs.
    pub fn new(
        mut ctrl: MemoryController,
        catalog: &RngCellCatalog,
        config: DRangeConfig,
    ) -> Result<Self> {
        if !config.trcd_ns.is_finite() || config.trcd_ns <= 0.0 {
            return Err(DrangeError::InvalidSpec("tRCD must be positive".into()));
        }
        if config.queue_capacity == 0 {
            return Err(DrangeError::InvalidSpec(
                "queue capacity must be nonzero".into(),
            ));
        }
        let geometry = ctrl.device().geometry();
        let ranked = catalog.ranked_banks(geometry.banks);
        let take = config.banks.unwrap_or(geometry.banks).min(geometry.banks);
        let mut plan: Vec<BankPlan> = Vec::new();
        let mut taken = 0usize;
        for &(bank, rate) in &ranked {
            if taken == take {
                break;
            }
            if rate == 0 || config.exclude_banks.contains(&bank) {
                continue;
            }
            let best = catalog.best_words(bank, 2);
            if best.is_empty() {
                continue;
            }
            let words = best
                .into_iter()
                .map(|(addr, bits)| {
                    let original = config.pattern.word(addr.row, addr.col, geometry.word_bits);
                    PlannedWord {
                        addr,
                        bits,
                        suspended: Vec::new(),
                        original,
                    }
                })
                .collect();
            plan.push(BankPlan { bank, words });
            // A bank only consumes one of the `take` slots once a word
            // plan was actually added for it; a bank whose best-word
            // query comes back empty must not waste a slot.
            taken += 1;
        }
        if plan.is_empty() {
            return Err(DrangeError::NoRngCells(
                "catalog provides no words with RNG cells".into(),
            ));
        }
        // Line 4: write the pattern to the chosen words and neighbors
        // (the full rows, which covers the adjacent bitlines).
        for bp in &plan {
            for w in &bp.words {
                ctrl.device_mut()
                    .fill_row(w.addr.bank, w.addr.row, config.pattern);
            }
        }
        let bits_per_iteration = plan
            .iter()
            .map(|bp| bp.words.iter().map(|w| w.bits.len()).sum::<usize>())
            .sum();
        Ok(DRange {
            ctrl,
            config,
            plan,
            plan_rev: 0,
            arena: PassArena::default(),
            queue: BitQueue::new(),
            stats: SampleStats::default(),
            bits_per_iteration,
        })
    }

    /// The sampling configuration.
    pub fn config(&self) -> &DRangeConfig {
        &self.config
    }

    /// Number of banks in the sampling plan.
    pub fn banks_used(&self) -> usize {
        self.plan.len()
    }

    /// Random bits produced per core-loop iteration (the sum over
    /// banks of each bank's TRNG data rate, Section 7.3).
    pub fn bits_per_iteration(&self) -> usize {
        self.bits_per_iteration
    }

    /// Statistics so far.
    pub fn stats(&self) -> SampleStats {
        self.stats
    }

    /// Borrow of the underlying controller.
    pub fn controller(&self) -> &MemoryController {
        &self.ctrl
    }

    /// Mutable borrow of the underlying controller, for co-resident
    /// mechanisms operating on banks excluded from the sampling plan
    /// (e.g. the combined D-RaNGe + retention TRNG of Section 8.4).
    ///
    /// Writing to the planned rows through this handle invalidates the
    /// stored-pattern assumption of the sampling plan; restrict use to
    /// excluded banks.
    pub fn controller_mut(&mut self) -> &mut MemoryController {
        &mut self.ctrl
    }

    /// Consumes the generator, returning the controller.
    pub fn into_controller(mut self) -> MemoryController {
        self.ctrl.reset_trcd();
        self.ctrl
    }

    /// The actively harvested RNG cells in exact harvest order: bit
    /// `k` of a [`DRange::harvest_block`] batch (equivalently the
    /// `k`-th bit queued by one [`DRange::sample_once`] pass) came
    /// from the `k`-th cell of this list. The cell lifecycle uses this
    /// mapping to attribute health trips to individual cells.
    pub fn active_cells(&self) -> Vec<CellAddr> {
        let mut cells = Vec::with_capacity(self.bits_per_iteration);
        for word_idx in 0..2 {
            for bp in &self.plan {
                let Some(w) = bp.words.get(word_idx) else {
                    continue;
                };
                cells.extend(w.bits.iter().map(|&b| w.addr.cell(b)));
            }
        }
        cells
    }

    /// Addresses of every planned word (active or fully suspended).
    pub fn planned_word_addrs(&self) -> Vec<WordAddr> {
        self.plan
            .iter()
            .flat_map(|bp| bp.words.iter().map(|w| w.addr))
            .collect()
    }

    fn word_mut(&mut self, addr: WordAddr) -> Option<&mut PlannedWord> {
        self.plan
            .iter_mut()
            .flat_map(|bp| bp.words.iter_mut())
            .find(|w| w.addr == addr)
    }

    fn refresh_rate(&mut self) {
        self.bits_per_iteration = self
            .plan
            .iter()
            .map(|bp| bp.words.iter().map(|w| w.bits.len()).sum::<usize>())
            .sum();
        self.plan_rev += 1;
    }

    /// Benches a cell: its bit is no longer harvested (honest reduced
    /// throughput, never a silently biased stream) but its slot in the
    /// plan is remembered for [`DRange::resume_cell`]. Returns whether
    /// the cell was actively planned.
    pub fn suspend_cell(&mut self, cell: CellAddr) -> bool {
        let Some(w) = self.word_mut(cell.word()) else {
            return false;
        };
        let Some(pos) = w.bits.iter().position(|&b| b == cell.bit) else {
            return false;
        };
        w.bits.remove(pos);
        w.suspended.push(cell.bit);
        self.refresh_rate();
        true
    }

    /// Returns a suspended cell to active harvesting (in its original
    /// sorted position within the word). Returns whether the cell was
    /// suspended.
    pub fn resume_cell(&mut self, cell: CellAddr) -> bool {
        let Some(w) = self.word_mut(cell.word()) else {
            return false;
        };
        let Some(pos) = w.suspended.iter().position(|&b| b == cell.bit) else {
            return false;
        };
        w.suspended.remove(pos);
        let at = w.bits.partition_point(|&b| b < cell.bit);
        w.bits.insert(at, cell.bit);
        self.refresh_rate();
        true
    }

    /// Permanently removes a cell (active or suspended) from the plan.
    /// A word whose last cell retires is dropped from its bank's plan
    /// (and an emptied bank from the plan entirely), freeing the slot
    /// for [`DRange::promote_word`]. Returns whether the cell was
    /// planned.
    pub fn retire_cell(&mut self, cell: CellAddr) -> bool {
        let addr = cell.word();
        let Some(w) = self.word_mut(addr) else {
            return false;
        };
        let removed = if let Some(pos) = w.bits.iter().position(|&b| b == cell.bit) {
            w.bits.remove(pos);
            true
        } else if let Some(pos) = w.suspended.iter().position(|&b| b == cell.bit) {
            w.suspended.remove(pos);
            true
        } else {
            false
        };
        if !removed {
            return false;
        }
        let emptied = w.bits.is_empty() && w.suspended.is_empty();
        if emptied {
            for bp in &mut self.plan {
                bp.words.retain(|w| w.addr != addr);
            }
            self.plan.retain(|bp| !bp.words.is_empty());
        }
        self.refresh_rate();
        true
    }

    /// Adds a spare word (typically the next-best catalog word not in
    /// the original plan) to the sampling plan, writing the configured
    /// data pattern to its row. Respects Algorithm 2's structure: at
    /// most two words per bank, in distinct rows.
    ///
    /// # Errors
    ///
    /// Returns [`DrangeError::InvalidSpec`] when the word is already
    /// planned, its bank already samples two words, its row collides
    /// with a planned word of the same bank, or `bits` is empty or out
    /// of range for the device's word width.
    pub fn promote_word(&mut self, addr: WordAddr, bits: &[usize]) -> Result<()> {
        let word_bits = self.ctrl.device().geometry().word_bits;
        let mut bits: Vec<usize> = bits.to_vec();
        bits.sort_unstable();
        bits.dedup();
        if bits.is_empty() {
            return Err(DrangeError::InvalidSpec(
                "a promoted word needs at least one RNG cell".into(),
            ));
        }
        if bits.iter().any(|&b| b >= word_bits) {
            return Err(DrangeError::InvalidSpec(format!(
                "bit positions exceed the {word_bits}-bit word width"
            )));
        }
        if self.planned_word_addrs().contains(&addr) {
            return Err(DrangeError::InvalidSpec(format!(
                "word {addr:?} is already in the sampling plan"
            )));
        }
        if let Some(bp) = self.plan.iter().find(|bp| bp.bank == addr.bank) {
            if bp.words.len() >= 2 {
                return Err(DrangeError::InvalidSpec(format!(
                    "bank {} already samples two words",
                    addr.bank
                )));
            }
            if bp.words.iter().any(|w| w.addr.row == addr.row) {
                return Err(DrangeError::InvalidSpec(format!(
                    "bank {} already samples a word in row {}",
                    addr.bank, addr.row
                )));
            }
        }
        self.ctrl
            .device_mut()
            .fill_row(addr.bank, addr.row, self.config.pattern);
        let original = self.config.pattern.word(addr.row, addr.col, word_bits);
        let word = PlannedWord {
            addr,
            bits,
            suspended: Vec::new(),
            original,
        };
        match self.plan.iter_mut().find(|bp| bp.bank == addr.bank) {
            Some(bp) => bp.words.push(word),
            None => self.plan.push(BankPlan {
                bank: addr.bank,
                words: vec![word],
            }),
        }
        self.refresh_rate();
        Ok(())
    }

    /// One iteration of the Algorithm 2 core loop (lines 7-15): for
    /// each planned bank, alternate between the two rows, inducing an
    /// activation failure on each word, harvesting the RNG-cell bits,
    /// and restoring the original value.
    ///
    /// # Errors
    ///
    /// Propagates controller errors; the `tRCD` register is reset on
    /// the error path.
    pub fn sample_once(&mut self) -> Result<usize> {
        if !self.arena.built || self.arena.rev != self.plan_rev {
            self.arena.rebuild(&self.plan, self.plan_rev);
        }
        let t0 = self.ctrl.now_ps();
        // Line 6: reduce tRCD for the sampling window.
        self.ctrl.try_set_trcd_ns(self.config.trcd_ns)?;
        // Bulk-prefetch the pass's cell resolutions (SoA lane kernel).
        // A pure acceleration hint: consumes no noise and READs
        // re-validate, so the bit stream is untouched.
        self.ctrl
            .device_mut()
            .resolve_run(&self.arena.run, self.config.trcd_ns);
        let result = sample_pass(&mut self.ctrl, &mut self.arena, &mut self.queue);
        // Line 18: restore the default tRCD.
        self.ctrl.reset_trcd();
        let harvested = result?;
        self.stats.bits += harvested as u64;
        self.stats.iterations += 1;
        self.stats.device_time_ps += self.ctrl.now_ps() - t0;
        // Respect the firmware queue bound (drop the oldest bits).
        let over = self.queue.len().saturating_sub(self.config.queue_capacity);
        if over > 0 {
            self.queue.drop_front(over);
        }
        Ok(harvested)
    }

    /// Runs one sampling pass and drains the harvest as a packed block
    /// — the engine's batch unit (worker→pool transfer copies words,
    /// not bools).
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn harvest_block(&mut self) -> Result<BitBlock> {
        let harvested = self.sample_once()?;
        Ok(self.queue.pop_block(harvested))
    }

    /// Sensing-cache effectiveness counters of the underlying device.
    pub fn sense_cache_stats(&self) -> SenseCacheStats {
        self.ctrl.device().sense_cache_stats()
    }

    /// Whether draining `n` bits at once from the queue yields the same
    /// stream as the historical bit-at-a-time drain. Bulk draining may
    /// leave up to `n − 1` bits queued before a sampling pass tops it
    /// up, so the queue bound must absorb `bits_per_iteration + n − 1`
    /// without trimming (a trim would drop bits the per-bit path, which
    /// only samples on an empty queue, would have delivered).
    fn bulk_ok(&self, n: usize) -> bool {
        self.config.queue_capacity >= n
            && self.bits_per_iteration + n - 1 <= self.config.queue_capacity
    }

    /// Harvests until at least `bits` random bits are queued
    /// (Algorithm 2's `num_bits` argument).
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn ensure_bits(&mut self, bits: usize) -> Result<()> {
        if bits > self.config.queue_capacity {
            return Err(DrangeError::InvalidSpec(format!(
                "request of {bits} bits exceeds queue capacity {}",
                self.config.queue_capacity
            )));
        }
        while self.queue.len() < bits {
            self.sample_once()?;
        }
        Ok(())
    }

    /// The next random bit.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn next_bit(&mut self) -> Result<bool> {
        if self.queue.is_empty() {
            self.sample_once()?;
        }
        self.queue
            .pop_bit()
            .ok_or_else(|| DrangeError::NoRngCells("sampling pass produced no bits".into()))
    }

    /// The next `n` random bits.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn bits(&mut self, n: usize) -> Result<Vec<bool>> {
        let mut out = Vec::with_capacity(n);
        for _ in 0..n {
            out.push(self.next_bit()?);
        }
        Ok(out)
    }

    /// The next random `u64`, drained in bulk from the packed queue
    /// when the queue bound allows (falling back to the historical
    /// bit-at-a-time path otherwise, with an identical output stream).
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn next_word(&mut self) -> Result<u64> {
        if self.bulk_ok(64) {
            self.ensure_bits(64)?;
            if let Some(w) = self.queue.pop_word() {
                return Ok(w);
            }
        }
        let mut v = 0u64;
        for _ in 0..64 {
            v = (v << 1) | u64::from(self.next_bit()?);
        }
        Ok(v)
    }

    /// Fills a byte buffer with random data, draining whole words and
    /// bytes from the packed queue when the queue bound allows.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn try_fill(&mut self, buf: &mut [u8]) -> Result<()> {
        if self.bulk_ok(64) {
            let mut chunks = buf.chunks_exact_mut(8);
            for chunk in &mut chunks {
                self.ensure_bits(64)?;
                match self.queue.pop_word() {
                    Some(w) => chunk.copy_from_slice(&w.to_be_bytes()),
                    None => {
                        return Err(DrangeError::NoRngCells(
                            "sampling pass produced no bits".into(),
                        ))
                    }
                }
            }
            for byte in chunks.into_remainder() {
                self.ensure_bits(8)?;
                match self.queue.pop_byte() {
                    Some(b) => *byte = b,
                    None => {
                        return Err(DrangeError::NoRngCells(
                            "sampling pass produced no bits".into(),
                        ))
                    }
                }
            }
            return Ok(());
        }
        for byte in buf.iter_mut() {
            let mut b = 0u8;
            for _ in 0..8 {
                b = (b << 1) | u8::from(self.next_bit()?);
            }
            *byte = b;
        }
        Ok(())
    }
}

/// One pass of Algorithm 2's core loop (lines 7-15) over the arena's
/// flattened plan snapshot. The harvest is packed into the arena's
/// reusable buffer and published to the queue as one bulk word-run —
/// the queue sees either the whole pass or (on a controller error)
/// nothing.
fn sample_pass(
    ctrl: &mut MemoryController,
    arena: &mut PassArena,
    queue: &mut BitQueue,
) -> Result<usize> {
    let PassArena {
        words,
        bits,
        buf,
        buf_len,
        ..
    } = arena;
    buf.clear();
    *buf_len = 0;
    let mut harvested = 0usize;
    for w in words.iter() {
        ctrl.act(w.bank, w.row)?;
        let got = ctrl.rd(w.bank, w.row, w.col)?;
        // Lines 9-10: harvest the RNG bits (failure indicators,
        // sensed XOR written) packed MSB-first, restore original.
        let diff = got ^ w.original;
        let word_bits = &bits[w.bits_start..w.bits_end];
        let mut frag = 0u64;
        for (k, &bit) in word_bits.iter().enumerate() {
            frag |= ((diff >> bit) & 1) << (63 - k);
        }
        // Splice the fragment into the packed pass buffer (same
        // MSB-first layout BitQueue::push_words expects).
        let n = word_bits.len();
        let off = *buf_len % 64;
        if off == 0 {
            buf.push(frag);
        } else {
            if let Some(last) = buf.last_mut() {
                *last |= frag >> off;
            }
            if n > 64 - off {
                buf.push(frag << (64 - off));
            }
        }
        *buf_len += n;
        harvested += n;
        if got != w.original {
            ctrl.wr(w.bank, w.row, w.col, w.original)?;
        }
        ctrl.pre(w.bank)?;
    }
    queue.push_words(buf, *buf_len);
    Ok(harvested)
}

impl RngCore for DRange {
    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn next_u64(&mut self) -> u64 {
        // xtask:allow(no-panic) -- RngCore's infallible signature; use try_fill_bytes to handle device errors
        self.next_word().expect("device sampling failed")
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        // xtask:allow(no-panic) -- RngCore's infallible signature; use try_fill_bytes to handle device errors
        self.try_fill(dest).expect("device sampling failed");
    }

    fn try_fill_bytes(&mut self, dest: &mut [u8]) -> std::result::Result<(), rand::Error> {
        self.try_fill(dest)
            .map_err(|e| rand::Error::new(Box::new(e)))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::{IdentifySpec, RngCellCatalog};
    use crate::profiler::{ProfileSpec, Profiler};
    use dram_sim::{DeviceConfig, Manufacturer};

    fn fresh_ctrl() -> MemoryController {
        MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(42)
                .with_noise_seed(4242),
        )
    }

    /// The profile + identification steps are deterministic for fixed
    /// seeds, so the catalog is built once and shared across tests.
    fn catalog() -> &'static RngCellCatalog {
        static CATALOG: std::sync::OnceLock<RngCellCatalog> = std::sync::OnceLock::new();
        CATALOG.get_or_init(|| {
            let mut ctrl = fresh_ctrl();
            let profile = Profiler::new(&mut ctrl)
                .run(
                    ProfileSpec {
                        banks: (0..8).collect(),
                        rows: 0..256,
                        cols: 0..16,
                        ..ProfileSpec::default()
                    }
                    .with_iterations(30),
                )
                .unwrap();
            RngCellCatalog::identify(
                &mut ctrl,
                &profile,
                IdentifySpec {
                    reads: 1000,
                    ..IdentifySpec::default()
                },
            )
            .unwrap()
        })
    }

    fn generator() -> DRange {
        DRange::new(fresh_ctrl(), catalog(), DRangeConfig::default()).unwrap()
    }

    #[test]
    fn generates_bits_with_balanced_distribution() {
        let mut g = generator();
        let bits = g.bits(4000).unwrap();
        let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        assert!((ones - 0.5).abs() < 0.05, "ones fraction {ones}");
    }

    #[test]
    fn stats_track_bits_and_time() {
        let mut g = generator();
        let _ = g.bits(512).unwrap();
        let s = g.stats();
        assert!(s.bits >= 512);
        assert!(s.device_time_ps > 0);
        assert!(s.iterations > 0);
        assert!(
            s.throughput_bps() > 1e6,
            "at least Mb/s scale: {}",
            s.throughput_bps()
        );
    }

    #[test]
    fn sampling_preserves_stored_pattern() {
        let mut g = generator();
        let _ = g.bits(256).unwrap();
        // After sampling, every planned word still stores its original
        // pattern value (the restore writes of Algorithm 2).
        for bp in g.plan.clone() {
            for w in &bp.words {
                let stored = g.ctrl.device().peek(w.addr).unwrap();
                assert_eq!(stored, w.original, "word {:?} restored", w.addr);
            }
        }
    }

    #[test]
    fn trcd_restored_after_each_batch() {
        let mut g = generator();
        let _ = g.next_word().unwrap();
        assert_eq!(g.controller().registers().trcd_ns(), 18.0);
    }

    #[test]
    fn rngcore_interface_works() {
        let mut g = generator();
        let a = g.next_u64();
        let b = g.next_u64();
        assert_ne!(a, b, "two 64-bit draws should differ (p = 2^-64)");
        let mut buf = [0u8; 16];
        g.fill_bytes(&mut buf);
        assert!(
            buf.iter().any(|&x| x != 0),
            "16 random bytes are not all zero"
        );
    }

    #[test]
    fn bank_limit_is_respected() {
        let g = DRange::new(
            fresh_ctrl(),
            catalog(),
            DRangeConfig {
                banks: Some(2),
                ..DRangeConfig::default()
            },
        )
        .unwrap();
        assert!(g.banks_used() <= 2);
    }

    /// A hand-built catalog with RNG cells only in the given banks
    /// (two words in distinct rows each), for precise slot-accounting
    /// checks on the bank-selection loop.
    fn sparse_catalog(banks: &[usize]) -> RngCellCatalog {
        use dram_sim::{Celsius, WordAddr};
        let mut words = std::collections::BTreeMap::new();
        for &bank in banks {
            words.insert(WordAddr::new(bank, 0, 0), vec![0, 1, 2]);
            words.insert(WordAddr::new(bank, 1, 0), vec![3, 4]);
        }
        RngCellCatalog::from_parts(IdentifySpec::default(), Celsius::DEFAULT, words)
    }

    #[test]
    fn bank_slots_only_consumed_by_planned_banks() {
        // Only banks 0, 3, and 5 hold RNG cells: a request for two
        // banks must yield exactly two planned banks — banks without a
        // word plan (zero rate) must not eat selection slots.
        let catalog = sparse_catalog(&[0, 3, 5]);
        let g = DRange::new(
            fresh_ctrl(),
            &catalog,
            DRangeConfig {
                banks: Some(2),
                ..DRangeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(g.banks_used(), 2);
        assert_eq!(g.bits_per_iteration(), 2 * 5);
    }

    #[test]
    fn bank_limit_above_populated_banks_uses_them_all() {
        let catalog = sparse_catalog(&[1, 6]);
        let g = DRange::new(
            fresh_ctrl(),
            &catalog,
            DRangeConfig {
                banks: Some(5),
                ..DRangeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(g.banks_used(), 2, "only populated banks can be planned");
    }

    #[test]
    fn excluded_banks_do_not_consume_slots() {
        // Bank 0 is excluded (e.g. reserved for a retention TRNG); the
        // two slots must go to the remaining populated banks.
        let catalog = sparse_catalog(&[0, 3, 5]);
        let g = DRange::new(
            fresh_ctrl(),
            &catalog,
            DRangeConfig {
                banks: Some(2),
                exclude_banks: vec![0],
                ..DRangeConfig::default()
            },
        )
        .unwrap();
        assert_eq!(g.banks_used(), 2);
        for bp in &g.plan {
            assert_ne!(bp.bank, 0, "excluded bank must not be planned");
        }
    }

    #[test]
    fn oversized_request_is_rejected() {
        let mut g = generator();
        assert!(g.ensure_bits(1_000_000).is_err());
    }

    #[test]
    fn bulk_drains_match_per_bit_stream() {
        // Same seeds: two generators produce identical harvest streams,
        // so the bulk word/byte drains must reproduce exactly what a
        // bit-at-a-time consumer sees.
        let mut bulk = generator();
        let mut serial = generator();
        for _ in 0..4 {
            let w = bulk.next_word().unwrap();
            let mut v = 0u64;
            for _ in 0..64 {
                v = (v << 1) | u64::from(serial.next_bit().unwrap());
            }
            assert_eq!(w, v);
        }
        let mut buf = [0u8; 27];
        bulk.try_fill(&mut buf).unwrap();
        let mut want = [0u8; 27];
        for byte in want.iter_mut() {
            let mut x = 0u8;
            for _ in 0..8 {
                x = (x << 1) | u8::from(serial.next_bit().unwrap());
            }
            *byte = x;
        }
        assert_eq!(buf, want);
    }

    #[test]
    fn tiny_queue_capacity_falls_back_to_per_bit_path() {
        let mut g = DRange::new(
            fresh_ctrl(),
            catalog(),
            DRangeConfig {
                queue_capacity: 16,
                ..DRangeConfig::default()
            },
        )
        .unwrap();
        assert!(!g.bulk_ok(64));
        let a = g.next_word().unwrap();
        let b = g.next_word().unwrap();
        assert_ne!(a, b, "two 64-bit draws should differ (p = 2^-64)");
        let mut buf = [0u8; 9];
        g.try_fill(&mut buf).unwrap();
    }

    #[test]
    fn harvest_block_drains_one_pass() {
        let mut g = generator();
        let block = g.harvest_block().unwrap();
        assert_eq!(block.len(), g.bits_per_iteration());
        assert_eq!(g.queue.len(), 0, "harvest drains what the pass queued");
        // A second pass, drained serially, matches a block-drained twin.
        let mut twin = generator();
        let _ = twin.harvest_block().unwrap();
        let block2 = g.harvest_block().unwrap();
        let serial = twin.bits(block2.len()).unwrap();
        assert_eq!(block2.iter().collect::<Vec<_>>(), serial);
    }

    #[test]
    fn sampler_reports_sense_cache_activity() {
        let mut g = generator();
        let _ = g.bits(256).unwrap();
        let stats = g.sense_cache_stats();
        assert!(stats.sensed_reads() > 0);
        assert!(
            stats.hit_rate() > 0.5,
            "steady-state sampling mostly hits the cache: {}",
            stats.hit_rate()
        );
    }

    #[test]
    fn active_cells_match_harvest_order() {
        let mut g = generator();
        let cells = g.active_cells();
        assert_eq!(cells.len(), g.bits_per_iteration());
        // Suspend the third harvest-order cell: the stream from a twin
        // generator with that cell still active must equal the reduced
        // stream with the third bit of every pass deleted.
        let victim = cells[2];
        let mut full = generator();
        assert!(g.suspend_cell(victim));
        assert_eq!(g.bits_per_iteration(), cells.len() - 1);
        let reduced = g.harvest_block().unwrap();
        let baseline = full.harvest_block().unwrap();
        let mut expect: Vec<bool> = baseline.iter().collect();
        expect.remove(2);
        assert_eq!(reduced.iter().collect::<Vec<_>>(), expect);
        // The cell no longer appears in the harvest-order map.
        assert!(!g.active_cells().contains(&victim));
    }

    #[test]
    fn suspend_resume_restores_exact_stream() {
        let mut g = generator();
        let mut twin = generator();
        // Pick a victim from a word with other live cells: the word is
        // still ACT/RD'd while the victim is benched, so both devices
        // see an identical command stream and stay in lockstep. (A
        // fully suspended word is skipped, which would desynchronize
        // the per-read noise draws between the twins.)
        let victim = g
            .plan
            .iter()
            .flat_map(|bp| bp.words.iter())
            .find(|w| w.bits.len() >= 2)
            .map(|w| w.addr.cell(w.bits[0]))
            .expect("catalog has a multi-bit word");
        assert!(g.suspend_cell(victim));
        assert!(!g.suspend_cell(victim), "double suspend is a no-op");
        let _ = g.harvest_block().unwrap();
        let _ = twin.harvest_block().unwrap();
        assert!(g.resume_cell(victim));
        assert!(!g.resume_cell(victim), "double resume is a no-op");
        assert_eq!(g.active_cells(), twin.active_cells());
        // Post-resume the full streams coincide again (same seeds, same
        // pass count, identical plans).
        let a = g.harvest_block().unwrap();
        let b = twin.harvest_block().unwrap();
        assert_eq!(a.iter().collect::<Vec<_>>(), b.iter().collect::<Vec<_>>());
    }

    #[test]
    fn retire_last_cell_drops_word_and_bank() {
        let catalog = sparse_catalog(&[0, 3]);
        let mut g = DRange::new(fresh_ctrl(), &catalog, DRangeConfig::default()).unwrap();
        assert_eq!(g.banks_used(), 2);
        let word = dram_sim::WordAddr::new(3, 0, 0);
        for bit in [0, 1, 2] {
            assert!(g.retire_cell(word.cell(bit)));
        }
        assert!(!g.retire_cell(word.cell(0)), "already retired");
        assert!(!g.planned_word_addrs().contains(&word));
        // Retiring the second word's cells empties bank 3 entirely.
        let word2 = dram_sim::WordAddr::new(3, 1, 0);
        assert!(g.retire_cell(word2.cell(3)));
        assert!(g.retire_cell(word2.cell(4)));
        assert_eq!(g.banks_used(), 1);
        assert_eq!(g.bits_per_iteration(), 5);
        // Sampling still works on the surviving bank.
        let block = g.harvest_block().unwrap();
        assert_eq!(block.len(), 5);
    }

    #[test]
    fn fully_suspended_plan_harvests_nothing_without_error() {
        let catalog = sparse_catalog(&[2]);
        let mut g = DRange::new(fresh_ctrl(), &catalog, DRangeConfig::default()).unwrap();
        for cell in g.active_cells() {
            assert!(g.suspend_cell(cell));
        }
        assert_eq!(g.bits_per_iteration(), 0);
        let block = g.harvest_block().unwrap();
        assert_eq!(block.len(), 0, "benched plan yields an empty batch");
        // Words stay planned so the cells can be resumed in place.
        assert_eq!(g.planned_word_addrs().len(), 2);
    }

    #[test]
    fn promote_word_extends_the_plan() {
        let catalog = sparse_catalog(&[0]);
        let mut g = DRange::new(fresh_ctrl(), &catalog, DRangeConfig::default()).unwrap();
        let before = g.bits_per_iteration();
        let spare = dram_sim::WordAddr::new(4, 7, 2);
        g.promote_word(spare, &[5, 1, 5, 9]).unwrap();
        assert_eq!(g.banks_used(), 2);
        assert_eq!(g.bits_per_iteration(), before + 3, "deduped bit list");
        let cells = g.active_cells();
        assert!(cells.contains(&spare.cell(1)));
        let block = g.harvest_block().unwrap();
        assert_eq!(block.len(), before + 3);
        // The promoted row was pattern-filled: sampling restores it.
        let stored = g.ctrl.device().peek(spare).unwrap();
        assert_eq!(stored, 0, "Solid0 pattern written to the promoted row");
    }

    #[test]
    fn promote_word_rejects_plan_violations() {
        let catalog = sparse_catalog(&[0, 1]);
        let mut g = DRange::new(fresh_ctrl(), &catalog, DRangeConfig::default()).unwrap();
        let planned = g.planned_word_addrs()[0];
        // Duplicate word.
        assert!(g.promote_word(planned, &[0]).is_err());
        // Bank already samples two words.
        assert!(g
            .promote_word(dram_sim::WordAddr::new(0, 9, 0), &[0])
            .is_err());
        // Empty and out-of-range bit lists.
        assert!(g
            .promote_word(dram_sim::WordAddr::new(5, 0, 0), &[])
            .is_err());
        assert!(g
            .promote_word(dram_sim::WordAddr::new(5, 0, 0), &[64])
            .is_err());
        // Row collision within a bank: retire bank 1's row-0 word, then
        // a same-row promotion into the remaining single-word bank.
        let w10 = dram_sim::WordAddr::new(1, 0, 0);
        for bit in [0, 1, 2] {
            assert!(g.retire_cell(w10.cell(bit)));
        }
        assert!(
            g.promote_word(dram_sim::WordAddr::new(1, 1, 3), &[0])
                .is_err(),
            "row 1 already sampled in bank 1"
        );
        // A distinct row is accepted.
        g.promote_word(dram_sim::WordAddr::new(1, 12, 0), &[7])
            .unwrap();
    }

    #[test]
    fn empty_catalog_is_rejected() {
        let mut ctrl = MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(1)
                .with_noise_seed(2),
        );
        // Profile at spec timing: no failures, no candidates.
        let profile = Profiler::new(&mut ctrl)
            .run(
                ProfileSpec {
                    rows: 0..64,
                    cols: 0..4,
                    ..ProfileSpec::default()
                }
                .with_trcd_ns(18.0)
                .with_iterations(3),
            )
            .unwrap();
        let catalog = RngCellCatalog::identify(
            &mut ctrl,
            &profile,
            IdentifySpec {
                reads: 1000,
                ..IdentifySpec::default()
            },
        )
        .unwrap();
        assert!(matches!(
            DRange::new(ctrl, &catalog, DRangeConfig::default()),
            Err(DrangeError::NoRngCells(_))
        ));
    }
}
