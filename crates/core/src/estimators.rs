//! Min-entropy estimators in the style of NIST SP 800-90B §6.3,
//! specialized to binary sources — the assessment a certification lab
//! would run on D-RaNGe's raw output before crediting entropy.
//!
//! Implemented estimators (each returns bits of min-entropy per bit,
//! i.e. a value in `[0, 1]`):
//!
//! * **Most common value** (§6.3.1): from the frequency of the most
//!   common symbol with a 99 % upper confidence bound.
//! * **Markov** (§6.3.3): from first-order transition probabilities,
//!   catching serial correlation a frequency count misses.
//! * **Collision** (§6.3.2-flavored): from the mean spacing between
//!   repeated pairs.
//!
//! The credited entropy is the minimum over all estimators.

/// Most-common-value estimate (SP 800-90B §6.3.1) for a binary source.
///
/// # Panics
///
/// Panics if `bits` is empty.
pub fn most_common_value(bits: &[bool]) -> f64 {
    assert!(!bits.is_empty(), "need at least one sample");
    let n = bits.len() as f64;
    let ones = bits.iter().filter(|&&b| b).count() as f64;
    let p_hat = ones.max(n - ones) / n;
    // 99% upper confidence bound on the most common value's probability.
    let p_u = (p_hat + 2.576 * (p_hat * (1.0 - p_hat) / n).sqrt()).min(1.0);
    -p_u.log2()
}

/// First-order Markov estimate (SP 800-90B §6.3.3, binary
/// specialization): min-entropy of the most likely length-128 path
/// through the transition matrix, per bit.
///
/// # Panics
///
/// Panics if `bits` has fewer than 2 samples.
pub fn markov(bits: &[bool]) -> f64 {
    assert!(bits.len() >= 2, "need at least two samples");
    let n = bits.len() as f64;
    // Initial probabilities with confidence margin.
    let ones = bits.iter().filter(|&&b| b).count() as f64;
    let eps = 2.576 * (0.25 / n).sqrt();
    let p1 = (ones / n + eps).min(1.0);
    let p0 = (1.0 - ones / n + eps).min(1.0);
    // Transition counts.
    let mut t = [[0f64; 2]; 2];
    for w in bits.windows(2) {
        t[usize::from(w[0])][usize::from(w[1])] += 1.0;
    }
    let mut p = [[0f64; 2]; 2];
    for i in 0..2 {
        let row: f64 = t[i][0] + t[i][1];
        for j in 0..2 {
            let base = if row > 0.0 { t[i][j] / row } else { 0.5 };
            let margin = if row > 0.0 {
                2.576 * (base * (1.0 - base) / row).sqrt()
            } else {
                0.5
            };
            p[i][j] = (base + margin).min(1.0);
        }
    }
    // Most likely 128-step path probability via dynamic programming in
    // log space.
    let steps = 128;
    let mut best = [p0.log2(), p1.log2()];
    for _ in 0..steps - 1 {
        let next0 = (best[0] + p[0][0].log2()).max(best[1] + p[1][0].log2());
        let next1 = (best[0] + p[0][1].log2()).max(best[1] + p[1][1].log2());
        best = [next0, next1];
    }
    let max_log_p = best[0].max(best[1]);
    (-max_log_p / steps as f64).clamp(0.0, 1.0)
}

/// Collision-flavored estimate: the mean index at which a sliding
/// 2-sample window first repeats, mapped to min-entropy. For an ideal
/// binary source the mean collision distance of pairs is small and the
/// estimate approaches 1; strongly biased sources collide sooner on the
/// dominant symbol.
///
/// # Panics
///
/// Panics if `bits` has fewer than 8 samples.
pub fn collision(bits: &[bool]) -> f64 {
    assert!(bits.len() >= 8, "need at least eight samples");
    // Count mean distance between successive equal *pairs*.
    let mut distances = Vec::new();
    let mut last_seen = [[None::<usize>; 2]; 2];
    for (i, w) in bits.windows(2).enumerate() {
        let a = usize::from(w[0]);
        let b = usize::from(w[1]);
        if let Some(prev) = last_seen[a][b] {
            distances.push((i - prev) as f64);
        }
        last_seen[a][b] = Some(i);
    }
    if distances.is_empty() {
        return 0.0;
    }
    let mean = distances.iter().sum::<f64>() / distances.len() as f64;
    // Ideal source: each of the 4 pairs recurs every ~4 positions.
    // Biased sources have a dominant pair recurring at distance ~1/p²,
    // dragging the mean down. Map mean -> entropy against the ideal.
    let ideal = 4.0;
    (mean / ideal).clamp(0.0, 1.0)
}

/// The credited min-entropy: the minimum over all estimators.
///
/// # Panics
///
/// Panics if `bits` has fewer than 8 samples.
pub fn credited_min_entropy(bits: &[bool]) -> f64 {
    most_common_value(bits)
        .min(markov(bits))
        .min(collision(bits))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix_bits(n: usize, mut state: u64) -> Vec<bool> {
        (0..n)
            .map(|_| {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn ideal_source_credits_near_full_entropy() {
        let bits = splitmix_bits(100_000, 5);
        let h = credited_min_entropy(&bits);
        assert!(h > 0.9, "credited {h}");
        assert!(most_common_value(&bits) > 0.95);
        assert!(markov(&bits) > 0.9);
    }

    #[test]
    fn constant_source_credits_zero() {
        let bits = vec![true; 10_000];
        assert!(most_common_value(&bits) < 0.01);
        assert!(markov(&bits) < 0.01);
        assert!(credited_min_entropy(&bits) < 0.01);
    }

    #[test]
    fn biased_source_is_penalized() {
        // 80% ones.
        let mut state = 9u64;
        let bits: Vec<bool> = (0..100_000)
            .map(|_| {
                state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
                (state >> 33) % 5 != 0
            })
            .collect();
        let mcv = most_common_value(&bits);
        // -log2(0.8) = 0.32
        assert!((mcv - 0.32).abs() < 0.03, "mcv {mcv}");
        assert!(credited_min_entropy(&bits) <= mcv + 1e-9);
    }

    #[test]
    fn correlated_source_caught_by_markov_not_mcv() {
        // Balanced overall but strongly sticky: P(same as last) = 0.9.
        let mut state = 3u64;
        let mut bits = vec![false];
        for _ in 1..100_000 {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(7);
            let stay = (state >> 33) % 10 != 0;
            let last = *bits.last().expect("nonempty");
            bits.push(if stay { last } else { !last });
        }
        let mcv = most_common_value(&bits);
        let mk = markov(&bits);
        assert!(mcv > 0.8, "bias looks fine to MCV: {mcv}");
        assert!(mk < 0.4, "Markov catches the correlation: {mk}");
        assert!(credited_min_entropy(&bits) < 0.4);
    }

    #[test]
    fn estimates_are_in_unit_interval() {
        for seed in 0..10u64 {
            let bits = splitmix_bits(5_000, seed);
            for h in [most_common_value(&bits), markov(&bits), collision(&bits)] {
                assert!((0.0..=1.0).contains(&h), "h = {h}");
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least")]
    fn empty_input_panics() {
        let _ = most_common_value(&[]);
    }
}
