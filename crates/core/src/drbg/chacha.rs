//! A std-only ChaCha20 core (RFC 8439), the conditioning primitive
//! behind the DRBG tier.
//!
//! The workspace deliberately carries no cryptography dependency, so
//! the block function lives here in ~100 lines of plain integer
//! arithmetic. Correctness is pinned bit-exactly against the RFC's own
//! test vectors, committed under `tests/vectors/` and checked by the
//! `drbg_kat` test binary (the CI `drbg-kat` job): the quarter-round
//! vector (§2.1.1), the keystream block vectors (§2.3.2, appendix
//! A.1), and the full §2.4.2 encryption example.
//!
//! Only the keystream shape the DRBG needs is exposed: a 256-bit key,
//! a 96-bit nonce, and a 32-bit block counter. The DRBG ratchets its
//! key on every generate (fast key erasure), so a single key never
//! produces more than [`MAX_STREAM_BYTES`] of keystream and the block
//! counter cannot wrap.

/// ChaCha20 keystream block size in bytes.
pub const BLOCK_BYTES: usize = 64;

/// Longest keystream a single `(key, nonce)` pair may emit through
/// [`keystream`]: the 32-bit block counter bounds it at `2^32 - 1`
/// blocks, but the DRBG caps requests far below that (see
/// [`crate::drbg::DrbgConfig::max_generate_bytes`]), so the counter
/// arithmetic below never wraps in practice.
pub const MAX_STREAM_BYTES: u64 = (u32::MAX as u64) * BLOCK_BYTES as u64;

/// The RFC 8439 §2.3 constant words: `expand 32-byte k`.
const SIGMA: [u32; 4] = [0x6170_7865, 0x3320_646e, 0x7962_2d32, 0x6b20_6574];

/// The ChaCha quarter round (RFC 8439 §2.1) on four state words.
#[inline]
fn quarter_round(state: &mut [u32; 16], a: usize, b: usize, c: usize, d: usize) {
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(16);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(12);
    state[a] = state[a].wrapping_add(state[b]);
    state[d] = (state[d] ^ state[a]).rotate_left(8);
    state[c] = state[c].wrapping_add(state[d]);
    state[b] = (state[b] ^ state[c]).rotate_left(7);
}

/// Assembles the RFC 8439 §2.3 initial state: four constant words,
/// eight little-endian key words, the block counter, and three
/// little-endian nonce words.
fn initial_state(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u32; 16] {
    let mut state = [0u32; 16];
    state[..4].copy_from_slice(&SIGMA);
    for (i, chunk) in key.chunks_exact(4).enumerate() {
        state[4 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    state[12] = counter;
    for (i, chunk) in nonce.chunks_exact(4).enumerate() {
        state[13 + i] = u32::from_le_bytes([chunk[0], chunk[1], chunk[2], chunk[3]]);
    }
    state
}

/// The ChaCha20 block function (RFC 8439 §2.3): 10 double rounds over
/// the initial state, the feed-forward add, little-endian
/// serialization.
#[must_use]
pub fn block(key: &[u8; 32], counter: u32, nonce: &[u8; 12]) -> [u8; BLOCK_BYTES] {
    let input = initial_state(key, counter, nonce);
    let mut state = input;
    for _ in 0..10 {
        // Column rounds.
        quarter_round(&mut state, 0, 4, 8, 12);
        quarter_round(&mut state, 1, 5, 9, 13);
        quarter_round(&mut state, 2, 6, 10, 14);
        quarter_round(&mut state, 3, 7, 11, 15);
        // Diagonal rounds.
        quarter_round(&mut state, 0, 5, 10, 15);
        quarter_round(&mut state, 1, 6, 11, 12);
        quarter_round(&mut state, 2, 7, 8, 13);
        quarter_round(&mut state, 3, 4, 9, 14);
    }
    let mut out = [0u8; BLOCK_BYTES];
    for (i, (word, init)) in state.iter().zip(input.iter()).enumerate() {
        out[4 * i..4 * i + 4].copy_from_slice(&word.wrapping_add(*init).to_le_bytes());
    }
    out
}

/// Fills `out` with keystream starting at `counter` (RFC 8439 §2.4's
/// block loop). The counter advances once per 64-byte block; callers
/// bound `out` far below [`MAX_STREAM_BYTES`] so the wrapping add
/// never actually wraps.
pub fn keystream(key: &[u8; 32], counter: u32, nonce: &[u8; 12], out: &mut [u8]) {
    for (i, chunk) in out.chunks_mut(BLOCK_BYTES).enumerate() {
        let ks = block(key, counter.wrapping_add(i as u32), nonce);
        chunk.copy_from_slice(&ks[..chunk.len()]);
    }
}

/// XORs keystream into `data` in place — RFC 8439 §2.4 encryption,
/// used by the KAT test to check the §2.4.2 example end to end.
pub fn xor_keystream(key: &[u8; 32], counter: u32, nonce: &[u8; 12], data: &mut [u8]) {
    for (i, chunk) in data.chunks_mut(BLOCK_BYTES).enumerate() {
        let ks = block(key, counter.wrapping_add(i as u32), nonce);
        for (byte, k) in chunk.iter_mut().zip(ks.iter()) {
            *byte ^= k;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// RFC 8439 §2.1.1: the quarter-round test vector.
    #[test]
    fn quarter_round_vector() {
        let mut state = [0u32; 16];
        state[0] = 0x1111_1111;
        state[1] = 0x0102_0304;
        state[2] = 0x9b8d_6f43;
        state[3] = 0x0123_4567;
        quarter_round(&mut state, 0, 1, 2, 3);
        assert_eq!(state[0], 0xea2a_92f4);
        assert_eq!(state[1], 0xcb1c_f8ce);
        assert_eq!(state[2], 0x4581_472e);
        assert_eq!(state[3], 0x5881_c4bb);
    }

    /// Keystream over several blocks equals independent block calls.
    #[test]
    fn keystream_matches_blocks() {
        let key = [7u8; 32];
        let nonce = [3u8; 12];
        let mut long = [0u8; 3 * BLOCK_BYTES + 17];
        keystream(&key, 5, &nonce, &mut long);
        for i in 0..4 {
            let b = block(&key, 5 + i as u32, &nonce);
            let start = i * BLOCK_BYTES;
            let end = (start + BLOCK_BYTES).min(long.len());
            assert_eq!(&long[start..end], &b[..end - start], "block {i}");
        }
    }

    /// XOR with the keystream is an involution (decrypt = encrypt).
    #[test]
    fn xor_keystream_round_trips() {
        let key = [0xAB; 32];
        let nonce = [0x01; 12];
        let original = *b"attack at dawn, bring 64 bytes of keystream and a spare block!!";
        let mut data = original;
        xor_keystream(&key, 1, &nonce, &mut data);
        assert_ne!(data, original);
        xor_keystream(&key, 1, &nonce, &mut data);
        assert_eq!(data, original);
    }
}
