//! The cryptographic conditioning tier: a per-shard ChaCha20 DRBG
//! continuously reseeded from the harvest pool (DESIGN.md §5k).
//!
//! Raw harvest throughput is bounded by the device (hundreds of Mb/s
//! device-time across all workers), so user-facing throughput was
//! hard-coupled to harvest throughput. This module decouples them the
//! way SP 800-90A deployments do: the engine's health-screened pool
//! becomes the *seed* source for a farm of ChaCha20-based DRBGs (one
//! shard per engine worker by default), and the serve path's `fast`
//! QoS tier reads keystream instead of raw pool bits — Gb/s-class
//! output from Mb/s of true entropy.
//!
//! ## Construction
//!
//! Each shard is a fast-key-erasure ChaCha20 generator: every
//! generate derives `32 + n` bytes of keystream, returns `n` to the
//! caller, and *replaces its own key* with the first 32 bytes, so a
//! later state compromise cannot reconstruct earlier output
//! (backtracking resistance). Reseeds ratchet the key once more and
//! XOR in [`DrbgConfig::seed_bytes`] fresh bytes drawn from the
//! engine pool via [`SeedSource::draw_seed`].
//!
//! ## Entropy credits and health gating
//!
//! Every seed byte comes from the engine pool, which only ever holds
//! bits that passed a worker's [`crate::health::HealthMonitor`] feed —
//! the same path `cargo xtask analyze`'s entropy-taint rule audits. The
//! per-shard [`CreditLedger`] credits exactly those bits and spends
//! them against generated output, making "how far ahead of the
//! harvester is the fast tier running" a first-class metric
//! (`drange_drbg_entropy_credits_total`).
//!
//! A tripped health monitor blocks *reseeding*, never serving: when
//! [`SeedSource::trip_counts`] moved since the shard's last reseed
//! decision, the reseed is refused (`drange_drbg_reseeds_blocked_total
//! {cause="health"}`) and the shard keeps generating from its current
//! key. Only operations that *require* fresh entropy — first
//! instantiation and prediction-resistant generates — turn a blocked
//! reseed into an error.

pub mod chacha;
mod credit;

use std::time::Duration;

use drange_telemetry::{Counter, Histogram, MetricsRegistry, Tracer};
use parking_lot::Mutex;

use crate::engine::HarvestEngine;
use crate::error::{DrangeError, Result};
use crate::health::TripCounts;
use crate::sync::SequenceCounter;

pub use credit::CreditLedger;

/// The all-zero ChaCha20 nonce. Safe here because the key changes on
/// every generate (fast key erasure): a `(key, nonce)` pair is never
/// reused for more than one keystream.
const ZERO_NONCE: [u8; 12] = [0u8; 12];

/// Where a DRBG shard draws reseed entropy and reads health state.
///
/// [`HarvestEngine`] is the production implementation: seeds come from
/// the shared pool (post health screening, post watermark accounting)
/// and trip counts from the workers' RCT/APT monitors. Tests substitute
/// scripted sources to pin the reseed policy deterministically.
pub trait SeedSource {
    /// Draws `bytes` health-screened bytes for a reseed, waiting at
    /// most `timeout`. `Ok(None)` means the pool could not supply the
    /// seed in time (starvation, not failure).
    ///
    /// # Errors
    ///
    /// Propagates source failures (e.g. the engine wound down).
    fn draw_seed(&self, bytes: usize, timeout: Duration) -> Result<Option<Vec<u8>>>;

    /// Cumulative RCT/APT trip counts across the source's health
    /// monitors. A count that moved between two reseed decisions marks
    /// the interval as suspect and blocks the reseed.
    fn trip_counts(&self) -> TripCounts;
}

impl SeedSource for HarvestEngine {
    fn draw_seed(&self, bytes: usize, timeout: Duration) -> Result<Option<Vec<u8>>> {
        self.take_bytes_timeout(bytes, timeout)
    }

    fn trip_counts(&self) -> TripCounts {
        self.health_trip_counts()
    }
}

/// Tuning knobs for the DRBG farm.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct DrbgConfig {
    /// Number of independent DRBG shards; `0` means one per engine
    /// worker (the value passed as the farm's shard hint).
    pub shards: usize,
    /// Generates a shard serves between automatic reseeds. A soft
    /// target: when the reseed is blocked (health trip) or starved
    /// (pool timeout), the shard keeps serving and retries on the next
    /// generate.
    pub reseed_interval: u64,
    /// Fresh pool bytes drawn per reseed.
    pub seed_bytes: usize,
    /// Longest a generate may wait on the pool for reseed entropy
    /// before the reseed counts as starved.
    pub reseed_timeout: Duration,
    /// Largest single generate; beyond it is an [`DrangeError::InvalidSpec`].
    /// Also keeps a single keystream far below the ChaCha20 counter
    /// bound ([`chacha::MAX_STREAM_BYTES`]).
    pub max_generate_bytes: usize,
}

impl Default for DrbgConfig {
    fn default() -> Self {
        DrbgConfig {
            shards: 0,
            reseed_interval: 1024,
            seed_bytes: 32,
            reseed_timeout: Duration::from_millis(100),
            max_generate_bytes: 64 * 1024,
        }
    }
}

impl DrbgConfig {
    /// Validates the knobs.
    ///
    /// # Errors
    ///
    /// Returns [`DrangeError::InvalidSpec`] for a zero reseed interval,
    /// a seed smaller than the 16-byte floor or larger than 4 KiB, or
    /// a zero generate cap.
    pub fn validate(&self) -> Result<()> {
        if self.reseed_interval == 0 {
            return Err(DrangeError::InvalidSpec(
                "drbg reseed_interval must be at least 1".into(),
            ));
        }
        if !(16..=4096).contains(&self.seed_bytes) {
            return Err(DrangeError::InvalidSpec(format!(
                "drbg seed_bytes must be in 16..=4096, got {}",
                self.seed_bytes
            )));
        }
        if self.max_generate_bytes == 0 {
            return Err(DrangeError::InvalidSpec(
                "drbg max_generate_bytes must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

/// One shard's mutable state, owned by the shard mutex.
struct ShardState {
    /// The current ChaCha20 key; replaced on every generate (fast key
    /// erasure) and ratcheted+XORed on reseed.
    key: [u8; 32],
    /// Whether the shard has ever absorbed a successful seed. An
    /// uninstantiated shard refuses to generate.
    instantiated: bool,
    /// Total generates served.
    generates: u64,
    /// Generates since the last successful reseed.
    since_reseed: u64,
    /// Successful reseeds (including the instantiation).
    reseeds: u64,
    /// Reseeds refused because trip counts moved.
    blocked_health: u64,
    /// Reseeds that timed out on the pool (or hit a source error on a
    /// best-effort attempt).
    blocked_starved: u64,
    /// Entropy-credit ledger for this shard.
    credit: CreditLedger,
    /// Total trip count observed at the last reseed decision; `None`
    /// until the first decision establishes the baseline.
    last_trips: Option<u64>,
}

impl std::fmt::Debug for ShardState {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        // The key is deliberately redacted: shard state rides inside
        // `RandomnessService`'s Debug output.
        f.debug_struct("ShardState")
            .field("instantiated", &self.instantiated)
            .field("generates", &self.generates)
            .field("since_reseed", &self.since_reseed)
            .field("reseeds", &self.reseeds)
            .field("credit", &self.credit)
            .finish_non_exhaustive()
    }
}

impl ShardState {
    fn new() -> Self {
        ShardState {
            key: [0u8; 32],
            instantiated: false,
            generates: 0,
            since_reseed: 0,
            reseeds: 0,
            blocked_health: 0,
            blocked_starved: 0,
            credit: CreditLedger::new(),
            last_trips: None,
        }
    }

    /// One ratchet-and-absorb step: the key advances through the block
    /// function (erasing the old key) and XORs in up to 32 seed bytes.
    fn absorb(&mut self, chunk: &[u8]) {
        let block = chacha::block(&self.key, 0, &ZERO_NONCE);
        let mut next = [0u8; 32];
        next.copy_from_slice(&block[..32]);
        for (k, b) in next.iter_mut().zip(chunk.iter()) {
            *k ^= *b;
        }
        self.key = next;
    }
}

/// Telemetry handles for the farm (no-ops without a registry).
#[derive(Debug, Clone, Default)]
struct DrbgTelemetry {
    generates: Counter,
    output_bytes: Counter,
    reseeds: Counter,
    blocked_health: Counter,
    blocked_starved: Counter,
    entropy_credits: Counter,
    generate_ns: Histogram,
}

impl DrbgTelemetry {
    fn new(registry: Option<&MetricsRegistry>) -> Self {
        let Some(reg) = registry else {
            return DrbgTelemetry::default();
        };
        let blocked =
            |cause: &str| reg.counter("drange_drbg_reseeds_blocked_total", &[("cause", cause)]);
        DrbgTelemetry {
            generates: reg.counter("drange_drbg_generates_total", &[]),
            output_bytes: reg.counter("drange_drbg_output_bytes_total", &[]),
            reseeds: reg.counter("drange_drbg_reseeds_total", &[]),
            blocked_health: blocked("health"),
            blocked_starved: blocked("starved"),
            entropy_credits: reg.counter("drange_drbg_entropy_credits_total", &[]),
            generate_ns: reg.histogram("drange_drbg_generate_latency_ns", &[]),
        }
    }
}

/// Aggregated farm statistics (summed over shards).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct DrbgStats {
    /// Independent DRBG shards in the farm.
    pub shards: usize,
    /// Shards that have absorbed at least one seed.
    pub instantiated: usize,
    /// Total generates served.
    pub generates: u64,
    /// Successful reseeds (instantiations included).
    pub reseeds: u64,
    /// Reseeds refused because health trip counts moved.
    pub reseeds_blocked_health: u64,
    /// Reseeds that timed out on the pool.
    pub reseeds_blocked_starved: u64,
    /// Health-screened bits credited by reseeds.
    pub entropy_credited_bits: u64,
    /// Output bits covered by entropy credit.
    pub entropy_spent_bits: u64,
}

impl DrbgStats {
    /// Unspent entropy credit across the farm, in bits.
    #[must_use]
    pub fn entropy_available_bits(&self) -> u64 {
        self.entropy_credited_bits
            .saturating_sub(self.entropy_spent_bits)
    }
}

/// A farm of per-shard ChaCha20 DRBGs over one seed source.
///
/// All methods take `&self`; generates on different shards proceed in
/// parallel (round-robin shard pick, one mutex per shard). The farm
/// holds no reference to its seed source — callers pass it per
/// operation, so the farm can live inside
/// [`crate::service::RandomnessService`] next to the engine it feeds
/// from.
#[derive(Debug)]
pub struct DrbgFarm {
    shards: Vec<Mutex<ShardState>>,
    cursor: SequenceCounter,
    config: DrbgConfig,
    telemetry: DrbgTelemetry,
    tracer: Tracer,
}

impl DrbgFarm {
    /// Builds a farm with `config`, resolving `shards == 0` to
    /// `shard_hint` (the engine's worker count). Registers the
    /// `drange_drbg_*` metric series when a registry is given.
    ///
    /// # Errors
    ///
    /// Returns [`DrangeError::InvalidSpec`] for invalid knobs (see
    /// [`DrbgConfig::validate`]).
    pub fn new(
        config: DrbgConfig,
        shard_hint: usize,
        registry: Option<&MetricsRegistry>,
        tracer: Tracer,
    ) -> Result<Self> {
        config.validate()?;
        let count = if config.shards == 0 {
            shard_hint.max(1)
        } else {
            config.shards
        };
        Ok(DrbgFarm {
            shards: (0..count).map(|_| Mutex::new(ShardState::new())).collect(),
            cursor: SequenceCounter::new(),
            config,
            telemetry: DrbgTelemetry::new(registry),
            tracer,
        })
    }

    /// Number of shards.
    #[must_use]
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// The farm configuration.
    #[must_use]
    pub fn config(&self) -> &DrbgConfig {
        &self.config
    }

    /// Generates `bytes` of conditioned output from the next shard.
    ///
    /// A zero-byte request returns immediately without touching any
    /// shard: it mints no generate, triggers no reseed, and leaves the
    /// `drange_drbg_generates_total` counter untouched (the QoS-split
    /// analogue of [`crate::service::RandomnessService::request`]'s
    /// zero-byte fast path).
    ///
    /// # Errors
    ///
    /// [`DrangeError::InvalidSpec`] beyond
    /// [`DrbgConfig::max_generate_bytes`]; [`DrangeError::Unhealthy`] /
    /// [`DrangeError::Engine`] when the shard was never instantiated
    /// and its first seed is blocked or starved.
    pub fn generate(&self, source: &impl SeedSource, bytes: usize) -> Result<Vec<u8>> {
        self.generate_inner(source, bytes, false)
    }

    /// As [`DrbgFarm::generate`], with prediction resistance: the
    /// shard *must* absorb fresh pool entropy immediately before
    /// producing output.
    ///
    /// # Errors
    ///
    /// As [`DrbgFarm::generate`], plus [`DrangeError::Unhealthy`] when
    /// the forced reseed is blocked by a health trip and
    /// [`DrangeError::Engine`] when it starves on the pool.
    pub fn generate_pr(&self, source: &impl SeedSource, bytes: usize) -> Result<Vec<u8>> {
        self.generate_inner(source, bytes, true)
    }

    fn generate_inner(
        &self,
        source: &impl SeedSource,
        bytes: usize,
        prediction_resistance: bool,
    ) -> Result<Vec<u8>> {
        if bytes == 0 {
            return Ok(Vec::new());
        }
        if bytes > self.config.max_generate_bytes {
            return Err(DrangeError::InvalidSpec(format!(
                "generate of {bytes} bytes exceeds the per-call cap of {}",
                self.config.max_generate_bytes
            )));
        }
        let mut span = self.tracer.span("drbg.generate");
        let t0 = self.telemetry.generate_ns.start();
        let index = (self.cursor.next() as usize) % self.shards.len();
        if span.is_recording() {
            span.attr_u64("bytes", bytes as u64);
            span.attr_u64("shard", index as u64);
            span.attr_bool("prediction_resistance", prediction_resistance);
        }
        let out = {
            // Indexing is in bounds by the modulo above; the lint-safe
            // spelling avoids a panic site regardless.
            let Some(shard) = self.shards.get(index) else {
                return Err(DrangeError::Engine("drbg farm has no shards".into()));
            };
            let mut state = shard.lock();
            let must_reseed = !state.instantiated || prediction_resistance;
            if must_reseed || state.since_reseed >= self.config.reseed_interval {
                self.reseed_shard(&mut state, source, must_reseed, &mut span)?;
            }
            // Fast key erasure: one keystream covers the next key and
            // the caller's output; the old key is gone before the
            // output leaves the shard.
            let mut keystream = vec![0u8; 32 + bytes];
            chacha::keystream(&state.key, 0, &ZERO_NONCE, &mut keystream);
            state.key.copy_from_slice(&keystream[..32]);
            state.generates += 1;
            state.since_reseed += 1;
            let covered = state.credit.spend(bytes as u64 * 8);
            if span.is_recording() {
                span.attr_u64("credit_covered_bits", covered);
            }
            keystream.split_off(32)
        };
        self.telemetry.generates.inc();
        self.telemetry.output_bytes.add(bytes as u64);
        self.telemetry.generate_ns.observe_since(t0);
        Ok(out)
    }

    /// One reseed decision for a locked shard. When `required` is
    /// false (an interval-driven background reseed), every failure
    /// mode degrades to "keep serving, retry next generate"; when true
    /// (instantiation or prediction resistance), failures are errors.
    fn reseed_shard(
        &self,
        state: &mut ShardState,
        source: &impl SeedSource,
        required: bool,
        parent: &mut drange_telemetry::Span,
    ) -> Result<()> {
        let mut span = self.tracer.span("drbg.reseed");
        span.attr_bool("required", required);
        let trips = source.trip_counts().total();
        if let Some(last) = state.last_trips {
            if trips != last {
                // The interval since the previous decision saw RCT/APT
                // trips: refuse this reseed. The baseline advances, so
                // a later quiet interval unblocks automatically.
                state.last_trips = Some(trips);
                state.blocked_health += 1;
                self.telemetry.blocked_health.inc();
                span.attr_bool("blocked_health", true);
                parent.event("drbg.reseed_blocked");
                return if required {
                    Err(DrangeError::Unhealthy(format!(
                        "drbg reseed blocked: health monitors tripped ({} new trips)",
                        trips.saturating_sub(last)
                    )))
                } else {
                    Ok(())
                };
            }
        }
        state.last_trips = Some(trips);
        match source.draw_seed(self.config.seed_bytes, self.config.reseed_timeout) {
            Ok(Some(seed)) => {
                for chunk in seed.chunks(32) {
                    state.absorb(chunk);
                }
                let bits = seed.len() as u64 * 8;
                state.credit.credit(bits);
                state.since_reseed = 0;
                state.instantiated = true;
                state.reseeds += 1;
                self.telemetry.reseeds.inc();
                self.telemetry.entropy_credits.add(bits);
                span.attr_u64("credited_bits", bits);
                Ok(())
            }
            Ok(None) => {
                state.blocked_starved += 1;
                self.telemetry.blocked_starved.inc();
                span.attr_bool("starved", true);
                if required {
                    Err(DrangeError::Engine(format!(
                        "drbg reseed starved: pool supplied no {} byte seed within {:?}",
                        self.config.seed_bytes, self.config.reseed_timeout
                    )))
                } else {
                    Ok(())
                }
            }
            Err(e) => {
                state.blocked_starved += 1;
                self.telemetry.blocked_starved.inc();
                span.attr_bool("starved", true);
                if required {
                    Err(e)
                } else {
                    Ok(())
                }
            }
        }
    }

    /// Aggregated statistics across all shards.
    pub fn stats(&self) -> DrbgStats {
        let mut out = DrbgStats {
            shards: self.shards.len(),
            ..DrbgStats::default()
        };
        for shard in &self.shards {
            let s = shard.lock();
            out.instantiated += usize::from(s.instantiated);
            out.generates += s.generates;
            out.reseeds += s.reseeds;
            out.reseeds_blocked_health += s.blocked_health;
            out.reseeds_blocked_starved += s.blocked_starved;
            out.entropy_credited_bits += s.credit.total_credited();
            out.entropy_spent_bits += s.credit.total_spent();
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::cell::Cell;

    /// A scripted seed source: the test controls trip counts and pool
    /// availability per call.
    struct ScriptedSeed {
        trips: Cell<u64>,
        starve: Cell<bool>,
        drawn_bits: Cell<u64>,
        next_byte: Cell<u8>,
    }

    impl ScriptedSeed {
        fn new() -> Self {
            ScriptedSeed {
                trips: Cell::new(0),
                starve: Cell::new(false),
                drawn_bits: Cell::new(0),
                next_byte: Cell::new(1),
            }
        }
    }

    impl SeedSource for ScriptedSeed {
        fn draw_seed(&self, bytes: usize, _timeout: Duration) -> Result<Option<Vec<u8>>> {
            if self.starve.get() {
                return Ok(None);
            }
            self.drawn_bits
                .set(self.drawn_bits.get() + bytes as u64 * 8);
            let b = self.next_byte.get();
            self.next_byte.set(b.wrapping_add(1));
            Ok(Some(vec![b; bytes]))
        }

        fn trip_counts(&self) -> TripCounts {
            TripCounts {
                repetition: self.trips.get(),
                adaptive: 0,
            }
        }
    }

    fn farm(shards: usize, interval: u64) -> DrbgFarm {
        DrbgFarm::new(
            DrbgConfig {
                shards,
                reseed_interval: interval,
                ..DrbgConfig::default()
            },
            1,
            None,
            Tracer::noop(),
        )
        .unwrap()
    }

    #[test]
    fn config_validation_rejects_bad_knobs() {
        for bad in [
            DrbgConfig {
                reseed_interval: 0,
                ..DrbgConfig::default()
            },
            DrbgConfig {
                seed_bytes: 8,
                ..DrbgConfig::default()
            },
            DrbgConfig {
                seed_bytes: 8192,
                ..DrbgConfig::default()
            },
            DrbgConfig {
                max_generate_bytes: 0,
                ..DrbgConfig::default()
            },
        ] {
            assert!(
                DrbgFarm::new(bad, 1, None, Tracer::noop()).is_err(),
                "{bad:?}"
            );
        }
    }

    #[test]
    fn shard_count_resolves_from_hint() {
        assert_eq!(farm(0, 16).shards(), 1);
        assert_eq!(farm(3, 16).shards(), 3);
        let hinted = DrbgFarm::new(DrbgConfig::default(), 5, None, Tracer::noop()).unwrap();
        assert_eq!(hinted.shards(), 5);
    }

    #[test]
    fn generates_are_distinct_and_sized() {
        let f = farm(2, 1024);
        let src = ScriptedSeed::new();
        let a = f.generate(&src, 48).unwrap();
        let b = f.generate(&src, 48).unwrap();
        assert_eq!(a.len(), 48);
        assert_eq!(b.len(), 48);
        assert_ne!(a, b, "distinct shards / ratcheted keys differ");
        let c = f.generate(&src, 48).unwrap();
        assert_ne!(a, c, "the ratchet changes the key every generate");
    }

    #[test]
    fn zero_byte_generate_mints_nothing() {
        let f = farm(1, 1024);
        let src = ScriptedSeed::new();
        assert_eq!(f.generate(&src, 0).unwrap(), Vec::<u8>::new());
        let stats = f.stats();
        assert_eq!(stats.generates, 0, "no generate minted");
        assert_eq!(stats.reseeds, 0, "no instantiation triggered");
        assert_eq!(src.drawn_bits.get(), 0, "no pool bytes drawn");
    }

    #[test]
    fn oversized_generate_rejected() {
        let f = farm(1, 1024);
        let src = ScriptedSeed::new();
        let cap = f.config().max_generate_bytes;
        assert!(f.generate(&src, cap + 1).is_err());
        assert!(f.generate(&src, cap).is_ok());
    }

    #[test]
    fn interval_reseed_draws_fresh_entropy() {
        let f = farm(1, 4);
        let src = ScriptedSeed::new();
        for _ in 0..4 {
            f.generate(&src, 8).unwrap();
        }
        assert_eq!(f.stats().reseeds, 1, "instantiation only");
        // The 5th generate crosses the interval.
        f.generate(&src, 8).unwrap();
        assert_eq!(f.stats().reseeds, 2);
    }

    #[test]
    fn prediction_resistance_forces_reseed_every_generate() {
        let f = farm(1, 1 << 20);
        let src = ScriptedSeed::new();
        f.generate_pr(&src, 8).unwrap();
        f.generate_pr(&src, 8).unwrap();
        f.generate_pr(&src, 8).unwrap();
        assert_eq!(f.stats().reseeds, 3);
    }

    #[test]
    fn health_trip_blocks_reseed_but_not_serving() {
        let f = farm(1, 2);
        let src = ScriptedSeed::new();
        f.generate(&src, 8).unwrap(); // instantiates, baseline trips = 0
        src.trips.set(1);
        f.generate(&src, 8).unwrap(); // interval reached at next one
        let out = f.generate(&src, 8).unwrap(); // reseed due, blocked, still serves
        assert_eq!(out.len(), 8);
        let stats = f.stats();
        assert_eq!(stats.reseeds, 1, "no reseed absorbed while tripped");
        assert_eq!(stats.reseeds_blocked_health, 1);
        // A quiet interval unblocks: the baseline advanced to 1.
        f.generate(&src, 8).unwrap();
        assert!(f.stats().reseeds >= 2, "quiet interval reseeds again");
    }

    #[test]
    fn health_trip_fails_prediction_resistance() {
        let f = farm(1, 1 << 20);
        let src = ScriptedSeed::new();
        f.generate(&src, 8).unwrap();
        src.trips.set(3);
        let err = f.generate_pr(&src, 8).unwrap_err();
        assert!(matches!(err, DrangeError::Unhealthy(_)), "{err:?}");
        // Plain generates keep serving through the trip.
        assert_eq!(f.generate(&src, 8).unwrap().len(), 8);
    }

    #[test]
    fn starved_pool_fails_instantiation_but_not_serving() {
        let f = farm(1, 4);
        let src = ScriptedSeed::new();
        src.starve.set(true);
        let err = f.generate(&src, 8).unwrap_err();
        assert!(matches!(err, DrangeError::Engine(_)), "{err:?}");
        // Once the pool recovers, the shard instantiates...
        src.starve.set(false);
        f.generate(&src, 8).unwrap();
        // ...and a later starved interval-reseed degrades gracefully.
        src.starve.set(true);
        for _ in 0..8 {
            assert_eq!(f.generate(&src, 8).unwrap().len(), 8);
        }
        assert!(f.stats().reseeds_blocked_starved >= 1);
    }

    #[test]
    fn credits_track_drawn_bits_exactly() {
        let f = farm(1, 2);
        let src = ScriptedSeed::new();
        for _ in 0..20 {
            f.generate(&src, 16).unwrap();
        }
        let stats = f.stats();
        assert_eq!(
            stats.entropy_credited_bits,
            src.drawn_bits.get(),
            "credits equal health-screened bits drawn"
        );
        assert!(stats.entropy_spent_bits <= stats.entropy_credited_bits);
    }

    #[test]
    fn telemetry_registers_drbg_series() {
        let registry = MetricsRegistry::new();
        let f = DrbgFarm::new(DrbgConfig::default(), 1, Some(&registry), Tracer::noop()).unwrap();
        let src = ScriptedSeed::new();
        f.generate(&src, 64).unwrap();
        let text = registry.render_prometheus();
        assert!(text.contains("drange_drbg_generates_total 1"), "{text}");
        assert!(text.contains("drange_drbg_reseeds_total 1"), "{text}");
        assert!(
            text.contains("drange_drbg_entropy_credits_total 256"),
            "{text}"
        );
        assert!(
            text.contains("drange_drbg_generate_latency_ns_count 1"),
            "{text}"
        );
        assert!(text.contains("drange_drbg_reseeds_blocked_total"), "{text}");
    }

    #[test]
    fn spans_record_generate_and_reseed() {
        use drange_telemetry::{FlightRecorder, RecorderConfig};
        let recorder = FlightRecorder::with_config(RecorderConfig::default());
        let f = DrbgFarm::new(DrbgConfig::default(), 1, None, recorder.tracer()).unwrap();
        let src = ScriptedSeed::new();
        f.generate(&src, 32).unwrap();
        let records = recorder.records();
        assert!(
            records.iter().any(|r| r.name == "drbg.generate"),
            "{records:?}"
        );
        assert!(
            records.iter().any(|r| r.name == "drbg.reseed"),
            "{records:?}"
        );
    }
}
