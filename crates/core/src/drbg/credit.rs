//! Entropy-credit accounting for the DRBG tier (the SP 800-90C-style
//! ledger behind `drange_drbg_entropy_credits_total`).
//!
//! Every bit that reaches a DRBG seed was drawn from the engine's
//! shared pool, and the pool only ever holds health-screened bits —
//! each batch passed the worker's [`crate::health::HealthMonitor`]
//! feed before publication (the invariant `cargo xtask analyze`'s
//! entropy-taint pass enforces). The ledger therefore credits exactly
//! the bits drawn at reseed time: *credits can never exceed the
//! health-fed bits the engine produced* (pinned by the
//! `drbg_props` proptests).
//!
//! Generates spend credit bit-for-bit against the output until the
//! balance is exhausted; output beyond the balance is still
//! cryptographically conditioned (the ChaCha20 ratchet) but no longer
//! backed one-to-one by fresh physical entropy — the spread between
//! `credited` and `spent` is the honest measure of how far ahead of
//! the harvester the fast tier is running.

/// A single shard's entropy ledger. Plain data — the owning shard
/// state already lives behind the shard mutex, so no atomics are
/// needed here.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct CreditLedger {
    /// Total health-screened bits ever credited by reseeds.
    credited: u64,
    /// Total output bits that consumed credit (saturating at
    /// `credited`: spending stops when the balance is empty).
    spent: u64,
}

impl CreditLedger {
    /// An empty ledger.
    #[must_use]
    pub fn new() -> Self {
        CreditLedger::default()
    }

    /// Credits `bits` freshly drawn, health-screened seed bits.
    /// Saturates instead of wrapping: a ledger that has absorbed
    /// `u64::MAX` bits of entropy has long stopped being informative,
    /// but it must not wrap into an apparently tiny balance.
    pub fn credit(&mut self, bits: u64) {
        self.credited = self.credited.saturating_add(bits);
    }

    /// Spends up to `bits` of credit against generated output and
    /// returns the amount actually covered. The balance clamps at
    /// zero: output beyond the balance is served (availability is the
    /// DRBG tier's contract) but is visibly uncovered.
    pub fn spend(&mut self, bits: u64) -> u64 {
        let covered = bits.min(self.available());
        self.spent = self.spent.saturating_add(covered);
        covered
    }

    /// Unspent entropy credit, in bits.
    #[must_use]
    pub fn available(&self) -> u64 {
        self.credited.saturating_sub(self.spent)
    }

    /// Total bits ever credited.
    #[must_use]
    pub fn total_credited(&self) -> u64 {
        self.credited
    }

    /// Total output bits that were covered by credit.
    #[must_use]
    pub fn total_spent(&self) -> u64 {
        self.spent
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn credits_accumulate_and_spend_saturates() {
        let mut l = CreditLedger::new();
        assert_eq!(l.available(), 0);
        l.credit(256);
        assert_eq!(l.available(), 256);
        assert_eq!(l.spend(100), 100);
        assert_eq!(l.available(), 156);
        // Over-spending covers only the remaining balance.
        assert_eq!(l.spend(1000), 156);
        assert_eq!(l.available(), 0);
        assert_eq!(l.spend(1), 0, "an empty ledger covers nothing");
        assert_eq!(l.total_credited(), 256);
        assert_eq!(l.total_spent(), 256);
    }

    #[test]
    fn spent_never_exceeds_credited() {
        let mut l = CreditLedger::new();
        l.spend(u64::MAX);
        assert_eq!(l.total_spent(), 0);
        l.credit(64);
        l.spend(u64::MAX);
        assert_eq!(l.total_spent(), 64);
        assert!(l.total_spent() <= l.total_credited());
    }

    #[test]
    fn credit_saturates_instead_of_wrapping() {
        let mut l = CreditLedger::new();
        l.credit(u64::MAX);
        l.credit(u64::MAX);
        assert_eq!(l.total_credited(), u64::MAX);
        assert_eq!(l.available(), u64::MAX);
    }
}
