//! Spatial-structure inference from failure profiles.
//!
//! Section 5.1 of the paper *infers* the DRAM subarray architecture
//! from the failure bitmap: "we hypothesize that these contiguous
//! regions reveal the DRAM subarray architecture as a result of
//! variation across the local sense amplifiers". This module implements
//! that inference: given a [`FailureProfile`], it recovers the failing
//! bit-columns, clusters rows into subarray-like segments by the
//! similarity of their failing-column sets, and quantifies the
//! within-segment row gradient — without access to the device's ground
//! truth.

use std::collections::BTreeSet;

use crate::profiler::FailureProfile;

/// A contiguous row segment with a consistent failing-column set (the
/// inferred subarray).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct InferredSegment {
    /// First row of the segment (inclusive).
    pub start_row: usize,
    /// One past the last row of the segment.
    pub end_row: usize,
    /// Failing bitline indices characteristic of the segment.
    pub columns: Vec<usize>,
}

impl InferredSegment {
    /// Number of rows in the segment.
    pub fn rows(&self) -> usize {
        self.end_row - self.start_row
    }
}

/// Result of the spatial analysis of one bank.
#[derive(Debug, Clone)]
pub struct SpatialAnalysis {
    /// Inferred row segments (subarray candidates), ascending by row.
    pub segments: Vec<InferredSegment>,
    /// Pearson-style correlation between within-segment row position
    /// and per-row failure count, averaged over segments — positive
    /// when far-from-sense-amp rows fail more (the paper's gradient).
    pub row_gradient_correlation: f64,
}

/// Infers spatial structure from a profile's bank bitmap.
///
/// `window` controls the row-block granularity of the segmentation
/// (32 is a good default for 512/1024-row subarrays); `min_jaccard`
/// is the failing-column-set similarity threshold below which a new
/// segment is opened.
pub fn analyze(
    profile: &FailureProfile,
    bank: usize,
    word_bits: usize,
    window: usize,
    min_jaccard: f64,
) -> SpatialAnalysis {
    let bitmap = profile.bitmap(bank, word_bits);
    let rows = bitmap.len();
    let window = window.max(1).min(rows.max(1));

    // Failing-column sets per row block.
    let block_columns: Vec<BTreeSet<usize>> = (0..rows / window)
        .map(|b| {
            let mut cols = BTreeSet::new();
            for row in b * window..(b + 1) * window {
                for (c, &marked) in bitmap[row].iter().enumerate() {
                    if marked {
                        cols.insert(c);
                    }
                }
            }
            cols
        })
        .collect();

    // Greedy segmentation on Jaccard similarity of adjacent blocks.
    let mut segments: Vec<InferredSegment> = Vec::new();
    let mut seg_start_block = 0usize;
    let mut seg_cols: BTreeSet<usize> = block_columns.first().cloned().unwrap_or_default();
    for (b, cols) in block_columns.iter().enumerate().skip(1) {
        if jaccard(&seg_cols, cols) < min_jaccard {
            segments.push(InferredSegment {
                start_row: seg_start_block * window,
                end_row: b * window,
                columns: seg_cols.iter().copied().collect(),
            });
            seg_start_block = b;
            seg_cols = cols.clone();
        } else {
            seg_cols.extend(cols.iter().copied());
        }
    }
    if !block_columns.is_empty() {
        segments.push(InferredSegment {
            start_row: seg_start_block * window,
            end_row: (rows / window) * window,
            columns: seg_cols.iter().copied().collect(),
        });
    }

    // Row gradient: correlation of (row position within segment,
    // failures in row), averaged over segments that have failures.
    let mut correlations = Vec::new();
    for seg in &segments {
        let counts: Vec<f64> = (seg.start_row..seg.end_row)
            .map(|r| bitmap[r].iter().filter(|&&m| m).count() as f64)
            .collect();
        if counts.iter().sum::<f64>() == 0.0 || counts.len() < 4 {
            continue;
        }
        let xs: Vec<f64> = (0..counts.len()).map(|i| i as f64).collect();
        correlations.push(pearson(&xs, &counts));
    }
    let row_gradient_correlation = if correlations.is_empty() {
        0.0
    } else {
        correlations.iter().sum::<f64>() / correlations.len() as f64
    };

    SpatialAnalysis {
        segments,
        row_gradient_correlation,
    }
}

fn jaccard(a: &BTreeSet<usize>, b: &BTreeSet<usize>) -> f64 {
    if a.is_empty() && b.is_empty() {
        return 1.0;
    }
    let inter = a.intersection(b).count() as f64;
    let union = a.union(b).count() as f64;
    inter / union
}

fn pearson(xs: &[f64], ys: &[f64]) -> f64 {
    let n = xs.len() as f64;
    let mx = xs.iter().sum::<f64>() / n;
    let my = ys.iter().sum::<f64>() / n;
    let mut cov = 0.0;
    let mut vx = 0.0;
    let mut vy = 0.0;
    for (x, y) in xs.iter().zip(ys) {
        cov += (x - mx) * (y - my);
        vx += (x - mx) * (x - mx);
        vy += (y - my) * (y - my);
    }
    if vx == 0.0 || vy == 0.0 {
        0.0
    } else {
        cov / (vx * vy).sqrt()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{ProfileSpec, Profiler};
    use dram_sim::{DeviceConfig, Manufacturer};
    use memctrl::MemoryController;

    fn profile() -> (MemoryController, FailureProfile) {
        let mut ctrl = MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(31)
                .with_noise_seed(32),
        );
        let p = Profiler::new(&mut ctrl)
            .run(ProfileSpec::default().with_iterations(25))
            .unwrap();
        (ctrl, p)
    }

    #[test]
    fn recovers_the_subarray_boundary() {
        let (ctrl, p) = profile();
        let analysis = analyze(&p, 0, 64, 32, 0.2);
        // The default device has 512-row subarrays in a 1024-row bank:
        // expect a small number of segments with a boundary at row 512.
        assert!(
            (2..=6).contains(&analysis.segments.len()),
            "segments: {:?}",
            analysis.segments.len()
        );
        let boundaries: Vec<usize> = analysis.segments.iter().map(|s| s.start_row).collect();
        assert!(
            boundaries.iter().any(|&b| (480..=544).contains(&b)),
            "a boundary near row 512 must be found: {boundaries:?}"
        );
        let _ = ctrl;
    }

    #[test]
    fn segments_tile_the_bank() {
        let (_ctrl, p) = profile();
        let analysis = analyze(&p, 0, 64, 32, 0.2);
        let mut expected_start = 0;
        for seg in &analysis.segments {
            assert_eq!(seg.start_row, expected_start);
            assert!(seg.rows() > 0);
            expected_start = seg.end_row;
        }
        assert_eq!(expected_start, 1024);
    }

    #[test]
    fn gradient_is_positive() {
        let (_ctrl, p) = profile();
        let analysis = analyze(&p, 0, 64, 32, 0.2);
        assert!(
            analysis.row_gradient_correlation > 0.2,
            "gradient correlation {}",
            analysis.row_gradient_correlation
        );
    }

    #[test]
    fn segments_report_failing_columns() {
        let (ctrl, p) = profile();
        let analysis = analyze(&p, 0, 64, 32, 0.2);
        for seg in &analysis.segments {
            for &col in &seg.columns {
                assert!(col < 1024);
            }
            // Columns match the device's weak-bitline ground truth for
            // the corresponding subarray (subset relation: profiling
            // may miss rarely-failing bitlines).
            let sub = seg.start_row / 512;
            let truth = ctrl.device().variation().weak_bitlines(0, sub.min(1));
            let hits = seg.columns.iter().filter(|c| truth.contains(c)).count();
            if !seg.columns.is_empty() {
                assert!(
                    hits * 2 >= seg.columns.len(),
                    "most inferred columns are true weak bitlines"
                );
            }
        }
    }

    #[test]
    fn helpers_behave() {
        let a: BTreeSet<usize> = [1, 2, 3].into_iter().collect();
        let b: BTreeSet<usize> = [2, 3, 4].into_iter().collect();
        assert!((jaccard(&a, &b) - 0.5).abs() < 1e-12);
        assert_eq!(jaccard(&BTreeSet::new(), &BTreeSet::new()), 1.0);
        let xs = [0.0, 1.0, 2.0, 3.0];
        assert!((pearson(&xs, &[1.0, 2.0, 3.0, 4.0]) - 1.0).abs() < 1e-12);
        assert!((pearson(&xs, &[4.0, 3.0, 2.0, 1.0]) + 1.0).abs() < 1e-12);
        assert_eq!(pearson(&xs, &[5.0, 5.0, 5.0, 5.0]), 0.0);
    }
}
