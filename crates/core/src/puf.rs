//! DRAM latency PUF — the companion mechanism the paper builds on
//! (Kim et al., "The DRAM Latency PUF", HPCA 2018; discussed in the
//! D-RaNGe paper's Section 9).
//!
//! The same reduced-`tRCD` failures that give D-RaNGe its entropy give
//! a PUF its fingerprint: the *deterministically failing* cells
//! (F_prob ≈ 1) are fixed by manufacturing variation, unique per chip,
//! and reproducible across evaluations. Where D-RaNGe wants the
//! metastable cells, the PUF wants the saturated ones.

use std::collections::BTreeSet;

use dram_sim::CellAddr;
use memctrl::MemoryController;

use crate::error::Result;
use crate::profiler::{ProfileSpec, Profiler};

/// A device fingerprint: the set of deterministically failing cells of
/// a profiled region.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PufResponse {
    cells: BTreeSet<CellAddr>,
}

impl PufResponse {
    /// Number of cells in the fingerprint.
    pub fn len(&self) -> usize {
        self.cells.len()
    }

    /// Whether the fingerprint is empty.
    pub fn is_empty(&self) -> bool {
        self.cells.is_empty()
    }

    /// Jaccard similarity with another response: 1.0 = identical,
    /// ~0 = unrelated. Same-device re-evaluations should score near 1;
    /// different devices near 0.
    pub fn similarity(&self, other: &PufResponse) -> f64 {
        if self.cells.is_empty() && other.cells.is_empty() {
            return 1.0;
        }
        let inter = self.cells.intersection(&other.cells).count() as f64;
        let union = self.cells.union(&other.cells).count() as f64;
        inter / union
    }

    /// Fractional Hamming-style distance: `1 - similarity`.
    pub fn distance(&self, other: &PufResponse) -> f64 {
        1.0 - self.similarity(other)
    }

    /// The fingerprint cells.
    pub fn cells(&self) -> impl Iterator<Item = &CellAddr> {
        self.cells.iter()
    }
}

/// Evaluation parameters for the latency PUF.
#[derive(Debug, Clone, PartialEq)]
pub struct PufSpec {
    /// Profiling specification (region + reduced tRCD). Fewer
    /// iterations than RNG characterization suffice: the PUF cells are
    /// the deterministic ones.
    pub profile: ProfileSpec,
    /// Minimum empirical F_prob for a cell to join the fingerprint.
    pub threshold: f64,
}

impl Default for PufSpec {
    fn default() -> Self {
        PufSpec {
            // The PUF evaluates at a *more aggressive* tRCD than the
            // TRNG: at 8 ns every weak bitline fails deterministically
            // (margins far below the noise), giving a large, stable
            // fingerprint, while at the TRNG's 10 ns most failures are
            // probabilistic and unusable as an identifier.
            profile: ProfileSpec::default().with_trcd_ns(8.0).with_iterations(20),
            threshold: 0.95,
        }
    }
}

/// Evaluates the PUF: profiles the region and returns the fingerprint
/// of deterministically failing cells.
///
/// # Errors
///
/// Propagates profiling errors.
pub fn evaluate(ctrl: &mut MemoryController, spec: &PufSpec) -> Result<PufResponse> {
    let profile = Profiler::new(ctrl).run(spec.profile.clone())?;
    let cells = profile
        .cells_in_band(spec.threshold, 1.0)
        .into_iter()
        .collect();
    Ok(PufResponse { cells })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{DeviceConfig, Manufacturer};

    fn ctrl(seed: u64) -> MemoryController {
        MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(seed)
                .with_noise_seed(seed ^ 0x1234),
        )
    }

    fn quick_spec() -> PufSpec {
        PufSpec {
            profile: ProfileSpec {
                rows: 0..256,
                ..ProfileSpec::default()
            }
            .with_trcd_ns(8.0)
            .with_iterations(15),
            ..PufSpec::default()
        }
    }

    #[test]
    fn fingerprint_is_nonempty_and_reproducible() {
        let mut c = ctrl(1001);
        let a = evaluate(&mut c, &quick_spec()).unwrap();
        assert!(!a.is_empty(), "deterministic failures exist");
        let b = evaluate(&mut c, &quick_spec()).unwrap();
        assert!(
            a.similarity(&b) > 0.9,
            "same-device similarity {} must be near 1",
            a.similarity(&b)
        );
    }

    #[test]
    fn different_devices_have_distant_fingerprints() {
        let mut c1 = ctrl(2001);
        let mut c2 = ctrl(2002);
        let a = evaluate(&mut c1, &quick_spec()).unwrap();
        let b = evaluate(&mut c2, &quick_spec()).unwrap();
        assert!(
            a.similarity(&b) < 0.1,
            "cross-device similarity {} must be near 0",
            a.similarity(&b)
        );
        assert!(a.distance(&b) > 0.9);
    }

    #[test]
    fn uniqueness_across_a_small_fleet() {
        let responses: Vec<PufResponse> = (0..4)
            .map(|i| evaluate(&mut ctrl(3000 + i), &quick_spec()).unwrap())
            .collect();
        for i in 0..responses.len() {
            for j in 0..responses.len() {
                let s = responses[i].similarity(&responses[j]);
                if i == j {
                    assert_eq!(s, 1.0);
                } else {
                    assert!(s < 0.15, "devices {i},{j} similarity {s}");
                }
            }
        }
    }

    #[test]
    fn empty_similarity_convention() {
        let empty = PufResponse {
            cells: BTreeSet::new(),
        };
        assert_eq!(empty.similarity(&empty), 1.0);
        assert_eq!(empty.len(), 0);
        assert!(empty.is_empty());
    }

    #[test]
    fn puf_cells_are_high_fprob_cells() {
        let mut c = ctrl(4001);
        let resp = evaluate(&mut c, &quick_spec()).unwrap();
        for cell in resp.cells().take(50) {
            let f = c.device().failure_probability(*cell, 8.0);
            assert!(f > 0.5, "PUF cell {cell:?} has analytic F_prob {f}");
        }
    }
}
