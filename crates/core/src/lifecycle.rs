//! Self-healing RNG-cell lifecycle.
//!
//! The paper's RNG-cell catalog is built once per temperature
//! (Section 6.1), but a deployed device drifts: temperature moves the
//! failure probabilities (Section 5.3), cells age, and some get stuck.
//! [`ResilientDRange`] wraps a [`DRange`] sampler with a per-cell
//! health lifecycle so the generator *degrades honestly* instead of
//! silently emitting biased bits:
//!
//! ```text
//!            trip (stuck run / bias window)
//!   Active ────────────────────────────────▶ Quarantined
//!     ▲                                          │ backoff expires
//!     │ re-characterization passes               ▼
//!     └──────────────────────────────── re-characterize (identify-
//!                                        style reads + symbol test)
//!                                            │ fails max_strikes times
//!                                            ▼
//!                                         Retired ──▶ promote spare
//!                                                     catalog word
//! ```
//!
//! - **Attribution**: one harvest batch is one Algorithm 2 pass, so
//!   batch bit `k` maps to the `k`-th cell of
//!   [`DRange::active_cells`]. A per-cell monitor (run-length +
//!   windowed-bias, per-cell analogues of the SP 800-90B engine-level
//!   tests in [`crate::health`]) attributes misbehavior to individual
//!   cells instead of discarding whole batches.
//! - **Quarantine**: a tripped cell is benched
//!   ([`DRange::suspend_cell`]) with an escalating backoff; throughput
//!   drops but the published stream stays unbiased.
//! - **Re-characterization**: after the backoff, the cell is re-read
//!   `recheck_reads` times exactly like identification
//!   ([`crate::identify`]) and must pass the same symbol-uniformity
//!   criterion to be reinstated; repeated failures retire it
//!   permanently and promote the densest unused catalog word into the
//!   freed plan slot ([`DRange::promote_word`]).
//! - **Degradation**: when the live-cell count falls below
//!   [`LifecycleConfig::degraded_fraction`] of the initial plan, the
//!   [`LifecycleStats::degraded`] flag raises — reduced but honest
//!   throughput, surfaced through the engine and service layers.
//!
//! An optional [`EnvSchedule`] is stepped once per batch (configurable)
//! so chaos tests and the nightly CI tier can drive temperature shocks,
//! aging, and stuck-at faults through the same code path production
//! would experience.

use std::collections::{HashMap, HashSet};

use dram_sim::{CellAddr, EnvSchedule, FaultStats, WordAddr};
use drange_telemetry::{Histogram, MetricsRegistry};
use memctrl::MemoryController;

use crate::bits::BitBlock;
use crate::entropy::symbols_uniform;
use crate::error::{DrangeError, Result};
use crate::identify::RngCellCatalog;
use crate::sampler::{DRange, DRangeConfig};

/// Tuning knobs of the cell lifecycle.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct LifecycleConfig {
    /// A cell emitting this many identical bits in a row trips its
    /// monitor (per-cell analogue of the repetition-count test).
    pub stuck_run_cutoff: u32,
    /// Bits per bias-evaluation window of the per-cell monitor.
    pub bias_window: u32,
    /// A window whose ones-fraction leaves `0.5 ± bias_tolerance`
    /// trips the monitor (per-cell analogue of the adaptive-proportion
    /// test).
    pub bias_tolerance: f64,
    /// Reads per re-characterization (the paper identifies with 1000).
    pub recheck_reads: usize,
    /// Batches a first-strike quarantine lasts; each further strike
    /// doubles it.
    pub backoff_batches: u64,
    /// Strikes (initial trip + failed re-characterizations) after
    /// which a cell is permanently retired.
    pub max_strikes: u32,
    /// The degraded flag raises when live cells drop below this
    /// fraction of the initial plan.
    pub degraded_fraction: f64,
    /// Apply one environment-schedule step every this many batches.
    pub schedule_every: u64,
}

impl Default for LifecycleConfig {
    fn default() -> Self {
        LifecycleConfig {
            stuck_run_cutoff: 48,
            bias_window: 128,
            bias_tolerance: 0.35,
            recheck_reads: 1000,
            backoff_batches: 8,
            max_strikes: 3,
            degraded_fraction: 0.5,
            schedule_every: 1,
        }
    }
}

impl LifecycleConfig {
    fn validate(&self) -> Result<()> {
        if self.stuck_run_cutoff < 2 {
            return Err(DrangeError::InvalidSpec(
                "stuck_run_cutoff must be at least 2".into(),
            ));
        }
        if self.bias_window < 8 {
            return Err(DrangeError::InvalidSpec(
                "bias_window must be at least 8".into(),
            ));
        }
        if !(self.bias_tolerance > 0.0 && self.bias_tolerance < 0.5) {
            return Err(DrangeError::InvalidSpec(
                "bias_tolerance must be in (0, 0.5)".into(),
            ));
        }
        if self.recheck_reads < 64 {
            return Err(DrangeError::InvalidSpec(
                "recheck_reads must be at least 64 for symbol statistics".into(),
            ));
        }
        if self.backoff_batches == 0 || self.schedule_every == 0 {
            return Err(DrangeError::InvalidSpec(
                "backoff_batches and schedule_every must be nonzero".into(),
            ));
        }
        if self.max_strikes == 0 {
            return Err(DrangeError::InvalidSpec(
                "max_strikes must be nonzero".into(),
            ));
        }
        if !(0.0..=1.0).contains(&self.degraded_fraction) {
            return Err(DrangeError::InvalidSpec(
                "degraded_fraction must be in [0, 1]".into(),
            ));
        }
        Ok(())
    }
}

/// Per-cell trip detector: run-length plus windowed bias.
#[derive(Debug, Clone, Copy, Default)]
struct CellMonitor {
    run_value: bool,
    run_len: u32,
    window_ones: u32,
    window_len: u32,
}

impl CellMonitor {
    /// Feeds one harvested bit; returns whether the cell tripped.
    fn observe(&mut self, bit: bool, cfg: &LifecycleConfig) -> bool {
        if bit == self.run_value {
            self.run_len += 1;
        } else {
            self.run_value = bit;
            self.run_len = 1;
        }
        if self.run_len >= cfg.stuck_run_cutoff {
            *self = CellMonitor::default();
            return true;
        }
        self.window_len += 1;
        self.window_ones += u32::from(bit);
        if self.window_len == cfg.bias_window {
            let ones = f64::from(self.window_ones) / f64::from(self.window_len);
            self.window_len = 0;
            self.window_ones = 0;
            if (ones - 0.5).abs() > cfg.bias_tolerance {
                *self = CellMonitor::default();
                return true;
            }
        }
        false
    }
}

/// Lifecycle state of a cell that is not actively harvesting. Live
/// cells carry no state entry.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum CellState {
    /// Benched until `release_at`, then re-characterized.
    Quarantined { strikes: u32, release_at: u64 },
    /// Permanently removed from the plan.
    Retired,
}

/// A point-in-time snapshot of the lifecycle counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct LifecycleStats {
    /// Cells actively harvesting right now.
    pub live_cells: u64,
    /// Cells currently benched awaiting re-characterization.
    pub quarantined_cells: u64,
    /// Cells permanently retired.
    pub retired_cells: u64,
    /// Quarantine entries so far (a cell re-quarantined counts again).
    pub quarantine_events: u64,
    /// Re-characterizations that reinstated their cell.
    pub reinstated_cells: u64,
    /// Spare catalog words promoted into the plan.
    pub promoted_words: u64,
    /// Re-characterization runs completed (pass or fail).
    pub recharacterizations: u64,
    /// Whether live cells dropped below the configured fraction of the
    /// initial plan (reduced but honest throughput).
    pub degraded: bool,
}

impl LifecycleStats {
    /// Field-wise sum of two snapshots (`degraded` ORs) — aggregating
    /// per-channel lifecycles into an engine total.
    #[must_use]
    pub fn merge(self, other: LifecycleStats) -> LifecycleStats {
        LifecycleStats {
            live_cells: self.live_cells + other.live_cells,
            quarantined_cells: self.quarantined_cells + other.quarantined_cells,
            retired_cells: self.retired_cells + other.retired_cells,
            quarantine_events: self.quarantine_events + other.quarantine_events,
            reinstated_cells: self.reinstated_cells + other.reinstated_cells,
            promoted_words: self.promoted_words + other.promoted_words,
            recharacterizations: self.recharacterizations + other.recharacterizations,
            degraded: self.degraded || other.degraded,
        }
    }
}

/// A [`DRange`] sampler wrapped with the self-healing cell lifecycle
/// (and optionally an environmental fault schedule).
#[derive(Debug)]
pub struct ResilientDRange {
    inner: DRange,
    config: LifecycleConfig,
    schedule: Option<EnvSchedule>,
    monitors: HashMap<CellAddr, CellMonitor>,
    states: HashMap<CellAddr, CellState>,
    /// Unused catalog words, densest first, awaiting promotion.
    spares: Vec<(WordAddr, Vec<usize>)>,
    /// Symbol width and tolerance of the catalog's identification
    /// criterion, reused verbatim by re-characterization.
    symbol_bits: usize,
    tolerance: f64,
    initial_cells: usize,
    batches: u64,
    quarantine_events: u64,
    reinstated: u64,
    retired: u64,
    promoted: u64,
    recharacterizations: u64,
    recheck_ns: Histogram,
}

impl ResilientDRange {
    /// Builds the underlying [`DRange`] sampler and arms the lifecycle.
    /// Catalog words that did not make the sampling plan are kept as
    /// promotion spares (densest first).
    ///
    /// # Errors
    ///
    /// Propagates [`DRange::new`] errors and rejects invalid lifecycle
    /// configurations with [`DrangeError::InvalidSpec`].
    pub fn new(
        ctrl: MemoryController,
        catalog: &RngCellCatalog,
        sampler: DRangeConfig,
        lifecycle: LifecycleConfig,
    ) -> Result<Self> {
        lifecycle.validate()?;
        let inner = DRange::new(ctrl, catalog, sampler)?;
        let planned: HashSet<WordAddr> = inner.planned_word_addrs().into_iter().collect();
        let mut spares: Vec<(WordAddr, Vec<usize>)> = catalog
            .words()
            .iter()
            .filter(|(addr, _)| !planned.contains(addr))
            .map(|(addr, bits)| (*addr, bits.clone()))
            .collect();
        spares.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        let initial_cells = inner.bits_per_iteration();
        Ok(ResilientDRange {
            inner,
            config: lifecycle,
            schedule: None,
            monitors: HashMap::new(),
            states: HashMap::new(),
            spares,
            symbol_bits: catalog.spec().symbol_bits,
            tolerance: catalog.spec().tolerance,
            initial_cells,
            batches: 0,
            quarantine_events: 0,
            reinstated: 0,
            retired: 0,
            promoted: 0,
            recharacterizations: 0,
            recheck_ns: Histogram::noop(),
        })
    }

    /// Attaches an environmental fault schedule, stepped every
    /// [`LifecycleConfig::schedule_every`] batches.
    #[must_use]
    pub fn with_schedule(mut self, schedule: EnvSchedule) -> Self {
        self.schedule = Some(schedule);
        self
    }

    /// Registers the re-characterization latency histogram
    /// (`drange_recharacterize_latency_ns`, labeled by channel).
    pub fn attach_telemetry(&mut self, registry: &MetricsRegistry, channel: &str) {
        self.recheck_ns =
            registry.histogram("drange_recharacterize_latency_ns", &[("channel", channel)]);
    }

    /// Borrow of the wrapped sampler.
    pub fn generator(&self) -> &DRange {
        &self.inner
    }

    /// The lifecycle configuration.
    pub fn lifecycle_config(&self) -> &LifecycleConfig {
        &self.config
    }

    /// Batches harvested so far (the lifecycle's clock).
    pub fn batches(&self) -> u64 {
        self.batches
    }

    /// Snapshot of the lifecycle counters.
    pub fn lifecycle_stats(&self) -> LifecycleStats {
        let live = self.inner.bits_per_iteration() as u64;
        let quarantined = self
            .states
            .values()
            .filter(|s| matches!(s, CellState::Quarantined { .. }))
            .count() as u64;
        LifecycleStats {
            live_cells: live,
            quarantined_cells: quarantined,
            retired_cells: self.retired,
            quarantine_events: self.quarantine_events,
            reinstated_cells: self.reinstated,
            promoted_words: self.promoted,
            recharacterizations: self.recharacterizations,
            degraded: (live as f64) < self.config.degraded_fraction * self.initial_cells as f64,
        }
    }

    /// Injected-fault counters of the underlying device.
    pub fn fault_stats(&self) -> FaultStats {
        self.inner.controller().device().fault_stats()
    }

    /// One lifecycle-managed harvest batch: step the environment,
    /// re-characterize cells whose backoff expired, run one Algorithm 2
    /// pass, and feed every harvested bit to its cell's monitor
    /// (quarantining trippers).
    ///
    /// When every active cell is benched, the lifecycle fast-forwards
    /// its batch clock to the earliest quarantine release and
    /// re-characterizes instead of spinning on empty passes.
    ///
    /// # Errors
    ///
    /// Propagates controller/device errors and returns
    /// [`DrangeError::NoRngCells`] once every cell has been permanently
    /// retired.
    pub fn next_batch(&mut self) -> Result<BitBlock> {
        self.step_environment()?;
        self.release_due()?;
        self.ensure_active()?;
        let order = self.inner.active_cells();
        let block = self.inner.harvest_block()?;
        self.batches += 1;
        self.observe(&order, &block);
        Ok(block)
    }

    fn step_environment(&mut self) -> Result<()> {
        if let Some(schedule) = self.schedule.as_mut() {
            if self.batches % self.config.schedule_every == 0 {
                let _ = schedule.step(self.inner.controller_mut().device_mut())?;
            }
        }
        Ok(())
    }

    /// Re-characterizes every quarantined cell whose backoff expired.
    fn release_due(&mut self) -> Result<()> {
        let mut due: Vec<CellAddr> = self
            .states
            .iter()
            .filter_map(|(cell, state)| match state {
                CellState::Quarantined { release_at, .. } if *release_at <= self.batches => {
                    Some(*cell)
                }
                _ => None,
            })
            .collect();
        due.sort_unstable();
        for cell in due {
            self.recheck(cell)?;
        }
        Ok(())
    }

    /// Fast-forwards past fully-benched stretches so a caller never
    /// busy-loops on empty batches.
    fn ensure_active(&mut self) -> Result<()> {
        while self.inner.bits_per_iteration() == 0 {
            let earliest = self
                .states
                .values()
                .filter_map(|state| match state {
                    CellState::Quarantined { release_at, .. } => Some(*release_at),
                    CellState::Retired => None,
                })
                .min();
            match earliest {
                Some(release_at) => {
                    self.batches = self.batches.max(release_at);
                    self.release_due()?;
                }
                None => {
                    return Err(DrangeError::NoRngCells(
                        "every RNG cell has been permanently retired".into(),
                    ))
                }
            }
        }
        Ok(())
    }

    fn observe(&mut self, order: &[CellAddr], block: &BitBlock) {
        let cfg = self.config;
        let mut tripped: Vec<CellAddr> = Vec::new();
        for (cell, bit) in order.iter().zip(block.iter()) {
            let monitor = self.monitors.entry(*cell).or_default();
            if monitor.observe(bit, &cfg) {
                tripped.push(*cell);
            }
        }
        for cell in tripped {
            self.quarantine(cell);
        }
    }

    fn quarantine(&mut self, cell: CellAddr) {
        if !self.inner.suspend_cell(cell) {
            return;
        }
        self.monitors.remove(&cell);
        self.states.insert(
            cell,
            CellState::Quarantined {
                strikes: 1,
                release_at: self.batches + self.config.backoff_batches,
            },
        );
        self.quarantine_events += 1;
    }

    /// Re-characterizes one quarantined cell: identify-style sampling
    /// (refresh → reduced-tRCD ACT → READ → restore → PRE, harvesting
    /// the failure indicator) followed by the catalog's
    /// symbol-uniformity criterion. Reinstates on a pass; escalates the
    /// strike count (doubling the backoff) on a failure, retiring the
    /// cell — and promoting a spare word — at `max_strikes`.
    fn recheck(&mut self, cell: CellAddr) -> Result<()> {
        let strikes = match self.states.get(&cell) {
            Some(CellState::Quarantined { strikes, .. }) => *strikes,
            _ => return Ok(()),
        };
        let t0 = self.recheck_ns.start();
        let passed = self.sample_cell(cell)?;
        self.recheck_ns.observe_since(t0);
        self.recharacterizations += 1;
        if passed {
            self.inner.resume_cell(cell);
            self.states.remove(&cell);
            self.monitors.insert(cell, CellMonitor::default());
            self.reinstated += 1;
        } else if strikes + 1 >= self.config.max_strikes {
            self.inner.retire_cell(cell);
            self.states.insert(cell, CellState::Retired);
            self.retired += 1;
            self.try_promote_spare();
        } else {
            let backoff = self
                .config
                .backoff_batches
                .saturating_mul(1u64 << (strikes.min(32) as u64));
            self.states.insert(
                cell,
                CellState::Quarantined {
                    strikes: strikes + 1,
                    release_at: self.batches + backoff,
                },
            );
        }
        Ok(())
    }

    fn sample_cell(&mut self, cell: CellAddr) -> Result<bool> {
        let trcd_ns = self.inner.config().trcd_ns;
        let pattern = self.inner.config().pattern;
        let reads = self.config.recheck_reads;
        let addr = cell.word();
        let ctrl = self.inner.controller_mut();
        let word_bits = ctrl.device().geometry().word_bits;
        let expected = pattern.word(addr.row, addr.col, word_bits);
        ctrl.try_set_trcd_ns(trcd_ns)?;
        let mut stream = Vec::with_capacity(reads);
        let sampled = (|| -> Result<()> {
            for _ in 0..reads {
                ctrl.refresh_row(addr.bank, addr.row)?;
                ctrl.act(addr.bank, addr.row)?;
                let got = ctrl.rd(addr.bank, addr.row, addr.col)?;
                if got != expected {
                    ctrl.wr(addr.bank, addr.row, addr.col, expected)?;
                }
                ctrl.pre(addr.bank)?;
                stream.push((got >> cell.bit) & 1 != (expected >> cell.bit) & 1);
            }
            Ok(())
        })();
        ctrl.reset_trcd();
        sampled?;
        Ok(symbols_uniform(&stream, self.symbol_bits, self.tolerance))
    }

    /// Promotes the densest spare word the current plan can accept (if
    /// any); spares whose bank is full today stay available for later.
    fn try_promote_spare(&mut self) {
        for i in 0..self.spares.len() {
            let (addr, bits) = self.spares[i].clone();
            if self.inner.promote_word(addr, &bits).is_ok() {
                self.spares.remove(i);
                self.promoted += 1;
                return;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::{IdentifySpec, RngCellCatalog};
    use crate::profiler::{ProfileSpec, Profiler};
    use dram_sim::{DeviceConfig, Manufacturer};

    fn fresh_ctrl() -> MemoryController {
        MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(42)
                .with_noise_seed(4242),
        )
    }

    fn catalog() -> &'static RngCellCatalog {
        static CATALOG: std::sync::OnceLock<RngCellCatalog> = std::sync::OnceLock::new();
        CATALOG.get_or_init(|| {
            let mut ctrl = fresh_ctrl();
            let profile = Profiler::new(&mut ctrl)
                .run(
                    ProfileSpec {
                        banks: (0..8).collect(),
                        rows: 0..256,
                        cols: 0..16,
                        ..ProfileSpec::default()
                    }
                    .with_iterations(30),
                )
                .unwrap();
            RngCellCatalog::identify(
                &mut ctrl,
                &profile,
                IdentifySpec {
                    reads: 1000,
                    ..IdentifySpec::default()
                },
            )
            .unwrap()
        })
    }

    /// Fast-tripping test config. The run cutoff stays at 24 — low
    /// enough that a stuck cell trips in 24 batches, high enough that
    /// an honest fair-coin cell essentially never does (P ≈ 2⁻²³ per
    /// bit; ~10⁻³ expected false trips across a whole test run).
    fn quick_lifecycle() -> LifecycleConfig {
        LifecycleConfig {
            stuck_run_cutoff: 24,
            bias_window: 64,
            backoff_batches: 16,
            max_strikes: 2,
            ..LifecycleConfig::default()
        }
    }

    fn resilient(lifecycle: LifecycleConfig) -> ResilientDRange {
        ResilientDRange::new(fresh_ctrl(), catalog(), DRangeConfig::default(), lifecycle).unwrap()
    }

    #[test]
    fn healthy_cells_stay_live() {
        let mut r = resilient(LifecycleConfig::default());
        for _ in 0..32 {
            let _ = r.next_batch().unwrap();
        }
        let stats = r.lifecycle_stats();
        assert_eq!(stats.quarantine_events, 0, "{stats:?}");
        assert_eq!(
            stats.live_cells as usize,
            r.generator().bits_per_iteration()
        );
        assert!(!stats.degraded);
    }

    #[test]
    fn stuck_cell_is_quarantined_then_retired() {
        let mut r = resilient(quick_lifecycle());
        let victim = r.generator().active_cells()[0];
        r.inner
            .controller_mut()
            .device_mut()
            .set_stuck(victim, true)
            .unwrap();
        // The constant failure indicator trips the run-length monitor
        // at exactly `stuck_run_cutoff` batches; the 16-batch backoff
        // leaves a window to observe the quarantined state.
        for _ in 0..28 {
            let _ = r.next_batch().unwrap();
        }
        let stats = r.lifecycle_stats();
        assert_eq!(stats.quarantine_events, 1, "{stats:?}");
        assert_eq!(stats.quarantined_cells, 1);
        assert!(!r.generator().active_cells().contains(&victim));
        // Still stuck at every recheck: strikes escalate to retirement.
        for _ in 0..28 {
            let _ = r.next_batch().unwrap();
        }
        let stats = r.lifecycle_stats();
        assert_eq!(stats.retired_cells, 1, "{stats:?}");
        assert_eq!(stats.quarantined_cells, 0);
        assert!(stats.recharacterizations >= 1);
        assert_eq!(stats.reinstated_cells, 0);
    }

    #[test]
    fn transient_fault_cells_are_reinstated() {
        // Escalating backoffs give transient faults time to clear
        // before retirement.
        let mut r = resilient(LifecycleConfig {
            stuck_run_cutoff: 24,
            bias_window: 64,
            backoff_batches: 4,
            max_strikes: 10,
            ..LifecycleConfig::default()
        });
        let baseline = r.lifecycle_stats().live_cells;
        let victims: Vec<CellAddr> = r.generator().active_cells()[..5].to_vec();
        for &cell in &victims {
            r.inner
                .controller_mut()
                .device_mut()
                .set_stuck(cell, true)
                .unwrap();
        }
        for _ in 0..26 {
            let _ = r.next_batch().unwrap();
        }
        let faulted = r.lifecycle_stats();
        assert!(faulted.quarantine_events >= 5, "{faulted:?}");
        assert!(faulted.live_cells < baseline);
        // Fault clears: backed-off cells re-characterize against the
        // healthy device and return to service.
        for &cell in &victims {
            r.inner
                .controller_mut()
                .device_mut()
                .clear_stuck(cell)
                .unwrap();
        }
        while r.lifecycle_stats().reinstated_cells < 5 {
            let _ = r.next_batch().unwrap();
            assert!(
                r.batches() < 10_000,
                "victims never reinstated: {:?}",
                r.lifecycle_stats()
            );
        }
        let healed = r.lifecycle_stats();
        assert_eq!(healed.retired_cells, 0, "{healed:?}");
        assert_eq!(healed.live_cells, baseline);
    }

    #[test]
    fn degraded_flag_tracks_live_fraction() {
        let mut r = resilient(quick_lifecycle());
        assert!(!r.lifecycle_stats().degraded);
        // Bench everything by hand: the snapshot must flip to degraded.
        for cell in r.generator().active_cells() {
            assert!(r.inner.suspend_cell(cell));
        }
        assert!(r.lifecycle_stats().degraded);
        assert_eq!(r.lifecycle_stats().live_cells, 0);
    }

    #[test]
    fn fully_benched_plan_fast_forwards_instead_of_spinning() {
        let mut r = resilient(quick_lifecycle());
        // Break every cell in the whole catalog — spares included, or
        // retirement would promote healthy spare words and the
        // generator would self-heal instead of dying. Rechecks must
        // fail while stuck, so retirement eventually empties the plan
        // and next_batch reports NoRngCells instead of hanging.
        for (addr, bits) in catalog().words() {
            for &bit in bits {
                r.inner
                    .controller_mut()
                    .device_mut()
                    .set_stuck(addr.cell(bit), true)
                    .unwrap();
            }
        }
        let err = loop {
            match r.next_batch() {
                Ok(_) => {}
                Err(e) => break e,
            }
            assert!(
                r.batches() < 100_000,
                "lifecycle failed to converge: {:?}",
                r.lifecycle_stats()
            );
        };
        assert!(matches!(err, DrangeError::NoRngCells(_)), "got {err:?}");
        let stats = r.lifecycle_stats();
        assert_eq!(stats.live_cells, 0);
        // Promoted spare words also tripped and retired, so the retired
        // total covers at least the initially planned population.
        assert!(stats.retired_cells as usize >= r.initial_cells);
    }

    #[test]
    fn retiring_a_full_word_promotes_a_spare() {
        // Plan only the best bank: every other catalog word is a spare.
        let mut r = ResilientDRange::new(
            fresh_ctrl(),
            catalog(),
            DRangeConfig {
                banks: Some(1),
                ..DRangeConfig::default()
            },
            quick_lifecycle(),
        )
        .unwrap();
        assert!(!r.spares.is_empty(), "unplanned catalog words are spares");
        for cell in r.generator().active_cells() {
            r.inner
                .controller_mut()
                .device_mut()
                .set_stuck(cell, true)
                .unwrap();
        }
        // Run until the first promotion lands (retirements free slots
        // and pull spare words in).
        while r.lifecycle_stats().promoted_words == 0 {
            r.next_batch().unwrap();
            assert!(
                r.batches() < 100_000,
                "no promotion: {:?}",
                r.lifecycle_stats()
            );
        }
        let stats = r.lifecycle_stats();
        assert!(stats.retired_cells > 0);
        assert!(stats.live_cells > 0, "promoted cells harvest");
    }

    #[test]
    fn schedule_steps_reach_the_device() {
        let schedule = EnvSchedule::new(7).shock(20.0).hold(3).ramp(-20.0, 4);
        let mut r = resilient(LifecycleConfig::default()).with_schedule(schedule);
        let t0 = r.generator().controller().device().temperature();
        let _ = r.next_batch().unwrap();
        let t1 = r.generator().controller().device().temperature();
        assert!((t1.degrees() - t0.degrees() - 20.0).abs() < 1e-9);
        assert_eq!(r.fault_stats().temperature_events, 1);
        for _ in 0..7 {
            let _ = r.next_batch().unwrap();
        }
        let t_end = r.generator().controller().device().temperature();
        assert!(
            (t_end.degrees() - t0.degrees()).abs() < 1e-9,
            "ramp returned to baseline: {t_end:?}"
        );
    }

    #[test]
    fn recharacterization_latency_is_recorded() {
        let registry = MetricsRegistry::new();
        let mut r = resilient(quick_lifecycle());
        r.attach_telemetry(&registry, "0");
        let victim = r.generator().active_cells()[0];
        r.inner
            .controller_mut()
            .device_mut()
            .set_stuck(victim, true)
            .unwrap();
        for _ in 0..44 {
            let _ = r.next_batch().unwrap();
        }
        assert!(r.lifecycle_stats().recharacterizations >= 1);
        let text = registry.render_prometheus();
        assert!(
            text.contains("drange_recharacterize_latency_ns_count{channel=\"0\"}"),
            "missing histogram in:\n{text}"
        );
    }

    #[test]
    fn stats_merge_sums_and_ors() {
        let a = LifecycleStats {
            live_cells: 10,
            quarantined_cells: 2,
            retired_cells: 1,
            quarantine_events: 5,
            reinstated_cells: 2,
            promoted_words: 1,
            recharacterizations: 4,
            degraded: false,
        };
        let b = LifecycleStats {
            live_cells: 7,
            degraded: true,
            ..LifecycleStats::default()
        };
        let m = a.merge(b);
        assert_eq!(m.live_cells, 17);
        assert_eq!(m.quarantine_events, 5);
        assert!(m.degraded);
        assert_eq!(
            LifecycleStats::default().merge(LifecycleStats::default()),
            LifecycleStats::default()
        );
    }

    #[test]
    fn invalid_lifecycle_configs_rejected() {
        for bad in [
            LifecycleConfig {
                stuck_run_cutoff: 1,
                ..LifecycleConfig::default()
            },
            LifecycleConfig {
                bias_tolerance: 0.5,
                ..LifecycleConfig::default()
            },
            LifecycleConfig {
                recheck_reads: 10,
                ..LifecycleConfig::default()
            },
            LifecycleConfig {
                backoff_batches: 0,
                ..LifecycleConfig::default()
            },
            LifecycleConfig {
                max_strikes: 0,
                ..LifecycleConfig::default()
            },
            LifecycleConfig {
                degraded_fraction: 1.5,
                ..LifecycleConfig::default()
            },
        ] {
            assert!(
                ResilientDRange::new(fresh_ctrl(), catalog(), DRangeConfig::default(), bad)
                    .is_err(),
                "{bad:?} must be rejected"
            );
        }
    }
}
