//! Error type for the D-RaNGe mechanism.

use std::fmt;

use memctrl::MemError;

/// Convenience alias for `Result<T, DrangeError>`.
pub type Result<T> = std::result::Result<T, DrangeError>;

/// Errors raised by the D-RaNGe pipeline.
#[derive(Debug, Clone, PartialEq)]
pub enum DrangeError {
    /// The memory controller / device rejected an operation.
    Memory(MemError),
    /// A profiling or identification specification was invalid.
    InvalidSpec(String),
    /// No RNG cells were found (or none satisfy the sampling plan's
    /// needs, e.g. two words in distinct rows per bank).
    NoRngCells(String),
    /// The online health tests rejected the generator's output
    /// persistently (possible environmental attack or device fault).
    Unhealthy(String),
    /// The concurrent harvesting engine failed or stopped (worker
    /// thread could not be spawned, or the engine wound down before a
    /// request could be served).
    Engine(String),
}

impl fmt::Display for DrangeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            DrangeError::Memory(e) => write!(f, "memory error: {e}"),
            DrangeError::InvalidSpec(msg) => write!(f, "invalid specification: {msg}"),
            DrangeError::NoRngCells(msg) => write!(f, "no usable RNG cells: {msg}"),
            DrangeError::Unhealthy(msg) => write!(f, "health tests rejected output: {msg}"),
            DrangeError::Engine(msg) => write!(f, "harvesting engine failed: {msg}"),
        }
    }
}

impl std::error::Error for DrangeError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            DrangeError::Memory(e) => Some(e),
            _ => None,
        }
    }
}

impl From<MemError> for DrangeError {
    fn from(e: MemError) -> Self {
        DrangeError::Memory(e)
    }
}

impl From<dram_sim::DramError> for DrangeError {
    fn from(e: dram_sim::DramError) -> Self {
        DrangeError::Memory(MemError::Device(e))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wraps_memory_errors() {
        use std::error::Error;
        let e = DrangeError::from(dram_sim::DramError::BankNotOpen { bank: 1 });
        assert!(e.to_string().contains("bank 1"));
        assert!(e.source().is_some());
    }

    #[test]
    fn error_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<DrangeError>();
    }
}
