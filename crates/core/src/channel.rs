//! Notification-driven bounded MPSC channel for harvest batches.
//!
//! The engine's worker→collector hand-off used to ride on a
//! `crossbeam` bounded channel polled with `send_timeout` /
//! `recv_timeout`: every state change the peers cared about (space
//! opening up, a batch arriving, shutdown) was eventually *observed* by
//! a timeout tick rather than *signaled*, which papered over lost
//! wakeups with up-to-20 ms stalls on the serve path. This module is
//! the replacement: a hand-rolled `Mutex<VecDeque>` + two condvars
//! whose protocol matches the model checked in
//! `crates/core/tests/loom_engine.rs` — every transition a blocked peer
//! waits on performs an explicit notify, so all waits are plain
//! (untimed) and a missing notify is a hard deadlock under the loom
//! model instead of a silent latency cliff.
//!
//! Protocol invariants (the loom model checks these literally):
//!
//! - `send` publishes under the state lock and notifies `data` after
//!   releasing it; `recv` consumes under the lock and notifies `space`.
//! - [`BatchChannel::close`] and [`BatchChannel::retire_sender`] mutate
//!   state *under the lock* before notifying, so a peer that checked
//!   the predicate just before the transition cannot park through the
//!   wakeup (mutation-under-lock is the moral equivalent of the lock
//!   barrier in `HarvestEngine::halt`).
//! - `recv` keeps draining queued batches after `close` — shutdown must
//!   not strand successfully-sent batches, or the engine's
//!   bit-conservation invariant (harvested = served + queued +
//!   discarded) breaks.
//!
//! [`ShardedChannel`] layers channel affinity on top: one
//! single-sender [`BatchChannel`] per producer plus a doorbell
//! sequence the consumer parks on, so producers never contend on each
//! other's shard locks and the consumer multiplexes the shards with
//! non-blocking drains ([`BatchChannel::try_recv`]).

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

/// State behind the channel lock.
#[derive(Debug)]
struct ChannelState<T> {
    queue: VecDeque<T>,
    /// Producers still attached; `recv` returns `None` once this hits
    /// zero with the queue drained.
    senders: usize,
    /// Raised by [`BatchChannel::close`]: further sends fail fast.
    closed: bool,
}

/// A bounded multi-producer single-consumer channel whose blocking
/// operations are purely notification-driven (no timeout polling).
///
/// `senders` is fixed at construction: each producer must call
/// [`BatchChannel::retire_sender`] exactly once when it exits, which is
/// what lets `recv` distinguish "no batch yet" from "no batch ever
/// again".
#[derive(Debug)]
pub struct BatchChannel<T> {
    state: Mutex<ChannelState<T>>,
    /// Signaled when a batch is queued or the sender population/closed
    /// flag changes — everything `recv` waits on.
    data: Condvar,
    /// Signaled when a batch is consumed or the channel closes —
    /// everything `send` waits on.
    space: Condvar,
    capacity: usize,
}

impl<T> BatchChannel<T> {
    /// A channel holding at most `capacity` batches, with `senders`
    /// attached producers. A zero capacity is rounded up to one so
    /// `send` can always make progress.
    pub fn new(capacity: usize, senders: usize) -> Self {
        BatchChannel {
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                senders,
                closed: false,
            }),
            data: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks until the batch is queued, waking the consumer.
    ///
    /// # Errors
    ///
    /// Returns the batch back when the channel was closed before space
    /// opened up — the caller still owns the bits and must account for
    /// them (the engine's workers book them as discarded).
    pub fn send(&self, batch: T) -> Result<(), T> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(batch);
            }
            if state.queue.len() < self.capacity {
                state.queue.push_back(batch);
                drop(state);
                self.data.notify_one();
                return Ok(());
            }
            self.space.wait(&mut state);
        }
    }

    /// Queues the batch only if space is available right now, never
    /// blocking. Used by consumers that *re*-enqueue work (the server's
    /// keep-alive connection rotation), where blocking would deadlock:
    /// every worker could otherwise park in `send` with nobody left to
    /// `recv`.
    ///
    /// # Errors
    ///
    /// Returns the batch back when the channel is closed or full; the
    /// caller keeps ownership and decides (keep serving, drop, …).
    pub fn try_send(&self, batch: T) -> Result<(), T> {
        let mut state = self.state.lock();
        if state.closed || state.queue.len() >= self.capacity {
            return Err(batch);
        }
        state.queue.push_back(batch);
        drop(state);
        self.data.notify_one();
        Ok(())
    }

    /// Dequeues a batch if one is available right now, never blocking.
    /// The non-blocking half of the consumer protocol: a consumer
    /// multiplexing several channels (the sharded collector) cannot
    /// park inside any single channel's `recv` without going deaf to
    /// the others, so it polls with `try_recv` and parks on an
    /// external doorbell instead (see [`ShardedChannel::recv_any`]).
    ///
    /// Like [`BatchChannel::recv`], queued batches keep draining after
    /// [`BatchChannel::close`]; `Disconnected` is reported only once
    /// every sender has retired *and* the queue is empty.
    pub fn try_recv(&self) -> TryRecv<T> {
        let mut state = self.state.lock();
        if let Some(batch) = state.queue.pop_front() {
            drop(state);
            self.space.notify_one();
            return TryRecv::Batch(batch);
        }
        if state.senders == 0 {
            TryRecv::Disconnected
        } else {
            TryRecv::Empty
        }
    }

    /// Blocks until a batch is available and returns it, or `None` once
    /// every sender has retired and the queue is drained.
    ///
    /// Queued batches keep flowing after [`BatchChannel::close`]: close
    /// only stops *new* sends, it never strands delivered ones.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(batch) = state.queue.pop_front() {
                drop(state);
                self.space.notify_one();
                return Some(batch);
            }
            if state.senders == 0 {
                return None;
            }
            self.data.wait(&mut state);
        }
    }

    /// Detaches one producer. Must be called exactly once per sender;
    /// when the last one retires, a blocked `recv` wakes and observes
    /// the end of the stream.
    pub fn retire_sender(&self) {
        let mut state = self.state.lock();
        state.senders = state.senders.saturating_sub(1);
        let last = state.senders == 0;
        drop(state);
        if last {
            self.data.notify_all();
        }
    }

    /// Closes the channel: subsequent and currently-blocked sends fail
    /// fast (returning their batch), while queued batches remain
    /// receivable. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        // Both sides: blocked senders must observe `closed`, and the
        // consumer may be parked waiting for data that now never comes
        // (its senders will retire, but waking it here shortens the
        // shutdown path).
        self.space.notify_all();
        self.data.notify_all();
    }

    /// Batches currently queued (test/diagnostic use).
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether no batches are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

/// Outcome of a non-blocking receive attempt
/// ([`BatchChannel::try_recv`]).
#[derive(Debug, PartialEq, Eq)]
pub enum TryRecv<T> {
    /// A batch was dequeued.
    Batch(T),
    /// Nothing queued right now, but senders remain attached — more
    /// batches may arrive.
    Empty,
    /// Nothing queued and every sender has retired: the stream has
    /// ended.
    Disconnected,
}

/// A channel-affine fan-in: one single-sender [`BatchChannel`] shard
/// per producer, plus a doorbell the consumer parks on.
///
/// With a single shared MPSC channel, every worker publish contends on
/// one lock with every *other* channel's worker — the hand-off
/// serializes exactly the threads the engine spawned to be
/// independent. Sharding makes each worker the sole sender of its own
/// bounded [`BatchChannel`]: a publish touches that shard's lock
/// (shared only with the collector's drain of the same shard) and the
/// doorbell, so workers never contend on another channel's state and
/// publish cost stays flat as workers are added.
///
/// Doorbell protocol (model-checked in `tests/loom_engine.rs`): every
/// transition a parked consumer could be waiting on — a send landing,
/// a sender retiring, the channel closing — bumps the doorbell
/// sequence under the doorbell lock and notifies.
/// [`ShardedChannel::recv_any`] snapshots the sequence *before*
/// scanning the shards and parks only while the sequence still equals
/// the snapshot: a ring that lands mid-scan advances the sequence, so
/// the park is skipped and the wakeup cannot be lost. The doorbell
/// lock is never held while a shard lock is held (and vice versa), so
/// the two layers cannot deadlock against each other.
#[derive(Debug)]
pub struct ShardedChannel<T> {
    shards: Vec<BatchChannel<T>>,
    /// Doorbell sequence: bumped under this lock on every consumer-
    /// visible transition, compared against a pre-scan snapshot by
    /// `recv_any` before parking.
    doorbell: Mutex<u64>,
    /// Signaled (after the bump) whenever the doorbell sequence moves.
    bell_rung: Condvar,
}

impl<T> ShardedChannel<T> {
    /// A fan-in of `shards` single-sender channels, each holding at
    /// most `capacity` batches. Shard `i` belongs to producer `i`.
    pub fn new(capacity: usize, shards: usize) -> Self {
        ShardedChannel {
            shards: (0..shards)
                .map(|_| BatchChannel::new(capacity, 1))
                .collect(),
            doorbell: Mutex::new(0),
            bell_rung: Condvar::new(),
        }
    }

    /// Number of shards (attached producers).
    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    /// Bumps the doorbell sequence and wakes the consumer. Called
    /// after every transition `recv_any` could be parked on.
    fn ring(&self) {
        let mut seq = self.doorbell.lock();
        *seq = seq.wrapping_add(1);
        drop(seq);
        self.bell_rung.notify_all();
    }

    /// Blocks until the batch is queued on `shard`, then rings the
    /// doorbell. Only producer `shard` may call this — the shard is
    /// single-sender by construction.
    ///
    /// # Errors
    ///
    /// As [`BatchChannel::send`]: returns the batch back when the
    /// channel was closed before space opened up.
    pub fn send(&self, shard: usize, batch: T) -> Result<(), T> {
        let out = self.shards[shard].send(batch);
        if out.is_ok() {
            self.ring();
        }
        out
    }

    /// Detaches producer `shard`. Must be called exactly once per
    /// shard; rings the doorbell so a parked consumer re-scans and can
    /// observe the end of the stream.
    pub fn retire_sender(&self, shard: usize) {
        self.shards[shard].retire_sender();
        self.ring();
    }

    /// Closes every shard (blocked and future sends fail fast,
    /// delivered batches keep draining) and rings the doorbell.
    /// Idempotent.
    pub fn close(&self) {
        for shard in &self.shards {
            shard.close();
        }
        self.ring();
    }

    /// Blocks until any shard has a batch and returns it, or `None`
    /// once every producer has retired and all shards are drained.
    ///
    /// `cursor` persists the round-robin position across calls: the
    /// scan resumes *after* the shard that last delivered, so one
    /// fast producer cannot starve the others.
    pub fn recv_any(&self, cursor: &mut usize) -> Option<T> {
        let n = self.shards.len();
        loop {
            // Snapshot before the scan: a ring that lands during (or
            // after) the scan advances the sequence past the snapshot
            // and defeats the park below. Snapshotting after the scan
            // would open a scan-to-park window where a send's ring is
            // already folded into the snapshot — a lost wakeup (the
            // loom model pins this ordering).
            let snapshot = *self.doorbell.lock();
            let mut live = false;
            for k in 0..n {
                let i = (*cursor + k) % n;
                match self.shards[i].try_recv() {
                    TryRecv::Batch(batch) => {
                        *cursor = (i + 1) % n;
                        return Some(batch);
                    }
                    TryRecv::Empty => live = true,
                    TryRecv::Disconnected => {}
                }
            }
            if !live {
                return None;
            }
            // Not a re-acquire: `snapshot` above copies the u64 out of a
            // temporary guard that drops at the end of its own statement.
            // xtask:allow(lock-order) -- `snapshot` is a copied u64, its guard already dropped; the doorbell is unheld here
            let mut seq = self.doorbell.lock();
            while *seq == snapshot {
                self.bell_rung.wait(&mut seq);
            }
        }
    }

    /// Batches currently queued across all shards (test/diagnostic
    /// use).
    pub fn len(&self) -> usize {
        self.shards.iter().map(BatchChannel::len).sum()
    }

    /// Whether no batches are queued on any shard.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn round_trip_in_order() {
        let ch = BatchChannel::new(4, 1);
        ch.send(1).unwrap();
        ch.send(2).unwrap();
        ch.retire_sender();
        assert_eq!(ch.recv(), Some(1));
        assert_eq!(ch.recv(), Some(2));
        assert_eq!(ch.recv(), None);
    }

    #[test]
    fn zero_capacity_rounds_up() {
        let ch = BatchChannel::new(0, 1);
        ch.send(7u64).unwrap();
        assert_eq!(ch.recv(), Some(7));
    }

    #[test]
    fn send_blocks_until_space_then_completes() {
        let ch = Arc::new(BatchChannel::new(1, 1));
        ch.send(1).unwrap();
        let producer = thread::spawn({
            let ch = Arc::clone(&ch);
            move || {
                // Blocks: capacity 1, one batch queued.
                ch.send(2).unwrap();
                ch.retire_sender();
            }
        });
        // Give the producer a chance to park (best effort; the test is
        // correct either way).
        thread::sleep(Duration::from_millis(20));
        assert_eq!(ch.recv(), Some(1));
        assert_eq!(ch.recv(), Some(2));
        assert_eq!(ch.recv(), None);
        producer.join().unwrap();
    }

    #[test]
    fn close_fails_blocked_sender_and_returns_the_batch() {
        let ch = Arc::new(BatchChannel::new(1, 1));
        ch.send(10).unwrap();
        let producer = thread::spawn({
            let ch = Arc::clone(&ch);
            move || {
                let out = ch.send(11);
                ch.retire_sender();
                out
            }
        });
        thread::sleep(Duration::from_millis(20));
        ch.close();
        assert_eq!(
            producer.join().unwrap(),
            Err(11),
            "sender gets its batch back"
        );
        // The batch delivered before close still drains.
        assert_eq!(ch.recv(), Some(10));
        assert_eq!(ch.recv(), None);
    }

    #[test]
    fn recv_wakes_on_last_retire() {
        let ch = Arc::new(BatchChannel::<u64>::new(4, 2));
        let consumer = thread::spawn({
            let ch = Arc::clone(&ch);
            move || ch.recv()
        });
        thread::sleep(Duration::from_millis(20));
        ch.retire_sender();
        ch.retire_sender();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn try_send_never_blocks() {
        let ch = BatchChannel::new(1, 1);
        assert_eq!(ch.try_send(1), Ok(()));
        assert_eq!(ch.try_send(2), Err(2), "full channel refuses instantly");
        assert_eq!(ch.recv(), Some(1));
        assert_eq!(ch.try_send(3), Ok(()));
        ch.close();
        assert_eq!(ch.try_send(4), Err(4), "closed channel refuses instantly");
        // The batch delivered before close still drains.
        assert_eq!(ch.recv(), Some(3));
    }

    #[test]
    fn close_is_idempotent_and_fails_later_sends() {
        let ch = BatchChannel::new(4, 1);
        ch.close();
        ch.close();
        assert_eq!(ch.send(5), Err(5));
        assert!(ch.is_empty());
    }

    #[test]
    fn try_recv_reports_all_three_states() {
        let ch = BatchChannel::new(4, 1);
        assert_eq!(ch.try_recv(), TryRecv::Empty);
        ch.send(9).unwrap();
        assert_eq!(ch.try_recv(), TryRecv::Batch(9));
        ch.send(10).unwrap();
        ch.retire_sender();
        // Delivered batches drain before the stream ends.
        assert_eq!(ch.try_recv(), TryRecv::Batch(10));
        assert_eq!(ch.try_recv(), TryRecv::Disconnected);
    }

    #[test]
    fn try_recv_frees_space_for_a_blocked_sender() {
        let ch = Arc::new(BatchChannel::new(1, 1));
        ch.send(1).unwrap();
        let producer = thread::spawn({
            let ch = Arc::clone(&ch);
            move || ch.send(2)
        });
        thread::sleep(Duration::from_millis(20));
        assert_eq!(ch.try_recv(), TryRecv::Batch(1));
        assert_eq!(producer.join().unwrap(), Ok(()));
        assert_eq!(ch.try_recv(), TryRecv::Batch(2));
    }

    #[test]
    fn sharded_round_robin_does_not_starve_a_slow_producer() {
        let ch = ShardedChannel::new(4, 3);
        // Shard 0 is "fast" (two batches queued), shard 2 has one.
        ch.send(0, 100).unwrap();
        ch.send(0, 101).unwrap();
        ch.send(2, 300).unwrap();
        let mut cursor = 0;
        assert_eq!(ch.recv_any(&mut cursor), Some(100));
        // The cursor moved past shard 0: shard 2's batch goes next even
        // though shard 0 still has one queued.
        assert_eq!(ch.recv_any(&mut cursor), Some(300));
        assert_eq!(ch.recv_any(&mut cursor), Some(101));
        assert!(ch.is_empty());
    }

    #[test]
    fn sharded_recv_ends_after_every_sender_retires() {
        let ch = ShardedChannel::new(4, 2);
        ch.send(1, 7).unwrap();
        ch.retire_sender(0);
        ch.retire_sender(1);
        let mut cursor = 0;
        // Delivered batches drain before the end of the stream.
        assert_eq!(ch.recv_any(&mut cursor), Some(7));
        assert_eq!(ch.recv_any(&mut cursor), None);
    }

    #[test]
    fn sharded_doorbell_wakes_a_parked_consumer() {
        let ch = Arc::new(ShardedChannel::new(2, 2));
        let consumer = thread::spawn({
            let ch = Arc::clone(&ch);
            move || {
                let mut cursor = 0;
                let first = ch.recv_any(&mut cursor);
                let second = ch.recv_any(&mut cursor);
                (first, second)
            }
        });
        // Let the consumer park on the doorbell (best effort).
        thread::sleep(Duration::from_millis(20));
        ch.send(1, 42).unwrap();
        ch.retire_sender(1);
        ch.retire_sender(0);
        assert_eq!(consumer.join().unwrap(), (Some(42), None));
    }

    #[test]
    fn sharded_close_fails_a_blocked_sender_and_keeps_delivered_batches() {
        let ch = Arc::new(ShardedChannel::new(1, 2));
        ch.send(0, 10).unwrap();
        let producer = thread::spawn({
            let ch = Arc::clone(&ch);
            move || {
                // Blocks: shard 0 is full and nobody is draining.
                let out = ch.send(0, 11);
                ch.retire_sender(0);
                out
            }
        });
        thread::sleep(Duration::from_millis(20));
        ch.close();
        assert_eq!(producer.join().unwrap(), Err(11));
        ch.retire_sender(1);
        let mut cursor = 0;
        assert_eq!(ch.recv_any(&mut cursor), Some(10));
        assert_eq!(ch.recv_any(&mut cursor), None);
    }
}
