//! Notification-driven bounded MPSC channel for harvest batches.
//!
//! The engine's worker→collector hand-off used to ride on a
//! `crossbeam` bounded channel polled with `send_timeout` /
//! `recv_timeout`: every state change the peers cared about (space
//! opening up, a batch arriving, shutdown) was eventually *observed* by
//! a timeout tick rather than *signaled*, which papered over lost
//! wakeups with up-to-20 ms stalls on the serve path. This module is
//! the replacement: a hand-rolled `Mutex<VecDeque>` + two condvars
//! whose protocol matches the model checked in
//! `crates/core/tests/loom_engine.rs` — every transition a blocked peer
//! waits on performs an explicit notify, so all waits are plain
//! (untimed) and a missing notify is a hard deadlock under the loom
//! model instead of a silent latency cliff.
//!
//! Protocol invariants (the loom model checks these literally):
//!
//! - `send` publishes under the state lock and notifies `data` after
//!   releasing it; `recv` consumes under the lock and notifies `space`.
//! - [`BatchChannel::close`] and [`BatchChannel::retire_sender`] mutate
//!   state *under the lock* before notifying, so a peer that checked
//!   the predicate just before the transition cannot park through the
//!   wakeup (mutation-under-lock is the moral equivalent of the lock
//!   barrier in `HarvestEngine::halt`).
//! - `recv` keeps draining queued batches after `close` — shutdown must
//!   not strand successfully-sent batches, or the engine's
//!   bit-conservation invariant (harvested = served + queued +
//!   discarded) breaks.

use std::collections::VecDeque;

use parking_lot::{Condvar, Mutex};

/// State behind the channel lock.
#[derive(Debug)]
struct ChannelState<T> {
    queue: VecDeque<T>,
    /// Producers still attached; `recv` returns `None` once this hits
    /// zero with the queue drained.
    senders: usize,
    /// Raised by [`BatchChannel::close`]: further sends fail fast.
    closed: bool,
}

/// A bounded multi-producer single-consumer channel whose blocking
/// operations are purely notification-driven (no timeout polling).
///
/// `senders` is fixed at construction: each producer must call
/// [`BatchChannel::retire_sender`] exactly once when it exits, which is
/// what lets `recv` distinguish "no batch yet" from "no batch ever
/// again".
#[derive(Debug)]
pub struct BatchChannel<T> {
    state: Mutex<ChannelState<T>>,
    /// Signaled when a batch is queued or the sender population/closed
    /// flag changes — everything `recv` waits on.
    data: Condvar,
    /// Signaled when a batch is consumed or the channel closes —
    /// everything `send` waits on.
    space: Condvar,
    capacity: usize,
}

impl<T> BatchChannel<T> {
    /// A channel holding at most `capacity` batches, with `senders`
    /// attached producers. A zero capacity is rounded up to one so
    /// `send` can always make progress.
    pub fn new(capacity: usize, senders: usize) -> Self {
        BatchChannel {
            state: Mutex::new(ChannelState {
                queue: VecDeque::new(),
                senders,
                closed: false,
            }),
            data: Condvar::new(),
            space: Condvar::new(),
            capacity: capacity.max(1),
        }
    }

    /// Blocks until the batch is queued, waking the consumer.
    ///
    /// # Errors
    ///
    /// Returns the batch back when the channel was closed before space
    /// opened up — the caller still owns the bits and must account for
    /// them (the engine's workers book them as discarded).
    pub fn send(&self, batch: T) -> Result<(), T> {
        let mut state = self.state.lock();
        loop {
            if state.closed {
                return Err(batch);
            }
            if state.queue.len() < self.capacity {
                state.queue.push_back(batch);
                drop(state);
                self.data.notify_one();
                return Ok(());
            }
            self.space.wait(&mut state);
        }
    }

    /// Queues the batch only if space is available right now, never
    /// blocking. Used by consumers that *re*-enqueue work (the server's
    /// keep-alive connection rotation), where blocking would deadlock:
    /// every worker could otherwise park in `send` with nobody left to
    /// `recv`.
    ///
    /// # Errors
    ///
    /// Returns the batch back when the channel is closed or full; the
    /// caller keeps ownership and decides (keep serving, drop, …).
    pub fn try_send(&self, batch: T) -> Result<(), T> {
        let mut state = self.state.lock();
        if state.closed || state.queue.len() >= self.capacity {
            return Err(batch);
        }
        state.queue.push_back(batch);
        drop(state);
        self.data.notify_one();
        Ok(())
    }

    /// Blocks until a batch is available and returns it, or `None` once
    /// every sender has retired and the queue is drained.
    ///
    /// Queued batches keep flowing after [`BatchChannel::close`]: close
    /// only stops *new* sends, it never strands delivered ones.
    pub fn recv(&self) -> Option<T> {
        let mut state = self.state.lock();
        loop {
            if let Some(batch) = state.queue.pop_front() {
                drop(state);
                self.space.notify_one();
                return Some(batch);
            }
            if state.senders == 0 {
                return None;
            }
            self.data.wait(&mut state);
        }
    }

    /// Detaches one producer. Must be called exactly once per sender;
    /// when the last one retires, a blocked `recv` wakes and observes
    /// the end of the stream.
    pub fn retire_sender(&self) {
        let mut state = self.state.lock();
        state.senders = state.senders.saturating_sub(1);
        let last = state.senders == 0;
        drop(state);
        if last {
            self.data.notify_all();
        }
    }

    /// Closes the channel: subsequent and currently-blocked sends fail
    /// fast (returning their batch), while queued batches remain
    /// receivable. Idempotent.
    pub fn close(&self) {
        let mut state = self.state.lock();
        state.closed = true;
        drop(state);
        // Both sides: blocked senders must observe `closed`, and the
        // consumer may be parked waiting for data that now never comes
        // (its senders will retire, but waking it here shortens the
        // shutdown path).
        self.space.notify_all();
        self.data.notify_all();
    }

    /// Batches currently queued (test/diagnostic use).
    pub fn len(&self) -> usize {
        self.state.lock().queue.len()
    }

    /// Whether no batches are queued.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::Arc;
    use std::thread;
    use std::time::Duration;

    #[test]
    fn round_trip_in_order() {
        let ch = BatchChannel::new(4, 1);
        ch.send(1).unwrap();
        ch.send(2).unwrap();
        ch.retire_sender();
        assert_eq!(ch.recv(), Some(1));
        assert_eq!(ch.recv(), Some(2));
        assert_eq!(ch.recv(), None);
    }

    #[test]
    fn zero_capacity_rounds_up() {
        let ch = BatchChannel::new(0, 1);
        ch.send(7u64).unwrap();
        assert_eq!(ch.recv(), Some(7));
    }

    #[test]
    fn send_blocks_until_space_then_completes() {
        let ch = Arc::new(BatchChannel::new(1, 1));
        ch.send(1).unwrap();
        let producer = thread::spawn({
            let ch = Arc::clone(&ch);
            move || {
                // Blocks: capacity 1, one batch queued.
                ch.send(2).unwrap();
                ch.retire_sender();
            }
        });
        // Give the producer a chance to park (best effort; the test is
        // correct either way).
        thread::sleep(Duration::from_millis(20));
        assert_eq!(ch.recv(), Some(1));
        assert_eq!(ch.recv(), Some(2));
        assert_eq!(ch.recv(), None);
        producer.join().unwrap();
    }

    #[test]
    fn close_fails_blocked_sender_and_returns_the_batch() {
        let ch = Arc::new(BatchChannel::new(1, 1));
        ch.send(10).unwrap();
        let producer = thread::spawn({
            let ch = Arc::clone(&ch);
            move || {
                let out = ch.send(11);
                ch.retire_sender();
                out
            }
        });
        thread::sleep(Duration::from_millis(20));
        ch.close();
        assert_eq!(
            producer.join().unwrap(),
            Err(11),
            "sender gets its batch back"
        );
        // The batch delivered before close still drains.
        assert_eq!(ch.recv(), Some(10));
        assert_eq!(ch.recv(), None);
    }

    #[test]
    fn recv_wakes_on_last_retire() {
        let ch = Arc::new(BatchChannel::<u64>::new(4, 2));
        let consumer = thread::spawn({
            let ch = Arc::clone(&ch);
            move || ch.recv()
        });
        thread::sleep(Duration::from_millis(20));
        ch.retire_sender();
        ch.retire_sender();
        assert_eq!(consumer.join().unwrap(), None);
    }

    #[test]
    fn try_send_never_blocks() {
        let ch = BatchChannel::new(1, 1);
        assert_eq!(ch.try_send(1), Ok(()));
        assert_eq!(ch.try_send(2), Err(2), "full channel refuses instantly");
        assert_eq!(ch.recv(), Some(1));
        assert_eq!(ch.try_send(3), Ok(()));
        ch.close();
        assert_eq!(ch.try_send(4), Err(4), "closed channel refuses instantly");
        // The batch delivered before close still drains.
        assert_eq!(ch.recv(), Some(3));
    }

    #[test]
    fn close_is_idempotent_and_fails_later_sends() {
        let ch = BatchChannel::new(4, 1);
        ch.close();
        ch.close();
        assert_eq!(ch.send(5), Err(5));
        assert!(ch.is_empty());
    }
}
