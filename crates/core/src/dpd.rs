//! Data-pattern-dependence study (paper Section 5.2, Figure 5).
//!
//! Runs Algorithm 1 once per data pattern and reports each pattern's
//! *coverage*: the fraction of the union of all discovered failing
//! cells that the pattern discovers on its own.

use std::collections::HashSet;

use dram_sim::{CellAddr, DataPattern};
use memctrl::MemoryController;

use crate::error::Result;
use crate::profiler::{ProfileSpec, Profiler};

/// Coverage of one data pattern.
#[derive(Debug, Clone, PartialEq)]
pub struct PatternCoverage {
    /// The pattern tested.
    pub pattern: DataPattern,
    /// Failing cells this pattern discovered.
    pub found: usize,
    /// Fraction of the all-pattern union this pattern discovered.
    pub coverage: f64,
    /// Number of cells with empirical F_prob in the 40-60 % band —
    /// the paper's criterion for selecting the sampling pattern.
    pub band_cells: usize,
}

/// Result of the full study.
#[derive(Debug, Clone)]
pub struct DpdStudy {
    /// Per-pattern coverage, in the order the patterns were given.
    pub patterns: Vec<PatternCoverage>,
    /// Size of the union of failing cells over all patterns.
    pub union_size: usize,
}

impl DpdStudy {
    /// The pattern with the highest coverage, or `None` for an empty
    /// study.
    pub fn best_coverage(&self) -> Option<&PatternCoverage> {
        self.patterns
            .iter()
            .max_by(|a, b| a.coverage.total_cmp(&b.coverage))
    }

    /// The pattern that finds the most cells in the 40-60 % F_prob band
    /// (the paper's selection criterion for the sampling pattern), or
    /// `None` for an empty study.
    pub fn best_band(&self) -> Option<&PatternCoverage> {
        self.patterns.iter().max_by_key(|p| p.band_cells)
    }
}

/// Runs the study: one profiling pass per pattern over the same region.
///
/// # Errors
///
/// Propagates profiling errors.
pub fn run_study(
    ctrl: &mut MemoryController,
    base: &ProfileSpec,
    patterns: &[DataPattern],
) -> Result<DpdStudy> {
    let mut per_pattern: Vec<(DataPattern, HashSet<CellAddr>, usize)> = Vec::new();
    let mut union: HashSet<CellAddr> = HashSet::new();
    for &pattern in patterns {
        let spec = base.clone().with_pattern(pattern);
        let profile = Profiler::new(ctrl).run(spec)?;
        let cells: HashSet<CellAddr> = profile.failing_cells().into_iter().collect();
        let band = profile.cells_in_band(0.4, 0.6).len();
        union.extend(cells.iter().copied());
        per_pattern.push((pattern, cells, band));
    }
    let union_size = union.len().max(1);
    let patterns = per_pattern
        .into_iter()
        .map(|(pattern, cells, band_cells)| PatternCoverage {
            pattern,
            found: cells.len(),
            coverage: cells.len() as f64 / union_size as f64,
            band_cells,
        })
        .collect();
    Ok(DpdStudy {
        patterns,
        union_size: union.len(),
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{DeviceConfig, Manufacturer};

    fn ctrl(m: Manufacturer) -> MemoryController {
        MemoryController::from_config(DeviceConfig::new(m).with_seed(7).with_noise_seed(8))
    }

    fn base_spec() -> ProfileSpec {
        ProfileSpec {
            rows: 0..192,
            cols: 0..16,
            ..ProfileSpec::default()
        }
        .with_iterations(12)
    }

    #[test]
    fn different_patterns_find_different_subsets() {
        let mut c = ctrl(Manufacturer::A);
        let study = run_study(
            &mut c,
            &base_spec(),
            &[
                DataPattern::Solid0,
                DataPattern::Solid1,
                DataPattern::Checkered,
            ],
        )
        .unwrap();
        assert_eq!(study.patterns.len(), 3);
        assert!(study.union_size > 0);
        // No single pattern covers everything when patterns matter.
        let max_cov = study.best_coverage().unwrap().coverage;
        assert!(max_cov <= 1.0);
        let found: Vec<usize> = study.patterns.iter().map(|p| p.found).collect();
        assert!(
            found.iter().any(|&f| f != found[0]),
            "pattern dependence must be visible: {found:?}"
        );
    }

    #[test]
    fn coverage_is_normalized() {
        let mut c = ctrl(Manufacturer::B);
        let study = run_study(
            &mut c,
            &base_spec(),
            &[DataPattern::Solid0, DataPattern::ColStripe],
        )
        .unwrap();
        for p in &study.patterns {
            assert!((0.0..=1.0).contains(&p.coverage));
            assert!(p.found <= study.union_size);
        }
    }

    #[test]
    fn best_selectors_return_members() {
        let mut c = ctrl(Manufacturer::C);
        let study = run_study(
            &mut c,
            &base_spec(),
            &[DataPattern::Solid0, DataPattern::Walk1(3)],
        )
        .unwrap();
        assert!(study.patterns.contains(study.best_coverage().unwrap()));
        assert!(study.patterns.contains(study.best_band().unwrap()));
    }
}
