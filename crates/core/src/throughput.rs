//! Throughput model — the paper's Equation (1).
//!
//! `TRNG_Throughput(x banks) = Σ bank_rate / Alg2_Runtime(x banks)`,
//! where a bank's rate is the number of RNG cells across its two
//! selected words and the runtime is the steady-state time of one core-
//! loop iteration of Algorithm 2, obtained from the command scheduler
//! (the role Ramulator plays in the paper).

use dram_sim::commands::CommandKind;
use dram_sim::TimingParams;
use memctrl::{CommandScheduler, TimingRegisters};

use crate::identify::RngCellCatalog;

/// Measures the steady-state runtime of one Algorithm 2 core-loop
/// iteration over `banks` banks, in picoseconds.
///
/// The command stream per iteration, phase-interleaved across banks:
/// `ACT, RD, WR, PRE` on each bank's first word, then the same on its
/// second word (distinct row).
///
/// # Panics
///
/// Panics if `banks` is zero.
pub fn alg2_iteration_ps(registers: &TimingRegisters, banks: usize) -> u64 {
    assert!(banks > 0, "at least one bank required");
    let mut sched = CommandScheduler::new(banks, registers.effective());
    sched.set_overhead_ps(registers.cmd_overhead_ps());
    let one_iteration = |sched: &mut CommandScheduler| {
        // Legal by construction: fresh scheduler, in-order barrage
        // per bank, so `issue` cannot reject any of these.
        for row in 0..2usize {
            for b in 0..banks {
                // xtask:allow(no-panic) -- legal-by-construction command sequence
                sched.issue(CommandKind::Act, b, row, 0).expect("legal ACT");
            }
            for b in 0..banks {
                // xtask:allow(no-panic) -- legal-by-construction command sequence
                sched.issue(CommandKind::Rd, b, row, 0).expect("legal RD");
            }
            for b in 0..banks {
                // xtask:allow(no-panic) -- legal-by-construction command sequence
                sched.issue(CommandKind::Wr, b, row, 0).expect("legal WR");
            }
            for b in 0..banks {
                // xtask:allow(no-panic) -- legal-by-construction command sequence
                sched.issue(CommandKind::Pre, b, 0, 0).expect("legal PRE");
            }
        }
    };
    // Warm up to steady state, then measure.
    const WARMUP: usize = 4;
    const MEASURE: usize = 16;
    for _ in 0..WARMUP {
        one_iteration(&mut sched);
    }
    let t0 = sched.now_ps();
    for _ in 0..MEASURE {
        one_iteration(&mut sched);
    }
    (sched.now_ps() - t0) / MEASURE as u64
}

/// Equation (1): throughput in bits/s given each used bank's TRNG data
/// rate (bits per iteration) and the per-iteration runtime.
///
/// # Panics
///
/// Panics if `iteration_ps` is zero.
pub fn throughput_bps(bank_rates: &[usize], iteration_ps: u64) -> f64 {
    assert!(iteration_ps > 0, "iteration time must be positive");
    let bits: usize = bank_rates.iter().sum();
    bits as f64 / (iteration_ps as f64 * 1e-12)
}

/// Projected throughput of a catalog when sampling from the best
/// `banks` banks (Figure 8's per-point computation). Returns bits/s.
pub fn catalog_throughput_bps(
    catalog: &RngCellCatalog,
    timing: TimingParams,
    reduced_trcd_ns: f64,
    total_banks: usize,
    banks: usize,
) -> f64 {
    let mut registers = TimingRegisters::new(timing);
    // xtask:allow(no-panic) -- analytic helper; callers pass paper-range constants
    registers.set_trcd_ns(reduced_trcd_ns).expect("valid tRCD");
    let ranked = catalog.ranked_banks(total_banks);
    let rates: Vec<usize> = ranked.iter().take(banks).map(|&(_, rate)| rate).collect();
    if rates.iter().all(|&r| r == 0) {
        return 0.0;
    }
    let iter_ps = alg2_iteration_ps(&registers, banks);
    throughput_bps(&rates, iter_ps)
}

/// Scales a per-channel throughput to a multi-channel system (channels
/// operate independently; the paper's 4-channel headline numbers).
pub fn scale_to_channels(per_channel_bps: f64, channels: usize) -> f64 {
    per_channel_bps * channels as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    fn regs() -> TimingRegisters {
        let mut r = TimingRegisters::new(TimingParams::lpddr4_3200());
        r.set_trcd_ns(10.0).unwrap();
        r
    }

    #[test]
    fn iteration_time_is_positive_and_bounded() {
        let t1 = alg2_iteration_ps(&regs(), 1);
        // One bank: two row cycles, each at least tRAS + tRP.
        let t = TimingParams::lpddr4_3200();
        assert!(t1 >= 2 * (t.tras_ps + t.trp_ps), "t1 = {t1}");
        assert!(t1 < 1_000_000, "sub-microsecond per iteration: {t1}");
    }

    #[test]
    fn more_banks_amortize_better() {
        let t1 = alg2_iteration_ps(&regs(), 1);
        let t8 = alg2_iteration_ps(&regs(), 8);
        // 8 banks do 8x the work in far less than 8x the time.
        assert!(t8 < 8 * t1, "t8 = {t8}, t1 = {t1}");
        // Normalized per-bank time shrinks.
        assert!(t8 / 8 < t1);
    }

    #[test]
    fn throughput_scales_linearly_with_bank_rates() {
        let iter_ps = alg2_iteration_ps(&regs(), 8);
        let low = throughput_bps(&[1; 8], iter_ps);
        let high = throughput_bps(&[4; 8], iter_ps);
        assert!((high / low - 4.0).abs() < 1e-9);
    }

    #[test]
    fn eight_banks_reach_tens_of_mbps() {
        // Paper Figure 8: >= 40 Mb/s at 8 banks for every device; our
        // model should land in the same decade with realistic rates.
        let iter_ps = alg2_iteration_ps(&regs(), 8);
        let bps = throughput_bps(&[4; 8], iter_ps); // 2 cells/word avg
        assert!(bps > 20e6, "throughput {bps}");
        assert!(bps < 2e9, "throughput {bps}");
    }

    #[test]
    fn channel_scaling_is_linear() {
        assert_eq!(scale_to_channels(100e6, 4), 400e6);
    }

    #[test]
    #[should_panic(expected = "at least one bank")]
    fn zero_banks_panics() {
        let _ = alg2_iteration_ps(&regs(), 0);
    }
}
