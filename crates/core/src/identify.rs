//! RNG-cell identification (paper Section 6.1).
//!
//! Reads candidate cells many times with a reduced `tRCD` and keeps the
//! cells whose output stream contains an approximately equal number of
//! every possible 3-bit symbol (±10 %) — the paper's criterion for a
//! cell that produces unbiased, high-entropy output.

use std::collections::{BTreeMap, HashMap};

use dram_sim::{CellAddr, Celsius, DataPattern, WordAddr};
use memctrl::MemoryController;

use crate::entropy::symbols_uniform;
use crate::error::{DrangeError, Result};
use crate::profiler::FailureProfile;

/// Specification for the identification step.
#[derive(Debug, Clone, PartialEq)]
pub struct IdentifySpec {
    /// Reads per candidate cell (paper: 1000).
    pub reads: usize,
    /// Symbol width for the uniformity criterion (paper: 3 bits).
    pub symbol_bits: usize,
    /// Relative tolerance on symbol counts. The paper quotes ±10 %;
    /// with 1000-read streams that band is narrower than the sampling
    /// noise of the symbol counts themselves (it would reject most
    /// ideal cells), so the default here is 0.15, which accepts cells
    /// with bias within ~±3 % of 1/2 (binary entropy ≥ 0.997) at a
    /// high true-positive rate. Set 0.10 to apply the paper's literal
    /// figure.
    pub tolerance: f64,
    /// Reduced activation latency during sampling, ns.
    pub trcd_ns: f64,
    /// Background data pattern (should be the manufacturer's
    /// best-band pattern from the DPD study).
    pub pattern: DataPattern,
}

impl Default for IdentifySpec {
    fn default() -> Self {
        IdentifySpec {
            reads: 1000,
            symbol_bits: 3,
            tolerance: 0.15,
            trcd_ns: 10.0,
            pattern: DataPattern::Solid0,
        }
    }
}

impl IdentifySpec {
    fn validate(&self) -> Result<()> {
        if self.reads < 8 * (1 << self.symbol_bits) {
            return Err(DrangeError::InvalidSpec(format!(
                "{} reads cannot support {}-bit symbol statistics",
                self.reads, self.symbol_bits
            )));
        }
        if !(1..=8).contains(&self.symbol_bits) {
            return Err(DrangeError::InvalidSpec("symbol_bits must be 1..=8".into()));
        }
        if !(0.0..1.0).contains(&self.tolerance) {
            return Err(DrangeError::InvalidSpec(
                "tolerance must be in [0,1)".into(),
            ));
        }
        if !self.trcd_ns.is_finite() || self.trcd_ns <= 0.0 {
            return Err(DrangeError::InvalidSpec("tRCD must be positive".into()));
        }
        Ok(())
    }
}

/// A catalog of identified RNG cells at one temperature.
///
/// The paper stores one catalog per operating temperature in the memory
/// controller and selects by the current temperature (Section 6.1);
/// [`CatalogSet`] provides that selection.
#[derive(Debug, Clone)]
pub struct RngCellCatalog {
    spec: IdentifySpec,
    temperature: Celsius,
    /// RNG cells grouped per word, sorted.
    words: BTreeMap<WordAddr, Vec<usize>>,
}

impl RngCellCatalog {
    /// Identifies RNG cells among the failing cells of `profile`.
    ///
    /// Cells that never fail cannot be RNG cells (their stream is
    /// constant), so candidates are drawn from the profile; candidate
    /// cells sharing a word are sampled together (one read samples the
    /// whole word).
    ///
    /// The controller's `tRCD` register is restored before returning.
    ///
    /// # Errors
    ///
    /// Returns [`DrangeError::InvalidSpec`] for bad specs; propagates
    /// controller errors.
    pub fn identify(
        ctrl: &mut MemoryController,
        profile: &FailureProfile,
        spec: IdentifySpec,
    ) -> Result<Self> {
        spec.validate()?;
        let word_bits = ctrl.device().geometry().word_bits;
        // Group candidates by word. Restrict to the plausible band to
        // avoid wasting reads on (nearly) deterministic cells.
        let mut candidates: BTreeMap<WordAddr, Vec<usize>> = BTreeMap::new();
        for cell in profile.cells_in_band(0.05, 0.95) {
            candidates.entry(cell.word()).or_default().push(cell.bit);
        }
        // Write the pattern into every row we will sample (and thereby
        // its neighboring cells).
        let mut rows_done: HashMap<(usize, usize), ()> = HashMap::new();
        for addr in candidates.keys() {
            if rows_done.insert((addr.bank, addr.row), ()).is_none() {
                ctrl.device_mut()
                    .fill_row(addr.bank, addr.row, spec.pattern);
            }
        }
        ctrl.try_set_trcd_ns(spec.trcd_ns)?;
        let result = Self::sample_candidates(ctrl, &candidates, &spec, word_bits);
        ctrl.reset_trcd();
        let words = result?;
        Ok(RngCellCatalog {
            spec,
            temperature: ctrl.device().temperature(),
            words,
        })
    }

    fn sample_candidates(
        ctrl: &mut MemoryController,
        candidates: &BTreeMap<WordAddr, Vec<usize>>,
        spec: &IdentifySpec,
        word_bits: usize,
    ) -> Result<BTreeMap<WordAddr, Vec<usize>>> {
        let mut words: BTreeMap<WordAddr, Vec<usize>> = BTreeMap::new();
        for (&addr, bits) in candidates {
            let expected = spec.pattern.word(addr.row, addr.col, word_bits);
            let mut streams: Vec<Vec<bool>> = vec![Vec::with_capacity(spec.reads); bits.len()];
            for _ in 0..spec.reads {
                // Refresh, then induce (Algorithm 1 inner sequence).
                ctrl.refresh_row(addr.bank, addr.row)?;
                ctrl.act(addr.bank, addr.row)?;
                let got = ctrl.rd(addr.bank, addr.row, addr.col)?;
                if got != expected {
                    ctrl.wr(addr.bank, addr.row, addr.col, expected)?;
                }
                ctrl.pre(addr.bank)?;
                for (s, &bit) in bits.iter().enumerate() {
                    // The harvested random bit is the *failure indicator*
                    // (sensed != written), which is pattern-independent.
                    streams[s].push((got >> bit) & 1 != (expected >> bit) & 1);
                }
            }
            let mut qualified: Vec<usize> = Vec::new();
            for (s, &bit) in bits.iter().enumerate() {
                if symbols_uniform(&streams[s], spec.symbol_bits, spec.tolerance) {
                    qualified.push(bit);
                }
            }
            if !qualified.is_empty() {
                qualified.sort_unstable();
                words.insert(addr, qualified);
            }
        }
        Ok(words)
    }

    /// Assembles a catalog from already-known RNG-cell locations —
    /// e.g. one loaded from storage, or a hand-built fixture for tests
    /// that need precise control over word placement. Words mapped to
    /// an empty bit list are dropped (the catalog never stores words
    /// without RNG cells).
    pub fn from_parts(
        spec: IdentifySpec,
        temperature: Celsius,
        words: BTreeMap<WordAddr, Vec<usize>>,
    ) -> Self {
        let words = words
            .into_iter()
            .filter(|(_, bits)| !bits.is_empty())
            .map(|(addr, mut bits)| {
                bits.sort_unstable();
                bits.dedup();
                (addr, bits)
            })
            .collect();
        RngCellCatalog {
            spec,
            temperature,
            words,
        }
    }

    /// The identification spec.
    pub fn spec(&self) -> &IdentifySpec {
        &self.spec
    }

    /// The temperature the catalog was built at.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Total number of RNG cells.
    pub fn len(&self) -> usize {
        self.words.values().map(Vec::len).sum()
    }

    /// Whether the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.words.is_empty()
    }

    /// All RNG cells, sorted.
    pub fn cells(&self) -> Vec<CellAddr> {
        self.words
            .iter()
            .flat_map(|(addr, bits)| bits.iter().map(move |&b| addr.cell(b)))
            .collect()
    }

    /// Words containing RNG cells with their cell bit positions.
    pub fn words(&self) -> &BTreeMap<WordAddr, Vec<usize>> {
        &self.words
    }

    /// Histogram over words: `hist[k]` = number of words containing
    /// exactly `k` RNG cells (k ≥ 1), per bank — the paper's Figure 7.
    pub fn density_histogram(&self, bank: usize, max_k: usize) -> Vec<usize> {
        let mut hist = vec![0usize; max_k + 1];
        for (addr, bits) in &self.words {
            if addr.bank == bank {
                hist[bits.len().min(max_k)] += 1;
            }
        }
        hist
    }

    /// The `n` best words of a bank (most RNG cells first), constrained
    /// to pairwise-distinct rows — Algorithm 2's selection rule.
    pub fn best_words(&self, bank: usize, n: usize) -> Vec<(WordAddr, Vec<usize>)> {
        let mut words: Vec<(WordAddr, Vec<usize>)> = self
            .words
            .iter()
            .filter(|(a, _)| a.bank == bank)
            .map(|(a, b)| (*a, b.clone()))
            .collect();
        words.sort_by(|a, b| b.1.len().cmp(&a.1.len()).then(a.0.cmp(&b.0)));
        let mut picked: Vec<(WordAddr, Vec<usize>)> = Vec::new();
        for (addr, bits) in words {
            if picked.len() == n {
                break;
            }
            if picked.iter().all(|(p, _)| p.row != addr.row) {
                picked.push((addr, bits));
            }
        }
        picked
    }

    /// Banks ranked by the sum of RNG cells across their two best words
    /// (the per-bank TRNG data rate of Section 7.3).
    pub fn ranked_banks(&self, total_banks: usize) -> Vec<(usize, usize)> {
        let mut ranked: Vec<(usize, usize)> = (0..total_banks)
            .map(|bank| {
                let rate: usize = self.best_words(bank, 2).iter().map(|(_, b)| b.len()).sum();
                (bank, rate)
            })
            .collect();
        ranked.sort_by(|a, b| b.1.cmp(&a.1).then(a.0.cmp(&b.0)));
        ranked
    }
}

/// Per-temperature catalogs with nearest-temperature selection
/// (Section 6.1: "identify reliable RNG cells at each temperature and
/// store their locations in the memory controller").
#[derive(Debug, Clone, Default)]
pub struct CatalogSet {
    catalogs: Vec<RngCellCatalog>,
}

impl CatalogSet {
    /// An empty set.
    pub fn new() -> Self {
        CatalogSet::default()
    }

    /// Adds a catalog (keyed by its build temperature).
    pub fn insert(&mut self, catalog: RngCellCatalog) {
        self.catalogs.push(catalog);
    }

    /// Number of stored catalogs.
    pub fn len(&self) -> usize {
        self.catalogs.len()
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.catalogs.is_empty()
    }

    /// The catalog built nearest to `temperature`.
    pub fn select(&self, temperature: Celsius) -> Option<&RngCellCatalog> {
        self.catalogs.iter().min_by(|a, b| {
            let da = (a.temperature().degrees() - temperature.degrees()).abs();
            let db = (b.temperature().degrees() - temperature.degrees()).abs();
            da.total_cmp(&db)
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::profiler::{ProfileSpec, Profiler};
    use dram_sim::{DeviceConfig, Manufacturer};

    fn ctrl() -> MemoryController {
        MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(42)
                .with_noise_seed(43),
        )
    }

    fn profile(c: &mut MemoryController) -> FailureProfile {
        Profiler::new(c)
            .run(
                ProfileSpec {
                    rows: 0..512,
                    cols: 0..16,
                    ..ProfileSpec::default()
                }
                .with_iterations(40),
            )
            .unwrap()
    }

    fn quick_spec() -> IdentifySpec {
        IdentifySpec {
            reads: 1000,
            ..IdentifySpec::default()
        }
    }

    #[test]
    fn identifies_some_rng_cells() {
        let mut c = ctrl();
        let p = profile(&mut c);
        let catalog = RngCellCatalog::identify(&mut c, &p, quick_spec()).unwrap();
        assert!(!catalog.is_empty(), "the model must contain RNG cells");
        assert_eq!(c.trcd_ns(), 18.0, "tRCD restored");
        // Every identified cell has a near-0.5 analytic probability.
        for cell in catalog.cells() {
            let f = c.device().failure_probability(cell, 10.0);
            assert!(
                (0.30..=0.70).contains(&f),
                "identified cell {cell:?} has analytic F_prob {f}"
            );
        }
    }

    #[test]
    fn identified_cells_are_a_subset_of_candidates() {
        let mut c = ctrl();
        let p = profile(&mut c);
        let catalog = RngCellCatalog::identify(&mut c, &p, quick_spec()).unwrap();
        let band: std::collections::HashSet<_> = p.cells_in_band(0.05, 0.95).into_iter().collect();
        for cell in catalog.cells() {
            assert!(band.contains(&cell));
        }
    }

    #[test]
    fn histogram_counts_words() {
        let mut c = ctrl();
        let p = profile(&mut c);
        let catalog = RngCellCatalog::identify(&mut c, &p, quick_spec()).unwrap();
        let hist = catalog.density_histogram(0, 4);
        let words_in_bank = catalog.words().keys().filter(|w| w.bank == 0).count();
        assert_eq!(hist.iter().skip(1).sum::<usize>(), words_in_bank);
        assert_eq!(hist[0], 0, "words with zero cells are not stored");
    }

    #[test]
    fn best_words_have_distinct_rows_and_descending_density() {
        let mut c = ctrl();
        let p = profile(&mut c);
        let catalog = RngCellCatalog::identify(&mut c, &p, quick_spec()).unwrap();
        let best = catalog.best_words(0, 2);
        if best.len() == 2 {
            assert_ne!(best[0].0.row, best[1].0.row);
            assert!(best[0].1.len() >= best[1].1.len());
        }
    }

    #[test]
    fn ranked_banks_are_sorted() {
        let mut c = ctrl();
        let p = profile(&mut c);
        let catalog = RngCellCatalog::identify(&mut c, &p, quick_spec()).unwrap();
        let ranked = catalog.ranked_banks(8);
        assert_eq!(ranked.len(), 8);
        for w in ranked.windows(2) {
            assert!(w[0].1 >= w[1].1);
        }
    }

    #[test]
    fn catalog_set_selects_nearest_temperature() {
        let mut c = ctrl();
        let p = profile(&mut c);
        let mut set = CatalogSet::new();
        for t in [55.0, 65.0] {
            c.device_mut().set_temperature(Celsius(t));
            let cat = RngCellCatalog::identify(&mut c, &p, quick_spec()).unwrap();
            set.insert(cat);
        }
        assert_eq!(set.len(), 2);
        let picked = set.select(Celsius(56.0)).unwrap();
        assert_eq!(picked.temperature().degrees(), 55.0);
        let picked = set.select(Celsius(70.0)).unwrap();
        assert_eq!(picked.temperature().degrees(), 65.0);
        assert!(CatalogSet::new().select(Celsius(60.0)).is_none());
    }

    #[test]
    fn from_parts_normalizes_words() {
        let mut words = BTreeMap::new();
        words.insert(WordAddr::new(0, 1, 2), vec![5, 3, 5, 1]);
        words.insert(WordAddr::new(1, 0, 0), Vec::new());
        let catalog = RngCellCatalog::from_parts(quick_spec(), Celsius::DEFAULT, words);
        assert_eq!(catalog.len(), 3, "duplicates removed, empty words dropped");
        assert_eq!(
            catalog.words().get(&WordAddr::new(0, 1, 2)),
            Some(&vec![1, 3, 5]),
            "bit positions sorted"
        );
        assert!(catalog.words().get(&WordAddr::new(1, 0, 0)).is_none());
    }

    #[test]
    fn invalid_specs_rejected() {
        let mut c = ctrl();
        let p = profile(&mut c);
        let bad = IdentifySpec {
            reads: 10,
            ..IdentifySpec::default()
        };
        assert!(RngCellCatalog::identify(&mut c, &p, bad).is_err());
        let bad = IdentifySpec {
            tolerance: 1.0,
            ..quick_spec()
        };
        assert!(RngCellCatalog::identify(&mut c, &p, bad).is_err());
    }
}
