//! Packed bit containers for the harvest pipeline.
//!
//! Harvested random bits flow sampler → worker → pool → client. The
//! original pipeline moved them one `bool` at a time (one byte of
//! memory traffic and one `VecDeque` operation per bit); these types
//! move them as `u64` words with a bit-count watermark instead.
//!
//! Bit order is MSB-first everywhere: the first bit pushed into a word
//! is its most significant bit. This matches the `(acc << 1) | bit`
//! packing the byte/word drain paths have always used, so a packed
//! word can be emitted verbatim (`u64::to_be_bytes` yields bytes in
//! FIFO order).

use std::collections::VecDeque;

/// An immutable-once-built batch of packed bits, the unit of
/// worker→pool transfer.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct BitBlock {
    words: Vec<u64>,
    len: usize,
}

impl BitBlock {
    /// An empty block.
    pub fn new() -> Self {
        Self::default()
    }

    /// An empty block with room for `bits` bits.
    pub fn with_capacity(bits: usize) -> Self {
        BitBlock {
            words: Vec::with_capacity(bits.div_ceil(64)),
            len: 0,
        }
    }

    /// Number of bits in the block.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the block holds no bits.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Appends one bit.
    pub fn push_bit(&mut self, bit: bool) {
        let off = self.len % 64;
        if off == 0 {
            self.words.push(0);
        }
        if bit {
            if let Some(last) = self.words.last_mut() {
                *last |= 1u64 << (63 - off);
            }
        }
        self.len += 1;
    }

    /// Appends the top `n` bits of `frag` (MSB-first). Bits of `frag`
    /// below the top `n` are ignored. `n` must be at most 64.
    pub fn push_bits(&mut self, frag: u64, n: usize) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let frag = frag & (u64::MAX << (64 - n));
        let off = self.len % 64;
        if off == 0 {
            self.words.push(frag);
        } else {
            if let Some(last) = self.words.last_mut() {
                *last |= frag >> off;
            }
            let spill = n.saturating_sub(64 - off);
            if spill > 0 {
                self.words.push(frag << (64 - off));
            }
        }
        self.len += n;
    }

    /// Builds a block from a slice of bools (FIFO order).
    pub fn from_bools(bits: &[bool]) -> Self {
        let mut block = BitBlock::with_capacity(bits.len());
        for &b in bits {
            block.push_bit(b);
        }
        block
    }

    /// The bit at position `i` (0 = first pushed), or `None` past the
    /// end.
    pub fn get(&self, i: usize) -> Option<bool> {
        if i >= self.len {
            return None;
        }
        self.words
            .get(i / 64)
            .map(|w| (w >> (63 - i % 64)) & 1 == 1)
    }

    /// Iterates the bits in FIFO order.
    pub fn iter(&self) -> impl Iterator<Item = bool> + '_ {
        (0..self.len).map(move |i| {
            self.words
                .get(i / 64)
                .is_some_and(|w| (w >> (63 - i % 64)) & 1 == 1)
        })
    }

    /// The packed words (last one partially filled when `len` is not a
    /// multiple of 64; unused low bits are zero).
    pub fn words(&self) -> &[u64] {
        &self.words
    }
}

impl FromIterator<bool> for BitBlock {
    fn from_iter<I: IntoIterator<Item = bool>>(iter: I) -> Self {
        let mut block = BitBlock::new();
        for b in iter {
            block.push_bit(b);
        }
        block
    }
}

/// A FIFO queue of packed bits with word- and byte-granular drains —
/// the harvest queue and the engine pool.
#[derive(Debug, Default)]
pub struct BitQueue {
    /// Packed storage; the queue's oldest bit is bit `63 - front` of
    /// `words[0]`.
    words: VecDeque<u64>,
    /// Offset of the oldest live bit within `words[0]` (0..64).
    front: usize,
    /// Live bits.
    len: usize,
}

impl BitQueue {
    /// An empty queue.
    pub fn new() -> Self {
        Self::default()
    }

    /// Number of queued bits.
    pub fn len(&self) -> usize {
        self.len
    }

    /// Whether the queue is empty.
    pub fn is_empty(&self) -> bool {
        self.len == 0
    }

    /// Removes everything.
    pub fn clear(&mut self) {
        self.words.clear();
        self.front = 0;
        self.len = 0;
    }

    /// Restores the invariants after consuming bits: drop exhausted
    /// leading words and reset entirely when empty (so stale consumed
    /// bits can never alias future pushes).
    fn normalize(&mut self) {
        if self.len == 0 {
            self.clear();
            return;
        }
        while self.front >= 64 {
            self.words.pop_front();
            self.front -= 64;
        }
    }

    /// Appends one bit.
    pub fn push_bit(&mut self, bit: bool) {
        let pos = self.front + self.len;
        if pos / 64 == self.words.len() {
            self.words.push_back(0);
        }
        if bit {
            if let Some(w) = self.words.get_mut(pos / 64) {
                *w |= 1u64 << (63 - pos % 64);
            }
        }
        self.len += 1;
    }

    /// Appends the top `n` bits of `frag` (MSB-first; `n` ≤ 64). Bits
    /// of `frag` below the top `n` are ignored.
    pub fn push_bits(&mut self, frag: u64, n: usize) {
        debug_assert!(n <= 64);
        if n == 0 {
            return;
        }
        let frag = frag & (u64::MAX << (64 - n));
        let pos = self.front + self.len;
        let (idx, off) = (pos / 64, pos % 64);
        if idx == self.words.len() {
            self.words.push_back(0);
        }
        if let Some(w) = self.words.get_mut(idx) {
            *w |= frag >> off;
        }
        if off > 0 && n > 64 - off {
            self.words.push_back(frag << (64 - off));
        }
        self.len += n;
    }

    /// Appends `len` bits packed MSB-first in `words` (the
    /// [`BitBlock::words`] layout) as one bulk publication: a single
    /// capacity reservation for the whole run, whole-word splices, and
    /// — when the queue's tail is word-aligned — a direct word copy.
    /// Bits of `words` beyond `len` are ignored.
    pub fn push_words(&mut self, words: &[u64], len: usize) {
        debug_assert!(len <= words.len() * 64);
        if len == 0 {
            return;
        }
        let pos = self.front + self.len;
        let off = pos % 64;
        if off == 0 {
            // Tail is word-aligned (`pos / 64 == self.words.len()` by
            // the storage invariant): splice whole words directly.
            self.words
                .extend(words.iter().take(len.div_ceil(64)).copied());
            let tail = len % 64;
            if tail != 0 {
                // Defensive: callers must keep bits past `len` zero,
                // but mask like push_bits does so garbage can't alias
                // a later push.
                if let Some(w) = self.words.back_mut() {
                    *w &= u64::MAX << (64 - tail);
                }
            }
        } else {
            // Shifted splice: each source word lands as `w >> off` in
            // the current tail word plus `w << (64 - off)` in the next.
            self.words
                .reserve((pos + len).div_ceil(64) - self.words.len());
            let mut remaining = len;
            for &src in words {
                if remaining == 0 {
                    break;
                }
                let n = remaining.min(64);
                let frag = src & (u64::MAX << (64 - n));
                if let Some(last) = self.words.back_mut() {
                    *last |= frag >> off;
                }
                if n > 64 - off {
                    self.words.push_back(frag << (64 - off));
                }
                remaining -= n;
            }
        }
        self.len += len;
    }

    /// Appends a whole block (FIFO order preserved).
    pub fn push_block(&mut self, block: &BitBlock) {
        self.push_words(block.words(), block.len());
    }

    /// Pops the oldest bit.
    pub fn pop_bit(&mut self) -> Option<bool> {
        if self.len == 0 {
            return None;
        }
        let bit = self
            .words
            .front()
            .is_some_and(|w| (w >> (63 - self.front)) & 1 == 1);
        self.front += 1;
        self.len -= 1;
        self.normalize();
        Some(bit)
    }

    /// Pops the oldest 64 bits as one word (first-out bit in the MSB),
    /// or `None` when fewer than 64 bits are queued.
    pub fn pop_word(&mut self) -> Option<u64> {
        if self.len < 64 {
            return None;
        }
        let w0 = self.words.front().copied().unwrap_or(0);
        let word = if self.front == 0 {
            w0
        } else {
            let w1 = self.words.get(1).copied().unwrap_or(0);
            (w0 << self.front) | (w1 >> (64 - self.front))
        };
        self.words.pop_front();
        self.len -= 64;
        self.normalize();
        Some(word)
    }

    /// Pops the oldest 8 bits as one byte (first-out bit in the MSB),
    /// or `None` when fewer than 8 bits are queued.
    pub fn pop_byte(&mut self) -> Option<u8> {
        if self.len < 8 {
            return None;
        }
        let mut b = 0u8;
        for _ in 0..8 {
            let bit = self
                .words
                .front()
                .is_some_and(|w| (w >> (63 - self.front)) & 1 == 1);
            b = (b << 1) | u8::from(bit);
            self.front += 1;
            self.len -= 1;
            if self.front == 64 {
                self.words.pop_front();
                self.front = 0;
            }
        }
        self.normalize();
        Some(b)
    }

    /// Drops the `n` oldest bits (or everything when fewer are queued).
    pub fn drop_front(&mut self, n: usize) {
        let n = n.min(self.len);
        self.front += n;
        self.len -= n;
        self.normalize();
    }

    /// Pops up to `n` oldest bits into a `Vec<bool>` (FIFO order).
    pub fn pop_bools(&mut self, n: usize) -> Vec<bool> {
        let n = n.min(self.len);
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            match self.pop_bit() {
                Some(b) => out.push(b),
                None => break,
            }
        }
        out
    }

    /// Pops the oldest `bits` bits as a block (FIFO order). Requires
    /// `bits ≤ len`; pops everything available otherwise.
    pub fn pop_block(&mut self, bits: usize) -> BitBlock {
        let bits = bits.min(self.len);
        if bits == 0 {
            return BitBlock::new();
        }
        if self.front == 0 && bits == self.len {
            // Whole-queue drain at word alignment — the harvest_block
            // steady state: hand the packed storage over outright.
            let words: Vec<u64> = std::mem::take(&mut self.words).into();
            self.clear();
            return BitBlock { words, len: bits };
        }
        let mut block = BitBlock::with_capacity(bits);
        let mut remaining = bits;
        while remaining >= 64 {
            if let Some(w) = self.pop_word() {
                block.push_bits(w, 64);
                remaining -= 64;
            } else {
                break;
            }
        }
        if remaining > 0 {
            // Sub-word remainder straddles at most two storage words:
            // gather it in one splice instead of bit-by-bit pops.
            let w0 = self.words.front().copied().unwrap_or(0);
            let frag = if self.front == 0 {
                w0
            } else {
                let w1 = self.words.get(1).copied().unwrap_or(0);
                (w0 << self.front) | (w1 >> (64 - self.front))
            };
            block.push_bits(frag, remaining);
            self.front += remaining;
            self.len -= remaining;
            self.normalize();
        }
        block
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn splitmix(x: &mut u64) -> u64 {
        *x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = *x;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn random_bools(seed: u64, n: usize) -> Vec<bool> {
        let mut s = seed;
        (0..n).map(|_| splitmix(&mut s) & 1 == 1).collect()
    }

    #[test]
    fn block_round_trips_bools() {
        let bits = random_bools(1, 517);
        let block = BitBlock::from_bools(&bits);
        assert_eq!(block.len(), 517);
        let back: Vec<bool> = block.iter().collect();
        assert_eq!(back, bits);
        for (i, &b) in bits.iter().enumerate() {
            assert_eq!(block.get(i), Some(b), "bit {i}");
        }
        assert_eq!(block.get(517), None);
    }

    #[test]
    fn block_push_bits_matches_per_bit_pushes() {
        let bits = random_bools(2, 300);
        let mut packed = BitBlock::new();
        let mut i = 0;
        let mut s = 7u64;
        while i < bits.len() {
            let n = (splitmix(&mut s) as usize % 64 + 1).min(bits.len() - i);
            let mut frag = 0u64;
            for (k, &b) in bits[i..i + n].iter().enumerate() {
                frag |= u64::from(b) << (63 - k);
            }
            packed.push_bits(frag, n);
            i += n;
        }
        assert_eq!(packed, BitBlock::from_bools(&bits));
    }

    #[test]
    fn push_bits_ignores_low_garbage() {
        let mut a = BitBlock::new();
        a.push_bits(u64::MAX, 3); // only top 3 bits may land
        let mut b = BitBlock::new();
        b.push_bits(0b111u64 << 61, 3);
        assert_eq!(a, b);
        assert_eq!(a.words(), &[0b111u64 << 61]);
    }

    #[test]
    fn queue_fifo_matches_vecdeque_model() {
        // Randomized interleaving of pushes and pops against a
        // VecDeque<bool> oracle.
        let mut s = 3u64;
        let mut q = BitQueue::new();
        let mut model: VecDeque<bool> = VecDeque::new();
        for _ in 0..20_000 {
            match splitmix(&mut s) % 6 {
                0 | 1 => {
                    let b = splitmix(&mut s) & 1 == 1;
                    q.push_bit(b);
                    model.push_back(b);
                }
                2 => {
                    let n = splitmix(&mut s) as usize % 65;
                    let frag = splitmix(&mut s);
                    q.push_bits(frag, n);
                    for k in 0..n {
                        model.push_back((frag >> (63 - k)) & 1 == 1);
                    }
                }
                3 => {
                    assert_eq!(q.pop_bit(), model.pop_front());
                }
                4 => {
                    if model.len() >= 64 {
                        let mut want = 0u64;
                        for _ in 0..64 {
                            want = (want << 1) | u64::from(model.pop_front().unwrap_or(false));
                        }
                        assert_eq!(q.pop_word(), Some(want));
                    } else {
                        assert_eq!(q.pop_word(), None);
                    }
                }
                _ => {
                    if model.len() >= 8 {
                        let mut want = 0u8;
                        for _ in 0..8 {
                            want = (want << 1) | u8::from(model.pop_front().unwrap_or(false));
                        }
                        assert_eq!(q.pop_byte(), Some(want));
                    } else {
                        assert_eq!(q.pop_byte(), None);
                    }
                }
            }
            assert_eq!(q.len(), model.len());
        }
    }

    #[test]
    fn drain_to_empty_then_refill_is_clean() {
        // The stale-bit hazard: consume everything at an odd offset,
        // then push again — consumed bits must not resurface.
        let mut q = BitQueue::new();
        q.push_bits(u64::MAX, 64);
        q.drop_front(37);
        let tail = q.pop_bools(27);
        assert!(tail.iter().all(|&b| b));
        assert!(q.is_empty());
        q.push_bits(0, 64);
        assert_eq!(q.pop_word(), Some(0), "no stale set bits leak back");
    }

    #[test]
    fn drop_front_discards_oldest() {
        let bits = random_bools(9, 200);
        let mut q = BitQueue::new();
        for &b in &bits {
            q.push_bit(b);
        }
        q.drop_front(77);
        assert_eq!(q.len(), 123);
        assert_eq!(q.pop_bools(123), bits[77..].to_vec());
        // Over-dropping empties without panicking.
        q.push_bit(true);
        q.drop_front(100);
        assert!(q.is_empty());
    }

    #[test]
    fn push_block_and_pop_block_preserve_order() {
        let bits = random_bools(11, 400);
        let mut q = BitQueue::new();
        // Seed the queue with a 13-bit prefix so the block push and
        // the block pop both straddle word boundaries.
        let prefix = random_bools(12, 13);
        for &b in &prefix {
            q.push_bit(b);
        }
        q.push_block(&BitBlock::from_bools(&bits));
        assert_eq!(q.len(), 13 + 400);
        assert_eq!(q.pop_bools(13), prefix);
        let block = q.pop_block(400);
        assert_eq!(block.len(), 400);
        assert_eq!(block.iter().collect::<Vec<_>>(), bits);
        assert!(q.is_empty());
    }

    #[test]
    fn push_words_matches_per_bit_pushes() {
        // Bulk word-run publication against the incremental paths, at
        // every tail alignment (aligned direct copy and shifted
        // splice) and with a non-multiple-of-64 run tail.
        let mut s = 5u64;
        for prefix_len in [0usize, 1, 13, 63, 64, 65] {
            for run_len in [0usize, 1, 7, 64, 65, 130, 257] {
                let prefix = random_bools(s, prefix_len);
                let run = random_bools(s.wrapping_add(1), run_len);
                s = splitmix(&mut s);
                let run_block = BitBlock::from_bools(&run);
                let mut bulk = BitQueue::new();
                let mut serial = BitQueue::new();
                for &b in &prefix {
                    bulk.push_bit(b);
                    serial.push_bit(b);
                }
                bulk.push_words(run_block.words(), run_block.len());
                for &b in &run {
                    serial.push_bit(b);
                }
                assert_eq!(bulk.len(), serial.len());
                let n = bulk.len();
                assert_eq!(
                    bulk.pop_bools(n),
                    serial.pop_bools(n),
                    "prefix {prefix_len} run {run_len}"
                );
            }
        }
    }

    #[test]
    fn push_words_masks_garbage_past_len() {
        let mut q = BitQueue::new();
        q.push_words(&[u64::MAX], 3);
        assert_eq!(q.pop_bools(3), vec![true; 3]);
        assert!(q.is_empty());
        q.push_words(&[0], 64);
        assert_eq!(q.pop_word(), Some(0), "no stale garbage resurfaces");
    }

    #[test]
    fn pop_block_full_drain_hands_storage_over() {
        // The harvest_block steady state: word-aligned whole-queue
        // drain must match the general path bit-for-bit.
        for len in [1usize, 50, 64, 100, 128, 131] {
            let bits = random_bools(len as u64, len);
            let mut q = BitQueue::new();
            let block_in = BitBlock::from_bools(&bits);
            q.push_words(block_in.words(), block_in.len());
            let out = q.pop_block(len);
            assert_eq!(out.len(), len);
            assert_eq!(out.iter().collect::<Vec<_>>(), bits, "len {len}");
            assert!(q.is_empty());
            // Refill after the storage handover stays clean.
            q.push_bit(true);
            assert_eq!(q.pop_bit(), Some(true));
        }
    }

    #[test]
    fn pop_block_partial_and_offset_drains_match_bits() {
        let bits = random_bools(77, 300);
        let mut q = BitQueue::new();
        for &b in &bits {
            q.push_bit(b);
        }
        q.drop_front(5); // force a nonzero front offset
        let a = q.pop_block(70); // sub-word remainder at offset
        assert_eq!(a.iter().collect::<Vec<_>>(), bits[5..75]);
        let b = q.pop_block(150);
        assert_eq!(b.iter().collect::<Vec<_>>(), bits[75..225]);
        // Over-ask pops what's left.
        let c = q.pop_block(1000);
        assert_eq!(c.iter().collect::<Vec<_>>(), bits[225..]);
        assert!(q.is_empty());
        assert!(q.pop_block(10).is_empty());
    }

    #[test]
    fn pop_word_matches_msb_first_packing() {
        let mut q = BitQueue::new();
        let bits = random_bools(21, 64);
        for &b in &bits {
            q.push_bit(b);
        }
        let mut want = 0u64;
        for &b in &bits {
            want = (want << 1) | u64::from(b);
        }
        assert_eq!(q.pop_word(), Some(want));
        let packed = want.to_be_bytes();
        let mut q2 = BitQueue::new();
        for &b in &bits {
            q2.push_bit(b);
        }
        for (i, &byte) in packed.iter().enumerate() {
            assert_eq!(q2.pop_byte(), Some(byte), "byte {i} in FIFO order");
        }
    }
}
