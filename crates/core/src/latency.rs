//! Latency model — Section 7.3's "Low Latency" analysis.
//!
//! The latency to deliver a 64-bit random value is the device time from
//! the first command until 64 RNG-cell bits have been read, which
//! depends on how much bank/channel parallelism and RNG-cell density
//! per word is available.

use dram_sim::commands::CommandKind;
use dram_sim::TimingParams;
use memctrl::{CommandScheduler, TimingRegisters};

/// Scenario for a latency query.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LatencyScenario {
    /// Banks used per channel.
    pub banks: usize,
    /// Independent channels.
    pub channels: usize,
    /// RNG cells per accessed DRAM word.
    pub bits_per_word: usize,
}

impl LatencyScenario {
    /// The paper's worst case: one bank, one channel, one RNG cell per
    /// word.
    pub fn worst_case() -> Self {
        LatencyScenario {
            banks: 1,
            channels: 1,
            bits_per_word: 1,
        }
    }

    /// The paper's best case: 8 banks × 4 channels, 4 RNG cells per
    /// word.
    pub fn best_case() -> Self {
        LatencyScenario {
            banks: 8,
            channels: 4,
            bits_per_word: 4,
        }
    }
}

/// Device time (ps) until `target_bits` random bits have been read
/// under a scenario, simulating the Algorithm 2 command stream.
///
/// Bits arrive when a read's data burst completes (`RD issue + tCL +
/// tBL`); each channel runs an independent command stream and they are
/// synchronized only through the final bit count.
///
/// # Panics
///
/// Panics if any scenario field is zero.
pub fn latency_ps(
    registers: &TimingRegisters,
    scenario: LatencyScenario,
    target_bits: usize,
) -> u64 {
    assert!(scenario.banks > 0 && scenario.channels > 0 && scenario.bits_per_word > 0);
    assert!(target_bits > 0);
    let t = registers.effective();
    // Bits needed from each channel (channels run in parallel).
    let per_channel = target_bits.div_ceil(scenario.channels);
    let mut sched = CommandScheduler::new(scenario.banks, t);
    sched.set_overhead_ps(registers.cmd_overhead_ps());
    let mut harvested = 0usize;
    let mut last_data_ps = 0u64;
    let mut row = 0usize;
    while harvested < per_channel {
        for b in 0..scenario.banks {
            if harvested >= per_channel {
                break;
            }
            // The ACT/RD/WR/PRE sequence below is legal by
            // construction (fresh scheduler, in-order commands per
            // bank), so `issue` cannot reject it.
            // xtask:allow(no-panic) -- legal-by-construction command sequence
            sched.issue(CommandKind::Act, b, row, 0).expect("legal ACT");
            // xtask:allow(no-panic) -- legal-by-construction command sequence
            let rd = sched.issue(CommandKind::Rd, b, row, 0).expect("legal RD");
            harvested += scenario.bits_per_word;
            last_data_ps = last_data_ps.max(rd.at_ps + t.tcl_ps + t.tbl_ps);
            // xtask:allow(no-panic) -- legal-by-construction command sequence
            sched.issue(CommandKind::Wr, b, row, 0).expect("legal WR");
            // xtask:allow(no-panic) -- legal-by-construction command sequence
            sched.issue(CommandKind::Pre, b, 0, 0).expect("legal PRE");
        }
        row = (row + 1) % 2;
    }
    last_data_ps
}

/// Convenience: latency in nanoseconds for a 64-bit random value.
pub fn latency_64bit_ns(
    timing: TimingParams,
    reduced_trcd_ns: f64,
    scenario: LatencyScenario,
) -> f64 {
    let mut registers = TimingRegisters::new(timing);
    // xtask:allow(no-panic) -- analytic helper; callers pass paper-range constants
    registers.set_trcd_ns(reduced_trcd_ns).expect("valid tRCD");
    latency_ps(&registers, scenario, 64) as f64 / 1_000.0
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn best_case_is_fast() {
        let ns = latency_64bit_ns(
            TimingParams::lpddr4_3200(),
            10.0,
            LatencyScenario::best_case(),
        );
        // Paper: ~100 ns empirical minimum. Our scheduler should land
        // within the same order of magnitude.
        assert!(ns < 400.0, "best-case latency {ns} ns");
        assert!(ns > 15.0, "cannot beat ACT->data: {ns} ns");
    }

    #[test]
    fn worst_case_is_much_slower() {
        let worst = latency_64bit_ns(
            TimingParams::lpddr4_3200(),
            10.0,
            LatencyScenario::worst_case(),
        );
        let best = latency_64bit_ns(
            TimingParams::lpddr4_3200(),
            10.0,
            LatencyScenario::best_case(),
        );
        assert!(worst > 8.0 * best, "worst {worst} vs best {best}");
    }

    #[test]
    fn latency_decreases_with_density() {
        let t = TimingParams::lpddr4_3200();
        let one = latency_64bit_ns(
            t,
            10.0,
            LatencyScenario {
                banks: 8,
                channels: 1,
                bits_per_word: 1,
            },
        );
        let four = latency_64bit_ns(
            t,
            10.0,
            LatencyScenario {
                banks: 8,
                channels: 1,
                bits_per_word: 4,
            },
        );
        assert!(four < one, "4 bits/word {four} < 1 bit/word {one}");
    }

    #[test]
    fn latency_decreases_with_channels() {
        let t = TimingParams::lpddr4_3200();
        let c1 = latency_64bit_ns(
            t,
            10.0,
            LatencyScenario {
                banks: 8,
                channels: 1,
                bits_per_word: 2,
            },
        );
        let c4 = latency_64bit_ns(
            t,
            10.0,
            LatencyScenario {
                banks: 8,
                channels: 4,
                bits_per_word: 2,
            },
        );
        assert!(c4 < c1);
    }

    #[test]
    fn reduced_trcd_helps_latency() {
        let t = TimingParams::lpddr4_3200();
        let slow = latency_64bit_ns(t, 13.0, LatencyScenario::best_case());
        let fast = latency_64bit_ns(t, 8.0, LatencyScenario::best_case());
        assert!(fast <= slow);
    }

    #[test]
    #[should_panic]
    fn zero_scenario_panics() {
        let mut r = TimingRegisters::new(TimingParams::lpddr4_3200());
        r.set_trcd_ns(10.0).unwrap();
        let _ = latency_ps(
            &r,
            LatencyScenario {
                banks: 0,
                channels: 1,
                bits_per_word: 1,
            },
            64,
        );
    }
}
