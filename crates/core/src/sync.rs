//! The engine's cross-thread protocol state, wrapped in
//! intent-revealing types.
//!
//! This module is the only place in `drange-core` that touches raw
//! atomics — a boundary enforced by the `no-raw-atomics` rule of
//! `cargo xtask lint`. [`crate::engine`] and [`crate::service`]
//! express their shared state through these domain-named wrappers
//! instead of bare `AtomicU64` cells, which buys two things:
//!
//! * every call site names the protocol action (`ledger.publish(n)`,
//!   `live.retire()`, `shutdown.raise()`) rather than the memory
//!   operation, so the bit-accounting invariant — *harvested =
//!   served + queued + discarded + in flight* — reads directly out
//!   of the code; and
//! * under `RUSTFLAGS="--cfg loom"` the wrappers switch to the
//!   `loomlite` model-checking shims, making every access a
//!   scheduling point so `tests/loom_engine.rs` can explore the
//!   engine's shutdown handshake and watermark gate exhaustively.
//!
//! All operations are sequentially consistent. The engine's counters
//! are far off the memory-bandwidth-bound hot path (one update per
//! *batch*, not per bit), so the stronger ordering costs nothing
//! measurable and keeps the model and the real execution identical.

#[cfg(loom)]
use loomlite::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
#[cfg(not(loom))]
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};

/// A monotonically increasing event tally (bits harvested, batches
/// published, health trips, …) that writers bump and stats snapshots
/// read without blocking.
#[derive(Debug, Default)]
pub struct CounterCell(AtomicU64);

impl CounterCell {
    /// Creates a counter at zero.
    #[must_use]
    pub fn new() -> Self {
        CounterCell::default()
    }

    /// Adds `n` events to the tally.
    pub fn add(&self, n: u64) {
        // xtask:allow(atomics-policy) -- feeds the conservation invariant; per-batch frequency makes SeqCst free
        self.0.fetch_add(n, Ordering::SeqCst);
    }

    /// Overwrites the tally with an externally tracked total (used for
    /// cumulative readings the source reports, e.g. device time).
    pub fn set(&self, total: u64) {
        // xtask:allow(atomics-policy) -- cumulative totals must not appear to run backwards between snapshots
        self.0.store(total, Ordering::SeqCst);
    }

    /// Current tally.
    #[must_use]
    pub fn get(&self) -> u64 {
        // xtask:allow(atomics-policy) -- stats snapshots cross-check counters against each other; one total order keeps them coherent
        self.0.load(Ordering::SeqCst)
    }
}

/// A one-way latch: starts lowered, can only be raised, never lowered
/// again. Models irreversible protocol transitions (shutdown requested,
/// collector finished).
#[derive(Debug, Default)]
pub struct Flag(AtomicBool);

impl Flag {
    /// Creates a lowered flag.
    #[must_use]
    pub fn new() -> Self {
        Flag::default()
    }

    /// Raises the flag (idempotent).
    pub fn raise(&self) {
        // xtask:allow(atomics-policy) -- shutdown latch: must not reorder after the condvar notify that follows it
        self.0.store(true, Ordering::SeqCst);
    }

    /// Whether the flag has been raised.
    #[must_use]
    pub fn is_raised(&self) -> bool {
        // xtask:allow(atomics-policy) -- checked under the pool mutex as a park gate; SeqCst keeps loom and std equivalent
        self.0.load(Ordering::SeqCst)
    }
}

/// A source of process-unique, strictly increasing identifiers
/// (request ids).
#[derive(Debug, Default)]
pub struct SequenceCounter(AtomicU64);

impl SequenceCounter {
    /// Creates a sequence starting at zero.
    #[must_use]
    pub fn new() -> Self {
        SequenceCounter::default()
    }

    /// Claims and returns the next identifier.
    pub fn next(&self) -> u64 {
        // xtask:allow(atomics-policy) -- ids must be strictly increasing across threads for trace correlation
        self.0.fetch_add(1, Ordering::SeqCst)
    }
}

/// A count of still-running worker threads. Each worker retires exactly
/// once on exit; clients poll [`LiveCount::all_retired`] to distinguish
/// "no bits *yet*" from "no bits *ever again*".
#[derive(Debug)]
pub struct LiveCount(AtomicUsize);

impl LiveCount {
    /// Creates the count with `workers` live members.
    #[must_use]
    pub fn new(workers: usize) -> Self {
        LiveCount(AtomicUsize::new(workers))
    }

    /// Records one member's exit, returning how many remain live.
    pub fn retire(&self) -> usize {
        // A retire below zero is a protocol bug (a worker exiting
        // twice); saturating keeps the count meaningful rather than
        // wrapping to usize::MAX and wedging `all_retired`.
        let prev = self
            .0
            // xtask:allow(atomics-policy) -- retirement orders against the pool-waiter wakeup; loom explores this handshake
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                Some(v.saturating_sub(1))
            })
            .unwrap_or(0);
        prev.saturating_sub(1)
    }

    /// Number of still-live members.
    #[must_use]
    pub fn live(&self) -> usize {
        // xtask:allow(atomics-policy) -- "no bits ever again" verdict: a stale read here would end a blocking request early
        self.0.load(Ordering::SeqCst)
    }

    /// Whether every member has retired.
    #[must_use]
    pub fn all_retired(&self) -> bool {
        self.live() == 0
    }
}

/// Accounting for bits that have been accepted by health screening but
/// not yet landed in the shared pool (published into the channel,
/// in-flight). The engine's conservation invariant — after a graceful
/// shutdown, *harvested = served + queued + discarded* — holds exactly
/// when this ledger drains to zero.
#[derive(Debug, Default)]
pub struct BitLedger(AtomicU64);

impl BitLedger {
    /// Creates an empty ledger.
    #[must_use]
    pub fn new() -> Self {
        BitLedger::default()
    }

    /// Records `bits` entering flight (screened and handed to the
    /// channel).
    pub fn publish(&self, bits: u64) {
        // xtask:allow(atomics-policy) -- in-flight bits must be visible before the channel send they account for
        self.0.fetch_add(bits, Ordering::SeqCst);
    }

    /// Records `bits` leaving flight (collected into the pool, or
    /// discarded because they became undeliverable during shutdown).
    ///
    /// Saturates at zero: retiring more bits than are outstanding is an
    /// accounting bug, and a ledger stuck at `u64::MAX - ε` after a
    /// wrap would silently poison every later stats snapshot, so the
    /// ledger clamps instead.
    pub fn retire(&self, bits: u64) {
        let _ = self
            .0
            // xtask:allow(atomics-policy) -- ledger drain participates in the shutdown handshake's total order (loom_engine.rs)
            .fetch_update(Ordering::SeqCst, Ordering::SeqCst, |v| {
                Some(v.saturating_sub(bits))
            });
    }

    /// Bits currently in flight.
    #[must_use]
    pub fn outstanding(&self) -> u64 {
        // xtask:allow(atomics-policy) -- conservation check: must observe every publish/retire already ordered before shutdown
        self.0.load(Ordering::SeqCst)
    }
}

/// The collector's hysteresis gate (Section 6.3's "available DRAM
/// bandwidth" policy): stop filling the pool at the high watermark,
/// resume once it has drained to the low one. Pure state machine — the
/// caller owns the locking and waiting — so the policy is unit-testable
/// and model-checkable in isolation.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WatermarkGate {
    low: usize,
    high: usize,
    filling: bool,
}

impl WatermarkGate {
    /// Creates a gate that fills until `high` and resumes at `low`.
    /// Starts in the filling state (an empty pool wants bits).
    #[must_use]
    pub fn new(low: usize, high: usize) -> Self {
        WatermarkGate {
            low,
            high,
            filling: true,
        }
    }

    /// Advances the hysteresis with the current pool size and returns
    /// whether the collector should admit more bits right now.
    pub fn admit(&mut self, pool_bits: usize) -> bool {
        if pool_bits >= self.high {
            self.filling = false;
        } else if pool_bits <= self.low {
            self.filling = true;
        }
        self.filling
    }

    /// Whether the gate is currently in the filling state (without
    /// advancing it).
    #[must_use]
    pub fn is_filling(&self) -> bool {
        self.filling
    }
}

/// Converts a relative timeout into an absolute deadline.
///
/// This is the one audited wall-clock read behind the timed-wait APIs:
/// the hot-path modules that consume deadlines ([`crate::engine`],
/// [`crate::service`]) are linted against ad-hoc `Instant::now()` pairs
/// (`instant-hot-path`), so deadline computation routes through here —
/// one clock read per timed request, on the slow (about-to-block) path.
///
/// Saturates far in the future instead of panicking when `now +
/// timeout` would overflow the `Instant` domain.
#[must_use]
pub fn deadline_after(timeout: std::time::Duration) -> std::time::Instant {
    let now = std::time::Instant::now();
    now.checked_add(timeout)
        .unwrap_or_else(|| now + std::time::Duration::from_secs(60 * 60 * 24 * 365))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_cell_adds_and_sets() {
        let c = CounterCell::new();
        c.add(3);
        c.add(4);
        assert_eq!(c.get(), 7);
        c.set(100);
        assert_eq!(c.get(), 100);
    }

    #[test]
    fn flag_latches() {
        let f = Flag::new();
        assert!(!f.is_raised());
        f.raise();
        f.raise();
        assert!(f.is_raised());
    }

    #[test]
    fn sequence_counter_is_strictly_increasing() {
        let s = SequenceCounter::new();
        assert_eq!(s.next(), 0);
        assert_eq!(s.next(), 1);
        assert_eq!(s.next(), 2);
    }

    #[test]
    fn live_count_retires_to_zero_and_saturates() {
        let l = LiveCount::new(2);
        assert_eq!(l.live(), 2);
        assert!(!l.all_retired());
        assert_eq!(l.retire(), 1);
        assert_eq!(l.retire(), 0);
        assert!(l.all_retired());
        // A buggy double-retire must not wrap the count back up.
        assert_eq!(l.retire(), 0);
        assert!(l.all_retired());
    }

    #[test]
    fn bit_ledger_balances_and_saturates() {
        let b = BitLedger::new();
        b.publish(64);
        b.publish(64);
        b.retire(64);
        assert_eq!(b.outstanding(), 64);
        b.retire(64);
        assert_eq!(b.outstanding(), 0);
        // Over-retiring clamps at zero instead of wrapping.
        b.retire(1);
        assert_eq!(b.outstanding(), 0);
    }

    #[test]
    fn watermark_gate_hysteresis() {
        let mut g = WatermarkGate::new(4, 16);
        assert!(g.is_filling(), "an empty pool wants bits");
        assert!(g.admit(0));
        assert!(g.admit(15), "below high: keep filling");
        assert!(!g.admit(16), "at high: pause");
        assert!(!g.admit(10), "between the watermarks: stay paused");
        assert!(!g.admit(5), "still above low: stay paused");
        assert!(g.admit(4), "at low: resume");
        assert!(g.admit(10), "between the watermarks: keep filling");
        assert!(!g.admit(20), "overshoot past high: pause");
        assert!(g.admit(0), "drained: resume");
    }

    #[test]
    fn watermark_gate_degenerate_equal_marks() {
        // low == high: the gate toggles exactly at the mark, never
        // wedges.
        let mut g = WatermarkGate::new(8, 8);
        assert!(g.admit(0));
        assert!(!g.admit(8), "at the mark: high wins the tie, pause");
        assert!(g.admit(7), "below the mark: resume");
    }
}
