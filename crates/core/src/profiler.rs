//! Algorithm 1 — activation-failure profiling.
//!
//! Writes a data pattern into a DRAM region, programs a reduced `tRCD`,
//! and scans the region in column order, refreshing each row before
//! inducing an activation failure on it (paper Section 4, Algorithm 1).
//! Repeated over many iterations this yields each cell's empirical
//! activation-failure probability F_prob — the raw material for the
//! characterization studies (Figures 4-6) and for RNG-cell
//! identification.

use std::collections::HashMap;
use std::ops::Range;

use dram_sim::{CellAddr, Celsius, DataPattern};
use memctrl::MemoryController;

use crate::error::{DrangeError, Result};

/// Specification of one profiling run.
#[derive(Debug, Clone, PartialEq)]
pub struct ProfileSpec {
    /// Banks to profile.
    pub banks: Vec<usize>,
    /// Row range within each bank.
    pub rows: Range<usize>,
    /// Column range within each row.
    pub cols: Range<usize>,
    /// Background data pattern (Section 5.2 studies 40 of them).
    pub pattern: DataPattern,
    /// The reduced activation latency to test at, ns (paper default:
    /// 10 ns against an 18 ns datasheet value).
    pub trcd_ns: f64,
    /// Number of scans of the region (paper: 100 for F_prob studies).
    pub iterations: usize,
}

impl ProfileSpec {
    /// One bank, full extent, solid-zero pattern, 10 ns, 100 iterations.
    pub fn bank(bank: usize, rows: usize, cols: usize) -> Self {
        ProfileSpec {
            banks: vec![bank],
            rows: 0..rows,
            cols: 0..cols,
            pattern: DataPattern::Solid0,
            trcd_ns: 10.0,
            iterations: 100,
        }
    }

    /// Builder-style pattern override.
    pub fn with_pattern(mut self, pattern: DataPattern) -> Self {
        self.pattern = pattern;
        self
    }

    /// Builder-style tRCD override.
    pub fn with_trcd_ns(mut self, trcd_ns: f64) -> Self {
        self.trcd_ns = trcd_ns;
        self
    }

    /// Builder-style iteration-count override.
    pub fn with_iterations(mut self, iterations: usize) -> Self {
        self.iterations = iterations;
        self
    }

    fn validate(&self, ctrl: &MemoryController) -> Result<()> {
        let g = ctrl.device().geometry();
        if self.banks.is_empty() || self.rows.is_empty() || self.cols.is_empty() {
            return Err(DrangeError::InvalidSpec("empty profiling region".into()));
        }
        if self.iterations == 0 {
            return Err(DrangeError::InvalidSpec("zero iterations".into()));
        }
        if !self.trcd_ns.is_finite() || self.trcd_ns <= 0.0 {
            return Err(DrangeError::InvalidSpec(format!(
                "bad tRCD {} ns",
                self.trcd_ns
            )));
        }
        if self.banks.iter().any(|&b| b >= g.banks)
            || self.rows.end > g.rows
            || self.cols.end > g.cols
        {
            return Err(DrangeError::InvalidSpec(format!(
                "region exceeds geometry {g:?}"
            )));
        }
        Ok(())
    }
}

impl Default for ProfileSpec {
    fn default() -> Self {
        ProfileSpec::bank(0, 1024, 16)
    }
}

/// Result of a profiling run: per-cell activation-failure counts.
#[derive(Debug, Clone)]
pub struct FailureProfile {
    spec: ProfileSpec,
    temperature: Celsius,
    counts: HashMap<CellAddr, u32>,
}

impl FailureProfile {
    /// The specification this profile was collected under.
    pub fn spec(&self) -> &ProfileSpec {
        &self.spec
    }

    /// Device temperature during the run.
    pub fn temperature(&self) -> Celsius {
        self.temperature
    }

    /// Number of iterations the region was scanned.
    pub fn iterations(&self) -> usize {
        self.spec.iterations
    }

    /// Failure count of one cell.
    pub fn fail_count(&self, cell: CellAddr) -> u32 {
        self.counts.get(&cell).copied().unwrap_or(0)
    }

    /// Empirical failure probability of one cell.
    pub fn fprob(&self, cell: CellAddr) -> f64 {
        self.fail_count(cell) as f64 / self.spec.iterations as f64
    }

    /// All cells that failed at least once, sorted by address.
    pub fn failing_cells(&self) -> Vec<CellAddr> {
        let mut v: Vec<CellAddr> = self.counts.keys().copied().collect();
        v.sort();
        v
    }

    /// Number of distinct failing cells.
    pub fn unique_failures(&self) -> usize {
        self.counts.len()
    }

    /// Total failure events observed.
    pub fn total_failures(&self) -> u64 {
        self.counts.values().map(|&c| c as u64).sum()
    }

    /// Cells whose empirical F_prob lies in `[lo, hi]` (the paper's
    /// 40-60 % band feeds RNG-cell identification).
    pub fn cells_in_band(&self, lo: f64, hi: f64) -> Vec<CellAddr> {
        let mut v: Vec<CellAddr> = self
            .counts
            .iter()
            .filter(|(_, &c)| {
                let p = c as f64 / self.spec.iterations as f64;
                p >= lo && p <= hi
            })
            .map(|(&a, _)| a)
            .collect();
        v.sort();
        v
    }

    /// Iterates over `(cell, count)` pairs in arbitrary order.
    pub fn iter(&self) -> impl Iterator<Item = (CellAddr, u32)> + '_ {
        self.counts.iter().map(|(&a, &c)| (a, c))
    }

    /// A row-major failure bitmap of one bank over the profiled region
    /// (rows × bitlines), for the Figure 4 spatial study. `true` marks
    /// a cell that failed at least once.
    pub fn bitmap(&self, bank: usize, word_bits: usize) -> Vec<Vec<bool>> {
        let rows = self.spec.rows.clone();
        let cols = self.spec.cols.clone();
        let width = (cols.end - cols.start) * word_bits;
        let mut map = vec![vec![false; width]; rows.end - rows.start];
        for (&cell, _) in &self.counts {
            if cell.bank != bank {
                continue;
            }
            let r = cell.row - rows.start;
            let c = (cell.col - cols.start) * word_bits + cell.bit;
            map[r][c] = true;
        }
        map
    }
}

/// Runs Algorithm 1 against a memory controller.
#[derive(Debug)]
pub struct Profiler<'a> {
    ctrl: &'a mut MemoryController,
}

impl<'a> Profiler<'a> {
    /// A profiler borrowing the controller.
    pub fn new(ctrl: &'a mut MemoryController) -> Self {
        Profiler { ctrl }
    }

    /// Runs the profiling algorithm and returns the failure profile.
    ///
    /// The controller's `tRCD` register is restored to the datasheet
    /// value before returning, even on the error path.
    ///
    /// # Errors
    ///
    /// Returns [`DrangeError::InvalidSpec`] for malformed specs and
    /// propagates controller errors.
    pub fn run(&mut self, spec: ProfileSpec) -> Result<FailureProfile> {
        spec.validate(self.ctrl)?;
        let word_bits = self.ctrl.device().geometry().word_bits;
        // Line 2: write the data pattern into the region under test.
        for &bank in &spec.banks {
            for row in spec.rows.clone() {
                self.ctrl.device_mut().fill_row(bank, row, spec.pattern);
            }
        }
        // Line 3: reduce tRCD.
        self.ctrl.try_set_trcd_ns(spec.trcd_ns)?;
        let result = self.scan(&spec, word_bits);
        // Line 12: restore the default tRCD.
        self.ctrl.reset_trcd();
        let counts = result?;
        Ok(FailureProfile {
            temperature: self.ctrl.device().temperature(),
            spec,
            counts,
        })
    }

    fn scan(&mut self, spec: &ProfileSpec, word_bits: usize) -> Result<HashMap<CellAddr, u32>> {
        let mut counts: HashMap<CellAddr, u32> = HashMap::new();
        for _ in 0..spec.iterations {
            for &bank in &spec.banks {
                // Lines 4-5: column order so every access activates a
                // closed row.
                for col in spec.cols.clone() {
                    for row in spec.rows.clone() {
                        let expected = spec.pattern.word(row, col, word_bits);
                        // Lines 6-7: refresh the row (ACT + PRE).
                        self.ctrl.refresh_row(bank, row)?;
                        // Lines 8-10: ACT, reduced-latency READ, PRE —
                        // with a restoring write when the read failed so
                        // the stored pattern stays constant.
                        self.ctrl.act(bank, row)?;
                        let got = self.ctrl.rd(bank, row, col)?;
                        if got != expected {
                            self.ctrl.wr(bank, row, col, expected)?;
                            let mut diff = got ^ expected;
                            while diff != 0 {
                                let bit = diff.trailing_zeros() as usize;
                                *counts
                                    .entry(CellAddr::new(bank, row, col, bit))
                                    .or_insert(0) += 1;
                                diff &= diff - 1;
                            }
                        }
                        self.ctrl.pre(bank)?;
                    }
                }
            }
        }
        Ok(counts)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{DeviceConfig, Manufacturer};

    fn ctrl() -> MemoryController {
        MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(42)
                .with_noise_seed(43),
        )
    }

    fn small_spec() -> ProfileSpec {
        ProfileSpec {
            banks: vec![0],
            rows: 0..256,
            cols: 0..16,
            pattern: DataPattern::Solid0,
            trcd_ns: 10.0,
            iterations: 20,
        }
    }

    #[test]
    fn profiling_finds_failures_and_restores_trcd() {
        let mut c = ctrl();
        let profile = Profiler::new(&mut c).run(small_spec()).unwrap();
        assert!(
            profile.unique_failures() > 0,
            "10 ns scans must find failures"
        );
        assert_eq!(c.trcd_ns(), 18.0, "tRCD restored after profiling");
    }

    #[test]
    fn no_failures_at_spec_trcd() {
        let mut c = ctrl();
        let spec = small_spec().with_trcd_ns(18.0).with_iterations(3);
        let profile = Profiler::new(&mut c).run(spec).unwrap();
        assert_eq!(profile.unique_failures(), 0);
    }

    #[test]
    fn fprob_counts_are_consistent() {
        let mut c = ctrl();
        let profile = Profiler::new(&mut c).run(small_spec()).unwrap();
        for (cell, count) in profile.iter() {
            assert!(count as usize <= profile.iterations());
            assert!((profile.fprob(cell) - count as f64 / 20.0).abs() < 1e-12);
        }
        let never_failed = CellAddr::new(0, 0, 0, 0);
        if profile.fail_count(never_failed) == 0 {
            assert_eq!(profile.fprob(never_failed), 0.0);
        }
    }

    #[test]
    fn band_selection_is_subset_of_failures() {
        let mut c = ctrl();
        let profile = Profiler::new(&mut c)
            .run(small_spec().with_iterations(50))
            .unwrap();
        let band = profile.cells_in_band(0.4, 0.6);
        let all = profile.failing_cells();
        for cell in &band {
            assert!(all.contains(cell));
            let p = profile.fprob(*cell);
            assert!((0.4..=0.6).contains(&p));
        }
    }

    #[test]
    fn failures_cluster_on_weak_bitlines() {
        let mut c = ctrl();
        let profile = Profiler::new(&mut c).run(small_spec()).unwrap();
        let mut on_weak = 0usize;
        let mut total = 0usize;
        for cell in profile.failing_cells() {
            total += 1;
            if c.device().on_weak_bitline(cell) {
                on_weak += 1;
            }
        }
        assert!(total > 0);
        assert_eq!(on_weak, total, "every failure sits on a weak bitline");
    }

    #[test]
    fn bitmap_has_profiled_shape() {
        let mut c = ctrl();
        let spec = ProfileSpec {
            rows: 0..64,
            cols: 0..4,
            iterations: 10,
            ..small_spec()
        };
        let profile = Profiler::new(&mut c).run(spec).unwrap();
        let map = profile.bitmap(0, 64);
        assert_eq!(map.len(), 64);
        assert_eq!(map[0].len(), 256);
        let marked: usize = map.iter().map(|r| r.iter().filter(|&&b| b).count()).sum();
        assert_eq!(marked, profile.unique_failures());
    }

    #[test]
    fn invalid_specs_are_rejected() {
        let mut c = ctrl();
        let mut p = Profiler::new(&mut c);
        assert!(p
            .run(ProfileSpec {
                banks: vec![],
                ..small_spec()
            })
            .is_err());
        assert!(p
            .run(ProfileSpec {
                iterations: 0,
                ..small_spec()
            })
            .is_err());
        assert!(p
            .run(ProfileSpec {
                banks: vec![99],
                ..small_spec()
            })
            .is_err());
        assert!(p.run(small_spec().with_trcd_ns(-1.0)).is_err());
        assert!(p
            .run(ProfileSpec {
                rows: 0..9999,
                ..small_spec()
            })
            .is_err());
    }

    #[test]
    fn deterministic_given_seeded_noise() {
        let run = || {
            let mut c = ctrl();
            let p = Profiler::new(&mut c).run(small_spec()).unwrap();
            let mut cells = p.failing_cells();
            cells.sort();
            (p.total_failures(), cells)
        };
        assert_eq!(run(), run());
    }
}
