//! Concurrent multi-channel harvesting engine — the parallelism story
//! of Sections 6.2–6.3 turned into a running system.
//!
//! The paper's headline throughput rests on two levels of parallelism:
//! bank-level interleaving *within* a channel (Algorithm 2's
//! phase-interleaved command stream, already modeled by [`DRange`]) and
//! channel-level scaling *across* independent channels
//! ([`crate::throughput::scale_to_channels`]). This module supplies the
//! channel level: `N` worker threads, each owning its own memory
//! controller and [`DRange`] instance (one per simulated channel),
//! continuously harvest health-screened bit batches and push them
//! through a channel-affine sharded hand-off
//! ([`crate::channel::ShardedChannel`]: one bounded single-sender
//! shard per worker, drained round-robin behind a doorbell) into a
//! shared bit pool that many client threads drain concurrently.
//!
//! ## Topology
//!
//! ```text
//!  worker 0 (DRange + HealthMonitor) ──▶ shard 0 ──┐
//!  worker 1 (DRange + HealthMonitor) ──▶ shard 1 ──┤   collector      shared pool
//!  ...                                             ├─▶ (hysteresis) ─▶ Mutex<BitQueue>
//!  worker N-1                        ──▶ shard N-1 ┘   round-robin          │
//!                                          (BitBlock)   take_bits() ◀──────┘  (many clients)
//! ```
//!
//! Each worker is the *sole* sender of its shard, so publishing never
//! contends on another channel's lock — adding workers adds shards,
//! not queueing conflicts — while the collector multiplexes the shards
//! with non-blocking drains and parks on a shared doorbell when all
//! are empty.
//!
//! Bits travel packed end to end: a worker harvests one [`BitBlock`]
//! (64 bits per `u64` word) per batch, the channel moves whole blocks,
//! and the collector splices them into the pool's [`BitQueue`] word by
//! word — the worker→pool transfer copies words, never individual
//! bools. Clients unpack only at the API boundary ([`take_bits`]) or
//! not at all ([`take_bytes`] emits the pool words big-endian).
//!
//! [`take_bits`]: HarvestEngine::take_bits
//! [`take_bytes`]: HarvestEngine::take_bytes
//!
//! Backpressure is two-staged: the collector stops draining the channel
//! once the pool reaches the high watermark (and resumes below the low
//! watermark), which lets the bounded channel fill up, which in turn
//! blocks the workers — so an idle engine consumes no CPU at all: every
//! blocking wait in the pipeline is notification-driven (a plain
//! condvar wait woken by the state change it is waiting for, never a
//! timeout poll). Every batch is screened by a per-worker
//! [`HealthMonitor`] before it is published; rejected batches are
//! discarded and counted, and a worker that rejects more than
//! [`EngineConfig::max_consecutive_rejects`] batches *in a row* (the
//! counter persists across requests and resets only on an accepted
//! batch) records an [`DrangeError::Unhealthy`] error and retires.

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::{Duration, Instant};

use dram_sim::{DeviceConfig, FaultStats, SenseCacheStats};
use drange_telemetry::{Counter, Gauge, Histogram, MetricsRegistry, TraceId, Tracer};
use memctrl::MemoryController;
use parking_lot::{Condvar, Mutex};

use crate::bits::{BitBlock, BitQueue};
use crate::channel::ShardedChannel;
use crate::error::{DrangeError, Result};
use crate::health::{HealthMonitor, TripCounts};
use crate::identify::RngCellCatalog;
use crate::lifecycle::{LifecycleStats, ResilientDRange};
use crate::sampler::{DRange, DRangeConfig};
use crate::sync::{deadline_after, BitLedger, CounterCell, Flag, LiveCount, WatermarkGate};

/// A source of raw random-bit batches that a worker thread can own.
///
/// [`DRange`] is the canonical implementation (one batch = one pass of
/// the Algorithm 2 core loop); tests inject scripted sources to
/// exercise the engine without the simulation cost.
pub trait HarvestSource: Send + 'static {
    /// Harvests one batch of raw (unscreened) bits, packed 64 to a
    /// word.
    ///
    /// # Errors
    ///
    /// Propagates device/controller failures; an erroring source
    /// retires its worker.
    fn harvest_batch(&mut self) -> Result<BitBlock>;

    /// Cumulative device time this source has consumed, in picoseconds
    /// (0 when the source has no notion of device time).
    fn device_time_ps(&self) -> u64 {
        0
    }

    /// Cumulative sensing-cache counters of the underlying device, when
    /// the source has one (`None` for scripted test sources).
    fn sense_cache_stats(&self) -> Option<SenseCacheStats> {
        None
    }

    /// Snapshot of the source's cell-lifecycle counters, when it runs
    /// one (`None` for plain samplers and scripted test sources).
    fn lifecycle_stats(&self) -> Option<LifecycleStats> {
        None
    }

    /// Cumulative injected-fault counters of the underlying device,
    /// when the source has one (`None` for scripted test sources).
    fn fault_stats(&self) -> Option<FaultStats> {
        None
    }
}

impl HarvestSource for DRange {
    fn harvest_batch(&mut self) -> Result<BitBlock> {
        self.harvest_block()
    }

    fn device_time_ps(&self) -> u64 {
        self.stats().device_time_ps
    }

    fn sense_cache_stats(&self) -> Option<SenseCacheStats> {
        Some(DRange::sense_cache_stats(self))
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        Some(self.controller().device().fault_stats())
    }
}

impl HarvestSource for ResilientDRange {
    fn harvest_batch(&mut self) -> Result<BitBlock> {
        self.next_batch()
    }

    fn device_time_ps(&self) -> u64 {
        self.generator().stats().device_time_ps
    }

    fn sense_cache_stats(&self) -> Option<SenseCacheStats> {
        Some(self.generator().sense_cache_stats())
    }

    fn lifecycle_stats(&self) -> Option<LifecycleStats> {
        Some(ResilientDRange::lifecycle_stats(self))
    }

    fn fault_stats(&self) -> Option<FaultStats> {
        Some(ResilientDRange::fault_stats(self))
    }
}

/// Configuration of the harvesting engine.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct EngineConfig {
    /// Bits the shared pool aims to keep ready (soft bound: the pool
    /// may overshoot by at most one in-flight batch, and by any amount
    /// during the final shutdown drain).
    pub queue_capacity: usize,
    /// The collector resumes filling once the pool drops to or below
    /// this many bits.
    pub low_watermark: usize,
    /// The collector pauses filling once the pool holds at least this
    /// many bits.
    pub high_watermark: usize,
    /// Claimed min-entropy for the per-worker health monitors
    /// (bits/bit).
    pub min_entropy: f64,
    /// Capacity of each worker's shard of the worker→collector
    /// channel, in batches.
    pub channel_batches: usize,
    /// A worker that rejects more than this many batches consecutively
    /// (no accepted batch in between) records an unhealthy-source error
    /// and retires.
    pub max_consecutive_rejects: u32,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            queue_capacity: 1 << 16,
            low_watermark: 1 << 12,
            high_watermark: 1 << 16,
            min_entropy: 0.95,
            channel_batches: 8,
            max_consecutive_rejects: 1000,
        }
    }
}

impl EngineConfig {
    fn validate(&self) -> Result<()> {
        if self.queue_capacity == 0 {
            return Err(DrangeError::InvalidSpec(
                "queue capacity must be nonzero".into(),
            ));
        }
        if self.low_watermark > self.high_watermark || self.high_watermark > self.queue_capacity {
            return Err(DrangeError::InvalidSpec(format!(
                "watermarks must satisfy low ({}) <= high ({}) <= capacity ({})",
                self.low_watermark, self.high_watermark, self.queue_capacity
            )));
        }
        if !(0.0..=1.0).contains(&self.min_entropy) || self.min_entropy == 0.0 {
            return Err(DrangeError::InvalidSpec(
                "min_entropy must be in (0,1]".into(),
            ));
        }
        if self.channel_batches == 0 {
            return Err(DrangeError::InvalidSpec(
                "channel_batches must be nonzero".into(),
            ));
        }
        if self.max_consecutive_rejects == 0 {
            return Err(DrangeError::InvalidSpec(
                "max_consecutive_rejects must be nonzero".into(),
            ));
        }
        Ok(())
    }
}

/// Counters one worker thread maintains (shared lock-free cells — see
/// [`crate::sync`] — so stats snapshots never block harvesting).
#[derive(Debug, Default)]
struct WorkerCounters {
    harvested_bits: CounterCell,
    discarded_bits: CounterCell,
    health_trips: CounterCell,
    repetition_trips: CounterCell,
    adaptive_trips: CounterCell,
    batches: CounterCell,
    device_time_ps: CounterCell,
    cache_skip_reads: CounterCell,
    cache_hit_reads: CounterCell,
    cache_resolve_reads: CounterCell,
    cache_bulk_cells: CounterCell,
    cache_bulk_lane_cells: CounterCell,
    /// Latest lifecycle snapshot (sources without a lifecycle leave it
    /// `None`). Snapshots are whole structs, so they live behind a
    /// mutex rather than in counter cells; workers only ever `lock`
    /// briefly to store, stats readers to load.
    lifecycle: Mutex<Option<LifecycleStats>>,
    /// Latest injected-fault snapshot, same protocol.
    faults: Mutex<Option<FaultStats>>,
}

/// Telemetry handles one worker thread records into. All handles are
/// no-ops (and the stage timers never read the clock) when the engine
/// was spawned without a registry.
#[derive(Debug, Clone, Default)]
struct WorkerTelemetry {
    harvest_ns: Histogram,
    health_ns: Histogram,
    publish_ns: Histogram,
    harvested_bits: Counter,
    discarded_bits: Counter,
    batches: Counter,
    repetition_trips: Counter,
    adaptive_trips: Counter,
    throughput_bps: Gauge,
    cache_skip_reads: Counter,
    cache_hit_reads: Counter,
    cache_resolve_reads: Counter,
    lifecycle_live: Gauge,
    lifecycle_quarantined: Gauge,
    lifecycle_retired: Gauge,
    degraded: Gauge,
    quarantine_events: Counter,
    reinstated_cells: Counter,
    promoted_words: Counter,
    recharacterizations: Counter,
    fault_temperature: Counter,
    fault_noise: Counter,
    fault_aging: Counter,
    fault_stuck: Counter,
}

impl WorkerTelemetry {
    fn new(registry: Option<&MetricsRegistry>, worker: usize) -> Self {
        let Some(reg) = registry else {
            return WorkerTelemetry::default();
        };
        let w = worker.to_string();
        let stage = |stage: &str| {
            reg.histogram(
                "drange_stage_latency_ns",
                &[("stage", stage), ("worker", &w)],
            )
        };
        WorkerTelemetry {
            harvest_ns: stage("harvest"),
            health_ns: stage("health"),
            publish_ns: stage("publish"),
            harvested_bits: reg.counter("drange_worker_harvested_bits_total", &[("worker", &w)]),
            discarded_bits: reg.counter("drange_worker_discarded_bits_total", &[("worker", &w)]),
            batches: reg.counter("drange_worker_batches_total", &[("worker", &w)]),
            repetition_trips: reg.counter(
                "drange_health_trips_total",
                &[("test", "repetition"), ("worker", &w)],
            ),
            adaptive_trips: reg.counter(
                "drange_health_trips_total",
                &[("test", "adaptive"), ("worker", &w)],
            ),
            throughput_bps: reg.gauge("drange_worker_throughput_bps", &[("worker", &w)]),
            cache_skip_reads: reg.counter(
                "drange_cache_reads_total",
                &[("kind", "skip"), ("worker", &w)],
            ),
            cache_hit_reads: reg.counter(
                "drange_cache_reads_total",
                &[("kind", "hit"), ("worker", &w)],
            ),
            cache_resolve_reads: reg.counter(
                "drange_cache_reads_total",
                &[("kind", "resolve"), ("worker", &w)],
            ),
            lifecycle_live: reg.gauge(
                "drange_lifecycle_cells",
                &[("state", "live"), ("worker", &w)],
            ),
            lifecycle_quarantined: reg.gauge(
                "drange_lifecycle_cells",
                &[("state", "quarantined"), ("worker", &w)],
            ),
            lifecycle_retired: reg.gauge(
                "drange_lifecycle_cells",
                &[("state", "retired"), ("worker", &w)],
            ),
            degraded: reg.gauge("drange_degraded", &[("worker", &w)]),
            quarantine_events: reg.counter(
                "drange_lifecycle_events_total",
                &[("event", "quarantine"), ("worker", &w)],
            ),
            reinstated_cells: reg.counter(
                "drange_lifecycle_events_total",
                &[("event", "reinstate"), ("worker", &w)],
            ),
            promoted_words: reg.counter(
                "drange_lifecycle_events_total",
                &[("event", "promote"), ("worker", &w)],
            ),
            recharacterizations: reg.counter(
                "drange_lifecycle_events_total",
                &[("event", "recharacterize"), ("worker", &w)],
            ),
            fault_temperature: reg.counter(
                "drange_injected_faults_total",
                &[("kind", "temperature"), ("worker", &w)],
            ),
            fault_noise: reg.counter(
                "drange_injected_faults_total",
                &[("kind", "noise"), ("worker", &w)],
            ),
            fault_aging: reg.counter(
                "drange_injected_faults_total",
                &[("kind", "aging"), ("worker", &w)],
            ),
            fault_stuck: reg.counter(
                "drange_injected_faults_total",
                &[("kind", "stuck"), ("worker", &w)],
            ),
        }
    }
}

/// Telemetry handles for the collector thread.
#[derive(Debug, Clone, Default)]
struct CollectorTelemetry {
    collect_ns: Histogram,
    pool_bits: Gauge,
}

impl CollectorTelemetry {
    fn new(registry: Option<&MetricsRegistry>) -> Self {
        let Some(reg) = registry else {
            return CollectorTelemetry::default();
        };
        CollectorTelemetry {
            collect_ns: reg.histogram(
                "drange_stage_latency_ns",
                &[("stage", "collect"), ("worker", "collector")],
            ),
            pool_bits: reg.gauge("drange_pool_bits", &[]),
        }
    }
}

/// Client-side telemetry handles held by the engine itself.
#[derive(Debug, Clone, Default)]
struct EngineTelemetry {
    take_bits_ns: Histogram,
    pool_wait_ns: Histogram,
    pool_bits: Gauge,
    pool_waiters: Gauge,
    served_bits: Counter,
}

impl EngineTelemetry {
    fn new(registry: Option<&MetricsRegistry>) -> Self {
        let Some(reg) = registry else {
            return EngineTelemetry::default();
        };
        EngineTelemetry {
            take_bits_ns: reg.histogram("drange_take_bits_latency_ns", &[]),
            pool_wait_ns: reg.histogram("drange_pool_wait_ns", &[]),
            pool_bits: reg.gauge("drange_pool_bits", &[]),
            pool_waiters: reg.gauge("drange_pool_waiters", &[]),
            served_bits: reg.counter("drange_served_bits_total", &[]),
        }
    }
}

/// State shared between workers, the collector, and clients.
#[derive(Debug)]
struct Shared {
    pool: Mutex<BitQueue>,
    /// Signaled when bits are added to the pool or the engine winds down.
    bits_available: Condvar,
    /// Signaled when bits are consumed from the pool (collector gate).
    space_available: Condvar,
    shutdown: Flag,
    live_workers: LiveCount,
    collector_done: Flag,
    /// Bits accepted by health screening but not yet in the pool.
    in_flight_bits: BitLedger,
    /// Bits wanted by clients currently blocked in `take_bits`. While
    /// this is non-zero the collector bypasses the watermark gate:
    /// a request larger than `high_watermark` can otherwise never be
    /// served, because the gate stops the pool at `high` and only
    /// reopens at `low` — with no demand signal the client and the
    /// collector wait on each other forever (found by the loom model
    /// `oversized_request_is_served_via_demand_bypass`).
    demand_bits: BitLedger,
    /// Raw [`TraceId`] of the most recent request blocked on the pool
    /// (0: none). Advisory, best-effort: workers and the collector
    /// stamp it onto their per-batch trace spans (`serving_trace`), so
    /// a slow request's flight recording shows *which* harvest work was
    /// unblocking it without threading context through the channel.
    demand_trace: CounterCell,
    served_bits: CounterCell,
    first_error: Mutex<Option<DrangeError>>,
}

/// A point-in-time snapshot of one worker's counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct WorkerStats {
    /// Worker (simulated channel) index.
    pub worker: usize,
    /// Raw bits harvested by this worker.
    pub harvested_bits: u64,
    /// Bits discarded by this worker's health screening (including any
    /// undeliverable batch dropped during shutdown).
    pub discarded_bits: u64,
    /// Health-test firings observed by this worker (both tests).
    pub health_trips: u64,
    /// Repetition-count-test firings alone (stuck-source signal).
    pub repetition_trips: u64,
    /// Adaptive-proportion-test firings alone (bias signal).
    pub adaptive_trips: u64,
    /// Batches harvested.
    pub batches: u64,
    /// Device time consumed by this worker's channel, ps.
    pub device_time_ps: u64,
    /// Sensing READs answered entirely by the skip mask on this
    /// worker's channel (0 for sources without a sensing cache).
    pub cache_skip_reads: u64,
    /// Sensing READs served from memoized probabilities.
    pub cache_hit_reads: u64,
    /// Sensing READs that re-resolved per-cell probabilities.
    pub cache_resolve_reads: u64,
    /// Marginal cells resolved through the bulk SoA kernel on this
    /// worker's channel.
    pub cache_bulk_cells: u64,
    /// Of those, cells resolved in full four-wide vector lanes (the
    /// rest went through the scalar remainder loop).
    pub cache_bulk_lane_cells: u64,
    /// Latest cell-lifecycle snapshot (`None` for sources without a
    /// lifecycle).
    pub lifecycle: Option<LifecycleStats>,
    /// Latest injected-fault snapshot (`None` for sources without a
    /// fault-capable device).
    pub faults: Option<FaultStats>,
}

impl WorkerStats {
    /// Harvest throughput of this channel in bits per second of
    /// *device* time (0.0 when the source reports no device time).
    pub fn throughput_bps(&self) -> f64 {
        if self.device_time_ps == 0 {
            0.0
        } else {
            self.harvested_bits as f64 / (self.device_time_ps as f64 * 1e-12)
        }
    }

    /// Fraction of this channel's sensing READs answered from memoized
    /// cache state (0.0 when the source reports no cache activity).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_skip_reads + self.cache_hit_reads;
        let total = hits + self.cache_resolve_reads;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Fraction of this channel's bulk-resolved cells that went through
    /// full vector lanes rather than the scalar remainder loop (0.0
    /// with no bulk activity).
    pub fn lane_utilization(&self) -> f64 {
        if self.cache_bulk_cells == 0 {
            0.0
        } else {
            self.cache_bulk_lane_cells as f64 / self.cache_bulk_cells as f64
        }
    }
}

/// A point-in-time snapshot of engine-level statistics, aggregated from
/// the per-worker health monitors and the shared pool.
#[derive(Debug, Clone, PartialEq)]
pub struct EngineStats {
    /// Raw bits harvested across all workers.
    pub harvested_bits: u64,
    /// Bits rejected by health screening across all workers.
    pub discarded_bits: u64,
    /// Health-test firings across all workers (both tests).
    pub health_trips: u64,
    /// Repetition-count-test firings across all workers.
    pub repetition_trips: u64,
    /// Adaptive-proportion-test firings across all workers.
    pub adaptive_trips: u64,
    /// Bits currently queued in the shared pool.
    pub queued_bits: usize,
    /// Bits handed to clients.
    pub served_bits: u64,
    /// Bits screened and published but not yet collected into the pool.
    pub in_flight_bits: u64,
    /// Sensing READs answered by skip masks, across all workers.
    pub cache_skip_reads: u64,
    /// Sensing READs served from memoized probabilities, all workers.
    pub cache_hit_reads: u64,
    /// Sensing READs that re-resolved probabilities, all workers.
    pub cache_resolve_reads: u64,
    /// Marginal cells resolved through the bulk SoA kernel, all
    /// workers.
    pub cache_bulk_cells: u64,
    /// Of those, cells resolved in full four-wide vector lanes.
    pub cache_bulk_lane_cells: u64,
    /// Cell-lifecycle counters merged across all lifecycle-running
    /// workers (`None` when no worker runs one).
    pub lifecycle: Option<LifecycleStats>,
    /// Injected-fault counters merged across all fault-capable workers
    /// (`None` when no worker reports them).
    pub faults: Option<FaultStats>,
    /// Per-worker (per-channel) breakdowns.
    pub workers: Vec<WorkerStats>,
}

impl EngineStats {
    /// Fraction of sensing READs across all workers answered from
    /// memoized cache state (0.0 with no cache activity).
    pub fn cache_hit_rate(&self) -> f64 {
        let hits = self.cache_skip_reads + self.cache_hit_reads;
        let total = hits + self.cache_resolve_reads;
        if total == 0 {
            0.0
        } else {
            hits as f64 / total as f64
        }
    }

    /// Fraction of bulk-resolved cells across all workers that went
    /// through full vector lanes (0.0 with no bulk activity).
    pub fn lane_utilization(&self) -> f64 {
        if self.cache_bulk_cells == 0 {
            0.0
        } else {
            self.cache_bulk_lane_cells as f64 / self.cache_bulk_cells as f64
        }
    }

    /// Sum of the per-channel device-time throughputs — the engine
    /// analogue of [`crate::throughput::scale_to_channels`]: channels
    /// are independent, so aggregate harvest rate is the sum of the
    /// per-channel rates.
    pub fn aggregate_device_bps(&self) -> f64 {
        self.workers.iter().map(WorkerStats::throughput_bps).sum()
    }

    /// Whether any lifecycle-running channel reports degraded (reduced
    /// but honest) throughput. Always `false` for engines without a
    /// cell lifecycle.
    pub fn is_degraded(&self) -> bool {
        self.lifecycle.is_some_and(|l| l.degraded)
    }
}

/// The concurrent harvesting engine.
///
/// Spawned over a set of [`HarvestSource`]s (one worker thread each),
/// it keeps a shared pool of health-screened bits topped up between the
/// configured watermarks; any number of client threads may call
/// [`HarvestEngine::take_bits`] / [`HarvestEngine::take_bytes`]
/// concurrently. Dropping the engine (or calling
/// [`HarvestEngine::shutdown`]) joins every thread.
#[derive(Debug)]
pub struct HarvestEngine {
    config: EngineConfig,
    shared: Arc<Shared>,
    channel: Arc<ShardedChannel<BitBlock>>,
    counters: Vec<Arc<WorkerCounters>>,
    telemetry: EngineTelemetry,
    tracer: Tracer,
    workers: Vec<JoinHandle<()>>,
    collector: Option<JoinHandle<()>>,
}

impl HarvestEngine {
    /// Spawns one worker thread per source plus the collector thread,
    /// without telemetry (instrumentation runs in no-op mode).
    ///
    /// # Errors
    ///
    /// Returns [`DrangeError::InvalidSpec`] for an empty source list or
    /// inconsistent watermarks, and [`DrangeError::Engine`] when the OS
    /// refuses to spawn a thread.
    pub fn spawn<S: HarvestSource>(sources: Vec<S>, config: EngineConfig) -> Result<Self> {
        Self::spawn_with_telemetry(sources, config, None)
    }

    /// As [`HarvestEngine::spawn`], additionally registering the
    /// engine's metrics (per-stage latency histograms, per-worker
    /// counters, pool gauges, per-test health-trip counters) in
    /// `registry` when one is given. See the `DESIGN.md` Observability
    /// section for the metric names.
    ///
    /// # Errors
    ///
    /// As [`HarvestEngine::spawn`].
    pub fn spawn_with_telemetry<S: HarvestSource>(
        sources: Vec<S>,
        config: EngineConfig,
        registry: Option<&MetricsRegistry>,
    ) -> Result<Self> {
        Self::spawn_traced(sources, config, registry, Tracer::noop())
    }

    /// As [`HarvestEngine::spawn_with_telemetry`], additionally
    /// recording per-batch trace spans (`engine.batch` with `harvest`/
    /// `health`/`publish` children on each worker, `engine.collect` on
    /// the collector, `engine.pool_drain` on client threads) through
    /// `tracer`. A noop tracer (the other constructors) keeps every
    /// span inert — no clock reads on the harvest hot path.
    ///
    /// # Errors
    ///
    /// As [`HarvestEngine::spawn`].
    pub fn spawn_traced<S: HarvestSource>(
        sources: Vec<S>,
        config: EngineConfig,
        registry: Option<&MetricsRegistry>,
        tracer: Tracer,
    ) -> Result<Self> {
        config.validate()?;
        if sources.is_empty() {
            return Err(DrangeError::InvalidSpec(
                "the engine needs at least one harvest source".into(),
            ));
        }
        let shared = Arc::new(Shared {
            pool: Mutex::new(BitQueue::new()),
            bits_available: Condvar::new(),
            space_available: Condvar::new(),
            shutdown: Flag::new(),
            live_workers: LiveCount::new(sources.len()),
            collector_done: Flag::new(),
            in_flight_bits: BitLedger::new(),
            demand_bits: BitLedger::new(),
            demand_trace: CounterCell::new(),
            served_bits: CounterCell::new(),
            first_error: Mutex::new(None),
        });
        let channel = Arc::new(ShardedChannel::<BitBlock>::new(
            config.channel_batches,
            sources.len(),
        ));
        let mut counters = Vec::with_capacity(sources.len());
        let mut workers = Vec::with_capacity(sources.len());
        for (index, source) in sources.into_iter().enumerate() {
            let ctr = Arc::new(WorkerCounters::default());
            counters.push(Arc::clone(&ctr));
            let tel = WorkerTelemetry::new(registry, index);
            let handle = std::thread::Builder::new()
                .name(format!("drange-worker-{index}"))
                .spawn({
                    let shared = Arc::clone(&shared);
                    let channel = Arc::clone(&channel);
                    let min_entropy = config.min_entropy;
                    let max_rejects = config.max_consecutive_rejects;
                    let tracer = tracer.clone();
                    move || {
                        worker_loop(
                            index,
                            source,
                            channel,
                            shared,
                            ctr,
                            tel,
                            tracer,
                            min_entropy,
                            max_rejects,
                        );
                    }
                })
                .map_err(|e| DrangeError::Engine(format!("spawning worker {index}: {e}")))?;
            workers.push(handle);
        }
        let collector_tel = CollectorTelemetry::new(registry);
        let collector = std::thread::Builder::new()
            .name("drange-collector".into())
            .spawn({
                let shared = Arc::clone(&shared);
                let channel = Arc::clone(&channel);
                let low = config.low_watermark;
                let high = config.high_watermark;
                let tracer = tracer.clone();
                move || collector_loop(&channel, &shared, &collector_tel, &tracer, low, high)
            })
            .map_err(|e| DrangeError::Engine(format!("spawning collector: {e}")))?;
        Ok(HarvestEngine {
            config,
            shared,
            channel,
            counters,
            telemetry: EngineTelemetry::new(registry),
            tracer,
            workers,
            collector: Some(collector),
        })
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.config
    }

    /// Number of worker threads the engine was spawned with.
    pub fn workers(&self) -> usize {
        self.counters.len()
    }

    /// Bits currently queued in the shared pool.
    pub fn queued_bits(&self) -> usize {
        self.shared.pool.lock().len()
    }

    /// Cumulative RCT/APT health-trip counts summed over all workers.
    ///
    /// A cheap read of the workers' lock-free counter cells — unlike
    /// [`HarvestEngine::stats`] it allocates nothing, so the DRBG tier
    /// can consult it on every reseed decision
    /// ([`crate::drbg::SeedSource`]).
    pub fn health_trip_counts(&self) -> TripCounts {
        let mut trips = TripCounts::default();
        for counters in &self.counters {
            trips.repetition += counters.repetition_trips.get();
            trips.adaptive += counters.adaptive_trips.get();
        }
        trips
    }

    /// The first error any worker recorded, if one has.
    pub fn first_error(&self) -> Option<DrangeError> {
        self.shared.first_error.lock().clone()
    }

    /// Blocks until `bits` screened random bits are available and
    /// removes them from the pool.
    ///
    /// Callable from any number of threads concurrently.
    ///
    /// # Errors
    ///
    /// Returns [`DrangeError::InvalidSpec`] when `bits` exceeds the
    /// pool capacity, the first worker error when all workers have
    /// retired, and [`DrangeError::Engine`] when the engine stops
    /// before the request can be served.
    pub fn take_bits(&self, bits: usize) -> Result<Vec<bool>> {
        let t0 = self.telemetry.take_bits_ns.start();
        let out = self.take_bits_inner(bits);
        self.telemetry.take_bits_ns.observe_since(t0);
        if out.is_ok() {
            self.telemetry.served_bits.add(bits as u64);
        }
        out
    }

    fn take_bits_inner(&self, bits: usize) -> Result<Vec<bool>> {
        match self.drain_pool(bits, None, |pool| pool.pop_bools(bits))? {
            Some(out) => Ok(out),
            // Unreachable: an untimed drain only returns on success or
            // error, but the no-panic policy forbids asserting so.
            None => Err(DrangeError::Engine(
                "untimed pool drain reported a timeout".into(),
            )),
        }
    }

    /// Blocks until `bits` bits are pooled, then removes them with
    /// `drain` under the pool lock; `Ok(None)` when `deadline` passes
    /// first. All client-facing accessors funnel through here so the
    /// waiting/demand/accounting protocol exists exactly once.
    ///
    /// The wait is notification-driven: the collector notifies
    /// `bits_available` on every publish, and every terminal transition
    /// (shutdown, worker retirement, collector exit) notifies through a
    /// lock barrier — so a plain, untimed wait cannot miss a wakeup and
    /// no polling interval is needed (see `tests/loom_engine.rs`).
    fn drain_pool<T>(
        &self,
        bits: usize,
        deadline: Option<Instant>,
        drain: impl FnOnce(&mut BitQueue) -> T,
    ) -> Result<Option<T>> {
        if bits > self.config.queue_capacity {
            return Err(DrangeError::InvalidSpec(format!(
                "request of {bits} bits exceeds pool capacity {}",
                self.config.queue_capacity
            )));
        }
        // Inert (no clock read) unless a recorder is attached; with one
        // attached it nests under the calling request's trace and its
        // duration is the request's pool-wait share.
        let mut drain_span = self.tracer.span("engine.pool_drain");
        drain_span.attr_u64("bits", bits as u64);
        let mut pool = self.shared.pool.lock();
        // `wait_t0` stays None until (unless) the request actually has
        // to block, so the fast path never reads the clock.
        let mut wait_t0 = None;
        let mut waiting = false;
        let mut expired = false;
        let finish_wait = |shared: &Shared, tel: &EngineTelemetry, waiting: bool, wait_t0| {
            if waiting {
                shared.demand_bits.retire(bits as u64);
                if shared.demand_bits.outstanding() == 0 {
                    shared.demand_trace.set(0);
                }
                tel.pool_waiters.sub(1);
                tel.pool_wait_ns.observe_since(wait_t0);
            }
        };
        loop {
            if pool.len() >= bits {
                let out = drain(&mut pool);
                let remaining = pool.len();
                drop(pool);
                finish_wait(&self.shared, &self.telemetry, waiting, wait_t0);
                self.telemetry.pool_bits.set(remaining as u64);
                self.shared.served_bits.add(bits as u64);
                self.shared.space_available.notify_all();
                return Ok(Some(out));
            }
            let workers_gone =
                self.shared.live_workers.all_retired() && self.shared.collector_done.is_raised();
            if self.shared.shutdown.is_raised() || workers_gone {
                drop(pool);
                finish_wait(&self.shared, &self.telemetry, waiting, wait_t0);
                return Err(self.first_error().unwrap_or_else(|| {
                    DrangeError::Engine("engine stopped before the request could be served".into())
                }));
            }
            if expired {
                // The deadline passed and the re-check above still came
                // up short: report the timeout with the demand retired,
                // so the collector's gate bypass does not outlive the
                // request.
                drop(pool);
                finish_wait(&self.shared, &self.telemetry, waiting, wait_t0);
                drain_span.attr_bool("timed_out", true);
                return Ok(None);
            }
            if !waiting {
                waiting = true;
                drain_span.event("blocked");
                // Publish the unmet request so the collector bypasses
                // the watermark gate until it is served. The pool mutex
                // is held here, which doubles as the lock barrier: the
                // collector's gate check runs under the same mutex, so
                // this notify cannot land in its check-to-park window.
                self.shared.demand_bits.publish(bits as u64);
                // Advertise which trace is now blocked on the pool so
                // harvest-side spans can link back to it.
                if let Some(trace) = Tracer::current_trace() {
                    self.shared.demand_trace.set(trace.as_u64());
                }
                self.shared.space_available.notify_all();
                wait_t0 = self.telemetry.pool_wait_ns.start();
                self.telemetry.pool_waiters.add(1);
            }
            match deadline {
                None => self.shared.bits_available.wait(&mut pool),
                Some(d) => {
                    // One more pass through the checks after a timeout:
                    // a publish may have raced the deadline.
                    expired = self
                        .shared
                        .bits_available
                        .wait_until(&mut pool, d)
                        .timed_out();
                }
            }
        }
    }

    /// Blocks until `bytes` screened random bytes are available
    /// (MSB-first bit packing, matching the firmware service).
    ///
    /// # Errors
    ///
    /// As [`HarvestEngine::take_bits`]; additionally rejects byte
    /// counts whose bit count overflows `usize`.
    pub fn take_bytes(&self, bytes: usize) -> Result<Vec<u8>> {
        match self.take_bytes_inner(bytes, None)? {
            Some(out) => Ok(out),
            // Unreachable: an untimed drain only returns on success or
            // error, but the no-panic policy forbids asserting so.
            None => Err(DrangeError::Engine(
                "untimed pool drain reported a timeout".into(),
            )),
        }
    }

    /// As [`HarvestEngine::take_bytes`], but gives up and returns
    /// `Ok(None)` once `deadline` passes without enough screened bits
    /// pooled. On timeout the request's demand registration is retired,
    /// so the collector's watermark-gate bypass does not outlive it.
    ///
    /// # Errors
    ///
    /// As [`HarvestEngine::take_bytes`].
    pub fn take_bytes_deadline(&self, bytes: usize, deadline: Instant) -> Result<Option<Vec<u8>>> {
        self.take_bytes_inner(bytes, Some(deadline))
    }

    /// As [`HarvestEngine::take_bytes_deadline`] with a relative
    /// timeout.
    ///
    /// # Errors
    ///
    /// As [`HarvestEngine::take_bytes`].
    pub fn take_bytes_timeout(&self, bytes: usize, timeout: Duration) -> Result<Option<Vec<u8>>> {
        self.take_bytes_inner(bytes, Some(deadline_after(timeout)))
    }

    /// As [`HarvestEngine::take_bits`], but gives up and returns
    /// `Ok(None)` once `timeout` elapses without enough screened bits
    /// pooled.
    ///
    /// # Errors
    ///
    /// As [`HarvestEngine::take_bits`].
    pub fn take_bits_timeout(&self, bits: usize, timeout: Duration) -> Result<Option<Vec<bool>>> {
        let t0 = self.telemetry.take_bits_ns.start();
        let out = self.drain_pool(bits, Some(deadline_after(timeout)), |pool| {
            pool.pop_bools(bits)
        });
        self.telemetry.take_bits_ns.observe_since(t0);
        if let Ok(Some(_)) = &out {
            self.telemetry.served_bits.add(bits as u64);
        }
        out
    }

    fn take_bytes_inner(&self, bytes: usize, deadline: Option<Instant>) -> Result<Option<Vec<u8>>> {
        let bits = bytes.checked_mul(8).ok_or_else(|| {
            DrangeError::InvalidSpec(format!("request of {bytes} bytes overflows bit count"))
        })?;
        let t0 = self.telemetry.take_bits_ns.start();
        // Drain straight from the packed pool: whole words big-endian
        // while at least 8 bytes remain, then byte-sized pops — the
        // same MSB-first packing `take_bits` + manual packing produced.
        let out = self.drain_pool(bits, deadline, |pool| {
            let mut out = Vec::with_capacity(bytes);
            while out.len() + 8 <= bytes {
                match pool.pop_word() {
                    Some(w) => out.extend_from_slice(&w.to_be_bytes()),
                    None => break,
                }
            }
            while out.len() < bytes {
                match pool.pop_byte() {
                    Some(b) => out.push(b),
                    None => break,
                }
            }
            out
        });
        self.telemetry.take_bits_ns.observe_since(t0);
        if let Ok(Some(_)) = &out {
            self.telemetry.served_bits.add(bits as u64);
        }
        out
    }

    /// Snapshot of the engine statistics.
    pub fn stats(&self) -> EngineStats {
        let workers: Vec<WorkerStats> = self
            .counters
            .iter()
            .enumerate()
            .map(|(worker, c)| WorkerStats {
                worker,
                harvested_bits: c.harvested_bits.get(),
                discarded_bits: c.discarded_bits.get(),
                health_trips: c.health_trips.get(),
                repetition_trips: c.repetition_trips.get(),
                adaptive_trips: c.adaptive_trips.get(),
                batches: c.batches.get(),
                device_time_ps: c.device_time_ps.get(),
                cache_skip_reads: c.cache_skip_reads.get(),
                cache_hit_reads: c.cache_hit_reads.get(),
                cache_resolve_reads: c.cache_resolve_reads.get(),
                cache_bulk_cells: c.cache_bulk_cells.get(),
                cache_bulk_lane_cells: c.cache_bulk_lane_cells.get(),
                lifecycle: *c.lifecycle.lock(),
                faults: *c.faults.lock(),
            })
            .collect();
        EngineStats {
            harvested_bits: workers.iter().map(|w| w.harvested_bits).sum(),
            discarded_bits: workers.iter().map(|w| w.discarded_bits).sum(),
            health_trips: workers.iter().map(|w| w.health_trips).sum(),
            repetition_trips: workers.iter().map(|w| w.repetition_trips).sum(),
            adaptive_trips: workers.iter().map(|w| w.adaptive_trips).sum(),
            queued_bits: self.queued_bits(),
            served_bits: self.shared.served_bits.get(),
            in_flight_bits: self.shared.in_flight_bits.outstanding(),
            cache_skip_reads: workers.iter().map(|w| w.cache_skip_reads).sum(),
            cache_hit_reads: workers.iter().map(|w| w.cache_hit_reads).sum(),
            cache_resolve_reads: workers.iter().map(|w| w.cache_resolve_reads).sum(),
            cache_bulk_cells: workers.iter().map(|w| w.cache_bulk_cells).sum(),
            cache_bulk_lane_cells: workers.iter().map(|w| w.cache_bulk_lane_cells).sum(),
            lifecycle: workers
                .iter()
                .filter_map(|w| w.lifecycle)
                .reduce(LifecycleStats::merge),
            faults: workers
                .iter()
                .filter_map(|w| w.faults)
                .reduce(FaultStats::merge),
            workers,
        }
    }

    /// Stops harvesting, joins every worker and the collector, and
    /// returns the final statistics. After the join, no bits are in
    /// flight: everything harvested is queued, served, or discarded.
    pub fn shutdown(mut self) -> EngineStats {
        self.halt();
        self.stats()
    }

    /// Idempotent stop-and-join.
    fn halt(&mut self) {
        self.shared.shutdown.raise();
        // Close every worker→collector channel shard: workers blocked
        // on a full shard fail their send, account the batch as
        // discarded, and retire (each close notifies under its shard
        // lock, so that wakeup cannot be lost either).
        self.channel.close();
        // Lock barrier: a waiter that checked the shutdown flag just
        // before it was raised still holds the pool mutex until it
        // parks, so acquiring (and releasing) the mutex here orders
        // this notify after that park — without it the wakeup lands in
        // the check-to-park window and is lost: with the timeout polls
        // gone that is a real deadlock, not a latency blip, and the
        // timeout-free loom model catches it (see tests/loom_engine.rs).
        drop(self.shared.pool.lock());
        self.shared.bits_available.notify_all();
        self.shared.space_available.notify_all();
        for handle in self.workers.drain(..) {
            let _ = handle.join();
        }
        if let Some(handle) = self.collector.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for HarvestEngine {
    fn drop(&mut self) {
        self.halt();
    }
}

/// Body of one worker thread: harvest, screen, publish, repeat.
#[allow(clippy::too_many_arguments)]
fn worker_loop<S: HarvestSource>(
    index: usize,
    source: S,
    channel: Arc<ShardedChannel<BitBlock>>,
    shared: Arc<Shared>,
    counters: Arc<WorkerCounters>,
    tel: WorkerTelemetry,
    tracer: Tracer,
    min_entropy: f64,
    max_rejects: u32,
) {
    let error = worker_run(
        index,
        source,
        &channel,
        &shared,
        &counters,
        &tel,
        &tracer,
        min_entropy,
        max_rejects,
    );
    if let Some(e) = error {
        let mut slot = shared.first_error.lock();
        if slot.is_none() {
            *slot = Some(e);
        }
    }
    // Detach from this worker's channel shard: when the last worker
    // retires, a collector parked on the doorbell wakes, drains, and
    // observes the end of the stream. Then wake pool waiters so they
    // observe the worker count. The lock barrier orders the notify
    // after any in-progress predicate check parks (see
    // `HarvestEngine::halt`).
    shared.live_workers.retire();
    channel.retire_sender(index);
    drop(shared.pool.lock());
    shared.bits_available.notify_all();
    shared.space_available.notify_all();
}

#[allow(clippy::too_many_arguments)]
fn worker_run<S: HarvestSource>(
    worker: usize,
    mut source: S,
    channel: &ShardedChannel<BitBlock>,
    shared: &Shared,
    counters: &WorkerCounters,
    tel: &WorkerTelemetry,
    tracer: &Tracer,
    min_entropy: f64,
    max_rejects: u32,
) -> Option<DrangeError> {
    let mut health = HealthMonitor::new(min_entropy);
    let mut consecutive_rejects = 0u32;
    // Sensing-cache counters are cumulative on the device; diff against
    // the previous snapshot so the shared counters stay additive.
    let mut last_cache = SenseCacheStats::default();
    while !shared.shutdown.is_raised() {
        // Each batch is its own root trace on this thread. Requests
        // blocked on the pool advertise their trace id through
        // `demand_trace`; stamping it here links harvest work to the
        // request it unblocks without moving contexts across threads.
        let mut batch_span = tracer.span("engine.batch");
        if batch_span.is_recording() {
            batch_span.attr_u64("worker", worker as u64);
            if let Some(serving) = TraceId::from_u64(shared.demand_trace.get()) {
                batch_span.attr_str("serving_trace", &format!("{serving}"));
            }
        }
        let span_harvest_t0 = tracer.clock();
        let harvest_t0 = tel.harvest_ns.start();
        let batch = match source.harvest_batch() {
            Ok(b) => b,
            Err(e) => return Some(e),
        };
        tel.harvest_ns.observe_since(harvest_t0);
        batch_span.child_since("engine.harvest", span_harvest_t0);
        let device_time_ps = source.device_time_ps();
        counters.device_time_ps.set(device_time_ps);
        counters.batches.add(1);
        counters.harvested_bits.add(batch.len() as u64);
        tel.batches.inc();
        tel.harvested_bits.add(batch.len() as u64);
        if let Some(cache) = source.sense_cache_stats() {
            let skip = cache
                .skip_word_reads
                .saturating_sub(last_cache.skip_word_reads);
            let hit = cache.hit_reads.saturating_sub(last_cache.hit_reads);
            let resolve = cache.resolve_reads.saturating_sub(last_cache.resolve_reads);
            let bulk = cache.bulk_cells.saturating_sub(last_cache.bulk_cells);
            let bulk_lanes = cache
                .bulk_lane_cells
                .saturating_sub(last_cache.bulk_lane_cells);
            counters.cache_skip_reads.add(skip);
            counters.cache_hit_reads.add(hit);
            counters.cache_resolve_reads.add(resolve);
            counters.cache_bulk_cells.add(bulk);
            counters.cache_bulk_lane_cells.add(bulk_lanes);
            tel.cache_skip_reads.add(skip);
            tel.cache_hit_reads.add(hit);
            tel.cache_resolve_reads.add(resolve);
            last_cache = cache;
            if batch_span.is_recording() {
                batch_span.attr_u64("cache_skip", skip);
                batch_span.attr_u64("cache_hit", hit);
                batch_span.attr_u64("cache_resolve", resolve);
            }
        }
        if let Some(lc) = source.lifecycle_stats() {
            // Gauges mirror the snapshot; event counters are diffed
            // against the previous snapshot (the source's counters are
            // cumulative) so the telemetry counters stay additive.
            let prev = counters.lifecycle.lock().replace(lc).unwrap_or_default();
            tel.lifecycle_live.set(lc.live_cells);
            tel.lifecycle_quarantined.set(lc.quarantined_cells);
            tel.lifecycle_retired.set(lc.retired_cells);
            tel.degraded.set(u64::from(lc.degraded));
            let quarantined = lc.quarantine_events.saturating_sub(prev.quarantine_events);
            let reinstated = lc.reinstated_cells.saturating_sub(prev.reinstated_cells);
            if quarantined > 0 {
                batch_span.event_u64("lifecycle.quarantine", quarantined);
            }
            if reinstated > 0 {
                batch_span.event_u64("lifecycle.reinstate", reinstated);
            }
            tel.quarantine_events.add(quarantined);
            tel.reinstated_cells.add(reinstated);
            tel.promoted_words
                .add(lc.promoted_words.saturating_sub(prev.promoted_words));
            tel.recharacterizations.add(
                lc.recharacterizations
                    .saturating_sub(prev.recharacterizations),
            );
        }
        if let Some(faults) = source.fault_stats() {
            let prev = counters.faults.lock().replace(faults).unwrap_or_default();
            tel.fault_temperature.add(
                faults
                    .temperature_events
                    .saturating_sub(prev.temperature_events),
            );
            tel.fault_noise.add(
                faults
                    .noise_bias_events
                    .saturating_sub(prev.noise_bias_events),
            );
            tel.fault_aging
                .add(faults.cells_aged.saturating_sub(prev.cells_aged));
            tel.fault_stuck
                .add(faults.cells_stuck.saturating_sub(prev.cells_stuck));
        }
        if tel.throughput_bps.is_live() && device_time_ps > 0 {
            let harvested = counters.harvested_bits.get();
            let bps = harvested as f64 / (device_time_ps as f64 * 1e-12);
            tel.throughput_bps.set(bps as u64);
        }
        let span_health_t0 = tracer.clock();
        let health_t0 = tel.health_ns.start();
        let trips = health.feed_bits(batch.iter());
        tel.health_ns.observe_since(health_t0);
        batch_span.child_since("engine.health", span_health_t0);
        if trips.total() > 0 {
            batch_span.event_u64("health.reject", trips.total());
            counters.health_trips.add(trips.total());
            counters.repetition_trips.add(trips.repetition);
            counters.adaptive_trips.add(trips.adaptive);
            counters.discarded_bits.add(batch.len() as u64);
            tel.repetition_trips.add(trips.repetition);
            tel.adaptive_trips.add(trips.adaptive);
            tel.discarded_bits.add(batch.len() as u64);
            // The guard is persistent worker state: it spans request
            // boundaries and resets only when a batch is accepted.
            consecutive_rejects += 1;
            if consecutive_rejects > max_rejects {
                return Some(DrangeError::Unhealthy(format!(
                    "more than {max_rejects} consecutive batches failed health screening"
                )));
            }
            continue;
        }
        consecutive_rejects = 0;
        batch_span.attr_u64("bits", batch.len() as u64);
        shared.in_flight_bits.publish(batch.len() as u64);
        let span_publish_t0 = tracer.clock();
        let publish_t0 = tel.publish_ns.start();
        // Publish into this worker's own shard: the only lock shared
        // with anyone is the shard lock the collector drains through —
        // never another channel's worker.
        match channel.send(worker, batch) {
            Ok(()) => {
                tel.publish_ns.observe_since(publish_t0);
                batch_span.child_since("engine.publish", span_publish_t0);
            }
            Err(m) => {
                // The channel closed (engine shutdown) before space
                // opened up: the batch is undeliverable. Account it as
                // discarded so no bits go missing.
                shared.in_flight_bits.retire(m.len() as u64);
                counters.discarded_bits.add(m.len() as u64);
                tel.discarded_bits.add(m.len() as u64);
                return None;
            }
        }
    }
    None
}

/// Body of the collector thread: gate on the watermarks, drain batches
/// into the pool, and once every worker has retired (end of stream)
/// stop.
fn collector_loop(
    channel: &ShardedChannel<BitBlock>,
    shared: &Shared,
    tel: &CollectorTelemetry,
    tracer: &Tracer,
    low: usize,
    high: usize,
) {
    let mut gate = WatermarkGate::new(low, high);
    // Round-robin position across the per-worker shards, persisted
    // between drains so one prolific channel cannot starve the others.
    let mut cursor = 0;
    loop {
        if !shared.shutdown.is_raised() {
            // Hysteresis gate: pause at the high watermark, resume at
            // the low one (see [`WatermarkGate`]). The gate is bypassed
            // while a blocked client wants more bits than the pool
            // holds (`demand_bits`) — the gate alone would wedge any
            // request larger than `high` — and during shutdown, so
            // workers blocked on the channel always drain out. The wait
            // is plain (untimed): every transition in the predicate
            // notifies `space_available` — clients draining the pool or
            // publishing demand, and shutdown through the lock barrier
            // in `HarvestEngine::halt`.
            let mut pool = shared.pool.lock();
            while !gate.admit(pool.len())
                && (pool.len() as u64) >= shared.demand_bits.outstanding()
                && !shared.shutdown.is_raised()
            {
                shared.space_available.wait(&mut pool);
            }
        }
        // Blocks (on the doorbell) until some worker publishes;
        // returns None when every worker has retired and all shards
        // are drained — including after shutdown, so successfully-sent
        // batches always reach the pool and the bit-conservation
        // invariant holds.
        match channel.recv_any(&mut cursor) {
            Some(batch) => {
                let n = batch.len() as u64;
                // Root span per delivered batch; like the workers it
                // links back to a pool-blocked request by annotation.
                let mut span = tracer.span("engine.collect");
                if span.is_recording() {
                    span.attr_u64("bits", n);
                    if let Some(serving) = TraceId::from_u64(shared.demand_trace.get()) {
                        span.attr_str("serving_trace", &format!("{serving}"));
                    }
                }
                let collect_t0 = tel.collect_ns.start();
                let queued = {
                    let mut pool = shared.pool.lock();
                    pool.push_block(&batch);
                    pool.len()
                };
                tel.collect_ns.observe_since(collect_t0);
                tel.pool_bits.set(queued as u64);
                shared.in_flight_bits.retire(n);
                shared.bits_available.notify_all();
                drop(span);
            }
            None => break,
        }
    }
    // The lock barrier orders the notify after any in-progress
    // predicate check parks (see `HarvestEngine::halt`).
    shared.collector_done.raise();
    drop(shared.pool.lock());
    shared.bits_available.notify_all();
}

/// Builds one [`DRange`] per simulated channel from a base device
/// configuration: every channel shares the manufacturing seed (so one
/// RNG-cell catalog applies to all of them) but derives an independent
/// thermal-noise stream, mirroring the paper's independent-channel
/// scaling. With an OS-seeded base configuration the channels are
/// independent by construction.
///
/// # Errors
///
/// Propagates [`DRange::new`] errors (e.g. an empty catalog).
pub fn channel_sources(
    base: &DeviceConfig,
    catalog: &RngCellCatalog,
    config: &DRangeConfig,
    channels: usize,
) -> Result<Vec<DRange>> {
    channel_sources_with_telemetry(base, catalog, config, channels, None)
}

/// As [`channel_sources`], additionally attaching each channel's memory
/// controller to `registry` (command counts and tRCD timing-register
/// writes, labeled by channel) when one is given.
///
/// # Errors
///
/// As [`channel_sources`].
pub fn channel_sources_with_telemetry(
    base: &DeviceConfig,
    catalog: &RngCellCatalog,
    config: &DRangeConfig,
    channels: usize,
    registry: Option<&MetricsRegistry>,
) -> Result<Vec<DRange>> {
    (0..channels)
        .map(|channel| {
            let device = base.clone().with_noise_seed_offset(channel as u64);
            let mut ctrl = MemoryController::from_config(device);
            if let Some(reg) = registry {
                ctrl.attach_telemetry(reg, &channel.to_string());
            }
            DRange::new(ctrl, catalog, config.clone())
        })
        .collect()
}

/// As [`channel_sources_with_telemetry`], but wrapping every channel's
/// sampler in the self-healing cell lifecycle ([`ResilientDRange`]).
/// When `schedule` is given, each channel gets its own clone of the
/// environmental fault schedule — all channels experience the same
/// scripted environment, as boards in one enclosure would.
///
/// # Errors
///
/// As [`channel_sources`]; additionally rejects invalid lifecycle
/// configurations.
pub fn resilient_channel_sources(
    base: &DeviceConfig,
    catalog: &RngCellCatalog,
    config: &DRangeConfig,
    lifecycle: &crate::lifecycle::LifecycleConfig,
    schedule: Option<&dram_sim::EnvSchedule>,
    channels: usize,
    registry: Option<&MetricsRegistry>,
) -> Result<Vec<ResilientDRange>> {
    (0..channels)
        .map(|channel| {
            let device = base.clone().with_noise_seed_offset(channel as u64);
            let mut ctrl = MemoryController::from_config(device);
            if let Some(reg) = registry {
                ctrl.attach_telemetry(reg, &channel.to_string());
            }
            let mut source = ResilientDRange::new(ctrl, catalog, config.clone(), *lifecycle)?;
            if let Some(reg) = registry {
                source.attach_telemetry(reg, &channel.to_string());
            }
            if let Some(s) = schedule {
                source = source.with_schedule(s.clone());
            }
            Ok(source)
        })
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic healthy source: splitmix64-derived bits.
    #[derive(Debug)]
    struct PrngSource {
        state: u64,
        batch: usize,
    }

    impl PrngSource {
        fn new(seed: u64, batch: usize) -> Self {
            PrngSource { state: seed, batch }
        }

        fn next_bit(&mut self) -> bool {
            self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) & 1 == 1
        }
    }

    impl HarvestSource for PrngSource {
        fn harvest_batch(&mut self) -> Result<BitBlock> {
            Ok((0..self.batch).map(|_| self.next_bit()).collect())
        }
    }

    /// A stuck source: every batch is all-zero, so health screening
    /// rejects every batch.
    #[derive(Debug)]
    struct StuckSource {
        batch: usize,
    }

    impl HarvestSource for StuckSource {
        fn harvest_batch(&mut self) -> Result<BitBlock> {
            Ok((0..self.batch).map(|_| false).collect())
        }
    }

    /// Unhealthy in stretches: `reject_run` all-zero batches, then one
    /// healthy batch, repeating.
    #[derive(Debug)]
    struct StretchSource {
        healthy: PrngSource,
        reject_run: u32,
        position: u32,
    }

    impl HarvestSource for StretchSource {
        fn harvest_batch(&mut self) -> Result<BitBlock> {
            self.position = (self.position + 1) % (self.reject_run + 1);
            if self.position == 0 {
                // Lead with a one so the zero-run of the preceding
                // rejected stretch cannot spill into this batch's
                // repetition count.
                let mut bits: Vec<bool> = (0..self.healthy.batch)
                    .map(|_| self.healthy.next_bit())
                    .collect();
                bits[0] = true;
                Ok(BitBlock::from_bools(&bits))
            } else {
                Ok((0..self.healthy.batch).map(|_| false).collect())
            }
        }
    }

    fn small_config() -> EngineConfig {
        EngineConfig {
            queue_capacity: 1 << 12,
            low_watermark: 1 << 8,
            high_watermark: 1 << 11,
            ..EngineConfig::default()
        }
    }

    #[test]
    fn engine_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<HarvestEngine>();
        assert_send_sync::<EngineStats>();
    }

    #[test]
    fn serves_bits_and_bytes() {
        let engine = HarvestEngine::spawn(vec![PrngSource::new(7, 128)], small_config()).unwrap();
        let bits = engine.take_bits(100).unwrap();
        assert_eq!(bits.len(), 100);
        let bytes = engine.take_bytes(32).unwrap();
        assert_eq!(bytes.len(), 32);
        let stats = engine.shutdown();
        assert!(stats.harvested_bits >= 100 + 256);
        assert_eq!(stats.served_bits, 100 + 256);
    }

    #[test]
    fn accounting_balances_after_shutdown() {
        let sources = (0..3).map(|i| PrngSource::new(11 + i, 64)).collect();
        let engine = HarvestEngine::spawn(sources, small_config()).unwrap();
        for _ in 0..10 {
            let _ = engine.take_bits(200).unwrap();
        }
        let stats = engine.shutdown();
        assert_eq!(
            stats.in_flight_bits, 0,
            "graceful shutdown leaves nothing in flight"
        );
        assert_eq!(
            stats.harvested_bits,
            stats.queued_bits as u64 + stats.served_bits + stats.discarded_bits,
            "{stats:?}"
        );
        assert_eq!(stats.served_bits, 2000);
    }

    #[test]
    fn backpressure_bounds_the_pool() {
        let config = EngineConfig {
            queue_capacity: 1 << 10,
            low_watermark: 1 << 6,
            high_watermark: 1 << 9,
            channel_batches: 2,
            ..EngineConfig::default()
        };
        let batch = 64usize;
        let engine = HarvestEngine::spawn(vec![PrngSource::new(3, batch)], config).unwrap();
        // Let the engine idle-fill, then check the pool respects the
        // high watermark (+ at most one batch of overshoot).
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while engine.queued_bits() < config.high_watermark && std::time::Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        std::thread::sleep(Duration::from_millis(100));
        let queued = engine.queued_bits();
        assert!(
            queued <= config.high_watermark + batch,
            "pool {queued} exceeds high watermark {} + one batch",
            config.high_watermark
        );
        let stats = engine.shutdown();
        // Idle harvesting stopped: harvested is bounded by what fits in
        // the pool plus the channel, not unbounded.
        let bound =
            (config.queue_capacity + (config.channel_batches + 2) * batch + 2 * batch) as u64;
        assert!(
            stats.harvested_bits <= bound,
            "{} > {bound}",
            stats.harvested_bits
        );
    }

    #[test]
    fn permanently_unhealthy_source_errors_instead_of_spinning() {
        let config = EngineConfig {
            max_consecutive_rejects: 50,
            ..small_config()
        };
        let engine = HarvestEngine::spawn(vec![StuckSource { batch: 64 }], config).unwrap();
        let err = engine.take_bits(64).unwrap_err();
        assert!(matches!(err, DrangeError::Unhealthy(_)), "got {err:?}");
        let stats = engine.shutdown();
        assert_eq!(stats.harvested_bits, stats.discarded_bits);
        assert!(stats.health_trips > 0);
    }

    #[test]
    fn rejection_guard_resets_on_accepted_batch() {
        // 10-batch unhealthy stretches separated by single healthy
        // batches: the persistent counter resets on every acceptance,
        // so the engine keeps serving rather than erroring — without
        // the reset, ten periods would blow far past the limit. The
        // limit leaves a wide margin because an adaptive-proportion
        // window can straddle from a rejected zero-stretch into a
        // healthy batch and occasionally reject it too.
        let config = EngineConfig {
            max_consecutive_rejects: 100,
            ..small_config()
        };
        let source = StretchSource {
            healthy: PrngSource::new(5, 256),
            reject_run: 10,
            position: 0,
        };
        let engine = HarvestEngine::spawn(vec![source], config).unwrap();
        let bits = engine.take_bits(1024).unwrap();
        assert_eq!(bits.len(), 1024);
        assert!(engine.first_error().is_none(), "{:?}", engine.first_error());
        let stats = engine.shutdown();
        assert!(
            stats.discarded_bits > 0,
            "unhealthy stretches were screened out"
        );
    }

    #[test]
    fn erroring_source_propagates_to_clients() {
        #[derive(Debug)]
        struct FailingSource;
        impl HarvestSource for FailingSource {
            fn harvest_batch(&mut self) -> Result<BitBlock> {
                Err(DrangeError::Engine("synthetic device fault".into()))
            }
        }
        let engine = HarvestEngine::spawn(vec![FailingSource], small_config()).unwrap();
        let err = engine.take_bits(8).unwrap_err();
        assert!(matches!(err, DrangeError::Engine(_)), "got {err:?}");
    }

    #[test]
    fn oversized_take_rejected() {
        let engine = HarvestEngine::spawn(vec![PrngSource::new(1, 32)], small_config()).unwrap();
        assert!(engine.take_bits(1 << 20).is_err());
        assert!(
            engine.take_bytes(usize::MAX / 4).is_err(),
            "bit count overflow"
        );
    }

    #[test]
    fn invalid_configs_rejected() {
        let bad_watermarks = EngineConfig {
            low_watermark: 100,
            high_watermark: 10,
            ..EngineConfig::default()
        };
        assert!(HarvestEngine::spawn(vec![PrngSource::new(1, 32)], bad_watermarks).is_err());
        let no_sources: Vec<PrngSource> = Vec::new();
        assert!(HarvestEngine::spawn(no_sources, EngineConfig::default()).is_err());
    }

    #[test]
    fn telemetry_records_stages_counters_and_pool() {
        let registry = MetricsRegistry::new();
        let engine = HarvestEngine::spawn_with_telemetry(
            vec![PrngSource::new(42, 128)],
            small_config(),
            Some(&registry),
        )
        .unwrap();
        let _ = engine.take_bits(512).unwrap();
        let stats = engine.shutdown();

        let text = registry.render_prometheus();
        for series in [
            "drange_stage_latency_ns_count{stage=\"harvest\",worker=\"0\"}",
            "drange_stage_latency_ns_count{stage=\"health\",worker=\"0\"}",
            "drange_stage_latency_ns_count{stage=\"publish\",worker=\"0\"}",
            "drange_stage_latency_ns_count{stage=\"collect\",worker=\"collector\"}",
            "drange_take_bits_latency_ns_count",
            "drange_pool_bits",
            "drange_health_trips_total{test=\"adaptive\",worker=\"0\"}",
            "drange_health_trips_total{test=\"repetition\",worker=\"0\"}",
            "drange_cache_reads_total{kind=\"hit\",worker=\"0\"}",
            "drange_cache_reads_total{kind=\"skip\",worker=\"0\"}",
            "drange_cache_reads_total{kind=\"resolve\",worker=\"0\"}",
        ] {
            assert!(text.contains(series), "missing series {series} in:\n{text}");
        }
        // Counters mirror the atomic stats exactly.
        let find = |name: &str, labels: &[(&str, &str)]| -> u64 {
            registry
                .samples()
                .into_iter()
                .find(|s| {
                    s.name == name
                        && s.labels
                            == labels
                                .iter()
                                .map(|(k, v)| (k.to_string(), v.to_string()))
                                .collect::<Vec<_>>()
                })
                .and_then(|s| match s.value {
                    drange_telemetry::MetricValue::Counter(v) => Some(v),
                    _ => None,
                })
                .unwrap_or_else(|| panic!("missing counter {name}"))
        };
        assert_eq!(
            find("drange_worker_harvested_bits_total", &[("worker", "0")]),
            stats.harvested_bits
        );
        assert_eq!(find("drange_served_bits_total", &[]), stats.served_bits);
        assert_eq!(
            stats.repetition_trips + stats.adaptive_trips,
            stats.health_trips
        );
    }

    #[test]
    fn spawn_without_registry_keeps_telemetry_noop() {
        let engine = HarvestEngine::spawn(vec![PrngSource::new(9, 64)], small_config()).unwrap();
        assert!(!engine.telemetry.take_bits_ns.is_live());
        assert!(
            engine.telemetry.take_bits_ns.start().is_none(),
            "noop skips the clock"
        );
        let _ = engine.take_bits(32).unwrap();
        engine.shutdown();
    }

    #[test]
    fn unhealthy_trips_are_split_by_test_in_stats() {
        let config = EngineConfig {
            max_consecutive_rejects: 50,
            ..small_config()
        };
        let engine = HarvestEngine::spawn(vec![StuckSource { batch: 64 }], config).unwrap();
        let _ = engine.take_bits(64).unwrap_err();
        let stats = engine.shutdown();
        assert_eq!(
            stats.repetition_trips + stats.adaptive_trips,
            stats.health_trips
        );
        assert!(
            stats.repetition_trips > 0,
            "stuck source must fire the RCT: {stats:?}"
        );
        assert_eq!(stats.workers[0].repetition_trips, stats.repetition_trips);
        assert_eq!(stats.workers[0].adaptive_trips, stats.adaptive_trips);
    }

    #[test]
    fn cache_stats_flow_into_worker_and_engine_stats() {
        /// Healthy source that reports synthetic cumulative cache
        /// counters: 6 skips, 3 hits, 1 resolve per batch (hit rate
        /// 0.9), so the worker's per-batch diffing is checkable.
        #[derive(Debug)]
        struct CachedPrngSource {
            inner: PrngSource,
            stats: SenseCacheStats,
        }
        impl HarvestSource for CachedPrngSource {
            fn harvest_batch(&mut self) -> Result<BitBlock> {
                self.stats.skip_word_reads += 6;
                self.stats.hit_reads += 3;
                self.stats.resolve_reads += 1;
                self.stats.bulk_cells += 10;
                self.stats.bulk_lane_cells += 8;
                self.inner.harvest_batch()
            }
            fn sense_cache_stats(&self) -> Option<SenseCacheStats> {
                Some(self.stats)
            }
        }
        let source = CachedPrngSource {
            inner: PrngSource::new(21, 128),
            stats: SenseCacheStats::default(),
        };
        let engine = HarvestEngine::spawn(vec![source], small_config()).unwrap();
        let _ = engine.take_bits(256).unwrap();
        let stats = engine.shutdown();
        let w = stats.workers[0];
        assert!(w.batches > 0);
        assert_eq!(w.cache_skip_reads, 6 * w.batches);
        assert_eq!(w.cache_hit_reads, 3 * w.batches);
        assert_eq!(w.cache_resolve_reads, w.batches);
        assert_eq!(w.cache_bulk_cells, 10 * w.batches);
        assert_eq!(w.cache_bulk_lane_cells, 8 * w.batches);
        assert_eq!(stats.cache_skip_reads, w.cache_skip_reads);
        assert_eq!(stats.cache_hit_reads, w.cache_hit_reads);
        assert_eq!(stats.cache_resolve_reads, w.cache_resolve_reads);
        assert_eq!(stats.cache_bulk_cells, w.cache_bulk_cells);
        assert_eq!(stats.cache_bulk_lane_cells, w.cache_bulk_lane_cells);
        assert!((w.lane_utilization() - 0.8).abs() < 1e-12);
        assert!((stats.lane_utilization() - 0.8).abs() < 1e-12);
        assert!((w.cache_hit_rate() - 0.9).abs() < 1e-12);
        assert!((stats.cache_hit_rate() - 0.9).abs() < 1e-12);
        // A stats snapshot with no cache activity reports a 0.0 rate.
        let inactive = WorkerStats {
            cache_skip_reads: 0,
            cache_hit_reads: 0,
            cache_resolve_reads: 0,
            ..w
        };
        assert_eq!(inactive.cache_hit_rate(), 0.0);
    }

    #[test]
    fn lifecycle_and_fault_stats_flow_into_engine_stats() {
        /// Healthy source reporting scripted lifecycle + fault
        /// snapshots (cumulative event counters tick once per batch),
        /// toggleable so one worker can run without them.
        #[derive(Debug)]
        struct LifecycleSource {
            inner: PrngSource,
            batches: u64,
            enabled: bool,
        }
        impl HarvestSource for LifecycleSource {
            fn harvest_batch(&mut self) -> Result<BitBlock> {
                self.batches += 1;
                self.inner.harvest_batch()
            }
            fn lifecycle_stats(&self) -> Option<LifecycleStats> {
                self.enabled.then_some(LifecycleStats {
                    live_cells: 100,
                    quarantined_cells: 3,
                    retired_cells: 1,
                    quarantine_events: self.batches,
                    reinstated_cells: 0,
                    promoted_words: 1,
                    recharacterizations: 2,
                    degraded: true,
                })
            }
            fn fault_stats(&self) -> Option<FaultStats> {
                self.enabled.then_some(FaultStats {
                    temperature_events: self.batches,
                    ..FaultStats::default()
                })
            }
        }
        let registry = MetricsRegistry::new();
        let sources = vec![
            LifecycleSource {
                inner: PrngSource::new(31, 128),
                batches: 0,
                enabled: true,
            },
            LifecycleSource {
                inner: PrngSource::new(32, 128),
                batches: 0,
                enabled: false,
            },
        ];
        let engine =
            HarvestEngine::spawn_with_telemetry(sources, small_config(), Some(&registry)).unwrap();
        let _ = engine.take_bits(512).unwrap();
        let stats = engine.shutdown();
        // Aggregation covers exactly the lifecycle-running worker.
        assert!(stats.is_degraded());
        let lc = stats.lifecycle.expect("worker 0 runs a lifecycle");
        assert_eq!(lc.live_cells, 100);
        assert_eq!(lc.quarantined_cells, 3);
        assert_eq!(lc.quarantine_events, stats.workers[0].batches);
        assert!(stats.workers[1].lifecycle.is_none());
        let faults = stats.faults.expect("worker 0 reports fault counters");
        assert_eq!(faults.temperature_events, stats.workers[0].batches);
        // The diffed telemetry counters and snapshot gauges export the
        // same numbers under the documented series names.
        let text = registry.render_prometheus();
        for series in [
            "drange_lifecycle_cells{state=\"live\",worker=\"0\"}",
            "drange_lifecycle_cells{state=\"quarantined\",worker=\"0\"}",
            "drange_lifecycle_cells{state=\"retired\",worker=\"0\"}",
            "drange_degraded{worker=\"0\"}",
            "drange_lifecycle_events_total{event=\"quarantine\",worker=\"0\"}",
            "drange_lifecycle_events_total{event=\"recharacterize\",worker=\"0\"}",
            "drange_injected_faults_total{kind=\"temperature\",worker=\"0\"}",
        ] {
            assert!(text.contains(series), "missing series {series} in:\n{text}");
        }
        // An engine of plain sources reports no lifecycle at all.
        let plain = HarvestEngine::spawn(vec![PrngSource::new(33, 64)], small_config()).unwrap();
        let _ = plain.take_bits(64).unwrap();
        let stats = plain.shutdown();
        assert!(stats.lifecycle.is_none());
        assert!(stats.faults.is_none());
        assert!(!stats.is_degraded());
    }

    #[test]
    fn concurrent_clients_each_get_full_buffers() {
        let sources = (0..2).map(|i| PrngSource::new(100 + i, 128)).collect();
        let engine = Arc::new(HarvestEngine::spawn::<PrngSource>(sources, small_config()).unwrap());
        let mut handles = Vec::new();
        for t in 0..4 {
            let engine = Arc::clone(&engine);
            handles.push(std::thread::spawn(move || {
                let mut total = 0usize;
                for i in 0..8 {
                    let n = 16 + (t * 8 + i) % 32;
                    let bytes = engine.take_bytes(n).unwrap();
                    assert_eq!(bytes.len(), n);
                    total += n;
                }
                total
            }));
        }
        let total: usize = handles.into_iter().map(|h| h.join().unwrap()).sum();
        let engine = Arc::try_unwrap(engine).expect("all clients done");
        let stats = engine.shutdown();
        assert_eq!(stats.served_bits, total as u64 * 8);
    }
}
