//! The full-system integration of Section 6.3: a firmware-style
//! randomness service with a REQUEST/RECEIVE interface, a harvested-bit
//! queue, and continuous health monitoring.
//!
//! Applications `request` random bytes and later `receive` them; the
//! service refills its queue by running the Algorithm 2 sampling loop
//! whenever the queue drops below a low watermark ("whenever an
//! application requests random samples and there is available DRAM
//! bandwidth" — the paper's firmware routine), and discards output
//! rejected by the online health tests.

use std::collections::VecDeque;

use crate::error::{DrangeError, Result};
use crate::health::HealthMonitor;
use crate::sampler::DRange;

/// Identifier of a pending randomness request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

/// Configuration of the randomness service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Bits kept ready in the firmware queue.
    pub queue_capacity: usize,
    /// Refill when the queue drops below this many bits.
    pub low_watermark: usize,
    /// Claimed min-entropy for the health monitor (bits/bit).
    pub min_entropy: f64,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig { queue_capacity: 1 << 16, low_watermark: 1 << 12, min_entropy: 0.95 }
    }
}

/// A pending request.
#[derive(Debug, Clone)]
struct Pending {
    id: RequestId,
    bytes: usize,
}

/// The firmware randomness service (REQUEST/RECEIVE over D-RaNGe).
#[derive(Debug)]
pub struct RandomnessService {
    trng: DRange,
    config: ServiceConfig,
    queue: VecDeque<bool>,
    pending: VecDeque<Pending>,
    ready: Vec<(RequestId, Vec<u8>)>,
    next_id: u64,
    health: HealthMonitor,
    discarded_bits: u64,
}

impl RandomnessService {
    /// Wraps a generator.
    ///
    /// # Errors
    ///
    /// Returns [`DrangeError::InvalidSpec`] for inconsistent watermarks.
    pub fn new(trng: DRange, config: ServiceConfig) -> Result<Self> {
        if config.low_watermark > config.queue_capacity || config.queue_capacity == 0 {
            return Err(DrangeError::InvalidSpec(format!(
                "watermark {} exceeds capacity {}",
                config.low_watermark, config.queue_capacity
            )));
        }
        if !(0.0..=1.0).contains(&config.min_entropy) || config.min_entropy == 0.0 {
            return Err(DrangeError::InvalidSpec("min_entropy must be in (0,1]".into()));
        }
        let health = HealthMonitor::new(config.min_entropy);
        Ok(RandomnessService {
            trng,
            config,
            queue: VecDeque::new(),
            pending: VecDeque::new(),
            ready: Vec::new(),
            next_id: 0,
            health,
            discarded_bits: 0,
        })
    }

    /// Files a request for `bytes` random bytes, returning its id.
    ///
    /// # Errors
    ///
    /// Returns [`DrangeError::InvalidSpec`] when a single request
    /// exceeds the queue capacity.
    pub fn request(&mut self, bytes: usize) -> Result<RequestId> {
        if bytes * 8 > self.config.queue_capacity {
            return Err(DrangeError::InvalidSpec(format!(
                "request of {bytes} bytes exceeds queue capacity"
            )));
        }
        let id = RequestId(self.next_id);
        self.next_id += 1;
        self.pending.push_back(Pending { id, bytes });
        Ok(id)
    }

    /// Runs the firmware loop: refills the queue (sampling in batches)
    /// and fulfills pending requests in order. Returns the number of
    /// requests completed this call.
    ///
    /// # Errors
    ///
    /// Propagates sampling errors.
    pub fn process(&mut self) -> Result<usize> {
        let mut completed = 0usize;
        loop {
            let needed: usize =
                self.pending.front().map(|p| p.bytes * 8).unwrap_or(0);
            // Refill policy: satisfy the head request, and top up to the
            // watermark when idle.
            let target = needed.max(self.config.low_watermark).min(self.config.queue_capacity);
            let mut rejected_batches = 0u32;
            while self.queue.len() < target {
                if rejected_batches > 1000 {
                    return Err(DrangeError::Unhealthy(
                        "more than 1000 consecutive batches failed health screening".into(),
                    ));
                }
                let harvested = self.trng.sample_once()?;
                let batch = self.trng.bits(harvested)?;
                // Health screening: a batch that trips the monitor is
                // discarded rather than queued.
                let mut probe = self.health.clone();
                if probe.feed_all(&batch) == 0 {
                    self.health = probe;
                    self.queue.extend(batch);
                } else {
                    self.health = probe;
                    self.discarded_bits += batch.len() as u64;
                    rejected_batches += 1;
                }
            }
            let Some(head) = self.pending.front().cloned() else { break };
            if self.queue.len() < head.bytes * 8 {
                continue;
            }
            let mut out = Vec::with_capacity(head.bytes);
            for _ in 0..head.bytes {
                let mut b = 0u8;
                for _ in 0..8 {
                    b = (b << 1) | u8::from(self.queue.pop_front().expect("refilled"));
                }
                out.push(b);
            }
            self.ready.push((head.id, out));
            self.pending.pop_front();
            completed += 1;
            if self.pending.is_empty() {
                break;
            }
        }
        Ok(completed)
    }

    /// Retrieves a completed request's bytes, if ready.
    pub fn receive(&mut self, id: RequestId) -> Option<Vec<u8>> {
        let idx = self.ready.iter().position(|(rid, _)| *rid == id)?;
        Some(self.ready.swap_remove(idx).1)
    }

    /// Bits currently queued and ready to serve.
    pub fn queued_bits(&self) -> usize {
        self.queue.len()
    }

    /// Bits discarded by the health monitor.
    pub fn discarded_bits(&self) -> u64 {
        self.discarded_bits
    }

    /// Requests filed but not yet fulfilled.
    pub fn pending_requests(&self) -> usize {
        self.pending.len()
    }

    /// The underlying generator (stats access).
    pub fn trng(&self) -> &DRange {
        &self.trng
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::{IdentifySpec, RngCellCatalog};
    use crate::profiler::{ProfileSpec, Profiler};
    use crate::sampler::DRangeConfig;
    use dram_sim::{DeviceConfig, Manufacturer};
    use memctrl::MemoryController;

    fn service() -> RandomnessService {
        let mut ctrl = MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A).with_seed(42).with_noise_seed(777),
        );
        let profile = Profiler::new(&mut ctrl)
            .run(
                ProfileSpec {
                    banks: (0..8).collect(),
                    rows: 0..128,
                    cols: 0..16,
                    ..ProfileSpec::default()
                }
                .with_iterations(25),
            )
            .unwrap();
        let catalog =
            RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default()).unwrap();
        let trng = DRange::new(ctrl, &catalog, DRangeConfig::default()).unwrap();
        RandomnessService::new(trng, ServiceConfig::default()).unwrap()
    }

    #[test]
    fn request_receive_round_trip() {
        let mut s = service();
        let id1 = s.request(32).unwrap();
        let id2 = s.request(16).unwrap();
        assert_eq!(s.pending_requests(), 2);
        let done = s.process().unwrap();
        assert_eq!(done, 2);
        let k1 = s.receive(id1).unwrap();
        let k2 = s.receive(id2).unwrap();
        assert_eq!(k1.len(), 32);
        assert_eq!(k2.len(), 16);
        assert!(s.receive(id1).is_none(), "a request is consumed once");
    }

    #[test]
    fn queue_prefills_to_watermark() {
        let mut s = service();
        let _ = s.request(1).unwrap();
        s.process().unwrap();
        assert!(s.queued_bits() + 8 >= ServiceConfig::default().low_watermark);
    }

    #[test]
    fn healthy_source_discards_nothing() {
        let mut s = service();
        let _ = s.request(64).unwrap();
        s.process().unwrap();
        assert_eq!(s.discarded_bits(), 0);
    }

    #[test]
    fn distinct_requests_get_distinct_bytes() {
        let mut s = service();
        let a = s.request(16).unwrap();
        let b = s.request(16).unwrap();
        s.process().unwrap();
        assert_ne!(s.receive(a).unwrap(), s.receive(b).unwrap());
    }

    #[test]
    fn oversized_request_rejected() {
        let mut s = service();
        assert!(s.request(1 << 20).is_err());
    }

    #[test]
    fn bad_config_rejected() {
        let s = service();
        let trng = s.trng; // move out via field (same module)
        assert!(RandomnessService::new(
            trng,
            ServiceConfig { queue_capacity: 10, low_watermark: 100, ..Default::default() }
        )
        .is_err());
    }
}
