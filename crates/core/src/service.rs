//! The full-system integration of Section 6.3: a firmware-style
//! randomness service with a REQUEST/RECEIVE interface over the
//! concurrent harvesting engine.
//!
//! Applications `request` random bytes and later `receive` them. The
//! service is a thread-safe front-end: any number of client threads may
//! file requests, drive [`RandomnessService::process`], and collect
//! results concurrently. Refilling is continuous and happens off the
//! request path — the engine's worker threads (one per simulated
//! channel) keep the shared queue topped up between the low watermark
//! and the queue capacity, and per-worker health monitors discard
//! output that fails the online tests (the paper's firmware routine,
//! "whenever an application requests random samples and there is
//! available DRAM bandwidth", generalized to a multi-channel system).

use std::collections::{HashMap, HashSet, VecDeque};
use std::time::{Duration, Instant};

use drange_telemetry::{Counter, Histogram, MetricsRegistry, Tracer};
use parking_lot::{Condvar, Mutex};

use crate::drbg::{DrbgConfig, DrbgFarm, DrbgStats};
use crate::engine::{EngineConfig, EngineStats, HarvestEngine, HarvestSource};
use crate::error::{DrangeError, Result};
use crate::sampler::DRange;
use crate::sync::{deadline_after, SequenceCounter};

/// Identifier of a pending randomness request.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct RequestId(u64);

/// Configuration of the randomness service.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ServiceConfig {
    /// Bits kept ready in the firmware queue.
    pub queue_capacity: usize,
    /// Refill when the queue drops below this many bits.
    pub low_watermark: usize,
    /// Claimed min-entropy for the health monitors (bits/bit).
    pub min_entropy: f64,
    /// Conditioning tier behind [`RandomnessService::generate_fast`]:
    /// `Some` builds a per-shard ChaCha20 DRBG farm over the engine
    /// (the `fast` QoS tier, DESIGN.md §5k), `None` disables it — fast
    /// generates then fail with [`DrangeError::InvalidSpec`] while the
    /// raw REQUEST/RECEIVE (`true`) tier is unaffected.
    pub drbg: Option<DrbgConfig>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            queue_capacity: 1 << 16,
            low_watermark: 1 << 12,
            min_entropy: 0.95,
            drbg: Some(DrbgConfig::default()),
        }
    }
}

/// A pending request.
#[derive(Debug, Clone)]
struct Pending {
    id: RequestId,
    bytes: usize,
}

/// Request bookkeeping behind one lock.
#[derive(Debug, Default)]
struct ServiceInner {
    /// Filed but not yet picked up by a `process` call, in order.
    pending: VecDeque<Pending>,
    /// Every id filed and not yet received (pending, in flight, or
    /// ready).
    outstanding: HashSet<RequestId>,
    /// Completed requests awaiting `receive`.
    ready: HashMap<RequestId, Vec<u8>>,
}

/// Telemetry handles for the request front-end. All handles are no-ops
/// when the service was built without a registry.
#[derive(Debug, Clone, Default)]
struct ServiceTelemetry {
    requests: Counter,
    request_bytes: Counter,
    completed: Counter,
    canceled: Counter,
    timeouts: Counter,
    wait_receive_ns: Histogram,
}

impl ServiceTelemetry {
    fn new(registry: Option<&MetricsRegistry>) -> Self {
        let Some(reg) = registry else {
            return ServiceTelemetry::default();
        };
        ServiceTelemetry {
            requests: reg.counter("drange_requests_total", &[]),
            request_bytes: reg.counter("drange_request_bytes_total", &[]),
            completed: reg.counter("drange_requests_completed_total", &[]),
            canceled: reg.counter("drange_requests_canceled_total", &[]),
            timeouts: reg.counter("drange_wait_timeouts_total", &[]),
            wait_receive_ns: reg.histogram("drange_wait_receive_latency_ns", &[]),
        }
    }
}

/// The firmware randomness service (REQUEST/RECEIVE over the
/// multi-channel harvesting engine).
///
/// All methods take `&self`: share the service between client threads
/// by reference (it is `Sync`) or in an `Arc`.
#[derive(Debug)]
pub struct RandomnessService {
    engine: HarvestEngine,
    inner: Mutex<ServiceInner>,
    ready_cv: Condvar,
    next_id: SequenceCounter,
    config: ServiceConfig,
    telemetry: ServiceTelemetry,
    tracer: Tracer,
    /// The conditioning tier (`fast` QoS), when configured.
    drbg: Option<DrbgFarm>,
}

impl RandomnessService {
    /// Wraps a single generator (one harvesting channel).
    ///
    /// # Errors
    ///
    /// Returns [`DrangeError::InvalidSpec`] for inconsistent
    /// watermarks.
    pub fn new(trng: DRange, config: ServiceConfig) -> Result<Self> {
        Self::with_sources(vec![trng], config)
    }

    /// Builds the service over one harvesting worker per source —
    /// typically one [`DRange`] per simulated channel (see
    /// [`crate::engine::channel_sources`]).
    ///
    /// # Errors
    ///
    /// Returns [`DrangeError::InvalidSpec`] for inconsistent watermarks
    /// or an empty source list; propagates engine spawn failures.
    pub fn with_sources<S: HarvestSource>(sources: Vec<S>, config: ServiceConfig) -> Result<Self> {
        Self::with_sources_telemetry(sources, config, None)
    }

    /// As [`RandomnessService::with_sources`], additionally registering
    /// service-level metrics (request counts/bytes, completion count,
    /// `wait_receive` latency) and the engine's full metric set in
    /// `registry` when one is given.
    ///
    /// # Errors
    ///
    /// As [`RandomnessService::with_sources`].
    pub fn with_sources_telemetry<S: HarvestSource>(
        sources: Vec<S>,
        config: ServiceConfig,
        registry: Option<&MetricsRegistry>,
    ) -> Result<Self> {
        Self::with_sources_traced(sources, config, registry, Tracer::noop())
    }

    /// As [`RandomnessService::with_sources_telemetry`], additionally
    /// attaching a [`Tracer`]: the request path (`request`,
    /// `wait_receive`, the engine's pool drain) and the engine's
    /// harvest/collector threads emit spans into the tracer's flight
    /// recorder. With [`Tracer::noop`] (what the other constructors
    /// pass) every span is inert and never reads the clock.
    ///
    /// # Errors
    ///
    /// As [`RandomnessService::with_sources`].
    pub fn with_sources_traced<S: HarvestSource>(
        sources: Vec<S>,
        config: ServiceConfig,
        registry: Option<&MetricsRegistry>,
        tracer: Tracer,
    ) -> Result<Self> {
        if config.low_watermark > config.queue_capacity || config.queue_capacity == 0 {
            return Err(DrangeError::InvalidSpec(format!(
                "watermark {} exceeds capacity {}",
                config.low_watermark, config.queue_capacity
            )));
        }
        if !(0.0..=1.0).contains(&config.min_entropy) || config.min_entropy == 0.0 {
            return Err(DrangeError::InvalidSpec(
                "min_entropy must be in (0,1]".into(),
            ));
        }
        let engine = HarvestEngine::spawn_traced(
            sources,
            EngineConfig {
                queue_capacity: config.queue_capacity,
                low_watermark: config.low_watermark,
                high_watermark: config.queue_capacity,
                min_entropy: config.min_entropy,
                ..EngineConfig::default()
            },
            registry,
            tracer.clone(),
        )?;
        let drbg = match config.drbg {
            Some(drbg_config) => Some(DrbgFarm::new(
                drbg_config,
                engine.workers(),
                registry,
                tracer.clone(),
            )?),
            None => None,
        };
        Ok(RandomnessService {
            engine,
            inner: Mutex::new(ServiceInner::default()),
            ready_cv: Condvar::new(),
            next_id: SequenceCounter::new(),
            config,
            telemetry: ServiceTelemetry::new(registry),
            tracer,
            drbg,
        })
    }

    /// Files a request for `bytes` random bytes, returning its id.
    ///
    /// A zero-byte request completes immediately: its (empty) result is
    /// ready the moment this returns, without ever entering the pending
    /// queue — it cannot block behind harvesting or be starved by
    /// larger requests.
    ///
    /// # Errors
    ///
    /// Returns [`DrangeError::InvalidSpec`] when a single request
    /// exceeds the queue capacity or its bit count overflows.
    pub fn request(&self, bytes: usize) -> Result<RequestId> {
        let bits = bytes.checked_mul(8).ok_or_else(|| {
            DrangeError::InvalidSpec(format!(
                "request of {bytes} bytes overflows the bit accounting"
            ))
        })?;
        if bits > self.config.queue_capacity {
            return Err(DrangeError::InvalidSpec(format!(
                "request of {bytes} bytes exceeds queue capacity"
            )));
        }
        let id = RequestId(self.next_id.next());
        let mut span = self.tracer.span("service.request");
        if span.is_recording() {
            span.attr_u64("bytes", bytes as u64);
            span.attr_u64("request_id", id.0);
        }
        self.telemetry.requests.inc();
        self.telemetry.request_bytes.add(bytes as u64);
        let mut inner = self.inner.lock();
        inner.outstanding.insert(id);
        if bytes == 0 {
            inner.ready.insert(id, Vec::new());
            self.telemetry.completed.inc();
        } else {
            inner.pending.push_back(Pending { id, bytes });
        }
        Ok(id)
    }

    /// Cancels an outstanding request. Returns `true` when the id was
    /// outstanding (its queued work and any ready bytes are dropped),
    /// `false` when it was unknown or already received.
    ///
    /// A request whose bytes are being fetched by a concurrent
    /// `process` call when it is canceled completes into the void: the
    /// fetched bytes are dropped, not delivered. A thread blocked in
    /// [`RandomnessService::wait_receive`] on the canceled id is woken
    /// and gets the unknown-id error.
    pub fn cancel(&self, id: RequestId) -> bool {
        let mut inner = self.inner.lock();
        if !inner.outstanding.remove(&id) {
            return false;
        }
        inner.pending.retain(|p| p.id != id);
        inner.ready.remove(&id);
        drop(inner);
        // Mutation happened under the lock, so this notify cannot land
        // in a waiter's check-to-park window: wake waiters so one
        // blocked on this id observes the cancellation.
        self.ready_cv.notify_all();
        self.telemetry.canceled.inc();
        true
    }

    /// Runs the firmware loop: fulfills pending requests in order from
    /// the engine's screened-bit queue, blocking while the workers
    /// harvest. Returns the number of requests completed by *this*
    /// call; concurrent callers split the pending queue between them.
    ///
    /// # Errors
    ///
    /// Propagates engine errors (e.g. a persistently unhealthy source
    /// retiring the last worker); the request being served is requeued
    /// so no id is lost.
    pub fn process(&self) -> Result<usize> {
        self.process_deadline(None).map(|(completed, _)| completed)
    }

    /// The firmware loop with an optional give-up deadline. Returns
    /// `(completed, expired)`; when `expired` is true the request being
    /// served hit the deadline while waiting for bits and was requeued
    /// (with waiters notified), not lost.
    ///
    /// Every exit that leaves work in the pending queue — engine error
    /// or deadline — requeues under the lock *and* notifies `ready_cv`:
    /// a waiter parked on an id this call was serving must wake and
    /// re-drive the firmware loop itself, or it would wait forever on a
    /// completion that no thread is producing anymore (the lost wakeup
    /// pinned by `tests/loom_service.rs`).
    fn process_deadline(&self, deadline: Option<Instant>) -> Result<(usize, bool)> {
        let mut completed = 0usize;
        loop {
            let head = { self.inner.lock().pending.pop_front() };
            let Some(head) = head else { break };
            let outcome = match deadline {
                None => self.engine.take_bytes(head.bytes).map(Some),
                Some(d) => self.engine.take_bytes_deadline(head.bytes, d),
            };
            match outcome {
                Ok(Some(bytes)) => {
                    {
                        let mut inner = self.inner.lock();
                        // A request canceled while its bytes were being
                        // fetched completes into the void.
                        if inner.outstanding.contains(&head.id) {
                            inner.ready.insert(head.id, bytes);
                        }
                    }
                    self.ready_cv.notify_all();
                    self.telemetry.completed.inc();
                    completed += 1;
                }
                Ok(None) => {
                    self.inner.lock().pending.push_front(head);
                    self.ready_cv.notify_all();
                    return Ok((completed, true));
                }
                Err(e) => {
                    self.inner.lock().pending.push_front(head);
                    self.ready_cv.notify_all();
                    return Err(e);
                }
            }
        }
        Ok((completed, false))
    }

    /// Retrieves a completed request's bytes, if ready. Each request is
    /// consumed exactly once.
    pub fn receive(&self, id: RequestId) -> Option<Vec<u8>> {
        let mut inner = self.inner.lock();
        let bytes = inner.ready.remove(&id)?;
        inner.outstanding.remove(&id);
        Some(bytes)
    }

    /// Drives the firmware loop until the given request is ready and
    /// returns its bytes — the blocking client-side convenience over
    /// [`RandomnessService::process`] / [`RandomnessService::receive`].
    ///
    /// # Errors
    ///
    /// Propagates engine errors, and returns
    /// [`DrangeError::InvalidSpec`] for an id that was never filed on
    /// this service or was already received.
    pub fn wait_receive(&self, id: RequestId) -> Result<Vec<u8>> {
        let t0 = self.telemetry.wait_receive_ns.start();
        let out = match self.wait_receive_inner(id, None) {
            Ok(Some(bytes)) => Ok(bytes),
            // Unreachable: an untimed wait only returns on success or
            // error, but the no-panic policy forbids asserting so.
            Ok(None) => Err(DrangeError::Engine(
                "untimed wait_receive reported a timeout".into(),
            )),
            Err(e) => Err(e),
        };
        self.telemetry.wait_receive_ns.observe_since(t0);
        out
    }

    /// As [`RandomnessService::wait_receive`], but gives up and returns
    /// `Ok(None)` once `timeout` elapses without the request
    /// completing. On timeout the request stays outstanding — it keeps
    /// its place in the queue and a later `wait_receive`,
    /// `wait_receive_timeout`, or [`RandomnessService::receive`] (after
    /// some thread processes it) can still collect the bytes; call
    /// [`RandomnessService::cancel`] to abandon it instead.
    ///
    /// # Errors
    ///
    /// As [`RandomnessService::wait_receive`].
    pub fn wait_receive_timeout(
        &self,
        id: RequestId,
        timeout: Duration,
    ) -> Result<Option<Vec<u8>>> {
        let t0 = self.telemetry.wait_receive_ns.start();
        let out = self.wait_receive_inner(id, Some(deadline_after(timeout)));
        self.telemetry.wait_receive_ns.observe_since(t0);
        if let Ok(None) = &out {
            self.telemetry.timeouts.inc();
        }
        out
    }

    /// Serves `bytes` of conditioned output from the DRBG tier — the
    /// `fast` QoS path (DESIGN.md §5k). Synchronous and lock-light:
    /// one round-robin shard mutex, no request id, no pending queue,
    /// no engine wait unless the picked shard is due a reseed.
    ///
    /// A zero-byte request completes immediately without minting a
    /// DRBG generate (no shard is touched, no reseed can trigger, and
    /// `drange_drbg_generates_total` does not move) — the fast-tier
    /// analogue of [`RandomnessService::request`]'s zero-byte path.
    ///
    /// # Errors
    ///
    /// [`DrangeError::InvalidSpec`] when the service was built with
    /// [`ServiceConfig::drbg`] `None` or the request exceeds
    /// [`DrbgConfig::max_generate_bytes`]; [`DrangeError::Unhealthy`] /
    /// [`DrangeError::Engine`] when the shard needs its first seed and
    /// the reseed is blocked by a health trip or starved by the pool.
    pub fn generate_fast(&self, bytes: usize) -> Result<Vec<u8>> {
        if bytes == 0 {
            return Ok(Vec::new());
        }
        self.farm()?.generate(&self.engine, bytes)
    }

    /// As [`RandomnessService::generate_fast`], with prediction
    /// resistance: the serving shard absorbs fresh pool entropy
    /// immediately before generating, or the call fails.
    ///
    /// # Errors
    ///
    /// As [`RandomnessService::generate_fast`], plus
    /// [`DrangeError::Unhealthy`] when the forced reseed is blocked by
    /// a health trip and [`DrangeError::Engine`] when it starves.
    pub fn generate_fast_pr(&self, bytes: usize) -> Result<Vec<u8>> {
        if bytes == 0 {
            return Ok(Vec::new());
        }
        self.farm()?.generate_pr(&self.engine, bytes)
    }

    /// Whether the conditioning tier is configured (fast generates can
    /// be served).
    pub fn conditioning_enabled(&self) -> bool {
        self.drbg.is_some()
    }

    /// Aggregated DRBG-farm statistics, or `None` when the
    /// conditioning tier is disabled.
    pub fn drbg_stats(&self) -> Option<DrbgStats> {
        self.drbg.as_ref().map(DrbgFarm::stats)
    }

    fn farm(&self) -> Result<&DrbgFarm> {
        self.drbg.as_ref().ok_or_else(|| {
            DrangeError::InvalidSpec(
                "the conditioning tier is disabled (ServiceConfig::drbg is None)".into(),
            )
        })
    }

    /// The blocking receive loop. Alternates between driving the
    /// firmware loop and a notification-driven wait on `ready_cv`.
    ///
    /// The wait protocol (model-checked in `tests/loom_service.rs`):
    /// a waiter parks only while its id is *in flight* on another
    /// thread — not ready, still outstanding, and not in the pending
    /// queue. Every transition out of that state notifies `ready_cv`
    /// under the inner lock: completion and cancellation remove the id
    /// from flight, and an error or timeout in the serving thread
    /// requeues the id (the waiter then sees it in `pending`, stops
    /// waiting, and drives `process` itself). The old implementation
    /// skipped the requeue notify and papered over the lost wakeup with
    /// a 5 ms poll; with plain waits that bug would be a deadlock, so
    /// the predicate and the notifies must stay in lockstep.
    fn wait_receive_inner(
        &self,
        id: RequestId,
        deadline: Option<Instant>,
    ) -> Result<Option<Vec<u8>>> {
        // The wait span covers the whole loop, so the engine's
        // `engine.pool_drain` spans (emitted inline by the
        // `process_deadline` call below) nest under it through the
        // thread-local context.
        let mut span = self.tracer.span("service.wait");
        span.attr_u64("request_id", id.0);
        loop {
            let (_, mut expired) = self.process_deadline(deadline)?;
            let mut inner = self.inner.lock();
            loop {
                if let Some(bytes) = inner.ready.remove(&id) {
                    inner.outstanding.remove(&id);
                    return Ok(Some(bytes));
                }
                if !inner.outstanding.contains(&id) {
                    return Err(DrangeError::InvalidSpec(
                        "unknown, canceled, or already-received request id".into(),
                    ));
                }
                if expired {
                    span.attr_bool("timed_out", true);
                    return Ok(None);
                }
                if inner.pending.iter().any(|p| p.id == id) {
                    // Our id is (back) in the queue and no thread owns
                    // it: drive the firmware loop ourselves.
                    break;
                }
                // In flight on another thread; wait for its completion
                // (or requeue/cancel) notify.
                match deadline {
                    None => self.ready_cv.wait(&mut inner),
                    Some(d) => {
                        // On timeout, loop once more: ready/outstanding
                        // may have changed while we raced the deadline.
                        expired = self.ready_cv.wait_until(&mut inner, d).timed_out();
                    }
                }
            }
        }
    }

    /// Bits currently queued and ready to serve.
    pub fn queued_bits(&self) -> usize {
        self.engine.queued_bits()
    }

    /// Bits discarded by the health monitors.
    pub fn discarded_bits(&self) -> u64 {
        self.engine.stats().discarded_bits
    }

    /// Requests filed but not yet picked up by a `process` call
    /// (requests currently being served by another thread are not
    /// counted).
    pub fn pending_requests(&self) -> usize {
        self.inner.lock().pending.len()
    }

    /// Ids filed and not yet received or canceled — pending, in flight,
    /// or ready. A front-end that files a request per connection can
    /// assert this returns to zero when its clients disconnect: a
    /// nonzero steady-state value means request ids are leaking.
    pub fn outstanding_requests(&self) -> usize {
        self.inner.lock().outstanding.len()
    }

    /// Engine-level statistics (harvested/discarded/queued bits and
    /// per-channel throughput).
    pub fn stats(&self) -> EngineStats {
        self.engine.stats()
    }

    /// The underlying harvesting engine.
    pub fn engine(&self) -> &HarvestEngine {
        &self.engine
    }

    /// The tracer this service emits spans into ([`Tracer::noop`]
    /// unless built via [`RandomnessService::with_sources_traced`]).
    pub fn tracer(&self) -> &Tracer {
        &self.tracer
    }

    /// Whether any harvest worker currently reports a degraded RNG-cell
    /// population (live cells below the configured fraction of the
    /// initial catalog). Always `false` for sources without a lifecycle
    /// manager.
    pub fn is_degraded(&self) -> bool {
        self.engine.stats().is_degraded()
    }

    /// Aggregated RNG-cell lifecycle statistics across all workers, or
    /// `None` when no source reports lifecycle state.
    pub fn lifecycle(&self) -> Option<crate::lifecycle::LifecycleStats> {
        self.engine.stats().lifecycle
    }

    /// Stops harvesting, joins the engine's threads, and returns the
    /// final statistics. Dropping the service performs the same join
    /// implicitly.
    pub fn shutdown(self) -> EngineStats {
        self.engine.shutdown()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::bits::BitBlock;
    use crate::identify::{IdentifySpec, RngCellCatalog};
    use crate::profiler::{ProfileSpec, Profiler};
    use crate::sampler::DRangeConfig;
    use dram_sim::{DeviceConfig, Manufacturer};
    use memctrl::MemoryController;

    fn fresh_ctrl() -> MemoryController {
        MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(42)
                .with_noise_seed(777),
        )
    }

    /// Profiling and identification are deterministic for fixed seeds,
    /// so the catalog is built once and shared across tests.
    fn catalog() -> &'static RngCellCatalog {
        static CATALOG: std::sync::OnceLock<RngCellCatalog> = std::sync::OnceLock::new();
        CATALOG.get_or_init(|| {
            let mut ctrl = fresh_ctrl();
            let profile = Profiler::new(&mut ctrl)
                .run(
                    ProfileSpec {
                        banks: (0..8).collect(),
                        rows: 0..128,
                        cols: 0..16,
                        ..ProfileSpec::default()
                    }
                    .with_iterations(25),
                )
                .unwrap();
            RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default()).unwrap()
        })
    }

    fn generator() -> DRange {
        DRange::new(fresh_ctrl(), catalog(), DRangeConfig::default()).unwrap()
    }

    fn service() -> RandomnessService {
        RandomnessService::new(generator(), ServiceConfig::default()).unwrap()
    }

    /// A stuck source whose batches always fail health screening.
    #[derive(Debug)]
    struct StuckSource;

    impl HarvestSource for StuckSource {
        fn harvest_batch(&mut self) -> Result<BitBlock> {
            Ok((0..64).map(|_| false).collect())
        }
    }

    #[test]
    fn service_is_send_and_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<RandomnessService>();
    }

    #[test]
    fn request_receive_round_trip() {
        let s = service();
        let id1 = s.request(32).unwrap();
        let id2 = s.request(16).unwrap();
        assert_eq!(s.pending_requests(), 2);
        let done = s.process().unwrap();
        assert_eq!(done, 2);
        let k1 = s.receive(id1).unwrap();
        let k2 = s.receive(id2).unwrap();
        assert_eq!(k1.len(), 32);
        assert_eq!(k2.len(), 16);
        assert!(s.receive(id1).is_none(), "a request is consumed once");
    }

    #[test]
    fn queue_prefills_to_watermark() {
        let s = service();
        // The engine refills continuously, without any request filed.
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        while s.queued_bits() < ServiceConfig::default().low_watermark {
            assert!(
                std::time::Instant::now() < deadline,
                "queue never reached watermark"
            );
            std::thread::sleep(Duration::from_millis(10));
        }
    }

    #[test]
    fn healthy_source_discards_nothing() {
        // A small pool keeps the background prefill short: the
        // zero-discard assertion then covers a bounded, seed-fixed
        // stretch of the stream rather than racing a 64 Kibit fill.
        let s = RandomnessService::new(
            generator(),
            ServiceConfig {
                queue_capacity: 2048,
                low_watermark: 256,
                ..Default::default()
            },
        )
        .unwrap();
        let id = s.request(64).unwrap();
        s.process().unwrap();
        assert_eq!(s.receive(id).unwrap().len(), 64);
        assert_eq!(s.discarded_bits(), 0);
    }

    #[test]
    fn degraded_mode_surfaces_through_the_service() {
        // A plain DRange source carries no lifecycle manager.
        let plain = service();
        assert!(!plain.is_degraded());
        assert!(plain.lifecycle().is_none());

        // A resilient source reports lifecycle statistics once its
        // worker has completed a batch.
        let resilient = crate::lifecycle::ResilientDRange::new(
            fresh_ctrl(),
            catalog(),
            DRangeConfig::default(),
            crate::lifecycle::LifecycleConfig::default(),
        )
        .unwrap();
        let s = RandomnessService::with_sources(
            vec![resilient],
            ServiceConfig {
                queue_capacity: 2048,
                low_watermark: 256,
                ..Default::default()
            },
        )
        .unwrap();
        let id = s.request(16).unwrap();
        s.process().unwrap();
        assert_eq!(s.receive(id).unwrap().len(), 16);
        let deadline = std::time::Instant::now() + Duration::from_secs(30);
        let lc = loop {
            if let Some(lc) = s.lifecycle() {
                break lc;
            }
            assert!(
                std::time::Instant::now() < deadline,
                "worker never published lifecycle statistics"
            );
            std::thread::sleep(Duration::from_millis(10));
        };
        assert!(lc.live_cells > 0);
        assert!(!s.is_degraded(), "a fault-free run must not degrade");
    }

    #[test]
    fn distinct_requests_get_distinct_bytes() {
        let s = service();
        let a = s.request(16).unwrap();
        let b = s.request(16).unwrap();
        s.process().unwrap();
        assert_ne!(s.receive(a).unwrap(), s.receive(b).unwrap());
    }

    #[test]
    fn oversized_request_rejected() {
        let s = service();
        assert!(s.request(1 << 20).is_err());
    }

    #[test]
    fn overflowing_request_rejected() {
        // `bytes * 8` would wrap in release mode (and panic in debug);
        // the capacity check must reject it via checked arithmetic.
        let s = service();
        assert!(s.request(usize::MAX / 4).is_err());
        assert!(
            s.request(usize::MAX / 8 + 1).is_err(),
            "wraps to a tiny bit count"
        );
    }

    #[test]
    fn bad_config_rejected() {
        assert!(RandomnessService::new(
            generator(),
            ServiceConfig {
                queue_capacity: 10,
                low_watermark: 100,
                ..Default::default()
            }
        )
        .is_err());
    }

    #[test]
    fn permanently_unhealthy_source_errors_instead_of_spinning() {
        // The consecutive-rejection guard is persistent worker state:
        // it spans request boundaries and trips even though each
        // individual request never sees 1000 rejections itself.
        let s =
            RandomnessService::with_sources(vec![StuckSource], ServiceConfig::default()).unwrap();
        let _ = s.request(16).unwrap();
        let err = s.process().unwrap_err();
        assert!(matches!(err, DrangeError::Unhealthy(_)), "got {err:?}");
        // The failed request is requeued, not lost.
        assert_eq!(s.pending_requests(), 1);
    }

    /// Deterministic healthy source (splitmix64 bits), cheap enough for
    /// telemetry assertions without the simulator.
    #[derive(Debug)]
    struct PrngSource {
        state: u64,
    }

    impl HarvestSource for PrngSource {
        fn harvest_batch(&mut self) -> Result<BitBlock> {
            Ok((0..128)
                .map(|_| {
                    self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = self.state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    (z ^ (z >> 31)) & 1 == 1
                })
                .collect())
        }
    }

    #[test]
    fn telemetry_counts_requests_and_completions() {
        let registry = MetricsRegistry::new();
        let s = RandomnessService::with_sources_telemetry(
            vec![PrngSource { state: 31 }],
            ServiceConfig {
                queue_capacity: 2048,
                low_watermark: 256,
                ..Default::default()
            },
            Some(&registry),
        )
        .unwrap();
        let a = s.request(16).unwrap();
        let b = s.request(48).unwrap();
        assert_eq!(s.wait_receive(a).unwrap().len(), 16);
        assert_eq!(s.wait_receive(b).unwrap().len(), 48);
        let text = registry.render_prometheus();
        assert!(text.contains("drange_requests_total 2"), "{text}");
        assert!(text.contains("drange_request_bytes_total 64"), "{text}");
        assert!(text.contains("drange_requests_completed_total 2"), "{text}");
        assert!(
            text.contains("drange_wait_receive_latency_ns_count 2"),
            "{text}"
        );
        // The engine's metrics ride along on the same registry.
        assert!(text.contains("drange_stage_latency_ns"), "{text}");
        s.shutdown();
    }

    #[test]
    fn traced_service_records_nested_request_spans() {
        use drange_telemetry::{FlightRecorder, RecorderConfig};
        let recorder = FlightRecorder::with_config(RecorderConfig::default());
        let s = RandomnessService::with_sources_traced(
            vec![PrngSource { state: 11 }],
            ServiceConfig {
                queue_capacity: 2048,
                low_watermark: 256,
                ..Default::default()
            },
            None,
            recorder.tracer(),
        )
        .unwrap();
        let id = s.request(64).unwrap();
        assert_eq!(s.wait_receive(id).unwrap().len(), 64);
        s.shutdown();

        let records = recorder.records();
        let find = |name: &str| records.iter().find(|r| r.name == name);
        let request = find("service.request").expect("service.request span");
        let wait = find("service.wait").expect("service.wait span");
        let drain = find("engine.pool_drain").expect("engine.pool_drain span");
        assert_eq!(
            drain.parent,
            Some(wait.span),
            "pool drain nests under the wait"
        );
        assert_eq!(drain.trace, wait.trace, "one trace per request");
        assert!(request.parent.is_none() && wait.parent.is_none());
        // The harvest threads record their own root traces with
        // harvest/health/publish children.
        let batch = find("engine.batch").expect("engine.batch span");
        assert!(records
            .iter()
            .any(|r| r.name == "engine.harvest" && r.trace == batch.trace));
    }

    #[test]
    fn wait_receive_blocks_until_ready() {
        let s = service();
        let id = s.request(24).unwrap();
        let bytes = s.wait_receive(id).unwrap();
        assert_eq!(bytes.len(), 24);
        assert!(s.wait_receive(id).is_err(), "an id is consumed once");
    }

    fn small_prng_service() -> RandomnessService {
        RandomnessService::with_sources(
            vec![PrngSource { state: 7 }],
            ServiceConfig {
                queue_capacity: 2048,
                low_watermark: 256,
                ..Default::default()
            },
        )
        .unwrap()
    }

    #[test]
    fn zero_byte_request_completes_immediately() {
        let s = small_prng_service();
        let id = s.request(0).unwrap();
        assert_eq!(s.pending_requests(), 0, "never enters the queue");
        assert_eq!(
            s.receive(id).as_deref(),
            Some(&[][..]),
            "ready without any process call"
        );
        assert_eq!(s.outstanding_requests(), 0);
        // The blocking paths agree.
        let id = s.request(0).unwrap();
        assert_eq!(s.wait_receive(id).unwrap(), Vec::<u8>::new());
        let id = s.request(0).unwrap();
        assert_eq!(
            s.wait_receive_timeout(id, Duration::from_secs(5)).unwrap(),
            Some(Vec::new())
        );
    }

    /// The fast-tier analog of the zero-byte contract: a zero-byte
    /// fast request completes immediately and never mints a DRBG
    /// generate — the shard is untouched, no instantiation reseed, no
    /// pool draw.
    #[test]
    fn zero_byte_fast_request_mints_no_generate() {
        let s = small_prng_service();
        assert!(s.conditioning_enabled());
        assert_eq!(s.generate_fast(0).unwrap(), Vec::<u8>::new());
        assert_eq!(s.generate_fast_pr(0).unwrap(), Vec::<u8>::new());
        let stats = s.drbg_stats().expect("conditioning on by default");
        assert_eq!(stats.generates, 0, "no generate minted");
        assert_eq!(stats.reseeds, 0, "no instantiation triggered");
        assert_eq!(stats.entropy_credited_bits, 0, "no pool draw");
        // A real request after the zero-byte ones instantiates lazily.
        let out = s.generate_fast(16).unwrap();
        assert_eq!(out.len(), 16);
        let stats = s.drbg_stats().unwrap();
        assert_eq!(stats.generates, 1);
        assert_eq!(stats.reseeds, 1);
    }

    /// The fast tier serves through the same service even when raw
    /// requests are queued, and a disabled tier is an explicit
    /// `InvalidSpec`, never a panic.
    #[test]
    fn fast_tier_disabled_is_an_explicit_error() {
        let s = RandomnessService::with_sources(
            vec![PrngSource { state: 11 }],
            ServiceConfig {
                queue_capacity: 2048,
                low_watermark: 256,
                drbg: None,
                ..Default::default()
            },
        )
        .unwrap();
        assert!(!s.conditioning_enabled());
        assert!(s.drbg_stats().is_none());
        let err = s.generate_fast(16).unwrap_err();
        assert!(
            matches!(err, DrangeError::InvalidSpec(_)),
            "expected InvalidSpec, got {err:?}"
        );
        // Zero-byte short-circuits before the farm lookup even when
        // the tier is disabled.
        assert_eq!(s.generate_fast(0).unwrap(), Vec::<u8>::new());
    }

    #[test]
    fn cancel_drops_a_pending_request() {
        let s = small_prng_service();
        let id = s.request(16).unwrap();
        assert_eq!(s.outstanding_requests(), 1);
        assert!(s.cancel(id));
        assert_eq!(s.outstanding_requests(), 0);
        assert_eq!(s.pending_requests(), 0);
        assert!(!s.cancel(id), "cancel consumes the id");
        assert!(s.receive(id).is_none());
        assert!(s.wait_receive(id).is_err(), "canceled ids are unknown");
        // Later requests are unaffected.
        let id2 = s.request(8).unwrap();
        assert_eq!(s.wait_receive(id2).unwrap().len(), 8);
    }

    #[test]
    fn cancel_drops_a_ready_request() {
        let s = small_prng_service();
        let id = s.request(16).unwrap();
        s.process().unwrap();
        assert!(s.cancel(id));
        assert!(s.receive(id).is_none(), "ready bytes were dropped");
        assert_eq!(s.outstanding_requests(), 0);
    }

    /// A healthy source that takes real time per batch, so timed waits
    /// engage deterministically.
    #[derive(Debug)]
    struct SlowSource {
        state: u64,
        delay: Duration,
    }

    impl HarvestSource for SlowSource {
        fn harvest_batch(&mut self) -> Result<BitBlock> {
            std::thread::sleep(self.delay);
            Ok((0..1024)
                .map(|_| {
                    self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                    let mut z = self.state;
                    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                    (z ^ (z >> 31)) & 1 == 1
                })
                .collect())
        }
    }

    #[test]
    fn wait_receive_timeout_expires_then_the_request_survives() {
        let s = RandomnessService::with_sources(
            vec![SlowSource {
                state: 3,
                delay: Duration::from_millis(100),
            }],
            ServiceConfig {
                queue_capacity: 2048,
                low_watermark: 256,
                ..Default::default()
            },
        )
        .unwrap();
        let id = s.request(16).unwrap();
        // Far shorter than the first batch's harvest delay.
        let out = s
            .wait_receive_timeout(id, Duration::from_millis(5))
            .unwrap();
        assert_eq!(out, None, "timed out before any bits arrived");
        assert_eq!(s.outstanding_requests(), 1, "the request is not lost");
        // The untimed wait picks the same request back up and serves it.
        assert_eq!(s.wait_receive(id).unwrap().len(), 16);
        assert_eq!(s.outstanding_requests(), 0);
    }

    #[test]
    fn canceled_in_flight_request_completes_into_the_void() {
        let s = std::sync::Arc::new(
            RandomnessService::with_sources(
                vec![SlowSource {
                    state: 5,
                    delay: Duration::from_millis(50),
                }],
                ServiceConfig {
                    queue_capacity: 2048,
                    low_watermark: 256,
                    ..Default::default()
                },
            )
            .unwrap(),
        );
        let id = s.request(16).unwrap();
        let worker = std::thread::spawn({
            let s = std::sync::Arc::clone(&s);
            move || s.process()
        });
        // Cancel while the processor is (most likely) blocked in the
        // engine fetching this id's bytes. Whichever side wins the
        // race, the invariant is the same: nothing is delivered and no
        // id leaks.
        std::thread::sleep(Duration::from_millis(10));
        assert!(s.cancel(id));
        worker.join().unwrap().unwrap();
        assert!(s.receive(id).is_none());
        assert_eq!(s.outstanding_requests(), 0);
        assert_eq!(s.pending_requests(), 0);
    }
}
