//! # drange-core — D-RaNGe: DRAM-based true random number generation
//!
//! Reproduction of the mechanism of *"D-RaNGe: Using Commodity DRAM
//! Devices to Generate True Random Numbers with Low Latency and High
//! Throughput"* (Kim et al., HPCA 2019) on the [`dram_sim`] /
//! [`memctrl`] substrate.
//!
//! The pipeline has three stages:
//!
//! 1. **Profile** ([`Profiler`], Algorithm 1): scan a DRAM region with
//!    a reduced `tRCD` to measure each cell's activation-failure
//!    probability.
//! 2. **Identify** ([`RngCellCatalog`], Section 6.1): read candidate
//!    cells ~1000 times and keep those whose output has uniform 3-bit
//!    symbol statistics (±10 %) — the RNG cells.
//! 3. **Sample** ([`DRange`], Algorithm 2): continuously harvest the
//!    RNG cells of the two densest words per bank, restoring data after
//!    every read. [`DRange`] implements [`rand::RngCore`].
//!
//! Supporting modules provide the throughput model of Equation (1)
//! ([`throughput`]), the 64-bit latency analysis ([`latency`]), entropy
//! estimators ([`entropy`]), the data-pattern-dependence study
//! ([`dpd`]), and a von Neumann post-processor ([`postprocess`]).
//!
//! For serving many client threads, the [`engine`] module runs one
//! sampling loop per simulated channel on its own worker thread behind
//! a watermarked, health-screened bit pool ([`HarvestEngine`]), and
//! [`RandomnessService`] layers the firmware REQUEST/RECEIVE interface
//! of Section 6.3 on top of it. The [`drbg`] module adds the
//! cryptographic conditioning tier: per-shard ChaCha20 DRBGs
//! continuously reseeded from the screened pool with entropy-credit
//! accounting, serving the `fast` QoS tier at rates decoupled from
//! harvest throughput (DESIGN.md §5k).
//!
//! ## Example
//!
//! ```rust,no_run
//! use dram_sim::{DeviceConfig, Manufacturer};
//! use memctrl::MemoryController;
//! use drange_core::{DRange, DRangeConfig, IdentifySpec, ProfileSpec, Profiler, RngCellCatalog};
//!
//! # fn main() -> drange_core::Result<()> {
//! let mut ctrl = MemoryController::from_config(
//!     DeviceConfig::new(Manufacturer::A).with_seed(1),
//! );
//! let profile = Profiler::new(&mut ctrl).run(ProfileSpec::default())?;
//! let catalog = RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default())?;
//! let mut trng = DRange::new(ctrl, &catalog, DRangeConfig::default())?;
//! let random = trng.next_word()?;
//! # let _ = random;
//! # Ok(())
//! # }
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod bits;
pub mod calibrate;
pub mod channel;
pub mod dpd;
pub mod drbg;
pub mod engine;
pub mod entropy;
pub mod error;
pub mod estimators;
pub mod health;
pub mod identify;
pub mod latency;
pub mod lifecycle;
pub mod postprocess;
pub mod profiler;
pub mod puf;
pub mod sampler;
pub mod service;
pub mod spatial;
pub mod stream;
pub mod sync;
pub mod throughput;

pub use bits::{BitBlock, BitQueue};
pub use channel::{BatchChannel, ShardedChannel, TryRecv};
pub use drange_telemetry as telemetry;
pub use drbg::{CreditLedger, DrbgConfig, DrbgFarm, DrbgStats, SeedSource};
pub use engine::{
    channel_sources, channel_sources_with_telemetry, resilient_channel_sources, EngineConfig,
    EngineStats, HarvestEngine, HarvestSource, WorkerStats,
};
pub use error::{DrangeError, Result};
pub use health::{HealthMonitor, TripCounts};
pub use identify::{CatalogSet, IdentifySpec, RngCellCatalog};
pub use latency::LatencyScenario;
pub use lifecycle::{LifecycleConfig, LifecycleStats, ResilientDRange};
pub use postprocess::VonNeumann;
pub use profiler::{FailureProfile, ProfileSpec, Profiler};
pub use sampler::{DRange, DRangeConfig, SampleStats};
pub use service::{RandomnessService, RequestId, ServiceConfig};
pub use stream::{DRangeReader, EngineReader};
