//! Online health tests in the style of NIST SP 800-90B §4.4 —
//! continuous monitoring a production integration of D-RaNGe would run
//! in the memory controller firmware (the paper's Section 6.3 design
//! leaves room for exactly this between the sampling loop and the
//! request queue).
//!
//! * **Repetition count test**: detects a stuck source by counting
//!   consecutive identical samples.
//! * **Adaptive proportion test**: detects loss of entropy by counting
//!   occurrences of a sample value within a sliding window.

/// Cutoff calculator: for min-entropy `h` bits/sample and false-positive
/// probability `2^-w`, the repetition-count cutoff is `1 + ceil(w / h)`.
fn repetition_cutoff(h: f64, w: f64) -> u32 {
    1 + (w / h).ceil() as u32
}

/// Repetition count test (SP 800-90B §4.4.1) for a binary source.
#[derive(Debug, Clone)]
pub struct RepetitionCountTest {
    cutoff: u32,
    last: Option<bool>,
    run: u32,
    failures: u64,
    samples: u64,
}

impl RepetitionCountTest {
    /// A test for a source claiming `min_entropy` bits/sample with a
    /// false-positive probability of 2⁻²⁰ (the 800-90B default).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_entropy <= 1`.
    pub fn new(min_entropy: f64) -> Self {
        assert!(
            min_entropy > 0.0 && min_entropy <= 1.0,
            "binary min-entropy must be in (0,1], got {min_entropy}"
        );
        RepetitionCountTest {
            cutoff: repetition_cutoff(min_entropy, 20.0),
            last: None,
            run: 0,
            failures: 0,
            samples: 0,
        }
    }

    /// The cutoff in effect.
    pub fn cutoff(&self) -> u32 {
        self.cutoff
    }

    /// Feeds a sample; returns `false` if the health test fires.
    pub fn feed(&mut self, bit: bool) -> bool {
        self.samples += 1;
        if self.last == Some(bit) {
            self.run += 1;
        } else {
            self.last = Some(bit);
            self.run = 1;
        }
        if self.run >= self.cutoff {
            self.failures += 1;
            // Reset so a long stuck period fires repeatedly rather than
            // once.
            self.run = 0;
            self.last = None;
            false
        } else {
            true
        }
    }

    /// Number of times the test has fired.
    pub fn failures(&self) -> u64 {
        self.failures
    }

    /// Samples consumed.
    pub fn samples(&self) -> u64 {
        self.samples
    }
}

/// Adaptive proportion test (SP 800-90B §4.4.2) for a binary source
/// with window 1024 and the standard cutoff for full-entropy claims.
#[derive(Debug, Clone)]
pub struct AdaptiveProportionTest {
    window: usize,
    cutoff: usize,
    reference: Option<bool>,
    count: usize,
    seen: usize,
    failures: u64,
}

impl AdaptiveProportionTest {
    /// Window size used by the standard (1024 for binary sources).
    pub const WINDOW: usize = 1024;

    /// A test with the SP 800-90B binary-source parameters: the first
    /// sample of each window is the reference; if it recurs more than
    /// `cutoff` times in the window the test fires. For min-entropy `h`
    /// the cutoff is the 2⁻²⁰ binomial tail of p = 2^(−h).
    ///
    /// # Panics
    ///
    /// Panics unless `0 < min_entropy <= 1`.
    pub fn new(min_entropy: f64) -> Self {
        assert!(min_entropy > 0.0 && min_entropy <= 1.0);
        // Binomial tail bound: mean + 5.2 sigma approximates the 2^-20
        // quantile closely enough for monitoring purposes.
        let p = 2f64.powf(-min_entropy);
        let mean = p * Self::WINDOW as f64;
        let sd = (Self::WINDOW as f64 * p * (1.0 - p)).sqrt();
        let cutoff = (mean + 5.2 * sd).ceil() as usize;
        AdaptiveProportionTest {
            window: Self::WINDOW,
            cutoff: cutoff.min(Self::WINDOW),
            reference: None,
            count: 0,
            seen: 0,
            failures: 0,
        }
    }

    /// The cutoff in effect.
    pub fn cutoff(&self) -> usize {
        self.cutoff
    }

    /// Feeds a sample; returns `false` if the health test fires.
    pub fn feed(&mut self, bit: bool) -> bool {
        match self.reference {
            None => {
                self.reference = Some(bit);
                self.count = 1;
                self.seen = 1;
                true
            }
            Some(r) => {
                self.seen += 1;
                if bit == r {
                    self.count += 1;
                }
                let fired = self.count > self.cutoff;
                if fired {
                    self.failures += 1;
                }
                if self.seen >= self.window || fired {
                    self.reference = None;
                }
                !fired
            }
        }
    }

    /// Number of times the test has fired.
    pub fn failures(&self) -> u64 {
        self.failures
    }
}

/// Per-test breakdown of health-test firings, so a tripping source can
/// be diagnosed: a rising repetition count points at a stuck cell, a
/// rising adaptive proportion at bias/entropy loss.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TripCounts {
    /// Repetition count test (SP 800-90B §4.4.1) firings.
    pub repetition: u64,
    /// Adaptive proportion test (SP 800-90B §4.4.2) firings.
    pub adaptive: u64,
}

impl TripCounts {
    /// Firings across both tests.
    pub fn total(&self) -> u64 {
        self.repetition + self.adaptive
    }
}

impl std::ops::Sub for TripCounts {
    type Output = TripCounts;

    fn sub(self, rhs: TripCounts) -> TripCounts {
        TripCounts {
            repetition: self.repetition - rhs.repetition,
            adaptive: self.adaptive - rhs.adaptive,
        }
    }
}

/// Both continuous health tests bundled, as firmware would run them.
#[derive(Debug, Clone)]
pub struct HealthMonitor {
    rct: RepetitionCountTest,
    apt: AdaptiveProportionTest,
}

impl HealthMonitor {
    /// A monitor for a source claiming `min_entropy` bits/sample.
    pub fn new(min_entropy: f64) -> Self {
        HealthMonitor {
            rct: RepetitionCountTest::new(min_entropy),
            apt: AdaptiveProportionTest::new(min_entropy),
        }
    }

    /// Feeds one bit to both tests; `false` when either fires.
    pub fn feed(&mut self, bit: bool) -> bool {
        let a = self.rct.feed(bit);
        let b = self.apt.feed(bit);
        a && b
    }

    /// Feeds a slice and returns how many health failures occurred.
    pub fn feed_all(&mut self, bits: &[bool]) -> u64 {
        self.feed_all_counted(bits).total()
    }

    /// Feeds a slice and returns the per-test breakdown of the health
    /// failures it caused.
    pub fn feed_all_counted(&mut self, bits: &[bool]) -> TripCounts {
        self.feed_bits(bits.iter().copied())
    }

    /// Feeds every bit of an iterator (e.g. a packed
    /// [`crate::bits::BitBlock`]'s bits, without unpacking to a slice
    /// first) and returns the per-test breakdown of the health failures
    /// it caused.
    pub fn feed_bits(&mut self, bits: impl Iterator<Item = bool>) -> TripCounts {
        let before = self.trip_counts();
        for b in bits {
            let _ = self.feed(b);
        }
        self.trip_counts() - before
    }

    /// Total failures across both tests.
    pub fn failures(&self) -> u64 {
        self.rct.failures() + self.apt.failures()
    }

    /// Repetition-count-test failures alone.
    pub fn repetition_failures(&self) -> u64 {
        self.rct.failures()
    }

    /// Adaptive-proportion-test failures alone.
    pub fn adaptive_failures(&self) -> u64 {
        self.apt.failures()
    }

    /// Cumulative per-test failure breakdown.
    pub fn trip_counts(&self) -> TripCounts {
        TripCounts {
            repetition: self.rct.failures(),
            adaptive: self.apt.failures(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn random_bits(n: usize, mut seed: u64) -> Vec<bool> {
        (0..n)
            .map(|_| {
                seed = seed.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = seed;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                (z ^ (z >> 31)) & 1 == 1
            })
            .collect()
    }

    #[test]
    fn cutoff_formula() {
        // Full entropy: cutoff 21 (1 + 20/1).
        assert_eq!(RepetitionCountTest::new(1.0).cutoff(), 21);
        // Half entropy: cutoff 41.
        assert_eq!(RepetitionCountTest::new(0.5).cutoff(), 41);
    }

    #[test]
    fn healthy_source_rarely_fires() {
        let mut m = HealthMonitor::new(0.95);
        let fails = m.feed_all(&random_bits(200_000, 7));
        assert_eq!(fails, 0, "an ideal source must not trip health tests");
    }

    #[test]
    fn stuck_source_fires_repetition_count() {
        let mut rct = RepetitionCountTest::new(1.0);
        let mut fired = false;
        for _ in 0..100 {
            fired |= !rct.feed(true);
        }
        assert!(fired);
        assert!(rct.failures() >= 1);
    }

    #[test]
    fn biased_source_fires_adaptive_proportion() {
        // 95% ones: the window count blows past the full-entropy cutoff.
        let bits: Vec<bool> = (0..50_000).map(|i| i % 20 != 0).collect();
        let mut apt = AdaptiveProportionTest::new(0.95);
        let mut fails = 0u64;
        for b in bits {
            if !apt.feed(b) {
                fails += 1;
            }
        }
        assert!(fails > 0, "strong bias must be detected");
    }

    #[test]
    fn alternating_source_passes_rct_but_is_not_stuck() {
        // 0101... never repeats, so RCT never fires (APT's reference
        // value occurs in exactly half the window: also no fire).
        let mut m = HealthMonitor::new(1.0);
        let bits: Vec<bool> = (0..10_000).map(|i| i % 2 == 0).collect();
        assert_eq!(m.feed_all(&bits), 0);
    }

    #[test]
    fn monitor_counts_are_additive() {
        let mut m = HealthMonitor::new(1.0);
        let _ = m.feed_all(&vec![true; 1000]);
        assert!(m.failures() > 0);
    }

    #[test]
    fn stuck_source_trips_split_by_test() {
        // An all-one stream fires both tests; the split must attribute
        // each firing to its test and sum back to the lump total.
        let mut m = HealthMonitor::new(1.0);
        let trips = m.feed_all_counted(&vec![true; 5000]);
        assert!(trips.repetition > 0, "stuck stream must fire the RCT");
        assert!(trips.adaptive > 0, "all-one windows must fire the APT");
        assert_eq!(trips.total(), m.failures());
        assert_eq!(m.repetition_failures(), trips.repetition);
        assert_eq!(m.adaptive_failures(), trips.adaptive);
        assert_eq!(m.trip_counts(), trips);
    }

    #[test]
    fn biased_source_trips_mostly_adaptive() {
        // 90% ones with period-10 breaks: runs stay below the RCT
        // cutoff (21) but the APT window count blows past its cutoff,
        // so the breakdown isolates the bias signal.
        let bits: Vec<bool> = (0..50_000).map(|i| i % 10 != 0).collect();
        let mut m = HealthMonitor::new(1.0);
        let trips = m.feed_all_counted(&bits);
        assert_eq!(trips.repetition, 0, "no run reaches the RCT cutoff");
        assert!(trips.adaptive > 0, "bias must fire the APT");
    }

    #[test]
    fn feed_all_matches_counted_total() {
        let bits: Vec<bool> = (0..2000).map(|i| i % 40 < 39).collect();
        let mut a = HealthMonitor::new(0.95);
        let mut b = HealthMonitor::new(0.95);
        assert_eq!(a.feed_all(&bits), b.feed_all_counted(&bits).total());
    }

    #[test]
    #[should_panic]
    fn zero_entropy_rejected() {
        let _ = RepetitionCountTest::new(0.0);
    }
}
