//! Entropy estimators used for RNG-cell qualification and reporting.
//!
//! The paper approximates per-cell Shannon entropy by counting 3-bit
//! symbols over a 1000-bit sample stream (Section 6.1), and reports the
//! minimum binary Shannon entropy across RNG cells (0.9507 in Section
//! 7.1).

/// Binary Shannon entropy of a one-probability `p`, in bits.
///
/// `H(p) = -p log2 p - (1-p) log2 (1-p)`; 0 at p ∈ {0, 1}, 1 at p = 1/2.
///
/// # Panics
///
/// Panics if `p` is outside `[0, 1]`.
pub fn binary_entropy(p: f64) -> f64 {
    assert!((0.0..=1.0).contains(&p), "probability {p} outside [0,1]");
    if p == 0.0 || p == 1.0 {
        return 0.0;
    }
    -p * p.log2() - (1.0 - p) * (1.0 - p).log2()
}

/// Shannon entropy (bits per symbol) of a discrete distribution given by
/// counts; zero-count symbols contribute nothing.
pub fn entropy_from_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return 0.0;
    }
    counts
        .iter()
        .filter(|&&c| c > 0)
        .map(|&c| {
            let p = c as f64 / total as f64;
            -p * p.log2()
        })
        .sum()
}

/// Min-entropy (bits per symbol) of a distribution given by counts:
/// `-log2 max_i p_i`.
pub fn min_entropy_from_counts(counts: &[u64]) -> f64 {
    let total: u64 = counts.iter().sum();
    let max = counts.iter().copied().max().unwrap_or(0);
    if total == 0 || max == 0 {
        return 0.0;
    }
    -((max as f64 / total as f64).log2())
}

/// Counts non-overlapping `symbol_bits`-bit symbols in a bit stream.
///
/// Trailing bits that do not fill a symbol are dropped.
///
/// # Panics
///
/// Panics if `symbol_bits` is 0 or greater than 16.
pub fn symbol_counts(stream: &[bool], symbol_bits: usize) -> Vec<u64> {
    assert!(
        symbol_bits >= 1 && symbol_bits <= 16,
        "symbol_bits must be 1..=16"
    );
    let mut counts = vec![0u64; 1usize << symbol_bits];
    for chunk in stream.chunks_exact(symbol_bits) {
        let mut v = 0usize;
        for &b in chunk {
            v = (v << 1) | usize::from(b);
        }
        counts[v] += 1;
    }
    counts
}

/// Counts *overlapping* `symbol_bits`-bit symbols (a sliding window),
/// giving `len - symbol_bits + 1` samples — the counting convention of
/// the RNG-cell identification step: with only 1000 reads per cell, the
/// sliding window extracts enough symbol samples for the ±10 %
/// criterion to have reasonable statistical power.
///
/// # Panics
///
/// Panics if `symbol_bits` is 0 or greater than 16.
pub fn symbol_counts_overlapping(stream: &[bool], symbol_bits: usize) -> Vec<u64> {
    assert!(
        symbol_bits >= 1 && symbol_bits <= 16,
        "symbol_bits must be 1..=16"
    );
    let mut counts = vec![0u64; 1usize << symbol_bits];
    if stream.len() < symbol_bits {
        return counts;
    }
    let mask = (1usize << symbol_bits) - 1;
    let mut window = 0usize;
    for &b in &stream[..symbol_bits] {
        window = (window << 1) | usize::from(b);
    }
    counts[window] += 1;
    for &b in &stream[symbol_bits..] {
        window = ((window << 1) | usize::from(b)) & mask;
        counts[window] += 1;
    }
    counts
}

/// The paper's RNG-cell criterion (Section 6.1): every possible
/// `symbol_bits`-bit symbol occurs within `tolerance` (relative) of the
/// expected uniform count, over a sliding window.
pub fn symbols_uniform(stream: &[bool], symbol_bits: usize, tolerance: f64) -> bool {
    let counts = symbol_counts_overlapping(stream, symbol_bits);
    let total: u64 = counts.iter().sum();
    if total == 0 {
        return false;
    }
    let expected = total as f64 / counts.len() as f64;
    counts
        .iter()
        .all(|&c| (c as f64 - expected).abs() <= tolerance * expected)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn binary_entropy_extremes() {
        assert_eq!(binary_entropy(0.0), 0.0);
        assert_eq!(binary_entropy(1.0), 0.0);
        assert!((binary_entropy(0.5) - 1.0).abs() < 1e-15);
        // Symmetry.
        assert!((binary_entropy(0.3) - binary_entropy(0.7)).abs() < 1e-15);
    }

    #[test]
    fn paper_min_entropy_value() {
        // Section 7.1: minimum entropy 0.9507 corresponds to a bias of
        // about 0.63/0.37.
        let h = binary_entropy(0.633);
        assert!((h - 0.9507).abs() < 5e-3, "H = {h}");
    }

    #[test]
    fn entropy_from_counts_uniform_is_log2_n() {
        assert!((entropy_from_counts(&[5, 5, 5, 5]) - 2.0).abs() < 1e-12);
        assert_eq!(entropy_from_counts(&[7, 0, 0, 0]), 0.0);
        assert_eq!(entropy_from_counts(&[]), 0.0);
    }

    #[test]
    fn min_entropy_bounds_shannon() {
        let counts = [10, 20, 30, 40];
        assert!(min_entropy_from_counts(&counts) <= entropy_from_counts(&counts));
        assert_eq!(min_entropy_from_counts(&[0, 0]), 0.0);
    }

    #[test]
    fn symbol_counts_basic() {
        // Stream 011 010 1(dropped): symbols 3 and 2.
        let stream = [false, true, true, false, true, false, true];
        let c = symbol_counts(&stream, 3);
        assert_eq!(c.iter().sum::<u64>(), 2);
        assert_eq!(c[0b011], 1);
        assert_eq!(c[0b010], 1);
    }

    #[test]
    fn overlapping_counts_slide_by_one() {
        // Stream 0110: windows 011, 110.
        let stream = [false, true, true, false];
        let c = symbol_counts_overlapping(&stream, 3);
        assert_eq!(c.iter().sum::<u64>(), 2);
        assert_eq!(c[0b011], 1);
        assert_eq!(c[0b110], 1);
        // Shorter than the window: zero symbols.
        assert_eq!(symbol_counts_overlapping(&[true], 3).iter().sum::<u64>(), 0);
    }

    #[test]
    fn uniform_symbols_accept_good_random_stream() {
        // SplitMix64-derived bits: i.i.d.-quality randomness.
        let mut state = 0xABCD_1234u64;
        let mut next = || {
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            (z ^ (z >> 31)) & 1 == 1
        };
        // The criterion is a harsh filter; over several seeds, a clear
        // majority of ideal streams of 4000 bits should qualify.
        let mut passed = 0;
        for _ in 0..10 {
            let stream: Vec<bool> = (0..4000).map(|_| next()).collect();
            if symbols_uniform(&stream, 3, 0.10) {
                passed += 1;
            }
        }
        assert!(passed >= 5, "only {passed}/10 ideal streams passed");
    }

    #[test]
    fn uniform_symbols_reject_constant_stream() {
        let stream = vec![true; 999];
        assert!(!symbols_uniform(&stream, 3, 0.10));
        assert!(!symbols_uniform(&[], 3, 0.10));
    }

    #[test]
    fn uniform_symbols_reject_biased_stream() {
        // 70% ones i.i.d.-ish via a fixed pattern of 7 ones / 3 zeros.
        let stream: Vec<bool> = (0..990).map(|i| i % 10 < 7).collect();
        assert!(!symbols_uniform(&stream, 3, 0.10));
    }

    #[test]
    #[should_panic(expected = "symbol_bits")]
    fn bad_symbol_bits_panics() {
        let _ = symbol_counts(&[true], 0);
    }
}
