//! Stream adapters: consume the generator through standard interfaces.
//!
//! [`DRange`] already implements `rand::RngCore`; this module adds
//! [`std::io::Read`] adapters (so the TRNG can back anything that reads
//! bytes — `io::copy`, buffered readers, encoders) and an infinite
//! byte iterator. [`EngineReader`] is the multi-channel counterpart:
//! it drains a shared [`HarvestEngine`], so the bytes come from all
//! worker channels with harvesting overlapped across reads.

use std::io::{self, Read};

use drange_telemetry::{Histogram, MetricsRegistry};

use crate::engine::HarvestEngine;
use crate::sampler::DRange;

/// A [`Read`] adapter over a [`DRange`] generator.
///
/// Every `read` fills the whole buffer with fresh random bytes;
/// the stream never reaches EOF.
#[derive(Debug)]
pub struct DRangeReader {
    trng: DRange,
}

impl DRangeReader {
    /// Wraps a generator.
    pub fn new(trng: DRange) -> Self {
        DRangeReader { trng }
    }

    /// Returns the wrapped generator.
    pub fn into_inner(self) -> DRange {
        self.trng
    }

    /// Borrow of the wrapped generator (stats access).
    pub fn get_ref(&self) -> &DRange {
        &self.trng
    }
}

impl Read for DRangeReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        self.trng
            .try_fill(buf)
            .map_err(|e| io::Error::new(io::ErrorKind::Other, e))?;
        Ok(buf.len())
    }
}

/// A [`Read`] adapter over a [`HarvestEngine`].
///
/// Blocks until the engine's workers have screened enough bits, then
/// fills the whole buffer; oversized reads are served in pool-capacity
/// chunks. The stream never reaches EOF, but a read fails once the
/// engine has stopped (all workers retired).
#[derive(Debug)]
pub struct EngineReader {
    engine: HarvestEngine,
    read_ns: Histogram,
}

impl EngineReader {
    /// Wraps an engine (reads are not instrumented).
    pub fn new(engine: HarvestEngine) -> Self {
        EngineReader {
            engine,
            read_ns: Histogram::noop(),
        }
    }

    /// Wraps an engine and records whole-`read` latency into the
    /// `drange_reader_read_latency_ns` histogram of `registry`.
    pub fn with_telemetry(engine: HarvestEngine, registry: &MetricsRegistry) -> Self {
        EngineReader {
            engine,
            read_ns: registry.histogram("drange_reader_read_latency_ns", &[]),
        }
    }

    /// Returns the wrapped engine.
    pub fn into_inner(self) -> HarvestEngine {
        self.engine
    }

    /// Borrow of the wrapped engine (stats access).
    pub fn get_ref(&self) -> &HarvestEngine {
        &self.engine
    }
}

impl Read for EngineReader {
    fn read(&mut self, buf: &mut [u8]) -> io::Result<usize> {
        let t0 = self.read_ns.start();
        let max_chunk = (self.engine.config().queue_capacity / 8).max(1);
        let mut filled = 0usize;
        while filled < buf.len() {
            let n = (buf.len() - filled).min(max_chunk);
            let bytes = self
                .engine
                .take_bytes(n)
                .map_err(|e| io::Error::new(io::ErrorKind::Other, e))?;
            buf[filled..filled + n].copy_from_slice(&bytes);
            filled += n;
        }
        self.read_ns.observe_since(t0);
        Ok(filled)
    }
}

/// An iterator of random bytes, unbounded while the device is
/// healthy.
///
/// Created by [`bytes`]; ends (`None`) on a device error (use
/// [`DRange::try_fill`] to observe the cause).
#[derive(Debug)]
pub struct Bytes {
    trng: DRange,
}

impl Iterator for Bytes {
    type Item = u8;

    fn next(&mut self) -> Option<u8> {
        let mut b = [0u8; 1];
        // The stream ends if the device fails — iterators cannot
        // surface errors, and callers needing the cause should use
        // `DRange::try_fill` directly.
        self.trng.try_fill(&mut b).ok()?;
        Some(b[0])
    }
}

/// An infinite random-byte iterator over a generator.
pub fn bytes(trng: DRange) -> Bytes {
    Bytes { trng }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::identify::{IdentifySpec, RngCellCatalog};
    use crate::profiler::{ProfileSpec, Profiler};
    use crate::sampler::DRangeConfig;
    use dram_sim::{DeviceConfig, Manufacturer};
    use memctrl::MemoryController;

    fn trng() -> DRange {
        let mut ctrl = MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(42)
                .with_noise_seed(4243),
        );
        let profile = Profiler::new(&mut ctrl)
            .run(
                ProfileSpec {
                    banks: (0..8).collect(),
                    rows: 0..128,
                    cols: 0..16,
                    ..ProfileSpec::default()
                }
                .with_iterations(25),
            )
            .unwrap();
        let catalog =
            RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default()).unwrap();
        DRange::new(ctrl, &catalog, DRangeConfig::default()).unwrap()
    }

    #[test]
    fn reader_fills_buffers_of_any_size() {
        let mut r = DRangeReader::new(trng());
        let mut small = [0u8; 3];
        assert_eq!(r.read(&mut small).unwrap(), 3);
        let mut large = vec![0u8; 4096];
        assert_eq!(r.read(&mut large).unwrap(), 4096);
        let distinct: std::collections::HashSet<u8> = large.iter().copied().collect();
        assert!(
            distinct.len() > 100,
            "4 KiB of random bytes covers most values"
        );
    }

    #[test]
    fn reader_works_with_io_copy() {
        let r = DRangeReader::new(trng());
        let mut sink = Vec::new();
        std::io::copy(&mut r.take(1024), &mut sink).unwrap();
        assert_eq!(sink.len(), 1024);
    }

    #[test]
    fn reader_round_trips_inner() {
        let r = DRangeReader::new(trng());
        assert_eq!(r.get_ref().stats().bits, 0);
        let inner = r.into_inner();
        assert_eq!(inner.stats().bits, 0);
    }

    #[test]
    fn engine_reader_spans_multiple_pool_refills() {
        use crate::engine::{EngineConfig, HarvestEngine};

        let config = EngineConfig {
            queue_capacity: 1 << 10,
            low_watermark: 1 << 6,
            high_watermark: 1 << 9,
            ..EngineConfig::default()
        };
        let engine = HarvestEngine::spawn(vec![trng()], config).unwrap();
        let mut r = EngineReader::new(engine);
        // 1 KiB = 8192 bits, far beyond the 1024-bit pool: the read is
        // served in chunks across several refills.
        let mut buf = vec![0u8; 1024];
        assert_eq!(r.read(&mut buf).unwrap(), 1024);
        let distinct: std::collections::HashSet<u8> = buf.iter().copied().collect();
        assert!(
            distinct.len() > 100,
            "1 KiB of random bytes covers most values"
        );
        let stats = r.into_inner().shutdown();
        assert_eq!(stats.served_bits, 8192);
    }

    #[test]
    fn engine_reader_records_read_latency() {
        use crate::engine::{EngineConfig, HarvestEngine, HarvestSource};
        use crate::error::Result;

        #[derive(Debug)]
        struct PrngSource {
            state: u64,
        }
        impl HarvestSource for PrngSource {
            fn harvest_batch(&mut self) -> Result<crate::bits::BitBlock> {
                Ok((0..128)
                    .map(|_| {
                        self.state = self.state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                        let mut z = self.state;
                        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                        (z ^ (z >> 31)) & 1 == 1
                    })
                    .collect())
            }
        }

        let registry = MetricsRegistry::new();
        let config = EngineConfig {
            queue_capacity: 1 << 12,
            low_watermark: 1 << 8,
            high_watermark: 1 << 11,
            ..EngineConfig::default()
        };
        let engine = HarvestEngine::spawn_with_telemetry(
            vec![PrngSource { state: 77 }],
            config,
            Some(&registry),
        )
        .unwrap();
        let mut r = EngineReader::with_telemetry(engine, &registry);
        let mut buf = vec![0u8; 64];
        r.read_exact(&mut buf).unwrap();
        r.read_exact(&mut buf).unwrap();
        let text = registry.render_prometheus();
        assert!(
            text.contains("drange_reader_read_latency_ns_count 2"),
            "{text}"
        );
        r.into_inner().shutdown();
    }

    #[test]
    fn byte_iterator_streams() {
        let mut it = bytes(trng());
        let first: Vec<u8> = it.by_ref().take(64).collect();
        let second: Vec<u8> = it.take(64).collect();
        assert_eq!(first.len(), 64);
        assert_ne!(first, second, "consecutive draws differ");
    }
}
