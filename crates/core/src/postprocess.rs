//! Post-processing (de-biasing) stages.
//!
//! The paper finds RNG cells need no post-processing (Section 6.1), but
//! describes the standard stages (Section 2.2) and quantifies their
//! throughput cost ("up to 80 %"); this module provides the von Neumann
//! corrector so the ablation bench can measure that trade-off.

/// Von Neumann corrector: consumes bit pairs, emits the first bit of
/// each discordant pair, drops concordant pairs.
///
/// Output of a (possibly biased) i.i.d. source is exactly unbiased, at
/// the cost of a data-dependent rate of `p(1-p) ≤ 1/4` output bits per
/// input bit.
#[derive(Debug, Clone, Default)]
pub struct VonNeumann {
    pending: Option<bool>,
    consumed: u64,
    emitted: u64,
}

impl VonNeumann {
    /// A fresh corrector.
    pub fn new() -> Self {
        VonNeumann::default()
    }

    /// Feeds one input bit; returns an output bit when a discordant
    /// pair completes.
    pub fn push(&mut self, bit: bool) -> Option<bool> {
        self.consumed += 1;
        match self.pending.take() {
            None => {
                self.pending = Some(bit);
                None
            }
            Some(first) => {
                if first != bit {
                    self.emitted += 1;
                    Some(first)
                } else {
                    None
                }
            }
        }
    }

    /// Corrects a whole slice, returning the surviving bits.
    pub fn correct(&mut self, input: &[bool]) -> Vec<bool> {
        input.iter().filter_map(|&b| self.push(b)).collect()
    }

    /// Input bits consumed so far.
    pub fn consumed(&self) -> u64 {
        self.consumed
    }

    /// Output bits emitted so far.
    pub fn emitted(&self) -> u64 {
        self.emitted
    }

    /// Observed throughput ratio `emitted / consumed` (0 when nothing
    /// has been consumed).
    pub fn efficiency(&self) -> f64 {
        if self.consumed == 0 {
            0.0
        } else {
            self.emitted as f64 / self.consumed as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn discordant_pairs_emit_first_bit() {
        let mut vn = VonNeumann::new();
        // Pairs: (1,0) -> 1, (0,1) -> 0, (1,1) -> none, (0,0) -> none.
        let out = vn.correct(&[true, false, false, true, true, true, false, false]);
        assert_eq!(out, vec![true, false]);
        assert_eq!(vn.consumed(), 8);
        assert_eq!(vn.emitted(), 2);
        assert!((vn.efficiency() - 0.25).abs() < 1e-12);
    }

    #[test]
    fn unpaired_trailing_bit_is_held() {
        let mut vn = VonNeumann::new();
        assert_eq!(vn.push(true), None);
        // Completing the pair later emits.
        assert_eq!(vn.push(false), Some(true));
    }

    #[test]
    fn output_of_biased_source_is_unbiased() {
        // Deterministic biased source: 3 ones, 1 zero, repeating, but
        // de-correlated by position mixing so pairs vary.
        let mut state = 0x1234_5678u64;
        let input: Vec<bool> = (0..200_000)
            .map(|_| {
                state = state
                    .wrapping_mul(6364136223846793005)
                    .wrapping_add(1442695040888963407);
                // ~75% ones.
                (state >> 33) % 4 != 0
            })
            .collect();
        let mut vn = VonNeumann::new();
        let out = vn.correct(&input);
        let ones = out.iter().filter(|&&b| b).count() as f64 / out.len() as f64;
        assert!((ones - 0.5).abs() < 0.01, "ones fraction {ones}");
        // Efficiency ~ p(1-p) = 0.1875.
        assert!((vn.efficiency() - 0.1875).abs() < 0.01);
    }

    #[test]
    fn constant_input_emits_nothing() {
        let mut vn = VonNeumann::new();
        assert!(vn.correct(&[true; 100]).is_empty());
        assert_eq!(vn.efficiency(), 0.0);
        assert_eq!(vn.emitted(), 0);
    }

    #[test]
    fn fresh_corrector_efficiency_zero() {
        assert_eq!(VonNeumann::new().efficiency(), 0.0);
    }
}
