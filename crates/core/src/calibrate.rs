//! Per-device tRCD calibration.
//!
//! The paper finds failures inducible for tRCD between 6 and 13 ns but
//! leaves the choice of *sampling* tRCD to the implementation. The
//! right value differs per chip: too high and few cells fail (low
//! throughput potential); too low and most cells fail deterministically
//! (high failure count but little entropy). This module sweeps tRCD and
//! picks the value that maximizes the number of cells in the
//! 40-60 % F_prob band — the population RNG cells are drawn from.

use memctrl::MemoryController;

use crate::error::{DrangeError, Result};
use crate::profiler::{ProfileSpec, Profiler};

/// One point of a calibration sweep.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CalibrationPoint {
    /// The tested activation latency, ns.
    pub trcd_ns: f64,
    /// Distinct failing cells in the probed region.
    pub failing_cells: usize,
    /// Cells with empirical F_prob in the 40-60 % band.
    pub band_cells: usize,
}

/// Result of a calibration sweep.
#[derive(Debug, Clone)]
pub struct Calibration {
    /// Every swept point, ascending in tRCD.
    pub points: Vec<CalibrationPoint>,
    /// Cells in the probed region (for failure-fraction criteria).
    pub region_cells: usize,
}

impl Calibration {
    /// Maximum tolerable fraction of failing cells for a usable
    /// sampling point: below ~5 ns-equivalent timings *every* cell
    /// fails and reads corrupt whole words; D-RaNGe wants sparse,
    /// localized failures (the paper's 10 ns regime).
    pub const MAX_FAILING_FRACTION: f64 = 0.25;

    /// The tRCD that maximizes the 40-60 % band population among
    /// points whose overall failure fraction stays below
    /// [`Calibration::MAX_FAILING_FRACTION`] (ties go to the larger
    /// tRCD: gentler timing stresses the device less). Falls back to
    /// the global band maximum if no point satisfies the constraint;
    /// `None` when the sweep is empty.
    pub fn best_trcd_ns(&self) -> Option<f64> {
        let limit = (self.region_cells as f64 * Self::MAX_FAILING_FRACTION) as usize;
        let ordering = |a: &&CalibrationPoint, b: &&CalibrationPoint| {
            a.band_cells
                .cmp(&b.band_cells)
                .then(a.trcd_ns.total_cmp(&b.trcd_ns))
        };
        self.points
            .iter()
            .filter(|p| p.failing_cells <= limit)
            .max_by(ordering)
            .or_else(|| self.points.iter().max_by(ordering))
            .map(|p| p.trcd_ns)
    }

    /// The largest swept tRCD at which any failures occur (the top of
    /// the paper's 6-13 ns inducible range for this chip).
    pub fn max_failing_trcd_ns(&self) -> Option<f64> {
        self.points
            .iter()
            .filter(|p| p.failing_cells > 0)
            .map(|p| p.trcd_ns)
            .fold(None, |acc, t| Some(acc.map_or(t, |a: f64| a.max(t))))
    }
}

/// Sweeps tRCD over `trcd_values_ns` using a profiling region and
/// returns the calibration curve.
///
/// # Errors
///
/// Returns [`DrangeError::InvalidSpec`] for an empty sweep and
/// propagates profiling errors.
pub fn sweep(
    ctrl: &mut MemoryController,
    base: &ProfileSpec,
    trcd_values_ns: &[f64],
) -> Result<Calibration> {
    if trcd_values_ns.is_empty() {
        return Err(DrangeError::InvalidSpec("empty tRCD sweep".into()));
    }
    let mut points = Vec::with_capacity(trcd_values_ns.len());
    for &trcd in trcd_values_ns {
        let profile = Profiler::new(ctrl).run(base.clone().with_trcd_ns(trcd))?;
        points.push(CalibrationPoint {
            trcd_ns: trcd,
            failing_cells: profile.unique_failures(),
            band_cells: profile.cells_in_band(0.4, 0.6).len(),
        });
    }
    points.sort_by(|a, b| a.trcd_ns.total_cmp(&b.trcd_ns));
    let region_cells =
        base.banks.len() * base.rows.len() * base.cols.len() * ctrl.device().geometry().word_bits;
    Ok(Calibration {
        points,
        region_cells,
    })
}

/// The default sweep grid: 6 to 13 ns in 1 ns steps (the paper's
/// observed inducible range).
pub fn default_grid() -> Vec<f64> {
    (6..=13).map(|t| t as f64).collect()
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{DeviceConfig, Manufacturer};

    fn ctrl() -> MemoryController {
        MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(99)
                .with_noise_seed(98),
        )
    }

    fn region() -> ProfileSpec {
        ProfileSpec {
            rows: 0..192,
            ..ProfileSpec::default()
        }
        .with_iterations(20)
    }

    #[test]
    fn sweep_produces_sorted_curve() {
        let mut c = ctrl();
        let cal = sweep(&mut c, &region(), &[12.0, 8.0, 10.0]).unwrap();
        let ts: Vec<f64> = cal.points.iter().map(|p| p.trcd_ns).collect();
        assert_eq!(ts, vec![8.0, 10.0, 12.0]);
        // Failures decrease with tRCD.
        assert!(cal.points[0].failing_cells >= cal.points[2].failing_cells);
    }

    #[test]
    fn best_trcd_lands_inside_inducible_range() {
        let mut c = ctrl();
        let cal = sweep(&mut c, &region(), &default_grid()).unwrap();
        let best = cal.best_trcd_ns().expect("nonempty sweep");
        assert!((6.0..=13.0).contains(&best), "best tRCD {best}");
        // It is a point with a nonzero band population and sparse
        // failures (usable for Algorithm 2).
        let point = cal.points.iter().find(|p| p.trcd_ns == best).unwrap();
        assert!(point.band_cells > 0);
        assert!(
            point.failing_cells
                <= (cal.region_cells as f64 * Calibration::MAX_FAILING_FRACTION) as usize,
            "best point must have sparse failures"
        );
    }

    #[test]
    fn max_failing_trcd_matches_guard_band() {
        let mut c = ctrl();
        let cal = sweep(&mut c, &region(), &[12.0, 13.0, 14.0, 15.0]).unwrap();
        // The model's guard band zeroes failures at >= 13.5 ns; at
        // 13 ns failures are real but rare, so a small probed region
        // may legitimately see its last failures at 12 ns.
        let max = cal.max_failing_trcd_ns().expect("failures at 12 ns");
        assert!(
            max == 12.0 || max == 13.0,
            "last failing tRCD {max} must sit at the guard band edge"
        );
        // And the guarded points are exactly zero.
        for p in &cal.points {
            if p.trcd_ns >= 14.0 {
                assert_eq!(p.failing_cells, 0, "no failures at {} ns", p.trcd_ns);
            }
        }
    }

    #[test]
    fn empty_sweep_rejected() {
        let mut c = ctrl();
        assert!(sweep(&mut c, &region(), &[]).is_err());
    }

    #[test]
    fn trcd_register_restored() {
        let mut c = ctrl();
        let _ = sweep(&mut c, &region(), &[8.0, 10.0]).unwrap();
        assert_eq!(c.trcd_ns(), 18.0);
    }
}
