//! Model checks for histogram (and counter) record/snapshot
//! consistency.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p drange-telemetry
//! --test loom_histogram`. A histogram snapshot reads ~44 atomic cells
//! without a transaction; these models pin down exactly what that does
//! and does not guarantee:
//!
//! * after all recorders are joined, a snapshot is **exact** under
//!   every interleaving of the recorders' atomic ops;
//! * a snapshot racing a recorder never *over*counts — every field is
//!   bounded by the final state (it may transiently undercount, which
//!   the crate docs call "off by the handful of observations that
//!   landed mid-copy").

#![cfg(loom)]

use drange_telemetry::MetricsRegistry;
use loomlite::Builder;

#[test]
fn concurrent_records_are_exact_after_join() {
    loomlite::model(|| {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("drange_stage_latency_ns", &[]);
        let h2 = h.clone();
        let recorder = loomlite::thread::spawn(move || {
            h2.record_ns(3);
        });
        h.record_ns(100);
        recorder.join().expect("recorder thread");
        let s = h.snapshot();
        assert_eq!(s.count, 2);
        assert_eq!(s.sum, 103);
        assert_eq!(s.max, 100);
        assert_eq!(s.buckets[2], 1, "3 lands in bucket 2 (bound 4)");
        assert_eq!(s.buckets[7], 1, "100 lands in bucket 7 (bound 128)");
    });
}

#[test]
fn mid_flight_snapshot_never_overcounts() {
    // The snapshot's ~44 loads racing the recorder's 4 RMWs is far too
    // many interleavings for exhaustive search; a preemption bound of 2
    // still covers every schedule where the recorder lands anywhere
    // inside the snapshot copy (that takes exactly 2 switches).
    let bounded = Builder {
        preemption_bound: Some(2),
        max_iterations: None,
    };
    bounded.check(|| {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("drange_stage_latency_ns", &[]);
        let h2 = h.clone();
        let recorder = loomlite::thread::spawn(move || {
            h2.record_ns(5);
        });
        // Concurrent with the recorder: bounded, never overcounting.
        let s = h.snapshot();
        assert!(s.count <= 1, "count overcounted: {}", s.count);
        assert!(s.sum <= 5, "sum overcounted: {}", s.sum);
        assert!(s.max <= 5, "max overcounted: {}", s.max);
        let landed: u64 = s.buckets.iter().sum::<u64>() + s.overflow;
        assert!(landed <= 1, "buckets overcounted: {landed}");
        recorder.join().expect("recorder thread");
        // Quiescent: exact.
        let s = h.snapshot();
        assert_eq!(s.count, 1);
        assert_eq!(s.sum, 5);
        assert_eq!(s.max, 5);
        assert_eq!(s.buckets[3], 1, "5 lands in bucket 3 (bound 8)");
    });
}

#[test]
fn concurrent_counter_adds_never_lose_updates() {
    loomlite::model(|| {
        let reg = MetricsRegistry::new();
        let c = reg.counter("drange_served_bits_total", &[]);
        let c2 = c.clone();
        let adder = loomlite::thread::spawn(move || {
            c2.add(8);
        });
        c.add(4);
        adder.join().expect("adder thread");
        assert_eq!(c.get(), 12);
    });
}
