//! Model checks for the [`Reporter`] stop/drop protocol.
//!
//! Run with `RUSTFLAGS="--cfg loom" cargo test -p drange-telemetry
//! --test loom_reporter`. Under `--cfg loom` the crate's sync_shim
//! swaps its std primitives for the `loomlite` model-checking shims,
//! so these tests execute the *real* `Reporter` code under every
//! thread interleaving. Modeled condvar waits never time out, which
//! makes "the join relies on the interval elapsing" — the PR 2
//! lost-wakeup bug — show up as a hard deadlock instead of a silent
//! stall.

#![cfg(loom)]

use std::panic::{catch_unwind, AssertUnwindSafe};
use std::time::Duration;

use drange_telemetry::{MetricsRegistry, Reporter};
use loomlite::sync::{Arc, Condvar, Mutex};

/// Regression model for the lost-wakeup race fixed in the telemetry
/// PR. The pre-fix reporter loop had this shape:
///
/// ```text
/// let mut stopped = lock.lock();
/// loop {
///     let (guard, timeout) = cv.wait_timeout(stopped, every);  // parks FIRST
///     stopped = guard;
///     if *stopped { return; }
///     if timeout.timed_out() { sink(..); }
/// }
/// ```
///
/// It parks *before* checking the stop flag, so on the schedule where
/// `stop()` runs to completion before the reporter thread first
/// acquires the lock, the `notify_all` finds no parked waiter and is
/// dropped — the reporter then parks with nobody left to wake it and
/// only the (real-world) timeout unstalls the join. The model below
/// reproduces that shape and asserts the checker reports the deadlock.
#[test]
fn pre_fix_reporter_shape_loses_the_wakeup() {
    let result = catch_unwind(AssertUnwindSafe(|| {
        loomlite::model(|| {
            let stop = Arc::new((Mutex::new(false), Condvar::new()));
            let reporter = loomlite::thread::spawn({
                let stop = Arc::clone(&stop);
                move || {
                    let (lock, cv) = &*stop;
                    let mut stopped = lock.lock().expect("model lock");
                    loop {
                        // BUG under test: no `if *stopped { return; }`
                        // before the first park.
                        let (guard, _timeout) = cv
                            .wait_timeout(stopped, Duration::from_secs(3600))
                            .expect("model wait");
                        stopped = guard;
                        if *stopped {
                            return;
                        }
                    }
                }
            });
            // Reporter::stop(): set the flag and notify.
            let (lock, cv) = &*stop;
            *lock.lock().expect("model lock") = true;
            cv.notify_all();
            reporter.join().expect("reporter thread");
        });
    }));
    let message = result
        .expect_err("the pre-fix shape must fail the model check")
        .downcast_ref::<String>()
        .cloned()
        .unwrap_or_default();
    assert!(
        message.contains("deadlock"),
        "expected a deadlock report, got: {message}"
    );
}

/// The shipped `Reporter` checks the stop flag under the lock before
/// every park, so no schedule may deadlock: `stop()` must join without
/// ever relying on the wait timeout.
#[test]
fn reporter_stop_joins_under_every_schedule() {
    loomlite::model(|| {
        let reporter = Reporter::spawn(MetricsRegistry::new(), Duration::from_secs(3600), |_| {});
        reporter.stop();
    });
}

/// Same protocol via the `Drop` impl (the PR 2 regression surfaced as
/// `drop_joins_quickly` flakiness).
#[test]
fn reporter_drop_joins_under_every_schedule() {
    loomlite::model(|| {
        let reporter = Reporter::spawn(MetricsRegistry::new(), Duration::from_secs(3600), |_| {});
        drop(reporter);
    });
}
