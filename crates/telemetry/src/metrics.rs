//! The lock-free metric primitives: counters, gauges, and log2-bucketed
//! latency histograms.
//!
//! Every handle is either **live** (backed by an atomic cell shared with
//! a [`crate::MetricsRegistry`]) or a **no-op** (the default): a no-op
//! handle's hot-path methods compile down to one branch on an `Option`
//! discriminant and never touch the clock, so instrumented code costs
//! near nothing when no registry is attached. Handles are `Clone`
//! (cloning a live handle shares the cell) and `Send + Sync`.

use std::time::Instant;

use crate::sync_shim::{Arc, AtomicU64, Ordering};

/// Number of finite histogram buckets. Bucket `i` counts values `v`
/// (nanoseconds, by convention) with `2^(i-1) < v <= 2^i`; bucket 0
/// counts `v <= 1`. The last finite bound is `2^39` ns (~9.2 minutes);
/// larger values land in the overflow bucket.
pub const HISTOGRAM_BUCKETS: usize = 40;

/// Upper bound (inclusive) of finite bucket `index`, in the histogram's
/// value unit (nanoseconds by convention).
///
/// # Panics
///
/// Panics when `index >= HISTOGRAM_BUCKETS`.
#[must_use]
pub fn bucket_bound(index: usize) -> u64 {
    assert!(
        index < HISTOGRAM_BUCKETS,
        "bucket index {index} out of range"
    );
    1u64 << index
}

/// Index of the finite bucket a value falls into, or `None` for the
/// overflow bucket.
#[must_use]
pub fn bucket_index(value: u64) -> Option<usize> {
    if value <= 1 {
        return Some(0);
    }
    // ceil(log2(value)) for value >= 2.
    let index = 64 - (value - 1).leading_zeros() as usize;
    (index < HISTOGRAM_BUCKETS).then_some(index)
}

/// A monotonically increasing counter.
///
/// The default value ([`Counter::noop`]) discards all increments; live
/// handles come from [`crate::MetricsRegistry::counter`].
#[derive(Clone, Debug, Default)]
pub struct Counter {
    cell: Option<Arc<AtomicU64>>,
}

impl Counter {
    /// A handle that discards every increment.
    #[must_use]
    pub fn noop() -> Self {
        Counter { cell: None }
    }

    pub(crate) fn live(cell: Arc<AtomicU64>) -> Self {
        Counter { cell: Some(cell) }
    }

    /// Whether this handle is backed by a registry cell.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.cell.is_some()
    }

    /// Adds `n` to the counter.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Adds one to the counter.
    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    /// Current value (0 for a no-op handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// A gauge: a value that can be set, raised, and lowered.
///
/// Stored as a `u64` (bit counts, occupancy, rates); `sub` saturates at
/// zero. The default value ([`Gauge::noop`]) discards all writes.
#[derive(Clone, Debug, Default)]
pub struct Gauge {
    cell: Option<Arc<AtomicU64>>,
}

impl Gauge {
    /// A handle that discards every write.
    #[must_use]
    pub fn noop() -> Self {
        Gauge { cell: None }
    }

    pub(crate) fn live(cell: Arc<AtomicU64>) -> Self {
        Gauge { cell: Some(cell) }
    }

    /// Whether this handle is backed by a registry cell.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.cell.is_some()
    }

    /// Sets the gauge.
    #[inline]
    pub fn set(&self, value: u64) {
        if let Some(cell) = &self.cell {
            cell.store(value, Ordering::Relaxed);
        }
    }

    /// Raises the gauge by `n`.
    #[inline]
    pub fn add(&self, n: u64) {
        if let Some(cell) = &self.cell {
            cell.fetch_add(n, Ordering::Relaxed);
        }
    }

    /// Lowers the gauge by `n`, saturating at zero.
    #[inline]
    pub fn sub(&self, n: u64) {
        if let Some(cell) = &self.cell {
            let _ = cell.fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| {
                Some(v.saturating_sub(n))
            });
        }
    }

    /// Current value (0 for a no-op handle).
    #[must_use]
    pub fn get(&self) -> u64 {
        self.cell.as_ref().map_or(0, |c| c.load(Ordering::Relaxed))
    }
}

/// Shared histogram storage: log2 buckets plus count/sum/max, all
/// lock-free atomics.
#[derive(Debug)]
pub(crate) struct HistogramCore {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    overflow: AtomicU64,
    count: AtomicU64,
    sum: AtomicU64,
    max: AtomicU64,
}

impl HistogramCore {
    pub(crate) fn new() -> Self {
        HistogramCore {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            overflow: AtomicU64::new(0),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
            max: AtomicU64::new(0),
        }
    }

    fn record(&self, value: u64) {
        match bucket_index(value) {
            Some(i) => self.buckets[i].fetch_add(1, Ordering::Relaxed),
            None => self.overflow.fetch_add(1, Ordering::Relaxed),
        };
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(value, Ordering::Relaxed);
        self.max.fetch_max(value, Ordering::Relaxed);
    }

    pub(crate) fn snapshot(&self) -> HistogramSnapshot {
        HistogramSnapshot {
            buckets: self
                .buckets
                .iter()
                .map(|b| b.load(Ordering::Relaxed))
                .collect(),
            overflow: self.overflow.load(Ordering::Relaxed),
            count: self.count.load(Ordering::Relaxed),
            sum: self.sum.load(Ordering::Relaxed),
            max: self.max.load(Ordering::Relaxed),
        }
    }
}

/// A log2-bucketed latency histogram.
///
/// Values are nanoseconds by convention (the quantile helpers and the
/// exporters assume it). The default value ([`Histogram::noop`])
/// discards all observations and — critically for hot paths — never
/// reads the clock: [`Histogram::start`] returns `None` so the
/// `Instant::now()` call is skipped entirely.
#[derive(Clone, Debug, Default)]
pub struct Histogram {
    core: Option<Arc<HistogramCore>>,
}

impl Histogram {
    /// A handle that discards every observation and never reads the
    /// clock.
    #[must_use]
    pub fn noop() -> Self {
        Histogram { core: None }
    }

    pub(crate) fn live(core: Arc<HistogramCore>) -> Self {
        Histogram { core: Some(core) }
    }

    /// Whether this handle is backed by a registry cell.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.core.is_some()
    }

    /// Records one value (nanoseconds).
    #[inline]
    pub fn record_ns(&self, ns: u64) {
        if let Some(core) = &self.core {
            core.record(ns);
        }
    }

    /// Starts a stage timer: `Some(now)` for a live histogram, `None`
    /// (no clock read) for a no-op one. Pair with
    /// [`Histogram::observe_since`].
    #[inline]
    #[must_use]
    pub fn start(&self) -> Option<Instant> {
        self.core.as_ref().map(|_| Instant::now())
    }

    /// Records the time elapsed since [`Histogram::start`]; does
    /// nothing when either side is no-op.
    #[inline]
    pub fn observe_since(&self, start: Option<Instant>) {
        if let (Some(core), Some(t0)) = (&self.core, start) {
            let ns = u64::try_from(t0.elapsed().as_nanos()).unwrap_or(u64::MAX);
            core.record(ns);
        }
    }

    /// A point-in-time snapshot (empty for a no-op handle).
    #[must_use]
    pub fn snapshot(&self) -> HistogramSnapshot {
        self.core
            .as_ref()
            .map_or_else(HistogramSnapshot::empty, |c| c.snapshot())
    }
}

/// A point-in-time copy of a histogram's buckets and summary stats.
///
/// Bucket reads are individually atomic but the set is not read as one
/// transaction; a snapshot taken while writers run may be off by the
/// handful of observations that landed mid-copy — fine for monitoring.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct HistogramSnapshot {
    /// Per-bucket observation counts (`HISTOGRAM_BUCKETS` entries,
    /// bucket `i` bounded by [`bucket_bound`]`(i)`).
    pub buckets: Vec<u64>,
    /// Observations beyond the last finite bucket bound.
    pub overflow: u64,
    /// Total observations.
    pub count: u64,
    /// Sum of all observed values, ns.
    pub sum: u64,
    /// Largest observed value, ns.
    pub max: u64,
}

impl HistogramSnapshot {
    /// The all-zero snapshot.
    #[must_use]
    pub fn empty() -> Self {
        HistogramSnapshot {
            buckets: vec![0; HISTOGRAM_BUCKETS],
            overflow: 0,
            count: 0,
            sum: 0,
            max: 0,
        }
    }

    /// Upper-bound estimate of the `q`-quantile (`0 < q <= 1`), in ns:
    /// the bound of the first bucket at which the cumulative count
    /// reaches `ceil(q * count)`. Returns 0 for an empty histogram and
    /// [`HistogramSnapshot::max`] when the quantile lands in the
    /// overflow bucket.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 < q <= 1.0`.
    #[must_use]
    pub fn quantile(&self, q: f64) -> u64 {
        assert!(q > 0.0 && q <= 1.0, "quantile must be in (0,1], got {q}");
        if self.count == 0 {
            return 0;
        }
        let target = saturating_f64_to_u64((q * self.count as f64).ceil()).max(1);
        let mut cumulative = 0u64;
        for (i, &n) in self.buckets.iter().enumerate() {
            cumulative += n;
            if cumulative >= target {
                return bucket_bound(i);
            }
        }
        self.max
    }

    /// Median upper-bound estimate, ns.
    #[must_use]
    pub fn p50(&self) -> u64 {
        self.quantile(0.50)
    }

    /// 95th-percentile upper-bound estimate, ns.
    #[must_use]
    pub fn p95(&self) -> u64 {
        self.quantile(0.95)
    }

    /// 99th-percentile upper-bound estimate, ns.
    #[must_use]
    pub fn p99(&self) -> u64 {
        self.quantile(0.99)
    }

    /// Mean observed value, ns (0.0 when empty).
    #[must_use]
    pub fn mean(&self) -> f64 {
        if self.count == 0 {
            0.0
        } else {
            self.sum as f64 / self.count as f64
        }
    }

    /// Merges another snapshot into this one (bucket-wise sum; used for
    /// cross-label aggregation in summaries). All additions saturate:
    /// two near-ceiling snapshots merge to pinned values instead of
    /// wrapping (release) or panicking (debug).
    pub fn merge(&mut self, other: &HistogramSnapshot) {
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a = a.saturating_add(*b);
        }
        self.overflow = self.overflow.saturating_add(other.overflow);
        self.count = self.count.saturating_add(other.count);
        self.sum = self.sum.saturating_add(other.sum);
        self.max = self.max.max(other.max);
    }
}

/// Explicitly saturating `f64 → u64` conversion for bucket/quantile
/// targets: NaN and negatives map to 0, anything at or above `2^64`
/// maps to `u64::MAX`. Rust's `as` cast has saturated since 1.45, but
/// spelling the boundary cases out keeps them testable and keeps the
/// hot quantile path free of `#[allow(clippy::cast_*)]` waivers.
fn saturating_f64_to_u64(v: f64) -> u64 {
    if v.is_nan() || v <= 0.0 {
        0
    } else if v >= u64::MAX as f64 {
        u64::MAX
    } else {
        // In (0, 2^64): exact-range cast, no sign loss or truncation
        // beyond the intended float→int floor.
        v as u64
    }
}

/// Formats a nanosecond quantity with a human unit (`ns`, `µs`, `ms`,
/// `s`), two significant decimals.
#[must_use]
pub fn fmt_ns(ns: u64) -> String {
    let v = ns as f64;
    if ns < 1_000 {
        format!("{ns}ns")
    } else if ns < 1_000_000 {
        format!("{:.2}µs", v / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2}ms", v / 1e6)
    } else {
        format!("{:.2}s", v / 1e9)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries() {
        assert_eq!(bucket_index(0), Some(0));
        assert_eq!(bucket_index(1), Some(0));
        assert_eq!(bucket_index(2), Some(1));
        assert_eq!(bucket_index(3), Some(2));
        assert_eq!(bucket_index(4), Some(2));
        assert_eq!(bucket_index(5), Some(3));
        // Every power of two sits in its own bucket...
        for i in 1..HISTOGRAM_BUCKETS {
            assert_eq!(bucket_index(1u64 << i), Some(i), "2^{i}");
            // ...and the next value spills into the following bucket.
            if i + 1 < HISTOGRAM_BUCKETS {
                assert_eq!(bucket_index((1u64 << i) + 1), Some(i + 1), "2^{i}+1");
            }
        }
    }

    #[test]
    fn bucket_overflow() {
        let last = bucket_bound(HISTOGRAM_BUCKETS - 1);
        assert_eq!(bucket_index(last), Some(HISTOGRAM_BUCKETS - 1));
        assert_eq!(bucket_index(last + 1), None);
        assert_eq!(bucket_index(u64::MAX), None);
    }

    #[test]
    fn counter_noop_and_live() {
        let noop = Counter::noop();
        noop.inc();
        noop.add(100);
        assert_eq!(noop.get(), 0);
        assert!(!noop.is_live());

        let live = Counter::live(Arc::new(AtomicU64::new(0)));
        live.inc();
        live.add(41);
        assert_eq!(live.get(), 42);
        let clone = live.clone();
        clone.inc();
        assert_eq!(live.get(), 43, "clones share the cell");
    }

    #[test]
    fn gauge_set_add_sub() {
        let g = Gauge::live(Arc::new(AtomicU64::new(0)));
        g.set(10);
        g.add(5);
        g.sub(3);
        assert_eq!(g.get(), 12);
        g.sub(100);
        assert_eq!(g.get(), 0, "sub saturates at zero");
        let noop = Gauge::noop();
        noop.set(7);
        assert_eq!(noop.get(), 0);
    }

    #[test]
    fn histogram_records_and_snapshots() {
        let h = Histogram::live(Arc::new(HistogramCore::new()));
        for v in [0, 1, 2, 3, 1000, u64::MAX] {
            h.record_ns(v);
        }
        let s = h.snapshot();
        assert_eq!(s.count, 6);
        assert_eq!(s.overflow, 1);
        assert_eq!(s.max, u64::MAX);
        assert_eq!(s.buckets[0], 2, "0 and 1 share bucket 0");
        assert_eq!(s.buckets[1], 1);
        assert_eq!(s.buckets[2], 1);
        assert_eq!(s.buckets[10], 1, "1000 <= 1024 = 2^10");
    }

    #[test]
    fn empty_histogram_quantiles_are_zero() {
        let s = HistogramSnapshot::empty();
        assert_eq!(s.p50(), 0);
        assert_eq!(s.p95(), 0);
        assert_eq!(s.p99(), 0);
        assert_eq!(s.max, 0);
        assert_eq!(s.mean(), 0.0);
        let noop = Histogram::noop();
        assert_eq!(noop.snapshot(), s);
    }

    #[test]
    fn quantiles_of_known_distribution() {
        let h = Histogram::live(Arc::new(HistogramCore::new()));
        // 99 observations of 100ns (bucket bound 128), one of ~1ms.
        for _ in 0..99 {
            h.record_ns(100);
        }
        h.record_ns(1_000_000);
        let s = h.snapshot();
        assert_eq!(s.p50(), 128);
        assert_eq!(s.p95(), 128);
        assert_eq!(s.p99(), 128);
        assert_eq!(s.quantile(1.0), 1 << 20, "1e6 <= 2^20");
        assert_eq!(s.max, 1_000_000);
    }

    #[test]
    fn quantile_in_overflow_returns_max() {
        let h = Histogram::live(Arc::new(HistogramCore::new()));
        h.record_ns(u64::MAX - 5);
        let s = h.snapshot();
        assert_eq!(s.p50(), u64::MAX - 5);
    }

    #[test]
    fn noop_timer_skips_the_clock() {
        let noop = Histogram::noop();
        assert!(noop.start().is_none());
        noop.observe_since(None);
        assert_eq!(noop.snapshot().count, 0);

        let live = Histogram::live(Arc::new(HistogramCore::new()));
        let t0 = live.start();
        assert!(t0.is_some());
        live.observe_since(t0);
        assert_eq!(live.snapshot().count, 1);
    }

    #[test]
    fn merge_sums_bucketwise() {
        let a = Histogram::live(Arc::new(HistogramCore::new()));
        let b = Histogram::live(Arc::new(HistogramCore::new()));
        a.record_ns(4);
        b.record_ns(4);
        b.record_ns(1 << 50);
        let mut m = a.snapshot();
        m.merge(&b.snapshot());
        assert_eq!(m.count, 3);
        assert_eq!(m.buckets[2], 2);
        assert_eq!(m.overflow, 1);
        assert_eq!(m.max, 1 << 50);
    }

    #[test]
    fn merge_with_empty_is_identity_both_ways() {
        let h = Histogram::live(Arc::new(HistogramCore::new()));
        for v in [1, 700, 1 << 45] {
            h.record_ns(v);
        }
        let full = h.snapshot();

        let mut into_full = full.clone();
        into_full.merge(&HistogramSnapshot::empty());
        assert_eq!(into_full, full, "merging an empty snapshot changes nothing");

        let mut into_empty = HistogramSnapshot::empty();
        into_empty.merge(&full);
        assert_eq!(into_empty, full, "merging into empty copies everything");

        let mut both_empty = HistogramSnapshot::empty();
        both_empty.merge(&HistogramSnapshot::empty());
        assert_eq!(both_empty, HistogramSnapshot::empty());
    }

    #[test]
    fn merge_saturates_instead_of_wrapping() {
        let mut a = HistogramSnapshot::empty();
        a.buckets[0] = u64::MAX - 1;
        a.overflow = u64::MAX;
        a.count = u64::MAX;
        a.sum = u64::MAX - 10;
        a.max = 5;
        let mut b = HistogramSnapshot::empty();
        b.buckets[0] = 100;
        b.overflow = 1;
        b.count = 100;
        b.sum = 100;
        b.max = 7;
        a.merge(&b);
        assert_eq!(a.buckets[0], u64::MAX);
        assert_eq!(a.overflow, u64::MAX);
        assert_eq!(a.count, u64::MAX);
        assert_eq!(a.sum, u64::MAX);
        assert_eq!(a.max, 7);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1]")]
    fn quantile_rejects_zero() {
        let _ = HistogramSnapshot::empty().quantile(0.0);
    }

    #[test]
    fn quantile_one_reports_the_top_occupied_bucket() {
        let h = Histogram::live(Arc::new(HistogramCore::new()));
        h.record_ns(1);
        let top = bucket_bound(HISTOGRAM_BUCKETS - 1);
        h.record_ns(top);
        let s = h.snapshot();
        assert_eq!(s.buckets[HISTOGRAM_BUCKETS - 1], 1, "exact bound is finite");
        assert_eq!(s.quantile(1.0), top);
        // The smallest valid quantile reports the bottom bucket.
        assert_eq!(s.quantile(f64::MIN_POSITIVE), bucket_bound(0));
    }

    #[test]
    fn saturating_cast_boundaries() {
        // Negative and NaN inputs clamp to zero rather than wrapping.
        assert_eq!(saturating_f64_to_u64(-1.0), 0);
        assert_eq!(saturating_f64_to_u64(-1e300), 0);
        assert_eq!(saturating_f64_to_u64(f64::NEG_INFINITY), 0);
        assert_eq!(saturating_f64_to_u64(f64::NAN), 0);
        // Values beyond u64 range clamp to u64::MAX.
        assert_eq!(saturating_f64_to_u64(1e300), u64::MAX);
        assert_eq!(saturating_f64_to_u64(f64::INFINITY), u64::MAX);
        assert_eq!(saturating_f64_to_u64(u64::MAX as f64), u64::MAX);
        // In-range values floor as usual.
        assert_eq!(saturating_f64_to_u64(0.0), 0);
        assert_eq!(saturating_f64_to_u64(0.9), 0);
        assert_eq!(saturating_f64_to_u64(1.0), 1);
        assert_eq!(saturating_f64_to_u64(4096.7), 4096);
    }

    #[test]
    fn quantile_target_saturates_at_huge_counts() {
        // A snapshot whose count is at the u64 ceiling: q * count
        // rounds above 2^64 in f64, which must clamp instead of wrap.
        let mut s = HistogramSnapshot::empty();
        s.count = u64::MAX;
        s.buckets[0] = u64::MAX;
        assert_eq!(s.quantile(1.0), bucket_bound(0));
        assert_eq!(s.quantile(0.999), bucket_bound(0));
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1]")]
    fn quantile_rejects_nan() {
        let _ = HistogramSnapshot::empty().quantile(f64::NAN);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1]")]
    fn quantile_rejects_negative() {
        let _ = HistogramSnapshot::empty().quantile(-0.5);
    }

    #[test]
    #[should_panic(expected = "quantile must be in (0,1]")]
    fn quantile_rejects_above_one() {
        let _ = HistogramSnapshot::empty().quantile(1.5);
    }

    #[test]
    fn values_past_the_last_bucket_overflow() {
        // > max-bucket inputs: beyond the last finite bound they land
        // in the overflow bucket and quantiles fall back to max.
        let h = Histogram::live(Arc::new(HistogramCore::new()));
        let past_last = bucket_bound(HISTOGRAM_BUCKETS - 1) + 1;
        h.record_ns(past_last);
        let s = h.snapshot();
        assert_eq!(s.overflow, 1);
        assert_eq!(s.buckets.iter().sum::<u64>(), 0);
        assert_eq!(s.p50(), past_last, "overflow quantile reports max");
    }

    #[test]
    fn fmt_ns_units() {
        assert_eq!(fmt_ns(0), "0ns");
        assert_eq!(fmt_ns(999), "999ns");
        assert_eq!(fmt_ns(1_500), "1.50µs");
        assert_eq!(fmt_ns(2_500_000), "2.50ms");
        assert_eq!(fmt_ns(3_000_000_000), "3.00s");
    }

    #[test]
    fn fmt_ns_unit_boundaries() {
        // Each unit switches exactly at its power of 1000.
        assert_eq!(fmt_ns(1_000), "1.00µs");
        assert_eq!(fmt_ns(999_999), "1000.00µs", "stays µs below the cutover");
        assert_eq!(fmt_ns(1_000_000), "1.00ms");
        assert_eq!(
            fmt_ns(999_999_999),
            "1000.00ms",
            "stays ms below the cutover"
        );
        assert_eq!(fmt_ns(1_000_000_000), "1.00s");
        // The extreme top end still formats (as seconds).
        assert!(fmt_ns(u64::MAX).ends_with('s'));
    }

    #[test]
    fn handles_are_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<Counter>();
        assert_send_sync::<Gauge>();
        assert_send_sync::<Histogram>();
    }
}
