//! cfg(loom)-switched concurrency imports.
//!
//! Every atomic, mutex, condvar, and thread-spawn used by this crate's
//! lock-free internals is imported through this module. A normal build
//! re-exports the `std` primitives unchanged; a `--cfg loom` build
//! substitutes the [`loomlite`] model-checking shims so the
//! `tests/loom_*.rs` suites can exhaustively explore interleavings of
//! the registry, histogram, and reporter protocols.
//!
//! Keeping the switch in one module (rather than scattering
//! `#[cfg(loom)]` through the crate) is also what lets `cargo xtask
//! lint`'s `no-raw-atomics` rule treat this crate as the single
//! sanctioned home of atomic-ordering decisions.

#[cfg(loom)]
pub(crate) use loomlite::sync::atomic::{AtomicU64, Ordering};
#[cfg(loom)]
pub(crate) use loomlite::sync::{Arc, Condvar, Mutex};
#[cfg(loom)]
pub(crate) use loomlite::thread;

#[cfg(not(loom))]
pub(crate) use std::sync::atomic::{AtomicU64, Ordering};
#[cfg(not(loom))]
pub(crate) use std::sync::{Arc, Condvar, Mutex};
#[cfg(not(loom))]
pub(crate) use std::thread;
