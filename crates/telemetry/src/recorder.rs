//! The flight recorder: a bounded in-memory ring of finished spans.
//!
//! Traces land here whole (one ring transaction per trace, performed
//! when the root span ends — see [`crate::trace`]), oldest spans are
//! overwritten first, and every loss is counted, so the recorder can
//! run always-on in production: memory is fixed, overhead is one mutex
//! acquisition per *trace* (not per span), and `/debug/trace` always
//! answers with the most recent history.
//!
//! Two exporters read the ring:
//!
//! * [`FlightRecorder::render_chrome_trace`] — Chrome trace-event JSON
//!   (`chrome://tracing` / Perfetto `Open trace file`).
//! * [`FlightRecorder::render_slow_table`] — a human `slowest-N`
//!   table of root-span exemplars, cheapest triage first.
//!
//! A latency-threshold sampler bounds steady-state cost further: with
//! [`RecorderConfig::latency_threshold`] set, only traces whose root
//! span meets the threshold are kept, plus an unconditional 1-in-N
//! floor ([`RecorderConfig::sample_one_in`]) so the ring never goes
//! completely dark between incidents. Sampled-out and overwritten
//! spans are visible as `drange_trace_*` metrics once
//! [`FlightRecorder::attach_metrics`] is called.

use std::collections::VecDeque;
use std::fmt::Write as _;
use std::sync::PoisonError;
use std::time::{Duration, Instant};

use crate::export::escape_json;
use crate::metrics::{fmt_ns, Counter};
use crate::registry::MetricsRegistry;
use crate::sync_shim::{Arc, Mutex};
use crate::trace::{AttrValue, SpanRecord, TraceId, Tracer};

/// Flight-recorder tuning. The defaults (4096 spans, keep every trace)
/// suit debugging sessions; production servers set a threshold.
#[derive(Debug, Clone, PartialEq)]
pub struct RecorderConfig {
    /// Ring capacity in spans; the oldest spans are overwritten first.
    pub capacity: usize,
    /// Root-span exemplars kept for the slowest-requests table.
    pub slow_capacity: usize,
    /// Keep only traces whose root span lasted at least this long
    /// (`None`: keep every trace).
    pub latency_threshold: Option<Duration>,
    /// With a threshold set, still keep every Nth below-threshold
    /// trace (0 disables the floor entirely).
    pub sample_one_in: u64,
}

impl Default for RecorderConfig {
    fn default() -> Self {
        RecorderConfig {
            capacity: 4096,
            slow_capacity: 16,
            latency_threshold: None,
            sample_one_in: 0,
        }
    }
}

/// Point-in-time recorder accounting, also exported as metrics.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct RecorderStats {
    /// Spans currently held in the ring.
    pub ring_spans: usize,
    /// Spans accepted into the ring, ever.
    pub recorded_spans: u64,
    /// Spans overwritten (ring full) or discarded (per-trace cap).
    pub dropped_spans: u64,
    /// Whole traces discarded by the latency-threshold sampler.
    pub sampled_out_traces: u64,
}

/// One slowest-requests exemplar: the root span of a kept trace.
#[derive(Debug, Clone)]
struct SlowEntry {
    trace: TraceId,
    name: &'static str,
    duration: Duration,
    spans: usize,
    attrs: Vec<(&'static str, AttrValue)>,
}

#[derive(Default)]
struct RecorderMetrics {
    recorded: Counter,
    dropped: Counter,
    sampled_out: Counter,
}

struct RingState {
    ring: VecDeque<SpanRecord>,
    slowest: Vec<SlowEntry>,
    stats: RecorderStats,
    sample_tick: u64,
    metrics: RecorderMetrics,
}

/// Shared recorder internals; [`Tracer`]s hold an `Arc` to this.
pub(crate) struct RecorderCore {
    epoch: Instant,
    config: RecorderConfig,
    state: Mutex<RingState>,
}

/// Locks a recorder's ring state, riding through poisoning (a panicked
/// exporter must not disable tracing). A macro, not a method: the
/// guard type differs between the std and loom mutexes.
macro_rules! lock_state {
    ($core:expr) => {
        $core.state.lock().unwrap_or_else(PoisonError::into_inner)
    };
}

impl RecorderCore {
    /// Counts spans lost to the per-trace buffer cap.
    pub(crate) fn count_overflow(&self, n: u64) {
        let mut state = lock_state!(self);
        state.stats.dropped_spans += n;
        state.metrics.dropped.add(n);
    }

    /// Accepts one finished trace: applies the sampling policy, then
    /// pushes every span into the ring (overwriting the oldest) and
    /// updates the slowest-roots exemplars.
    pub(crate) fn finish_trace(&self, spans: Vec<SpanRecord>, root_duration: Duration) {
        if spans.is_empty() {
            return;
        }
        let mut state = lock_state!(self);
        let keep = match self.config.latency_threshold {
            None => true,
            Some(threshold) => {
                if root_duration >= threshold {
                    true
                } else {
                    state.sample_tick += 1;
                    self.config.sample_one_in > 0
                        && state.sample_tick.is_multiple_of(self.config.sample_one_in)
                }
            }
        };
        if !keep {
            state.stats.sampled_out_traces += 1;
            state.metrics.sampled_out.inc();
            return;
        }
        let span_count = spans.len();
        if let Some(root) = spans.iter().rfind(|s| s.parent.is_none()) {
            let entry = SlowEntry {
                trace: root.trace,
                name: root.name,
                duration: root.duration,
                spans: span_count,
                attrs: root.attrs.clone(),
            };
            let slowest = &mut state.slowest;
            let pos = slowest
                .binary_search_by(|e| entry.duration.cmp(&e.duration))
                .unwrap_or_else(|p| p);
            if pos < self.config.slow_capacity {
                slowest.insert(pos, entry);
                slowest.truncate(self.config.slow_capacity);
            }
        }
        let mut accepted = 0u64;
        let mut overwritten = 0u64;
        for rec in spans {
            if self.config.capacity == 0 {
                overwritten += 1;
                continue;
            }
            if state.ring.len() >= self.config.capacity {
                state.ring.pop_front();
                overwritten += 1;
            }
            state.ring.push_back(rec);
            accepted += 1;
        }
        state.stats.recorded_spans += accepted;
        state.stats.dropped_spans += overwritten;
        state.stats.ring_spans = state.ring.len();
        state.metrics.recorded.add(accepted);
        state.metrics.dropped.add(overwritten);
    }
}

/// A bounded, always-on span store with Chrome-trace and slow-table
/// exporters. Cheap to share (`Arc` inside).
#[derive(Clone)]
pub struct FlightRecorder {
    core: Arc<RecorderCore>,
}

impl std::fmt::Debug for FlightRecorder {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let stats = self.stats();
        f.debug_struct("FlightRecorder")
            .field("config", &self.core.config)
            .field("stats", &stats)
            .finish()
    }
}

impl Default for FlightRecorder {
    fn default() -> Self {
        FlightRecorder::new()
    }
}

impl FlightRecorder {
    /// A recorder with the default configuration (keep everything,
    /// 4096-span ring).
    #[must_use]
    pub fn new() -> Self {
        FlightRecorder::with_config(RecorderConfig::default())
    }

    /// A recorder with explicit tuning.
    #[must_use]
    pub fn with_config(config: RecorderConfig) -> Self {
        FlightRecorder {
            core: Arc::new(RecorderCore {
                epoch: Instant::now(),
                config,
                state: Mutex::new(RingState {
                    ring: VecDeque::new(),
                    slowest: Vec::new(),
                    stats: RecorderStats::default(),
                    sample_tick: 0,
                    metrics: RecorderMetrics::default(),
                }),
            }),
        }
    }

    /// A live [`Tracer`] recording into this ring.
    #[must_use]
    pub fn tracer(&self) -> Tracer {
        Tracer::attached(Arc::clone(&self.core))
    }

    /// Registers the recorder's loss accounting as counters
    /// (`drange_trace_spans_recorded_total`,
    /// `drange_trace_spans_dropped_total`,
    /// `drange_trace_traces_sampled_out_total`) on `registry`.
    pub fn attach_metrics(&self, registry: &MetricsRegistry) {
        let mut state = lock_state!(self.core);
        state.metrics = RecorderMetrics {
            recorded: registry.counter("drange_trace_spans_recorded_total", &[]),
            dropped: registry.counter("drange_trace_spans_dropped_total", &[]),
            sampled_out: registry.counter("drange_trace_traces_sampled_out_total", &[]),
        };
        // Re-publish losses from before attachment so the series never
        // under-reports.
        state.metrics.recorded.add(state.stats.recorded_spans);
        state.metrics.dropped.add(state.stats.dropped_spans);
        state
            .metrics
            .sampled_out
            .add(state.stats.sampled_out_traces);
    }

    /// Current accounting snapshot.
    #[must_use]
    pub fn stats(&self) -> RecorderStats {
        lock_state!(self.core).stats
    }

    /// Copies the ring contents, oldest span first (tests and ad-hoc
    /// exporters).
    #[must_use]
    pub fn records(&self) -> Vec<SpanRecord> {
        lock_state!(self.core).ring.iter().cloned().collect()
    }

    /// Renders the most recent `last_n` spans (all, if `None`) as
    /// Chrome trace-event JSON: load via `chrome://tracing` or
    /// Perfetto. Timestamps are microseconds since the recorder was
    /// created; span attributes and the trace/span/parent ids ride in
    /// `args`.
    #[must_use]
    pub fn render_chrome_trace(&self, last_n: Option<usize>) -> String {
        let state = lock_state!(self.core);
        let total = state.ring.len();
        let skip = last_n.map_or(0, |n| total.saturating_sub(n));
        let mut out = String::from("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[");
        let mut first = true;
        for rec in state.ring.iter().skip(skip) {
            let ts = self.rel_us(rec.start);
            if !first {
                out.push(',');
            }
            first = false;
            let _ = write!(
                out,
                "{{\"name\":\"{}\",\"cat\":\"drange\",\"ph\":\"X\",\"ts\":{:.3},\"dur\":{:.3},\
                 \"pid\":1,\"tid\":{},\"args\":{{\"trace\":\"{}\",\"span\":\"{}\"",
                escape_json(rec.name),
                ts,
                rec.duration.as_secs_f64() * 1e6,
                rec.thread,
                rec.trace,
                rec.span,
            );
            if let Some(parent) = rec.parent {
                let _ = write!(out, ",\"parent\":\"{parent}\"");
            }
            for (key, value) in &rec.attrs {
                let _ = write!(out, ",\"{}\":{}", escape_json(key), json_attr(value));
            }
            out.push_str("}}");
            for event in &rec.events {
                let _ = write!(
                    out,
                    ",{{\"name\":\"{}\",\"cat\":\"drange\",\"ph\":\"i\",\"s\":\"t\",\
                     \"ts\":{:.3},\"pid\":1,\"tid\":{},\"args\":{{\"trace\":\"{}\"",
                    escape_json(event.name),
                    self.rel_us(event.at),
                    rec.thread,
                    rec.trace,
                );
                if let Some(v) = event.value {
                    let _ = write!(out, ",\"value\":{v}");
                }
                out.push_str("}}");
            }
        }
        out.push_str("]}");
        out
    }

    /// Renders the slowest kept root spans as a text table, slowest
    /// first.
    #[must_use]
    pub fn render_slow_table(&self) -> String {
        let state = lock_state!(self.core);
        let mut out = String::from("rank  duration    spans  trace             root\n");
        for (i, entry) in state.slowest.iter().enumerate() {
            let dur_ns = u64::try_from(entry.duration.as_nanos()).unwrap_or(u64::MAX);
            let _ = write!(
                out,
                "{:<5} {:<11} {:<6} {}  {}",
                i + 1,
                fmt_ns(dur_ns),
                entry.spans,
                entry.trace,
                entry.name,
            );
            for (key, value) in &entry.attrs {
                let _ = write!(out, " {key}={}", fmt_attr(value));
            }
            out.push('\n');
        }
        out
    }

    /// Microseconds between the recorder epoch and `at` (0 for
    /// instants that predate the epoch).
    fn rel_us(&self, at: Instant) -> f64 {
        at.saturating_duration_since(self.core.epoch).as_secs_f64() * 1e6
    }
}

/// Renders an attribute value as a JSON literal.
fn json_attr(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => v.to_string(),
        AttrValue::I64(v) => v.to_string(),
        AttrValue::F64(v) if v.is_finite() => format!("{v}"),
        AttrValue::F64(_) => "null".to_string(),
        AttrValue::Bool(v) => v.to_string(),
        AttrValue::Str(v) => format!("\"{}\"", escape_json(v)),
    }
}

/// Renders an attribute value for the plain-text slow table.
fn fmt_attr(value: &AttrValue) -> String {
    match value {
        AttrValue::U64(v) => v.to_string(),
        AttrValue::I64(v) => v.to_string(),
        AttrValue::F64(v) => format!("{v}"),
        AttrValue::Bool(v) => v.to_string(),
        AttrValue::Str(v) => v.clone(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record_trace(recorder: &FlightRecorder, name: &'static str, children: usize) -> TraceId {
        let tracer = recorder.tracer();
        let id = TraceId::next();
        {
            let mut root = tracer.root_span(name, id);
            root.attr_u64("bytes", 64);
            for _ in 0..children {
                drop(tracer.span("child"));
            }
        }
        id
    }

    #[test]
    fn ring_overwrites_oldest_and_counts_drops() {
        let recorder = FlightRecorder::with_config(RecorderConfig {
            capacity: 4,
            ..RecorderConfig::default()
        });
        for _ in 0..3 {
            record_trace(&recorder, "req", 1); // 2 spans per trace
        }
        let stats = recorder.stats();
        assert_eq!(stats.ring_spans, 4);
        assert_eq!(stats.recorded_spans, 6);
        assert_eq!(stats.dropped_spans, 2);
        let records = recorder.records();
        assert_eq!(records.len(), 4);
    }

    #[test]
    fn sampler_keeps_slow_traces_and_the_one_in_n_floor() {
        let recorder = FlightRecorder::with_config(RecorderConfig {
            latency_threshold: Some(Duration::from_secs(3600)),
            sample_one_in: 4,
            ..RecorderConfig::default()
        });
        for _ in 0..8 {
            record_trace(&recorder, "fast", 0);
        }
        let stats = recorder.stats();
        // Every 4th below-threshold trace survives the floor.
        assert_eq!(stats.recorded_spans, 2);
        assert_eq!(stats.sampled_out_traces, 6);

        let keep_all = FlightRecorder::with_config(RecorderConfig {
            latency_threshold: Some(Duration::ZERO),
            sample_one_in: 0,
            ..RecorderConfig::default()
        });
        record_trace(&keep_all, "any", 0);
        assert_eq!(keep_all.stats().recorded_spans, 1);
    }

    #[test]
    fn sampler_without_floor_goes_dark_below_threshold() {
        let recorder = FlightRecorder::with_config(RecorderConfig {
            latency_threshold: Some(Duration::from_secs(3600)),
            sample_one_in: 0,
            ..RecorderConfig::default()
        });
        for _ in 0..5 {
            record_trace(&recorder, "fast", 0);
        }
        assert_eq!(recorder.stats().recorded_spans, 0);
        assert_eq!(recorder.stats().sampled_out_traces, 5);
    }

    #[test]
    fn chrome_export_shape_and_last_n() {
        let recorder = FlightRecorder::new();
        record_trace(&recorder, "req\"a", 2);
        let json = recorder.render_chrome_trace(None);
        assert!(json.starts_with('{') && json.ends_with('}'));
        assert!(json.contains("\"traceEvents\":["));
        assert!(json.contains("\"ph\":\"X\""));
        assert!(json.contains("\"name\":\"req\\\"a\""), "{json}");
        assert!(json.contains("\"bytes\":64"));
        assert!(json.contains("\"parent\":\""));
        // last_n limits to the most recent spans.
        let limited = recorder.render_chrome_trace(Some(1));
        assert_eq!(limited.matches("\"ph\":\"X\"").count(), 1);
    }

    #[test]
    fn events_render_as_instants() {
        let recorder = FlightRecorder::new();
        let tracer = recorder.tracer();
        {
            let mut span = tracer.span("batch");
            span.event_u64("lifecycle.quarantine", 2);
        }
        let json = recorder.render_chrome_trace(None);
        assert!(json.contains("\"ph\":\"i\""));
        assert!(json.contains("\"name\":\"lifecycle.quarantine\""));
        assert!(json.contains("\"value\":2"));
    }

    #[test]
    fn slow_table_ranks_by_duration() {
        let recorder = FlightRecorder::with_config(RecorderConfig {
            slow_capacity: 2,
            ..RecorderConfig::default()
        });
        let tracer = recorder.tracer();
        // Sleeping for distinct durations would be flaky; record real
        // roots, then replay them with synthetic durations far above
        // anything the real recordings could have taken.
        for (name, ms) in [("a", 10_000u64), ("b", 30_000), ("c", 20_000)] {
            {
                let mut span = tracer.span(name);
                span.attr_str("peer", "127.0.0.1");
            }
            let mut rec = recorder.records().pop().expect("span recorded");
            rec.duration = Duration::from_millis(ms);
            recorder
                .core
                .finish_trace(vec![rec], Duration::from_millis(ms));
        }
        let table = recorder.render_slow_table();
        let lines: Vec<&str> = table.lines().collect();
        assert!(lines[0].starts_with("rank"));
        assert!(lines[1].contains("b peer="), "{table}");
        assert!(lines[2].contains("c peer="), "{table}");
        assert_eq!(lines.len(), 3, "slow_capacity bounds the table: {table}");
        assert!(table.contains("peer=127.0.0.1"));
    }

    #[test]
    fn attach_metrics_republishes_prior_losses() {
        let recorder = FlightRecorder::with_config(RecorderConfig {
            capacity: 1,
            ..RecorderConfig::default()
        });
        record_trace(&recorder, "req", 1); // 1 kept, 1 overwritten
        let registry = MetricsRegistry::new();
        recorder.attach_metrics(&registry);
        assert_eq!(
            registry
                .counter("drange_trace_spans_recorded_total", &[])
                .get(),
            2
        );
        assert_eq!(
            registry
                .counter("drange_trace_spans_dropped_total", &[])
                .get(),
            1
        );
        record_trace(&recorder, "req", 0);
        assert_eq!(
            registry
                .counter("drange_trace_spans_recorded_total", &[])
                .get(),
            3
        );
    }

    #[test]
    fn recorder_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<FlightRecorder>();
        assert_send_sync::<Tracer>();
    }
}
