//! # drange-telemetry — lock-free metrics for the harvesting engine
//!
//! The paper's headline claims are throughput and latency numbers;
//! running D-RaNGe as a service means being able to *see* them live.
//! This crate is the observability substrate for the workspace:
//!
//! * **Metric primitives** ([`Counter`], [`Gauge`], [`Histogram`]) —
//!   plain atomics on the hot path, no locks, no allocation. A
//!   [`Histogram`] uses log2 buckets (1 ns … ~9 min plus an overflow
//!   bucket) and snapshots to p50/p95/p99/max estimates.
//! * **Registry** ([`MetricsRegistry`]) — a cheap cloneable handle that
//!   maps (name, labels) to shared cells. Registration takes a mutex;
//!   the returned handles never do.
//! * **No-op mode** — every handle has a [`Counter::noop`]-style
//!   default that discards writes and (for histograms) skips the clock
//!   read entirely, so instrumented code is near-zero-cost when no
//!   registry is attached. `cargo run -p drange-bench --release --bin
//!   telemetry_overhead` measures the difference.
//! * **Export** — Prometheus text format
//!   ([`MetricsRegistry::render_prometheus`]), a JSON snapshot
//!   ([`MetricsRegistry::render_json`]), and a periodic [`Reporter`]
//!   thread that logs a one-line summary.
//! * **Tracing** — [`Tracer`]/[`Span`] request spans with the same
//!   noop-by-default cost model, draining into a bounded
//!   [`FlightRecorder`] ring with Chrome trace-event JSON and
//!   slowest-requests exporters (see [`trace`] and [`recorder`]).
//!
//! ## Example
//!
//! ```rust
//! use drange_telemetry::{MetricsRegistry, Reporter};
//! use std::time::Duration;
//!
//! let registry = MetricsRegistry::new();
//! let served = registry.counter("drange_served_bits_total", &[]);
//! let latency = registry.histogram("drange_take_bits_latency_ns", &[]);
//!
//! let t0 = latency.start();          // Some(Instant) — the handle is live
//! served.add(4096);
//! latency.observe_since(t0);
//!
//! println!("{}", registry.render_prometheus());
//! let _reporter = Reporter::spawn(
//!     registry.clone(),
//!     Duration::from_secs(1),
//!     |line| eprintln!("[metrics] {line}"),
//! );
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod export;
pub mod metrics;
pub mod recorder;
pub mod registry;
pub mod reporter;
mod sync_shim;
pub mod trace;

pub use export::{render_json, render_prometheus, summary_line};
pub use metrics::{
    bucket_bound, bucket_index, fmt_ns, Counter, Gauge, Histogram, HistogramSnapshot,
    HISTOGRAM_BUCKETS,
};
pub use recorder::{FlightRecorder, RecorderConfig, RecorderStats};
pub use registry::{MetricKind, MetricSample, MetricValue, MetricsRegistry};
pub use reporter::Reporter;
pub use trace::{AttrValue, Span, SpanEvent, SpanId, SpanRecord, TraceId, Tracer};
