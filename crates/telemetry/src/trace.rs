//! Request tracing: cheap span guards with trace/span identity.
//!
//! The serve path needs *causality*, not just aggregates: when p99
//! spikes, the question is where one slow request spent its time across
//! coalescer → service → engine worker → DRAM harvest. This module
//! provides the identity and guard layer:
//!
//! * [`TraceId`] / [`SpanId`] — process-unique identifiers. A
//!   [`TraceId`] doubles as the `X-Drange-Request-Id` value the HTTP
//!   server echoes to clients.
//! * [`Tracer`] — a cheap cloneable handle, live when attached to a
//!   [`crate::recorder::FlightRecorder`] and noop otherwise. A noop
//!   tracer mirrors the noop-metrics pattern exactly: starting a span
//!   reads no clock, touches no thread-local, allocates nothing.
//! * [`Span`] — an RAII guard recording start/end/duration plus typed
//!   [`AttrValue`] attributes and point [`SpanEvent`]s. Spans nest via
//!   a thread-local context stack: a span started while another span on
//!   the same thread is active becomes its child; a span started on an
//!   idle thread roots a new trace.
//!
//! Finished spans collect in a thread-local buffer; when the root span
//! of a trace ends, the whole trace is offered to the flight recorder
//! in one ring-buffer transaction (the sampling decision — keep, or
//! drop as below-threshold — is made there, per trace, never per
//! span). Cross-thread causality is by annotation, not context
//! propagation: engine workers run their own per-batch traces and tag
//! them with the trace id of the request they are unblocking (see
//! `drange_core::engine`), which keeps the `BatchChannel` payload type
//! untouched.

use std::cell::RefCell;
use std::fmt;
use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::{Duration, Instant};

use crate::recorder::RecorderCore;
use crate::sync_shim::Arc;

/// Identifier of one end-to-end trace (one request, one harvest batch).
///
/// Nonzero, process-unique, and cheap to mint even without a recorder
/// attached — the HTTP server allocates one per request so the
/// `X-Drange-Request-Id` header exists whether or not tracing is on.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct TraceId(u64);

/// Identifier of one span within a trace. Nonzero and process-unique.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SpanId(u64);

/// Global id well: a counter fed through splitmix64 so ids look
/// uniform without a per-id clock or RNG dependency.
static NEXT_ID: AtomicU64 = AtomicU64::new(1);

fn splitmix64(seed: u64) -> u64 {
    let mut z = seed.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

fn next_nonzero_id() -> u64 {
    loop {
        let raw = splitmix64(NEXT_ID.fetch_add(1, Ordering::Relaxed));
        if raw != 0 {
            return raw;
        }
    }
}

impl TraceId {
    /// Mints a fresh process-unique trace id.
    #[must_use]
    pub fn next() -> Self {
        TraceId(next_nonzero_id())
    }

    /// The raw id value (nonzero).
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }

    /// Rebuilds a trace id from its raw value; `None` for zero (the
    /// "no trace" sentinel used by cross-thread annotation cells).
    #[must_use]
    pub fn from_u64(raw: u64) -> Option<Self> {
        (raw != 0).then_some(TraceId(raw))
    }
}

impl SpanId {
    /// The raw id value (nonzero).
    #[must_use]
    pub fn as_u64(self) -> u64 {
        self.0
    }
}

impl fmt::Display for TraceId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

impl fmt::Display for SpanId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{:016x}", self.0)
    }
}

/// A typed span attribute value.
#[derive(Debug, Clone, PartialEq)]
pub enum AttrValue {
    /// Unsigned integer (byte counts, ids).
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Floating point (rates, ratios).
    F64(f64),
    /// Boolean flag (degraded, coalesced).
    Bool(bool),
    /// Free-form text (statuses, peer addresses).
    Str(String),
}

/// A point-in-time event annotated onto a span (e.g. a lifecycle
/// quarantine observed mid-batch).
#[derive(Debug, Clone)]
pub struct SpanEvent {
    /// When the event happened.
    pub at: Instant,
    /// Event name.
    pub name: &'static str,
    /// Optional magnitude (e.g. number of cells quarantined).
    pub value: Option<u64>,
}

/// One finished span, as stored in the flight recorder.
#[derive(Debug, Clone)]
pub struct SpanRecord {
    /// The trace this span belongs to.
    pub trace: TraceId,
    /// This span's id.
    pub span: SpanId,
    /// Parent span within the same trace (`None` for the root).
    pub parent: Option<SpanId>,
    /// Static span name (e.g. `"http.request"`).
    pub name: &'static str,
    /// Small dense id of the recording thread (stable per thread).
    pub thread: u64,
    /// Start instant (converted to recorder-relative time at export).
    pub start: Instant,
    /// Wall-clock duration.
    pub duration: Duration,
    /// Typed attributes, in insertion order.
    pub attrs: Vec<(&'static str, AttrValue)>,
    /// Point events, in insertion order.
    pub events: Vec<SpanEvent>,
}

/// Small dense per-thread ids for trace export (`tid` in the Chrome
/// trace-event format wants small integers, not 64-bit hashes).
static NEXT_THREAD: AtomicU64 = AtomicU64::new(1);

thread_local! {
    static THREAD_ID: u64 = NEXT_THREAD.fetch_add(1, Ordering::Relaxed);

    /// Stack of (trace, span) contexts for the current thread; the top
    /// is the parent of the next span started here.
    static CONTEXT: RefCell<Vec<(TraceId, SpanId)>> = const { RefCell::new(Vec::new()) };

    /// Finished spans of the trace currently active on this thread,
    /// buffered until its root span ends.
    static TRACE_BUF: RefCell<Vec<SpanRecord>> = const { RefCell::new(Vec::new()) };
}

/// Spans buffered per trace beyond this are dropped (and counted by
/// the recorder) — a backstop against span leaks in a loop, sized well
/// above any legitimate request tree.
pub(crate) const MAX_SPANS_PER_TRACE: usize = 512;

fn thread_id() -> u64 {
    THREAD_ID.with(|id| *id)
}

/// Handle that starts spans. Clone freely; clones share the recorder.
///
/// The default (and [`Tracer::noop`]) tracer is detached: every span it
/// returns is inert and costs a branch — no clock read, no allocation,
/// no thread-local traffic — mirroring [`crate::metrics::Counter`]'s
/// noop mode so instrumented hot paths stay near-zero-cost until a
/// recorder is attached.
#[derive(Clone, Default)]
pub struct Tracer {
    core: Option<Arc<RecorderCore>>,
}

impl fmt::Debug for Tracer {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Tracer")
            .field("live", &self.core.is_some())
            .finish()
    }
}

impl Tracer {
    /// A detached tracer: spans are inert.
    #[must_use]
    pub fn noop() -> Self {
        Tracer { core: None }
    }

    pub(crate) fn attached(core: Arc<RecorderCore>) -> Self {
        Tracer { core: Some(core) }
    }

    /// Whether spans from this tracer record anywhere.
    #[must_use]
    pub fn is_live(&self) -> bool {
        self.core.is_some()
    }

    /// Reads the clock only when the tracer is live — for timing a
    /// region that is later attached via [`Span::child_since`] (the
    /// same `Option<Instant>` shape as [`crate::Histogram::start`]).
    #[must_use]
    pub fn clock(&self) -> Option<Instant> {
        self.core.as_ref().map(|_| Instant::now())
    }

    /// The trace id active on the *current thread*, if any. Used to
    /// stamp cross-thread causality annotations (e.g. the engine's
    /// demand-trace cell).
    #[must_use]
    pub fn current_trace() -> Option<TraceId> {
        CONTEXT.with(|ctx| ctx.borrow().last().map(|&(t, _)| t))
    }

    /// Starts a span. With an active span on this thread it becomes a
    /// child in the same trace; on an idle thread it roots a new trace
    /// with a fresh [`TraceId`].
    #[must_use]
    #[inline]
    pub fn span(&self, name: &'static str) -> Span {
        self.start(name, None)
    }

    /// Starts a root span under a caller-minted trace id (the HTTP
    /// server mints the id up front so `X-Drange-Request-Id` exists
    /// even when tracing is off). Behaves as [`Tracer::span`] when a
    /// context is already active on this thread.
    #[must_use]
    #[inline]
    pub fn root_span(&self, name: &'static str, trace: TraceId) -> Span {
        self.start(name, Some(trace))
    }

    #[inline]
    fn start(&self, name: &'static str, root_trace: Option<TraceId>) -> Span {
        let Some(core) = &self.core else {
            return Span {
                inner: None,
                _not_send: PhantomData,
            };
        };
        let span = SpanId(next_nonzero_id());
        let (trace, parent) = CONTEXT.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            let (trace, parent) = match ctx.last() {
                Some(&(trace, active)) => (trace, Some(active)),
                None => (root_trace.unwrap_or_else(TraceId::next), None),
            };
            ctx.push((trace, span));
            (trace, parent)
        });
        Span {
            inner: Some(Box::new(SpanInner {
                core: Arc::clone(core),
                rec: SpanRecord {
                    trace,
                    span,
                    parent,
                    name,
                    thread: thread_id(),
                    start: Instant::now(),
                    duration: Duration::ZERO,
                    attrs: Vec::new(),
                    events: Vec::new(),
                },
            })),
            _not_send: PhantomData,
        }
    }
}

struct SpanInner {
    core: Arc<RecorderCore>,
    rec: SpanRecord,
}

/// RAII span guard: duration runs from creation to drop.
///
/// Thread-affine by construction (`!Send`): nesting is tracked on a
/// thread-local stack, so a guard must be dropped on the thread that
/// started it. All mutators are no-ops on an inert span.
///
/// The live state is boxed so the noop guard is a null-pointer-sized
/// `None` — constructing and dropping one moves eight bytes, which is
/// what keeps uninstrumented servers inside the overhead budget
/// (`telemetry_overhead` bench, span-noop column).
pub struct Span {
    inner: Option<Box<SpanInner>>,
    _not_send: PhantomData<*const ()>,
}

impl fmt::Debug for Span {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match &self.inner {
            Some(s) => f
                .debug_struct("Span")
                .field("trace", &s.rec.trace)
                .field("span", &s.rec.span)
                .field("name", &s.rec.name)
                .finish(),
            None => f.write_str("Span(noop)"),
        }
    }
}

impl Span {
    /// Whether this span records anywhere (false for noop spans).
    #[must_use]
    #[inline]
    pub fn is_recording(&self) -> bool {
        self.inner.is_some()
    }

    /// The trace this span belongs to (`None` for noop spans).
    #[must_use]
    #[inline]
    pub fn trace_id(&self) -> Option<TraceId> {
        self.inner.as_ref().map(|s| s.rec.trace)
    }

    /// This span's id (`None` for noop spans).
    #[must_use]
    #[inline]
    pub fn id(&self) -> Option<SpanId> {
        self.inner.as_ref().map(|s| s.rec.span)
    }

    #[inline]
    fn push_attr(&mut self, key: &'static str, value: AttrValue) {
        if let Some(s) = &mut self.inner {
            s.rec.attrs.push((key, value));
        }
    }

    /// Attaches an unsigned-integer attribute.
    #[inline]
    pub fn attr_u64(&mut self, key: &'static str, value: u64) {
        self.push_attr(key, AttrValue::U64(value));
    }

    /// Attaches a signed-integer attribute.
    #[inline]
    pub fn attr_i64(&mut self, key: &'static str, value: i64) {
        self.push_attr(key, AttrValue::I64(value));
    }

    /// Attaches a floating-point attribute.
    #[inline]
    pub fn attr_f64(&mut self, key: &'static str, value: f64) {
        self.push_attr(key, AttrValue::F64(value));
    }

    /// Attaches a boolean attribute.
    #[inline]
    pub fn attr_bool(&mut self, key: &'static str, value: bool) {
        self.push_attr(key, AttrValue::Bool(value));
    }

    /// Attaches a string attribute. The value is only materialized on
    /// recording spans, so passing `&format!`-free borrows stays free
    /// in noop mode.
    #[inline]
    pub fn attr_str(&mut self, key: &'static str, value: &str) {
        if self.inner.is_some() {
            self.push_attr(key, AttrValue::Str(value.to_string()));
        }
    }

    /// Annotates a point event (rendered as an instant in the Chrome
    /// export).
    #[inline]
    pub fn event(&mut self, name: &'static str) {
        self.event_inner(name, None);
    }

    /// Annotates a point event with a magnitude.
    #[inline]
    pub fn event_u64(&mut self, name: &'static str, value: u64) {
        self.event_inner(name, Some(value));
    }

    #[inline]
    fn event_inner(&mut self, name: &'static str, value: Option<u64>) {
        if let Some(s) = &mut self.inner {
            s.rec.events.push(SpanEvent {
                at: Instant::now(),
                name,
                value,
            });
        }
    }

    /// Records an already-elapsed region as a *completed child* of this
    /// span, from `start` (obtained via [`Tracer::clock`]) to now.
    /// Covers regions that end before a span guard can exist — e.g.
    /// HTTP head parsing, which finishes before the request's root span
    /// is created.
    #[inline]
    pub fn child_since(&self, name: &'static str, start: Option<Instant>) {
        let (Some(s), Some(start)) = (&self.inner, start) else {
            return;
        };
        buffer_record(SpanRecord {
            trace: s.rec.trace,
            span: SpanId(next_nonzero_id()),
            parent: Some(s.rec.span),
            name,
            thread: thread_id(),
            start,
            duration: start.elapsed(),
            attrs: Vec::new(),
            events: Vec::new(),
        });
    }
}

/// Buffers one finished (non-root) span record for the thread's active
/// trace, bounded by [`MAX_SPANS_PER_TRACE`]. Returns whether the
/// record was kept.
fn buffer_record(rec: SpanRecord) -> bool {
    TRACE_BUF.with(|buf| {
        let mut buf = buf.borrow_mut();
        if buf.len() >= MAX_SPANS_PER_TRACE {
            return false;
        }
        buf.push(rec);
        true
    })
}

impl Drop for Span {
    #[inline]
    fn drop(&mut self) {
        let Some(mut s) = self.inner.take() else {
            return;
        };
        s.rec.duration = s.rec.start.elapsed();
        CONTEXT.with(|ctx| {
            let mut ctx = ctx.borrow_mut();
            // Pop *this* span if it is the top of the stack. Out-of-
            // order drops (a child outliving its parent) pop down to
            // and including this span so the stack cannot leak.
            while let Some(&(_, top)) = ctx.last() {
                ctx.pop();
                if top == s.rec.span {
                    break;
                }
            }
        });
        let is_root = s.rec.parent.is_none();
        let root_duration = s.rec.duration;
        let overflowed = !buffer_record(s.rec);
        if overflowed {
            s.core.count_overflow(1);
        }
        if is_root {
            let spans = TRACE_BUF.with(|buf| std::mem::take(&mut *buf.borrow_mut()));
            s.core.finish_trace(spans, root_duration);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::recorder::FlightRecorder;

    #[test]
    fn ids_are_nonzero_unique_and_hex() {
        let a = TraceId::next();
        let b = TraceId::next();
        assert_ne!(a, b);
        assert_ne!(a.as_u64(), 0);
        assert_eq!(a.to_string().len(), 16);
        assert_eq!(TraceId::from_u64(a.as_u64()), Some(a));
        assert_eq!(TraceId::from_u64(0), None);
    }

    #[test]
    fn noop_spans_are_inert() {
        let tracer = Tracer::noop();
        assert!(!tracer.is_live());
        assert!(tracer.clock().is_none());
        let mut span = tracer.span("noop");
        assert!(!span.is_recording());
        assert!(span.trace_id().is_none());
        span.attr_u64("bytes", 64);
        span.event("nothing");
        drop(span);
        assert!(Tracer::current_trace().is_none());
    }

    #[test]
    fn nesting_follows_the_thread_context() {
        let recorder = FlightRecorder::new();
        let tracer = recorder.tracer();
        let root_trace;
        {
            let root = tracer.span("root");
            root_trace = root.trace_id().expect("live root");
            assert_eq!(Tracer::current_trace(), Some(root_trace));
            {
                let child = tracer.span("child");
                assert_eq!(child.trace_id(), Some(root_trace));
                let grandchild = tracer.span("grandchild");
                assert_eq!(grandchild.trace_id(), Some(root_trace));
            }
        }
        assert!(Tracer::current_trace().is_none());
        let spans = recorder.records();
        assert_eq!(spans.len(), 3);
        let root = spans.iter().find(|s| s.name == "root").expect("root");
        let child = spans.iter().find(|s| s.name == "child").expect("child");
        let grand = spans
            .iter()
            .find(|s| s.name == "grandchild")
            .expect("grandchild");
        assert_eq!(root.parent, None);
        assert_eq!(child.parent, Some(root.span));
        assert_eq!(grand.parent, Some(child.span));
        assert!(spans.iter().all(|s| s.trace == root_trace));
    }

    #[test]
    fn root_span_uses_the_caller_minted_id() {
        let recorder = FlightRecorder::new();
        let tracer = recorder.tracer();
        let id = TraceId::next();
        drop(tracer.root_span("http.request", id));
        let spans = recorder.records();
        assert_eq!(spans.len(), 1);
        assert_eq!(spans[0].trace, id);
    }

    #[test]
    fn attrs_events_and_retro_children_record() {
        let recorder = FlightRecorder::new();
        let tracer = recorder.tracer();
        let t0 = tracer.clock();
        assert!(t0.is_some());
        {
            let mut span = tracer.span("work");
            span.attr_u64("bytes", 64);
            span.attr_str("status", "ok");
            span.attr_bool("degraded", false);
            span.event_u64("lifecycle.quarantine", 3);
            span.child_since("parse", t0);
        }
        let spans = recorder.records();
        assert_eq!(spans.len(), 2);
        let parse = spans.iter().find(|s| s.name == "parse").expect("parse");
        let work = spans.iter().find(|s| s.name == "work").expect("work");
        assert_eq!(parse.parent, Some(work.span));
        assert_eq!(work.attrs[0], ("bytes", AttrValue::U64(64)));
        assert_eq!(work.events.len(), 1);
        assert_eq!(work.events[0].value, Some(3));
    }

    #[test]
    fn sibling_traces_on_other_threads_stay_separate() {
        let recorder = FlightRecorder::new();
        let tracer = recorder.tracer();
        let handles: Vec<_> = (0..4)
            .map(|i| {
                let tracer = tracer.clone();
                std::thread::spawn(move || {
                    let mut span = tracer.span("engine.batch");
                    span.attr_u64("worker", i);
                    span.trace_id().expect("live").as_u64()
                })
            })
            .collect();
        let mut ids: Vec<u64> = handles.into_iter().map(|h| h.join().unwrap()).collect();
        ids.sort_unstable();
        ids.dedup();
        assert_eq!(ids.len(), 4, "each thread roots its own trace");
        assert_eq!(recorder.records().len(), 4);
    }
}
