//! Periodic reporter: a background thread that logs a one-line
//! registry summary at a configurable interval.

use std::sync::PoisonError;
use std::time::Duration;

use crate::registry::MetricsRegistry;
use crate::sync_shim::thread::JoinHandle;
use crate::sync_shim::{thread, Arc, Condvar, Mutex};

/// Handle to the periodic reporter thread.
///
/// The thread emits [`MetricsRegistry::summary_line`] to the given sink
/// every interval until [`Reporter::stop`] is called or the handle is
/// dropped (both join the thread promptly — the interval sleep is
/// interruptible).
#[derive(Debug)]
pub struct Reporter {
    stop: Arc<(Mutex<bool>, Condvar)>,
    handle: Option<JoinHandle<()>>,
}

impl Reporter {
    /// Spawns the reporter thread.
    ///
    /// `sink` receives one summary line per interval tick; pass e.g.
    /// `|line| eprintln!("[metrics] {line}")`.
    ///
    /// # Panics
    ///
    /// Panics when `every` is zero or the OS refuses to spawn the
    /// thread.
    #[must_use]
    pub fn spawn<F>(registry: MetricsRegistry, every: Duration, sink: F) -> Self
    where
        F: Fn(&str) + Send + 'static,
    {
        assert!(!every.is_zero(), "reporter interval must be nonzero");
        let stop = Arc::new((Mutex::new(false), Condvar::new()));
        let handle = thread::Builder::new()
            .name("drange-metrics-reporter".into())
            .spawn({
                let stop = Arc::clone(&stop);
                move || {
                    let (lock, cv) = &*stop;
                    let mut stopped = lock.lock().unwrap_or_else(PoisonError::into_inner);
                    loop {
                        // Checked under the lock before every wait: a stop
                        // requested before this thread first parks would
                        // otherwise lose its wakeup and stall the join
                        // until the interval elapses. Verified by the
                        // tests/loom_reporter.rs models.
                        if *stopped {
                            return;
                        }
                        let (guard, timeout) = cv
                            .wait_timeout(stopped, every)
                            .unwrap_or_else(PoisonError::into_inner);
                        stopped = guard;
                        if *stopped {
                            return;
                        }
                        if timeout.timed_out() {
                            sink(&registry.summary_line());
                        }
                    }
                }
            })
            // xtask:allow(no-panic) -- documented panic contract: OS spawn failure is fatal
            .expect("spawning the metrics reporter thread");
        Reporter {
            stop,
            handle: Some(handle),
        }
    }

    /// Stops the reporter and joins its thread.
    pub fn stop(mut self) {
        self.halt();
    }

    fn halt(&mut self) {
        let (lock, cv) = &*self.stop;
        *lock.lock().unwrap_or_else(PoisonError::into_inner) = true;
        cv.notify_all();
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Reporter {
    fn drop(&mut self) {
        self.halt();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::sync::atomic::{AtomicUsize, Ordering};

    #[test]
    fn reporter_ticks_and_stops() {
        let reg = MetricsRegistry::new();
        reg.counter("ticks_seen_total", &[]).add(7);
        let lines = Arc::new(Mutex::new(Vec::new()));
        let sink_lines = Arc::clone(&lines);
        let reporter = Reporter::spawn(reg, Duration::from_millis(10), move |line| {
            sink_lines.lock().unwrap().push(line.to_string());
        });
        let deadline = std::time::Instant::now() + Duration::from_secs(5);
        while lines.lock().unwrap().is_empty() {
            assert!(
                std::time::Instant::now() < deadline,
                "reporter never ticked"
            );
            std::thread::sleep(Duration::from_millis(5));
        }
        reporter.stop();
        let seen = lines.lock().unwrap();
        assert!(
            seen.iter().all(|l| l.contains("ticks_seen_total=7")),
            "{seen:?}"
        );
    }

    #[test]
    fn drop_joins_quickly() {
        let count = Arc::new(AtomicUsize::new(0));
        let sink_count = Arc::clone(&count);
        let reporter = Reporter::spawn(
            MetricsRegistry::new(),
            Duration::from_secs(3600),
            move |_| {
                sink_count.fetch_add(1, Ordering::SeqCst);
            },
        );
        let t0 = std::time::Instant::now();
        drop(reporter);
        assert!(
            t0.elapsed() < Duration::from_secs(5),
            "drop must not wait the interval"
        );
        assert_eq!(count.load(Ordering::SeqCst), 0);
    }

    #[test]
    #[should_panic(expected = "interval must be nonzero")]
    fn zero_interval_rejected() {
        let _ = Reporter::spawn(MetricsRegistry::new(), Duration::ZERO, |_| {});
    }
}
