//! Export surfaces: Prometheus text format, JSON snapshots, and the
//! one-line summary used by the periodic reporter.

use std::fmt::Write as _;

use crate::metrics::{bucket_bound, fmt_ns, HistogramSnapshot};
use crate::registry::{MetricSample, MetricValue, MetricsRegistry};

/// Escapes a Prometheus label value (`\`, `"`, newline).
fn escape_label(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            _ => out.push(ch),
        }
    }
    out
}

/// Renders a label set as `{k="v",...}` (empty string for no labels),
/// with `extra` appended last when given.
fn label_block(labels: &[(String, String)], extra: Option<(&str, &str)>) -> String {
    let mut pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("{k}=\"{}\"", escape_label(v)))
        .collect();
    if let Some((k, v)) = extra {
        pairs.push(format!("{k}=\"{}\"", escape_label(v)));
    }
    if pairs.is_empty() {
        String::new()
    } else {
        format!("{{{}}}", pairs.join(","))
    }
}

fn render_histogram_prometheus(
    out: &mut String,
    name: &str,
    labels: &[(String, String)],
    h: &HistogramSnapshot,
) {
    let mut cumulative = 0u64;
    for (i, &n) in h.buckets.iter().enumerate() {
        cumulative += n;
        let le = bucket_bound(i).to_string();
        let lb = label_block(labels, Some(("le", &le)));
        let _ = writeln!(out, "{name}_bucket{lb} {cumulative}");
    }
    cumulative += h.overflow;
    let lb = label_block(labels, Some(("le", "+Inf")));
    let _ = writeln!(out, "{name}_bucket{lb} {cumulative}");
    let lb = label_block(labels, None);
    let _ = writeln!(out, "{name}_sum{lb} {}", h.sum);
    let _ = writeln!(out, "{name}_count{lb} {}", h.count);
}

/// Renders the registry in the Prometheus text exposition format.
///
/// Histograms use nanosecond `le` bounds (the crate-wide latency unit);
/// one `# TYPE` line precedes each metric name. Output is
/// deterministic: series are ordered by (name, sorted labels).
#[must_use]
pub fn render_prometheus(registry: &MetricsRegistry) -> String {
    let mut out = String::new();
    let mut current_name: Option<String> = None;
    for sample in registry.samples() {
        if current_name.as_deref() != Some(sample.name.as_str()) {
            let _ = writeln!(
                out,
                "# TYPE {} {}",
                sample.name,
                sample.value.kind().prometheus_type()
            );
            current_name = Some(sample.name.clone());
        }
        match &sample.value {
            MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                let lb = label_block(&sample.labels, None);
                let _ = writeln!(out, "{}{lb} {v}", sample.name);
            }
            MetricValue::Histogram(h) => {
                render_histogram_prometheus(&mut out, &sample.name, &sample.labels, h);
            }
        }
    }
    out
}

/// Escapes a string for embedding in a JSON document (shared with the
/// flight recorder's Chrome-trace exporter).
pub(crate) fn escape_json(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for ch in value.chars() {
        match ch {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out
}

fn json_labels(labels: &[(String, String)]) -> String {
    let pairs: Vec<String> = labels
        .iter()
        .map(|(k, v)| format!("\"{}\":\"{}\"", escape_json(k), escape_json(v)))
        .collect();
    format!("{{{}}}", pairs.join(","))
}

fn json_sample(sample: &MetricSample) -> String {
    let head = format!(
        "{{\"name\":\"{}\",\"kind\":\"{}\",\"labels\":{}",
        escape_json(&sample.name),
        sample.value.kind().prometheus_type(),
        json_labels(&sample.labels)
    );
    match &sample.value {
        MetricValue::Counter(v) | MetricValue::Gauge(v) => format!("{head},\"value\":{v}}}"),
        MetricValue::Histogram(h) => {
            let buckets: Vec<String> = h.buckets.iter().map(u64::to_string).collect();
            format!(
                "{head},\"count\":{},\"sum_ns\":{},\"max_ns\":{},\"p50_ns\":{},\
                 \"p95_ns\":{},\"p99_ns\":{},\"overflow\":{},\"buckets\":[{}]}}",
                h.count,
                h.sum,
                h.max,
                h.p50(),
                h.p95(),
                h.p99(),
                h.overflow,
                buckets.join(",")
            )
        }
    }
}

/// Renders the registry as one JSON document:
/// `{"metrics":[{"name":...,"kind":...,"labels":{...},...}]}`.
///
/// Counters and gauges carry `"value"`; histograms carry
/// `"count"`/`"sum_ns"`/`"max_ns"`, the p50/p95/p99 upper-bound
/// estimates, and the raw (non-cumulative) bucket array.
#[must_use]
pub fn render_json(registry: &MetricsRegistry) -> String {
    let entries: Vec<String> = registry.samples().iter().map(json_sample).collect();
    format!("{{\"metrics\":[{}]}}", entries.join(","))
}

/// Renders a one-line summary: per metric *name*, label sets are
/// aggregated (counters and gauges summed, histogram buckets merged)
/// and reported as `name=value` or `name:p50/p99/n`. This is what the
/// periodic [`crate::Reporter`] logs.
#[must_use]
pub fn summary_line(registry: &MetricsRegistry) -> String {
    let mut parts: Vec<String> = Vec::new();
    let mut current: Option<(String, MetricValue)> = None;
    let flush = |entry: &Option<(String, MetricValue)>, parts: &mut Vec<String>| {
        if let Some((name, value)) = entry {
            match value {
                MetricValue::Counter(v) | MetricValue::Gauge(v) => {
                    parts.push(format!("{name}={v}"));
                }
                MetricValue::Histogram(h) => parts.push(format!(
                    "{name}:p50={}/p99={}/n={}",
                    fmt_ns(h.p50()),
                    fmt_ns(h.p99()),
                    h.count
                )),
            }
        }
    };
    for sample in registry.samples() {
        match &mut current {
            Some((name, value))
                if *name == sample.name
                    && std::mem::discriminant(value) == std::mem::discriminant(&sample.value) =>
            {
                match (value, sample.value) {
                    (MetricValue::Counter(a), MetricValue::Counter(b))
                    | (MetricValue::Gauge(a), MetricValue::Gauge(b)) => *a += b,
                    (MetricValue::Histogram(a), MetricValue::Histogram(b)) => a.merge(&b),
                    // The guard pins matching kinds; a mismatched name
                    // (impossible via the registry API) falls through to
                    // the flush arm below instead of aborting.
                    _ => {}
                }
            }
            _ => {
                flush(&current, &mut parts);
                current = Some((sample.name, sample.value));
            }
        }
    }
    flush(&current, &mut parts);
    if parts.is_empty() {
        "no metrics registered".to_string()
    } else {
        parts.join(" | ")
    }
}

impl MetricsRegistry {
    /// Prometheus text-format rendering; see
    /// [`crate::export::render_prometheus`].
    #[must_use]
    pub fn render_prometheus(&self) -> String {
        render_prometheus(self)
    }

    /// JSON snapshot rendering; see
    /// [`crate::export::render_json`].
    #[must_use]
    pub fn render_json(&self) -> String {
        render_json(self)
    }

    /// One-line cross-label summary; see
    /// [`crate::export::summary_line`].
    #[must_use]
    pub fn summary_line(&self) -> String {
        summary_line(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::HISTOGRAM_BUCKETS;

    #[test]
    fn prometheus_golden_output() {
        let reg = MetricsRegistry::new();
        reg.counter("drange_served_bits_total", &[]).add(800);
        reg.gauge("drange_pool_bits", &[]).set(4096);
        let h = reg.histogram(
            "drange_stage_latency_ns",
            &[("stage", "harvest"), ("worker", "0")],
        );
        h.record_ns(1);
        h.record_ns(3);
        h.record_ns(3);

        let text = reg.render_prometheus();
        let expected_head = "\
# TYPE drange_pool_bits gauge
drange_pool_bits 4096
# TYPE drange_served_bits_total counter
drange_served_bits_total 800
# TYPE drange_stage_latency_ns histogram
drange_stage_latency_ns_bucket{stage=\"harvest\",worker=\"0\",le=\"1\"} 1
drange_stage_latency_ns_bucket{stage=\"harvest\",worker=\"0\",le=\"2\"} 1
drange_stage_latency_ns_bucket{stage=\"harvest\",worker=\"0\",le=\"4\"} 3
drange_stage_latency_ns_bucket{stage=\"harvest\",worker=\"0\",le=\"8\"} 3";
        assert!(
            text.starts_with(expected_head),
            "unexpected prefix:\n{}",
            &text[..expected_head.len().min(text.len())]
        );
        let expected_tail = "\
drange_stage_latency_ns_bucket{stage=\"harvest\",worker=\"0\",le=\"+Inf\"} 3
drange_stage_latency_ns_sum{stage=\"harvest\",worker=\"0\"} 7
drange_stage_latency_ns_count{stage=\"harvest\",worker=\"0\"} 3
";
        assert!(text.ends_with(expected_tail), "unexpected suffix:\n{text}");
        // One bucket line per finite bucket plus +Inf.
        let bucket_lines = text.lines().filter(|l| l.contains("_bucket{")).count();
        assert_eq!(bucket_lines, HISTOGRAM_BUCKETS + 1);
    }

    #[test]
    fn prometheus_buckets_are_cumulative() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[]);
        h.record_ns(1);
        h.record_ns(100);
        h.record_ns(u64::MAX);
        let text = reg.render_prometheus();
        assert!(text.contains("lat_bucket{le=\"1\"} 1"));
        assert!(text.contains("lat_bucket{le=\"128\"} 2"));
        let last_finite = bucket_bound(HISTOGRAM_BUCKETS - 1);
        assert!(text.contains(&format!("lat_bucket{{le=\"{last_finite}\"}} 2")));
        assert!(text.contains("lat_bucket{le=\"+Inf\"} 3"));
        assert!(text.contains("lat_count 3"));
    }

    #[test]
    fn label_escaping() {
        let reg = MetricsRegistry::new();
        reg.counter("c", &[("k", "a\"b\\c\nd")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains(r#"c{k="a\"b\\c\nd"} 1"#), "{text}");
    }

    /// The exposition format requires exactly three escapes in label
    /// values — backslash, double-quote, and line feed — each checked
    /// in isolation so a regression in one cannot hide behind the
    /// others.
    #[test]
    fn label_escaping_covers_each_required_character() {
        let reg = MetricsRegistry::new();
        reg.counter("c", &[("path", r"C:\temp\x")]).inc();
        assert!(
            reg.render_prometheus()
                .contains(r#"c{path="C:\\temp\\x"} 1"#),
            "backslash: {}",
            reg.render_prometheus()
        );

        let reg = MetricsRegistry::new();
        reg.counter("c", &[("q", "say \"hi\"")]).inc();
        assert!(
            reg.render_prometheus().contains(r#"c{q="say \"hi\""} 1"#),
            "double quote: {}",
            reg.render_prometheus()
        );

        let reg = MetricsRegistry::new();
        reg.counter("c", &[("n", "line1\nline2")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains(r#"c{n="line1\nline2"} 1"#), "newline: {text}");
        // The escape keeps the series on one physical line — a raw
        // newline would split it and corrupt the whole exposition.
        assert!(
            text.lines()
                .any(|l| l.starts_with("c{") && l.ends_with(" 1")),
            "{text}"
        );
    }

    /// A backslash that already looks like an escape sequence must
    /// still be doubled — the format has no pass-through.
    #[test]
    fn label_escaping_doubles_preescaped_input() {
        let reg = MetricsRegistry::new();
        reg.counter("c", &[("k", r"already\nescaped")]).inc();
        let text = reg.render_prometheus();
        assert!(text.contains(r#"c{k="already\\nescaped"} 1"#), "{text}");
    }

    /// Escaping applies to every label slot, including the synthesized
    /// `le` path used for histogram buckets (the `extra` argument of
    /// `label_block`).
    #[test]
    fn histogram_series_escape_user_labels_in_every_line() {
        let reg = MetricsRegistry::new();
        let h = reg.histogram("lat", &[("src", "a\\b\"c")]);
        h.record_ns(1);
        let text = reg.render_prometheus();
        assert!(
            text.contains(r#"lat_bucket{src="a\\b\"c",le="1"} 1"#),
            "{text}"
        );
        assert!(
            text.contains(r#"lat_bucket{src="a\\b\"c",le="+Inf"} 1"#),
            "{text}"
        );
        assert!(text.contains(r#"lat_sum{src="a\\b\"c"} 1"#), "{text}");
        assert!(text.contains(r#"lat_count{src="a\\b\"c"} 1"#), "{text}");
    }

    #[test]
    fn json_snapshot_shape() {
        let reg = MetricsRegistry::new();
        reg.counter("bits_total", &[("worker", "1")]).add(42);
        let h = reg.histogram("lat_ns", &[]);
        h.record_ns(100);
        let json = reg.render_json();
        assert!(json.starts_with("{\"metrics\":["));
        assert!(json.contains(
            "{\"name\":\"bits_total\",\"kind\":\"counter\",\"labels\":{\"worker\":\"1\"},\"value\":42}"
        ));
        assert!(json.contains("\"name\":\"lat_ns\""));
        assert!(json.contains("\"count\":1"));
        assert!(json.contains("\"p50_ns\":128"));
        assert!(json.ends_with("]}"));
    }

    #[test]
    fn json_escapes_strings() {
        let reg = MetricsRegistry::new();
        reg.counter("c", &[("k", "a\"b\\c\nd")]).inc();
        let json = reg.render_json();
        assert!(json.contains(r#""k":"a\"b\\c\nd""#), "{json}");
    }

    #[test]
    fn empty_registry_renders_empty() {
        let reg = MetricsRegistry::new();
        assert_eq!(reg.render_prometheus(), "");
        assert_eq!(reg.render_json(), "{\"metrics\":[]}");
        assert_eq!(reg.summary_line(), "no metrics registered");
    }

    #[test]
    fn summary_aggregates_across_labels() {
        let reg = MetricsRegistry::new();
        reg.counter("bits_total", &[("worker", "0")]).add(10);
        reg.counter("bits_total", &[("worker", "1")]).add(5);
        reg.histogram("lat_ns", &[("stage", "a")]).record_ns(100);
        reg.histogram("lat_ns", &[("stage", "b")]).record_ns(100);
        let line = reg.summary_line();
        assert!(line.contains("bits_total=15"), "{line}");
        assert!(line.contains("lat_ns:p50=128ns"), "{line}");
        assert!(line.contains("n=2"), "{line}");
    }
}
