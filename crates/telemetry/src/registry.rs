//! The metrics registry: names and labels map to shared atomic cells.
//!
//! A [`MetricsRegistry`] is a cheap cloneable handle (`Arc` inside);
//! clone it into every thread that registers or exports metrics. The
//! registry's interior mutex guards *registration and snapshots only* —
//! the [`Counter`]/[`Gauge`]/[`Histogram`] handles returned by the
//! `counter`/`gauge`/`histogram` methods operate on lock-free atomics
//! and never contend with each other or with exports.

use std::collections::BTreeMap;
use std::sync::PoisonError;

use crate::metrics::{Counter, Gauge, Histogram, HistogramCore, HistogramSnapshot};
use crate::sync_shim::{Arc, AtomicU64, Mutex, Ordering};

/// The kind of a registered metric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum MetricKind {
    /// Monotonically increasing counter.
    Counter,
    /// Settable gauge.
    Gauge,
    /// Log2-bucketed latency histogram.
    Histogram,
}

impl MetricKind {
    /// The Prometheus `# TYPE` keyword for this kind.
    #[must_use]
    pub fn prometheus_type(self) -> &'static str {
        match self {
            MetricKind::Counter => "counter",
            MetricKind::Gauge => "gauge",
            MetricKind::Histogram => "histogram",
        }
    }
}

/// One time series: a metric name plus its sorted label set.
#[derive(Debug, Clone, PartialEq, Eq, PartialOrd, Ord)]
struct SeriesKey {
    name: String,
    labels: Vec<(String, String)>,
}

/// Storage tables. Each kind gets its own typed map, so looking up a
/// series never needs a "wrong variant" branch — the `kinds` map is
/// checked first and is the single source of truth for name→kind.
#[derive(Debug, Default)]
struct Tables {
    /// name -> kind; one metric name has exactly one kind across all
    /// label sets.
    kinds: BTreeMap<String, MetricKind>,
    /// (name, labels) -> cell, per kind. BTreeMap ordering makes
    /// exports deterministic.
    counters: BTreeMap<SeriesKey, Arc<AtomicU64>>,
    gauges: BTreeMap<SeriesKey, Arc<AtomicU64>>,
    histograms: BTreeMap<SeriesKey, Arc<HistogramCore>>,
}

/// A point-in-time value of one series, produced by
/// [`MetricsRegistry::samples`].
#[derive(Debug, Clone)]
pub struct MetricSample {
    /// Metric name.
    pub name: String,
    /// Sorted label pairs.
    pub labels: Vec<(String, String)>,
    /// The sampled value.
    pub value: MetricValue,
}

/// The value part of a [`MetricSample`].
#[derive(Debug, Clone)]
pub enum MetricValue {
    /// Counter reading.
    Counter(u64),
    /// Gauge reading.
    Gauge(u64),
    /// Histogram snapshot.
    Histogram(HistogramSnapshot),
}

impl MetricValue {
    /// The kind this value belongs to.
    #[must_use]
    pub fn kind(&self) -> MetricKind {
        match self {
            MetricValue::Counter(_) => MetricKind::Counter,
            MetricValue::Gauge(_) => MetricKind::Gauge,
            MetricValue::Histogram(_) => MetricKind::Histogram,
        }
    }
}

/// A shared, cloneable metrics registry.
///
/// Registering the same name + label set twice returns a handle to the
/// same cell, so independent components can meet on a series without
/// coordination. Label pairs are sorted by key at registration, making
/// label order irrelevant.
#[derive(Debug, Clone, Default)]
pub struct MetricsRegistry {
    tables: Arc<Mutex<Tables>>,
}

fn key(name: &str, labels: &[(&str, &str)]) -> SeriesKey {
    assert!(!name.is_empty(), "metric name must be nonempty");
    let mut labels: Vec<(String, String)> = labels
        .iter()
        .map(|(k, v)| ((*k).to_string(), (*v).to_string()))
        .collect();
    labels.sort();
    SeriesKey {
        name: name.to_string(),
        labels,
    }
}

impl MetricsRegistry {
    /// An empty registry.
    #[must_use]
    pub fn new() -> Self {
        MetricsRegistry::default()
    }

    fn check_kind(kinds: &mut BTreeMap<String, MetricKind>, name: &str, kind: MetricKind) {
        match kinds.get(name) {
            None => {
                kinds.insert(name.to_string(), kind);
            }
            Some(existing) => assert!(
                *existing == kind,
                "metric {name} already registered as {existing:?}, not {kind:?}"
            ),
        }
    }

    /// Registers (or re-opens) a counter series and returns a live
    /// handle to it.
    ///
    /// # Panics
    ///
    /// Panics when `name` is empty or already registered with a
    /// different kind.
    #[must_use]
    pub fn counter(&self, name: &str, labels: &[(&str, &str)]) -> Counter {
        let key = key(name, labels);
        let mut tables = self.tables.lock().unwrap_or_else(PoisonError::into_inner);
        Self::check_kind(&mut tables.kinds, name, MetricKind::Counter);
        let cell = tables
            .counters
            .entry(key)
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Counter::live(Arc::clone(cell))
    }

    /// Registers (or re-opens) a gauge series and returns a live handle
    /// to it.
    ///
    /// # Panics
    ///
    /// Panics when `name` is empty or already registered with a
    /// different kind.
    #[must_use]
    pub fn gauge(&self, name: &str, labels: &[(&str, &str)]) -> Gauge {
        let key = key(name, labels);
        let mut tables = self.tables.lock().unwrap_or_else(PoisonError::into_inner);
        Self::check_kind(&mut tables.kinds, name, MetricKind::Gauge);
        let cell = tables
            .gauges
            .entry(key)
            .or_insert_with(|| Arc::new(AtomicU64::new(0)));
        Gauge::live(Arc::clone(cell))
    }

    /// Registers (or re-opens) a histogram series and returns a live
    /// handle to it.
    ///
    /// # Panics
    ///
    /// Panics when `name` is empty or already registered with a
    /// different kind.
    #[must_use]
    pub fn histogram(&self, name: &str, labels: &[(&str, &str)]) -> Histogram {
        let key = key(name, labels);
        let mut tables = self.tables.lock().unwrap_or_else(PoisonError::into_inner);
        Self::check_kind(&mut tables.kinds, name, MetricKind::Histogram);
        let core = tables
            .histograms
            .entry(key)
            .or_insert_with(|| Arc::new(HistogramCore::new()));
        Histogram::live(Arc::clone(core))
    }

    /// Number of registered series.
    #[must_use]
    pub fn len(&self) -> usize {
        let tables = self.tables.lock().unwrap_or_else(PoisonError::into_inner);
        tables.counters.len() + tables.gauges.len() + tables.histograms.len()
    }

    /// Whether no series are registered.
    #[must_use]
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Samples every series in deterministic (name, labels) order.
    #[must_use]
    pub fn samples(&self) -> Vec<MetricSample> {
        let tables = self.tables.lock().unwrap_or_else(PoisonError::into_inner);
        let mut samples: Vec<MetricSample> = tables
            .counters
            .iter()
            .map(|(key, c)| MetricSample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: MetricValue::Counter(c.load(Ordering::Relaxed)),
            })
            .chain(tables.gauges.iter().map(|(key, g)| MetricSample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: MetricValue::Gauge(g.load(Ordering::Relaxed)),
            }))
            .chain(tables.histograms.iter().map(|(key, h)| MetricSample {
                name: key.name.clone(),
                labels: key.labels.clone(),
                value: MetricValue::Histogram(h.snapshot()),
            }))
            .collect();
        samples.sort_by(|a, b| (&a.name, &a.labels).cmp(&(&b.name, &b.labels)));
        samples
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn same_series_shares_the_cell() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("bits_total", &[("worker", "0")]);
        let b = reg.counter("bits_total", &[("worker", "0")]);
        a.add(5);
        b.add(7);
        assert_eq!(a.get(), 12);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn label_order_is_irrelevant() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x", &[("a", "1"), ("b", "2")]);
        let b = reg.counter("x", &[("b", "2"), ("a", "1")]);
        a.inc();
        assert_eq!(b.get(), 1);
        assert_eq!(reg.len(), 1);
    }

    #[test]
    fn distinct_labels_are_distinct_series() {
        let reg = MetricsRegistry::new();
        let a = reg.counter("x", &[("worker", "0")]);
        let b = reg.counter("x", &[("worker", "1")]);
        a.inc();
        assert_eq!(b.get(), 0);
        assert_eq!(reg.len(), 2);
    }

    #[test]
    #[should_panic(expected = "already registered")]
    fn kind_conflict_panics() {
        let reg = MetricsRegistry::new();
        let _ = reg.counter("x", &[]);
        let _ = reg.gauge("x", &[("other", "labels")]);
    }

    #[test]
    fn registry_clones_share_series() {
        let reg = MetricsRegistry::new();
        let clone = reg.clone();
        let c = reg.counter("shared", &[]);
        c.add(3);
        assert_eq!(clone.counter("shared", &[]).get(), 3);
    }

    #[test]
    fn samples_are_sorted_and_typed() {
        let reg = MetricsRegistry::new();
        reg.gauge("b_gauge", &[]).set(9);
        reg.counter("a_counter", &[]).inc();
        reg.histogram("c_hist", &[]).record_ns(4);
        let samples = reg.samples();
        let names: Vec<&str> = samples.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, ["a_counter", "b_gauge", "c_hist"]);
        assert!(matches!(samples[0].value, MetricValue::Counter(1)));
        assert!(matches!(samples[1].value, MetricValue::Gauge(9)));
        match &samples[2].value {
            MetricValue::Histogram(h) => assert_eq!(h.count, 1),
            other => panic!("expected histogram, got {other:?}"),
        }
    }

    #[test]
    fn registry_is_send_sync() {
        fn assert_send_sync<T: Send + Sync>() {}
        assert_send_sync::<MetricsRegistry>();
    }
}
