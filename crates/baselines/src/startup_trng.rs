//! Startup-value TRNGs: Tehranipoor+ (HOST 2016) and Eckert+ (MWSCAS
//! 2017).
//!
//! A fraction of DRAM cells powers up to a random value; reading them
//! right after a power cycle yields entropy (paper Section 8.3). The
//! structural limitation the paper emphasizes — reproduced here — is
//! that harvesting fresh entropy requires a *full power cycle*, so the
//! mechanism cannot stream.

use dram_sim::startup::power_cycle;
use dram_sim::CellAddr;
use memctrl::{MemoryController, Result};

/// Default modeled duration of a DRAM power cycle + re-initialization
/// (power ramp, bus training, ZQ calibration, timing-register setup),
/// ps. The paper treats this as implementation-defined and refuses to
/// quote a throughput; 100 ms is a typical cold-init budget.
pub const DEFAULT_POWER_CYCLE_PS: u64 = 100_000_000_000;

/// Startup-value TRNG (Tehranipoor+/Eckert+).
#[derive(Debug)]
pub struct StartupTrng {
    ctrl: MemoryController,
    inventory: Vec<CellAddr>,
    power_cycle_ps: u64,
    bits_emitted: u64,
    device_time_ps: u64,
}

impl StartupTrng {
    /// Enrolls the random-cell inventory with two power cycles: cells
    /// whose startup value differs between cycles are random cells.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn enroll(mut ctrl: MemoryController) -> Result<Self> {
        let g = ctrl.device().geometry();
        power_cycle(ctrl.device_mut());
        let snap1: Vec<Vec<u64>> = snapshot(&ctrl)?;
        power_cycle(ctrl.device_mut());
        let mut inventory = Vec::new();
        for bank in 0..g.banks {
            for row in 0..g.rows {
                for col in 0..g.cols {
                    let w2 = ctrl
                        .device()
                        .peek(dram_sim::WordAddr::new(bank, row, col))
                        // xtask:allow(no-panic) -- loop bounds come from the device's own geometry
                        .expect("in range");
                    let diff = snap1[bank][row * g.cols + col] ^ w2;
                    let mut d = diff;
                    while d != 0 {
                        let bit = d.trailing_zeros() as usize;
                        inventory.push(CellAddr::new(bank, row, col, bit));
                        d &= d - 1;
                    }
                }
            }
        }
        inventory.sort();
        Ok(StartupTrng {
            ctrl,
            inventory,
            power_cycle_ps: DEFAULT_POWER_CYCLE_PS,
            bits_emitted: 0,
            device_time_ps: 0,
        })
    }

    /// Overrides the modeled power-cycle duration.
    pub fn with_power_cycle_ps(mut self, ps: u64) -> Self {
        self.power_cycle_ps = ps;
        self
    }

    /// Number of enrolled random cells (bits per power cycle).
    ///
    /// Note: enrollment with two cycles finds cells that *differed that
    /// time* (~half the true random population); repeated enrollment
    /// converges on the full inventory.
    pub fn inventory_size(&self) -> usize {
        self.inventory.len()
    }

    /// One power cycle: returns the enrolled cells' startup values.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn harvest(&mut self) -> Result<Vec<bool>> {
        let t0 = self.ctrl.now_ps();
        self.ctrl.advance_ps(self.power_cycle_ps);
        power_cycle(self.ctrl.device_mut());
        let mut bits = Vec::with_capacity(self.inventory.len());
        // Read the inventory through the protocol, word by word.
        let mut open: Option<(usize, usize)> = None;
        for &cell in &self.inventory {
            if open != Some((cell.bank, cell.row)) {
                if let Some((b, _)) = open {
                    self.ctrl.pre(b)?;
                }
                self.ctrl.act(cell.bank, cell.row)?;
                open = Some((cell.bank, cell.row));
            }
            let w = self.ctrl.rd(cell.bank, cell.row, cell.col)?;
            bits.push((w >> cell.bit) & 1 == 1);
        }
        if let Some((b, _)) = open {
            self.ctrl.pre(b)?;
        }
        self.bits_emitted += bits.len() as u64;
        self.device_time_ps += self.ctrl.now_ps() - t0;
        Ok(bits)
    }

    /// Observed throughput, bits/s of device time.
    pub fn throughput_bps(&self) -> f64 {
        if self.device_time_ps == 0 {
            0.0
        } else {
            self.bits_emitted as f64 / (self.device_time_ps as f64 * 1e-12)
        }
    }

    /// Latency to 64 bits: one power cycle plus the first reads, ps.
    pub fn latency_64bit_ps(&self) -> u64 {
        self.power_cycle_ps + 64 * 60_000 / self.inventory_size().max(1) as u64
    }
}

fn snapshot(ctrl: &MemoryController) -> Result<Vec<Vec<u64>>> {
    let g = ctrl.device().geometry();
    let mut out = Vec::with_capacity(g.banks);
    for bank in 0..g.banks {
        let mut words = Vec::with_capacity(g.rows * g.cols);
        for row in 0..g.rows {
            for col in 0..g.cols {
                words.push(
                    ctrl.device()
                        .peek(dram_sim::WordAddr::new(bank, row, col))?,
                );
            }
        }
        out.push(words);
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{DeviceConfig, Geometry, Manufacturer};

    fn ctrl() -> MemoryController {
        // A small device keeps enrollment fast.
        MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(5)
                .with_noise_seed(6)
                .with_geometry(Geometry {
                    banks: 2,
                    rows: 128,
                    cols: 8,
                    word_bits: 64,
                    subarray_rows: 128,
                }),
        )
    }

    #[test]
    fn enrollment_finds_random_cells_near_expected_density() {
        let t = StartupTrng::enroll(ctrl()).unwrap();
        let cells = 2 * 128 * 8 * 64;
        let frac = t.inventory_size() as f64 / cells as f64;
        // Two cycles find a random cell when the two draws differ:
        // P ~ 2 p (1-p) averaged over bias ~ 0.4-0.5 of the 5% class.
        assert!((0.01..0.05).contains(&frac), "inventory fraction {frac}");
    }

    #[test]
    fn harvests_differ_between_power_cycles() {
        let mut t = StartupTrng::enroll(ctrl()).unwrap();
        let a = t.harvest().unwrap();
        let b = t.harvest().unwrap();
        assert_eq!(a.len(), t.inventory_size());
        assert_ne!(a, b, "startup values of random cells re-roll");
    }

    #[test]
    fn harvested_bits_are_roughly_balanced() {
        let mut t = StartupTrng::enroll(ctrl()).unwrap();
        let mut ones = 0usize;
        let mut total = 0usize;
        for _ in 0..6 {
            let bits = t.harvest().unwrap();
            ones += bits.iter().filter(|&&b| b).count();
            total += bits.len();
        }
        let frac = ones as f64 / total as f64;
        assert!((0.38..0.62).contains(&frac), "ones fraction {frac}");
    }

    #[test]
    fn throughput_is_limited_by_power_cycles() {
        let mut t = StartupTrng::enroll(ctrl())
            .unwrap()
            .with_power_cycle_ps(10_000_000_000);
        let _ = t.harvest().unwrap();
        let with_slow_cycle = t.throughput_bps();
        let mut fast = StartupTrng::enroll(ctrl())
            .unwrap()
            .with_power_cycle_ps(1_000_000);
        let _ = fast.harvest().unwrap();
        assert!(fast.throughput_bps() > with_slow_cycle);
    }

    #[test]
    fn latency_includes_power_cycle() {
        let t = StartupTrng::enroll(ctrl()).unwrap();
        assert!(t.latency_64bit_ps() >= DEFAULT_POWER_CYCLE_PS);
    }
}
