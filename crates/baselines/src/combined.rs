//! Combined TRNG (paper Section 8.4): D-RaNGe's sampling mechanism is
//! orthogonal to the retention-based mechanisms, so both can run on one
//! device at once — D-RaNGe hammers the banks with RNG cells while a
//! reserved bank accumulates retention failures in the background, and
//! each elapsed pause contributes its marginal-cell flip bits on top of
//! the activation-failure stream.

use dram_sim::retention::apply_refresh_pause;
use dram_sim::{CellAddr, DataPattern};
use drange_core::{DRange, DRangeConfig, DrangeError, RngCellCatalog};
use memctrl::MemoryController;

use crate::retention_trng::RetentionRegion;

/// Picoseconds per second.
const PS_PER_S: f64 = 1e12;

/// Statistics of a combined run.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CombinedStats {
    /// Bits contributed by the D-RaNGe sampling loop.
    pub drange_bits: u64,
    /// Bits contributed by retention harvests.
    pub retention_bits: u64,
    /// Retention harvests completed.
    pub retention_harvests: u64,
}

/// D-RaNGe plus a background retention TRNG on a reserved bank.
#[derive(Debug)]
pub struct CombinedTrng {
    trng: DRange,
    region: RetentionRegion,
    pause_s: f64,
    marginal: Vec<CellAddr>,
    last_harvest_ps: u64,
    stats: CombinedStats,
}

impl CombinedTrng {
    /// Builds the combined generator: enrolls the retention region's
    /// marginal cells, then constructs the D-RaNGe plan excluding the
    /// reserved bank.
    ///
    /// # Errors
    ///
    /// Propagates enrollment and plan-construction errors.
    pub fn new(
        mut ctrl: MemoryController,
        catalog: &RngCellCatalog,
        region: RetentionRegion,
        pause_s: f64,
    ) -> Result<Self, DrangeError> {
        // Enroll marginal retention cells with two pauses.
        let collect = |ctrl: &mut MemoryController| {
            for row in region.rows.clone() {
                ctrl.device_mut()
                    .fill_row(region.bank, row, DataPattern::Solid1);
            }
            ctrl.advance_ps((pause_s * PS_PER_S) as u64);
            apply_refresh_pause(ctrl.device_mut(), region.bank, region.rows.clone(), pause_s).failed
        };
        let a: std::collections::HashSet<CellAddr> = collect(&mut ctrl).into_iter().collect();
        let b: std::collections::HashSet<CellAddr> = collect(&mut ctrl).into_iter().collect();
        let mut marginal: Vec<CellAddr> = a.symmetric_difference(&b).copied().collect();
        marginal.sort();
        // Re-arm the region for the first background pause.
        for row in region.rows.clone() {
            ctrl.device_mut()
                .fill_row(region.bank, row, DataPattern::Solid1);
        }
        let last_harvest_ps = ctrl.now_ps();
        let trng = DRange::new(
            ctrl,
            catalog,
            DRangeConfig {
                exclude_banks: vec![region.bank],
                ..DRangeConfig::default()
            },
        )?;
        Ok(CombinedTrng {
            trng,
            region,
            pause_s,
            marginal,
            last_harvest_ps,
            stats: CombinedStats::default(),
        })
    }

    /// Enrolled marginal retention cells (bits per background pause).
    pub fn marginal_cells(&self) -> usize {
        self.marginal.len()
    }

    /// Combined statistics.
    pub fn stats(&self) -> CombinedStats {
        self.stats
    }

    /// Models wall-clock idle time (the application not consuming
    /// bits): device time advances, letting background retention
    /// pauses complete.
    pub fn idle(&mut self, seconds: f64) {
        self.trng
            .controller_mut()
            .advance_ps((seconds * PS_PER_S) as u64);
    }

    /// Generates `n` bits: D-RaNGe bits continuously, plus the
    /// marginal-cell flips of any retention pause that completed in the
    /// background while the device time advanced.
    ///
    /// # Errors
    ///
    /// Propagates sampling errors.
    pub fn bits(&mut self, n: usize) -> Result<Vec<bool>, DrangeError> {
        let mut out = Vec::with_capacity(n);
        while out.len() < n {
            // Background retention pause completed?
            let now = self.trng.controller().now_ps();
            if !self.marginal.is_empty()
                && now.saturating_sub(self.last_harvest_ps) >= (self.pause_s * PS_PER_S) as u64
            {
                let ctrl = self.trng.controller_mut();
                let failed: std::collections::HashSet<CellAddr> = apply_refresh_pause(
                    ctrl.device_mut(),
                    self.region.bank,
                    self.region.rows.clone(),
                    self.pause_s,
                )
                .failed
                .into_iter()
                .collect();
                for cell in &self.marginal {
                    out.push(failed.contains(cell));
                }
                self.stats.retention_bits += self.marginal.len() as u64;
                self.stats.retention_harvests += 1;
                // Re-arm the region.
                for row in self.region.rows.clone() {
                    ctrl.device_mut()
                        .fill_row(self.region.bank, row, DataPattern::Solid1);
                }
                self.last_harvest_ps = now;
                continue;
            }
            let harvested = self.trng.sample_once()?;
            out.extend(self.trng.bits(harvested)?);
            self.stats.drange_bits += harvested as u64;
        }
        out.truncate(n);
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{DeviceConfig, Manufacturer};
    use drange_core::{IdentifySpec, ProfileSpec, Profiler};

    fn combined() -> CombinedTrng {
        let mut ctrl = MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(84)
                .with_noise_seed(85),
        );
        let profile = Profiler::new(&mut ctrl)
            .run(
                ProfileSpec {
                    banks: (0..7).collect(), // keep bank 7 for retention
                    rows: 0..128,
                    cols: 0..16,
                    ..ProfileSpec::default()
                }
                .with_iterations(25),
            )
            .unwrap();
        let catalog =
            RngCellCatalog::identify(&mut ctrl, &profile, IdentifySpec::default()).unwrap();
        CombinedTrng::new(
            ctrl,
            &catalog,
            RetentionRegion {
                bank: 7,
                rows: 0..128,
            },
            40.0,
        )
        .unwrap()
    }

    #[test]
    fn both_sources_contribute() {
        let mut c = combined();
        assert!(c.marginal_cells() > 0, "40 s pauses enroll marginal cells");
        // Let a background pause complete while the app is idle.
        c.idle(41.0);
        let bits = c.bits(5_000).unwrap();
        assert_eq!(bits.len(), 5_000);
        let s = c.stats();
        assert!(s.drange_bits > 0, "activation-failure bits flow");
        assert!(
            s.retention_harvests >= 1,
            "background retention harvest occurred"
        );
        assert!(s.retention_bits > 0);
    }

    #[test]
    fn combined_output_is_balanced() {
        let mut c = combined();
        let bits = c.bits(30_000).unwrap();
        let ones = bits.iter().filter(|&&b| b).count() as f64 / bits.len() as f64;
        assert!((ones - 0.5).abs() < 0.1, "ones fraction {ones}");
    }

    #[test]
    fn drange_plan_excludes_reserved_bank() {
        let c = combined();
        // All sampling happens on banks != 7; the retention region data
        // stays under the combined generator's control.
        assert!(c.trng.banks_used() <= 7);
    }
}
