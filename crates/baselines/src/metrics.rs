//! The Table 2 comparison metrics shared by all TRNG mechanisms.

/// One row of the paper's Table 2.
#[derive(Debug, Clone, PartialEq)]
pub struct TrngMetrics {
    /// Proposal name.
    pub name: &'static str,
    /// Publication year of the proposal.
    pub year: u32,
    /// Entropy source description.
    pub entropy_source: &'static str,
    /// Whether the entropy source is fully non-deterministic.
    pub true_random: bool,
    /// Whether the mechanism can stream at a constant rate (no power
    /// cycles or multi-second waits between values).
    pub streaming: bool,
    /// Time to deliver a 64-bit random value, ps.
    pub latency_64bit_ps: u64,
    /// Energy per random bit, nJ.
    pub energy_nj_per_bit: f64,
    /// Peak sustained throughput, bits/s.
    pub peak_throughput_bps: f64,
}

impl TrngMetrics {
    /// Latency formatted in a human scale.
    pub fn latency_display(&self) -> String {
        let ps = self.latency_64bit_ps as f64;
        if ps >= 1e12 {
            format!("{:.1} s", ps / 1e12)
        } else if ps >= 1e9 {
            format!("{:.1} ms", ps / 1e9)
        } else if ps >= 1e6 {
            format!("{:.1} us", ps / 1e6)
        } else {
            format!("{:.0} ns", ps / 1e3)
        }
    }

    /// Throughput formatted in a human scale.
    pub fn throughput_display(&self) -> String {
        let bps = self.peak_throughput_bps;
        if bps >= 1e6 {
            format!("{:.2} Mb/s", bps / 1e6)
        } else if bps >= 1e3 {
            format!("{:.2} Kb/s", bps / 1e3)
        } else {
            format!("{bps:.2} b/s")
        }
    }
}

impl std::fmt::Display for TrngMetrics {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(
            f,
            "{:<14} {:<6} {:<22} {:^6} {:^9} {:>10} {:>14.3} {:>14}",
            self.name,
            self.year,
            self.entropy_source,
            if self.true_random { "yes" } else { "no" },
            if self.streaming { "yes" } else { "no" },
            self.latency_display(),
            self.energy_nj_per_bit,
            self.throughput_display(),
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn row() -> TrngMetrics {
        TrngMetrics {
            name: "X",
            year: 2018,
            entropy_source: "test",
            true_random: true,
            streaming: false,
            latency_64bit_ps: 960_000,
            energy_nj_per_bit: 4.4,
            peak_throughput_bps: 717.4e6,
        }
    }

    #[test]
    fn latency_scales() {
        let mut r = row();
        assert_eq!(r.latency_display(), "960 ns");
        r.latency_64bit_ps = 40_000_000_000_000;
        assert_eq!(r.latency_display(), "40.0 s");
        r.latency_64bit_ps = 18_000_000;
        assert_eq!(r.latency_display(), "18.0 us");
    }

    #[test]
    fn throughput_scales() {
        let mut r = row();
        assert_eq!(r.throughput_display(), "717.40 Mb/s");
        r.peak_throughput_bps = 50.0;
        assert_eq!(r.throughput_display(), "50.00 b/s");
        r.peak_throughput_bps = 3400.0;
        assert_eq!(r.throughput_display(), "3.40 Kb/s");
    }

    #[test]
    fn display_contains_fields() {
        let text = row().to_string();
        assert!(text.contains('X') && text.contains("2018") && text.contains("4.4"));
    }
}
