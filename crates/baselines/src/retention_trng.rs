//! Retention-failure TRNGs: Keller+ (ISCAS 2014) and Sutar+ (TECS 2018).
//!
//! Both disable refresh over a DRAM region for tens of seconds and
//! harvest entropy from the resulting retention failures (paper Section
//! 8.2). The fundamental limitation the paper quantifies — and this
//! model reproduces — is the *wait time*: a 40 s pause bounds
//! throughput to well below a kilobit per second per region, orders of
//! magnitude under D-RaNGe.
//!
//! * **Keller+** enrolls *marginal* cells (those that flip on some but
//!   not all pauses) and emits each marginal cell's flip indicator per
//!   pause.
//! * **Sutar+** (D-PUF) hashes the post-pause content of the whole
//!   region with SHA-256, producing 256 bits per pause.

use dram_sim::retention::apply_refresh_pause;
use dram_sim::{CellAddr, DataPattern};
use memctrl::{MemoryController, Result};

use crate::sha256::Sha256;

/// Picoseconds per second.
const PS_PER_S: f64 = 1e12;

/// Region a retention TRNG operates on.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RetentionRegion {
    /// Bank holding the region.
    pub bank: usize,
    /// Rows of the region.
    pub rows: std::ops::Range<usize>,
}

impl Default for RetentionRegion {
    fn default() -> Self {
        RetentionRegion {
            bank: 0,
            rows: 0..256,
        }
    }
}

/// Writes the all-ones pattern (maximum charge) to the region and
/// simulates a refresh pause, returning flipped cells. Device time
/// advances by the pause duration.
fn pause_and_collect(
    ctrl: &mut MemoryController,
    region: &RetentionRegion,
    pause_s: f64,
) -> Vec<CellAddr> {
    for row in region.rows.clone() {
        ctrl.device_mut()
            .fill_row(region.bank, row, DataPattern::Solid1);
    }
    ctrl.advance_ps((pause_s * PS_PER_S) as u64);
    apply_refresh_pause(ctrl.device_mut(), region.bank, region.rows.clone(), pause_s).failed
}

/// Keller+ marginal-cell retention TRNG.
#[derive(Debug)]
pub struct KellerTrng {
    ctrl: MemoryController,
    region: RetentionRegion,
    pause_s: f64,
    marginal: Vec<CellAddr>,
    bits_emitted: u64,
    device_time_ps: u64,
}

impl KellerTrng {
    /// Enrolls marginal cells with two pauses: cells that flipped in
    /// exactly one of the two trials sit at the retention threshold and
    /// flip nondeterministically.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn enroll(
        mut ctrl: MemoryController,
        region: RetentionRegion,
        pause_s: f64,
    ) -> Result<Self> {
        let a: std::collections::HashSet<CellAddr> = pause_and_collect(&mut ctrl, &region, pause_s)
            .into_iter()
            .collect();
        let b: std::collections::HashSet<CellAddr> = pause_and_collect(&mut ctrl, &region, pause_s)
            .into_iter()
            .collect();
        let mut marginal: Vec<CellAddr> = a.symmetric_difference(&b).copied().collect();
        marginal.sort();
        Ok(KellerTrng {
            ctrl,
            region,
            pause_s,
            marginal,
            bits_emitted: 0,
            device_time_ps: 0,
        })
    }

    /// Number of enrolled marginal cells (bits per pause).
    pub fn marginal_cells(&self) -> usize {
        self.marginal.len()
    }

    /// One pause: returns each marginal cell's flip indicator.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn harvest(&mut self) -> Result<Vec<bool>> {
        let t0 = self.ctrl.now_ps();
        let failed: std::collections::HashSet<CellAddr> =
            pause_and_collect(&mut self.ctrl, &self.region, self.pause_s)
                .into_iter()
                .collect();
        let bits: Vec<bool> = self.marginal.iter().map(|c| failed.contains(c)).collect();
        self.bits_emitted += bits.len() as u64;
        self.device_time_ps += self.ctrl.now_ps() - t0;
        Ok(bits)
    }

    /// Observed throughput, bits/s of device time.
    pub fn throughput_bps(&self) -> f64 {
        if self.device_time_ps == 0 {
            0.0
        } else {
            self.bits_emitted as f64 / (self.device_time_ps as f64 / PS_PER_S)
        }
    }

    /// Latency to a 64-bit value: one full pause, ps.
    pub fn latency_64bit_ps(&self) -> u64 {
        (self.pause_s * PS_PER_S) as u64
    }
}

/// Sutar+ (D-PUF) hash-based retention TRNG.
#[derive(Debug)]
pub struct SutarTrng {
    ctrl: MemoryController,
    region: RetentionRegion,
    pause_s: f64,
    bits_emitted: u64,
    device_time_ps: u64,
}

impl SutarTrng {
    /// A Sutar+ generator over a region with the given pause.
    pub fn new(ctrl: MemoryController, region: RetentionRegion, pause_s: f64) -> Self {
        SutarTrng {
            ctrl,
            region,
            pause_s,
            bits_emitted: 0,
            device_time_ps: 0,
        }
    }

    /// One pause: SHA-256 of the decayed region content = 256 bits.
    ///
    /// # Errors
    ///
    /// Propagates controller errors.
    pub fn harvest(&mut self) -> Result<[u8; 32]> {
        let t0 = self.ctrl.now_ps();
        let _ = pause_and_collect(&mut self.ctrl, &self.region, self.pause_s);
        // Read the region back through the protocol (part of the cost).
        let mut hasher = Sha256::new();
        let cols = self.ctrl.device().geometry().cols;
        for row in self.region.rows.clone() {
            self.ctrl.act(self.region.bank, row)?;
            for col in 0..cols {
                let w = self.ctrl.rd(self.region.bank, row, col)?;
                hasher.update(&w.to_le_bytes());
            }
            self.ctrl.pre(self.region.bank)?;
        }
        self.bits_emitted += 256;
        self.device_time_ps += self.ctrl.now_ps() - t0;
        Ok(hasher.finalize())
    }

    /// Observed throughput, bits/s of device time.
    pub fn throughput_bps(&self) -> f64 {
        if self.device_time_ps == 0 {
            0.0
        } else {
            self.bits_emitted as f64 / (self.device_time_ps as f64 / PS_PER_S)
        }
    }

    /// Latency to a 64-bit value: one full pause, ps.
    pub fn latency_64bit_ps(&self) -> u64 {
        (self.pause_s * PS_PER_S) as u64
    }

    /// Words in the region (for energy accounting).
    pub fn region_words(&self) -> usize {
        (self.region.rows.end - self.region.rows.start) * self.ctrl.device().geometry().cols
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use dram_sim::{DeviceConfig, Manufacturer};

    fn ctrl() -> MemoryController {
        MemoryController::from_config(
            DeviceConfig::new(Manufacturer::A)
                .with_seed(17)
                .with_noise_seed(18),
        )
    }

    #[test]
    fn keller_enrolls_marginal_cells_and_streams_slowly() {
        let mut k = KellerTrng::enroll(ctrl(), RetentionRegion::default(), 40.0).unwrap();
        assert!(k.marginal_cells() > 0, "40 s pause yields marginal cells");
        let bits = k.harvest().unwrap();
        assert_eq!(bits.len(), k.marginal_cells());
        // Throughput is bounded by the pause: bits/pause over 40 s.
        let bps = k.throughput_bps();
        assert!(bps < 1e5, "retention TRNG cannot be fast: {bps} b/s");
        assert!(bps > 0.0);
        assert_eq!(k.latency_64bit_ps(), 40_000_000_000_000);
    }

    #[test]
    fn keller_flip_indicators_vary_between_pauses() {
        let mut k = KellerTrng::enroll(ctrl(), RetentionRegion::default(), 40.0).unwrap();
        if k.marginal_cells() < 4 {
            return; // not enough marginal cells at this seed to compare
        }
        let a = k.harvest().unwrap();
        let b = k.harvest().unwrap();
        assert_ne!(a, b, "marginal cells flip nondeterministically");
    }

    #[test]
    fn sutar_produces_different_hashes_per_pause() {
        let mut s = SutarTrng::new(ctrl(), RetentionRegion::default(), 40.0);
        let h1 = s.harvest().unwrap();
        let h2 = s.harvest().unwrap();
        assert_ne!(h1, h2, "decay patterns differ between pauses");
        assert_eq!(s.bits_emitted, 512);
    }

    #[test]
    fn sutar_throughput_matches_paper_scale() {
        let mut s = SutarTrng::new(ctrl(), RetentionRegion::default(), 40.0);
        let _ = s.harvest().unwrap();
        let bps = s.throughput_bps();
        // 256 bits / ~40 s = ~6.4 b/s per region; the paper's 0.05 Mb/s
        // assumes 8000 parallel 4 MiB regions of a 32 GiB system. Either
        // way: orders of magnitude below D-RaNGe.
        assert!((1.0..100.0).contains(&bps), "throughput {bps} b/s");
    }

    #[test]
    fn longer_pause_flips_more_enrolled_cells() {
        let a = KellerTrng::enroll(ctrl(), RetentionRegion::default(), 10.0).unwrap();
        let b = KellerTrng::enroll(ctrl(), RetentionRegion::default(), 120.0).unwrap();
        // Not strictly monotone cell-by-cell, but the marginal band
        // grows with the failure population; allow generous slack.
        assert!(
            b.marginal_cells() + 5 >= a.marginal_cells(),
            "a={} b={}",
            a.marginal_cells(),
            b.marginal_cells()
        );
    }

    #[test]
    fn device_time_advances_by_pause() {
        let mut s = SutarTrng::new(ctrl(), RetentionRegion::default(), 40.0);
        let _ = s.harvest().unwrap();
        assert!(s.device_time_ps >= 40_000_000_000_000);
    }
}
